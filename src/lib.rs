//! # sci-mpich-repro — umbrella crate
//!
//! A reproduction of *"Exploiting Transparent Remote Memory Access for
//! Non-Contiguous- and One-Sided-Communication"* (Worringen, Gäer, Reker;
//! IPPS 2002) as a Rust workspace. This umbrella crate re-exports the
//! member crates and hosts the runnable examples and the cross-crate
//! integration tests.
//!
//! Layer map (bottom-up):
//!
//! * [`simclock`] — virtual time, clocks, statistics;
//! * [`sci_fabric`] — the simulated SCI interconnect (segments, PIO
//!   streams, DMA, ring contention, fault injection);
//! * [`smi`] — the Shared Memory Interface abstraction (regions, locks,
//!   barriers, allocator);
//! * [`mpi_datatype`] — derived datatypes, generic pack engine, and
//!   `direct_pack_ff`;
//! * [`scimpi`] — the MPI runtime (two-sided protocols, collectives,
//!   MPI-2 one-sided communication);
//! * [`baselines`] — analytic models of the paper's comparison platforms.
//!
//! See `README.md` for a tour, `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for paper-vs-measured results.

pub use baselines;
pub use mpi_datatype;
pub use sci_fabric;
pub use scimpi;
pub use simclock;
pub use smi;
