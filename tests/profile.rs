//! The wait-state profiler's contract: attribution must never perturb
//! virtual time, same-seed runs must serialize byte-identical
//! `PROFILE_*.json` documents, and the per-rank decomposition must be
//! conservative — `compute + pack + transfer + wait + other ==
//! makespan`, exactly, for every rank.
//!
//! The recorder is process-global, so all scenarios run sequentially
//! inside one test function (the harness would otherwise interleave
//! them).

use scimpi::{run, ClusterSpec, ObsConfig, Rank, ReduceOp, Source, TagSel, WinMemory};
use simclock::{SimDuration, SimTime};

const RANKS: usize = 4;

/// A deterministic blocking workload that exercises every stall site
/// class: skewed compute (late senders + barrier waits), rendezvous and
/// eager p2p, collectives, and one-sided puts through a shared window.
fn workload(r: &mut Rank) -> SimTime {
    let me = r.rank();
    let n = r.size();
    let right = (me + 1) % n;
    let left = (me + n - 1) % n;

    // Rank-dependent grain: the skew is what produces classified waits.
    r.compute(SimDuration::from_ns(50_000 * (me as u64 + 1)));

    // Rendezvous-sized ring exchange (link-disjoint, deterministic).
    let big = vec![me as u8; 96 * 1024];
    let mut from_left = vec![0u8; 96 * 1024];
    r.sendrecv(
        right,
        7,
        scimpi::SendData::Bytes(&big),
        Source::Rank(left),
        TagSel::Value(7),
        scimpi::RecvBuf::Bytes(&mut from_left),
    )
    .unwrap();
    assert!(from_left.iter().all(|&b| b == left as u8));

    // Eager-sized exchange the other way.
    let small = [me as u8; 64];
    let mut from_right = [0u8; 64];
    r.sendrecv(
        left,
        8,
        scimpi::SendData::Bytes(&small),
        Source::Rank(right),
        TagSel::Value(8),
        scimpi::RecvBuf::Bytes(&mut from_right),
    )
    .unwrap();

    // Collectives.
    let mut root_word = if me == 0 { [42u8; 32] } else { [0u8; 32] };
    r.bcast(0, &mut root_word).unwrap();
    assert_eq!(root_word, [42u8; 32]);
    let mut sums = [me as f64];
    r.allreduce(&mut sums, ReduceOp::Sum).unwrap();
    assert_eq!(sums[0], (0..n).map(|x| x as f64).sum::<f64>());

    // One-sided traffic through a shared window.
    let mem = r.alloc_mem(256).unwrap();
    let mut win = r.win_create(WinMemory::Alloc(mem)).unwrap();
    win.fence(r).unwrap();
    if me == 0 {
        win.put(r, 1, 0, &[9u8; 128]).unwrap();
    }
    win.fence(r).unwrap();

    r.barrier();
    r.now()
}

fn spec(obs: ObsConfig) -> ClusterSpec {
    let mut spec = ClusterSpec::ringlet(RANKS).obs(obs);
    spec.seed = 20020415;
    spec
}

#[test]
fn profiler_is_deterministic_and_conservative() {
    // --- 1. Attribution must not move any clock: the same seed gives
    // bit-identical per-rank finish times with the recorder enabled,
    // with it disabled, and across repeated enabled runs. ---
    let with_obs = run(spec(ObsConfig::enabled()), workload);
    let conservation = obs::report::last_profile().expect("profile built at teardown");
    let without_obs = run(spec(ObsConfig::disabled()), workload);
    assert_eq!(
        with_obs, without_obs,
        "recording attribution perturbed virtual time"
    );

    // --- 2. Conservation: every rank's decomposition sums to its
    // makespan exactly, with real time in every class this workload
    // exercises. ---
    assert_eq!(conservation.ranks.len(), RANKS);
    for p in &conservation.ranks {
        assert_eq!(
            p.total_busy_ps() + p.total_wait_ps() + p.other_ps,
            p.makespan_ps,
            "rank {} decomposition does not sum to its makespan",
            p.rank
        );
        assert_eq!(
            p.makespan_ps,
            with_obs[p.rank as usize].as_ps(),
            "rank {} profiled makespan disagrees with its clock",
            p.rank
        );
        assert!(
            p.total_busy_ps() > 0,
            "rank {} recorded no busy time",
            p.rank
        );
    }
    // The skewed grains force someone to wait.
    assert!(conservation.total_wait_ps() > 0, "no wait time classified");
    assert!(
        !conservation.families.is_empty(),
        "no span families recorded"
    );
    assert!(
        !conservation.critical_path.hops.is_empty(),
        "no critical path extracted"
    );

    // --- 3. Same seed, same bytes: two profiled runs serialize
    // identical PROFILE documents. ---
    let dir = std::env::temp_dir();
    let a = dir.join(format!("scimpi_profile_{}_a.json", std::process::id()));
    let b = dir.join(format!("scimpi_profile_{}_b.json", std::process::id()));
    run(spec(ObsConfig::enabled().and_profile(&a)), workload);
    run(spec(ObsConfig::enabled().and_profile(&b)), workload);
    let doc_a = std::fs::read_to_string(&a).unwrap();
    let doc_b = std::fs::read_to_string(&b).unwrap();
    let _ = std::fs::remove_file(&a);
    let _ = std::fs::remove_file(&b);
    assert!(
        doc_a.contains("\"schema\":\"scimpi-profile-v1\""),
        "profile document missing schema marker"
    );
    assert_eq!(doc_a, doc_b, "same-seed PROFILE documents differ");
}
