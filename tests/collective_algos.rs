//! Cross-algorithm equivalence suite for the collective engine.
//!
//! Every forced algorithm (and the `Auto` selector) must produce
//! byte-identical results to the linear reference schedules kept as
//! [`CollectiveAlgo::Naive`], on both scheduler backends, across pow2
//! and non-pow2 rank counts and both sides of the size thresholds. All
//! floating-point payloads are exactly-representable integers so sums
//! are order-independent and the comparison really is `==`.
//!
//! A second family kills one rank mid-allreduce and asserts the per-rank
//! PeerDead/Revoked error-site map is a deterministic function of the
//! (seed, algorithm) pair — re-running the identical spec must reproduce
//! the map bit-for-bit, including virtual timestamps.

use scimpi::prelude::*;
use scimpi::{death_delay, revoke, Tuning};
use simclock::SimDuration;

/// CI sweeps `COLL_SEED` to vary the fabric RNG streams; the
/// equivalence property and the error-site determinism are
/// seed-independent, so every seed must pass identically.
fn env_seed() -> Option<u64> {
    std::env::var("COLL_SEED")
        .ok()
        .map(|s| s.parse().expect("COLL_SEED must be an integer"))
}

/// All algorithm knobs the engine accepts, `Auto` included.
const ALGOS: [CollectiveAlgo; 6] = [
    CollectiveAlgo::Auto,
    CollectiveAlgo::Naive,
    CollectiveAlgo::Ring,
    CollectiveAlgo::RecursiveDoubling,
    CollectiveAlgo::Binomial,
    CollectiveAlgo::Bruck,
];

/// Thresholds scaled down so the `Auto` selector crosses into the ring
/// and Bruck regimes at test-sized payloads instead of megabytes.
fn tuned(algo: CollectiveAlgo) -> Tuning {
    Tuning {
        collective_algo: algo,
        coll_small_max: 1024,
        coll_ring_min: 2048,
        coll_bruck_max: 4096,
        ..Tuning::default()
    }
}

/// One pass over the whole collective surface; returns a per-rank byte
/// transcript covering every result the collectives hand back.
fn workload(r: &mut Rank, len: usize) -> Vec<u8> {
    let me = r.rank();
    let n = r.size();
    let mut out = Vec::new();

    // Broadcast from a non-zero root.
    let root = 1 % n;
    let mut buf = vec![0u8; len];
    if me == root {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = (i * 7 + 3) as u8;
        }
    }
    r.bcast(root, &mut buf).done();
    out.extend_from_slice(&buf);

    // Rooted reduce over integers.
    let vals: Vec<u64> = (0..len / 8)
        .map(|i| (me as u64 + 1) * (i as u64 + 1))
        .collect();
    if let Some(red) = r.reduce(0, &vals, ReduceOp::Sum).done() {
        out.extend(red.iter().flat_map(|v| v.to_le_bytes()));
    }

    // In-place allreduce: exact-integer f64 sum, then a min.
    let mut f: Vec<f64> = (0..len / 8).map(|i| ((me + 7 * i) % 97) as f64).collect();
    r.allreduce(&mut f, ReduceOp::Sum).done();
    out.extend(f.iter().flat_map(|v| v.to_le_bytes()));
    let mut lows = [(me as i64) - 3, me as i64 + 100];
    r.allreduce(&mut lows, ReduceOp::Min).done();
    out.extend(lows.iter().flat_map(|v| v.to_le_bytes()));

    // Inclusive prefix scan.
    let mut pre: Vec<u32> = (0..len / 8).map(|i| (me * 13 + i) as u32).collect();
    r.scan(&mut pre, ReduceOp::Sum).done();
    out.extend(pre.iter().flat_map(|v| v.to_le_bytes()));

    // Ragged gatherv into a non-zero root.
    let mine = vec![me as u8 | 0x40; (me + 1) * (len / n).max(1)];
    if let Some(parts) = r.gatherv(2 % n, &mine).done() {
        out.extend(parts.into_iter().flatten());
    }

    // Ragged scatterv from rank 0.
    let parts: Option<Vec<Vec<u8>>> =
        (me == 0).then(|| (0..n).map(|d| vec![(d * 5 + 1) as u8; d * 7 + 3]).collect());
    out.extend(r.scatterv(0, parts.as_deref()).done());

    // Allgather: once ragged, once with equal blocks (the equal case is
    // what the Bruck/recursive-doubling schedules are shaped for).
    out.extend(r.allgather(&mine).done().into_iter().flatten());
    let eq = vec![me as u8 ^ 0x5A; len.max(1)];
    out.extend(r.allgather(&eq).done().into_iter().flatten());

    // All-to-all with equal blocks.
    let blocks: Vec<Vec<u8>> = (0..n)
        .map(|d| vec![(me * n + d) as u8; len.max(1)])
        .collect();
    out.extend(r.alltoall(&blocks).done().into_iter().flatten());

    // All-to-all-v over a flat buffer with ragged counts.
    let counts: Vec<usize> = (0..n).map(|d| (me + 2 * d) % 5).collect();
    let mut sendbuf = Vec::new();
    let mut displs = Vec::new();
    for (d, &c) in counts.iter().enumerate() {
        displs.push(sendbuf.len());
        sendbuf.extend(std::iter::repeat_n((me * 3 + d + 1) as u8, c));
    }
    let (rbuf, rcounts, rdispls) = r.alltoallv(&sendbuf, &counts, &displs).done();
    out.extend_from_slice(&rbuf);
    out.extend(rcounts.iter().flat_map(|c| (*c as u64).to_le_bytes()));
    out.extend(rdispls.iter().flat_map(|c| (*c as u64).to_le_bytes()));
    out
}

/// Run the workload under every algorithm on `base` and demand each
/// transcript matches the naive reference byte-for-byte.
fn equivalence(name: &str, base: fn() -> ClusterSpec, backend: Backend, len: usize) {
    let seeded = |algo| {
        let mut s = base().tuning(tuned(algo)).backend(backend);
        if let Some(seed) = env_seed() {
            s.seed = seed;
        }
        s
    };
    let reference = scimpi::run(seeded(CollectiveAlgo::Naive), move |r| workload(r, len));
    for algo in ALGOS {
        if algo == CollectiveAlgo::Naive {
            continue;
        }
        let got = scimpi::run(seeded(algo), move |r| workload(r, len));
        for (rank, (g, want)) in got.iter().zip(&reference).enumerate() {
            assert_eq!(
                g, want,
                "[{name}] rank {rank}: {algo:?} diverged from Naive (len {len})"
            );
        }
    }
}

fn ringlet4() -> ClusterSpec {
    ClusterSpec::ringlet(4)
}
fn ringlet5() -> ClusterSpec {
    ClusterSpec::ringlet(5)
}
fn multi8() -> ClusterSpec {
    ClusterSpec::multi_ring(2, 4)
}

#[test]
fn algos_agree_on_pow2_ringlet_thread() {
    equivalence("ringlet4/small", ringlet4, Backend::Thread, 64);
    equivalence("ringlet4/large", ringlet4, Backend::Thread, 8192);
}

#[test]
fn algos_agree_on_pow2_ringlet_event() {
    equivalence("ringlet4/small", ringlet4, Backend::Event, 64);
    equivalence("ringlet4/large", ringlet4, Backend::Event, 8192);
}

#[test]
fn algos_agree_on_nonpow2_ringlet_thread() {
    equivalence("ringlet5/small", ringlet5, Backend::Thread, 64);
    equivalence("ringlet5/large", ringlet5, Backend::Thread, 8192);
}

#[test]
fn algos_agree_on_nonpow2_ringlet_event() {
    equivalence("ringlet5/small", ringlet5, Backend::Event, 64);
    equivalence("ringlet5/large", ringlet5, Backend::Event, 8192);
}

#[test]
fn algos_agree_across_rings_thread() {
    equivalence("multi8/small", multi8, Backend::Thread, 64);
    equivalence("multi8/large", multi8, Backend::Thread, 8192);
}

#[test]
fn algos_agree_across_rings_event() {
    equivalence("multi8/small", multi8, Backend::Event, 64);
    equivalence("multi8/large", multi8, Backend::Event, 8192);
}

// --- seeded chaos sweep -------------------------------------------------

/// Rendezvous-sized payload in f64 elements; eager sends to a corpse
/// complete locally, so only rendezvous traffic exposes the death.
const F64_RDV: usize = 20_000;

/// Kill rank 2 right after the opening barrier and drive an allreduce
/// through it. Rank 3 touches the victim in every schedule the engine
/// can pick for an allreduce (ring neighbour, first-round recursive-
/// doubling partner, binomial parent), so it is guaranteed `PeerDead`
/// and safe to use as the revoker that unblocks stranded survivors.
fn dying_allreduce(algo: CollectiveAlgo, seed: u64) -> Vec<(String, SimDuration)> {
    const VICTIM: usize = 2;
    const REVOKER: usize = 3;
    let spec = ClusterSpec::multi_ring(2, 4)
        .errors(ErrorMode::ErrorsReturn)
        .tuning(Tuning {
            collective_algo: algo,
            ..Tuning::default()
        })
        .seed(seed);
    scimpi::run(spec, move |r| {
        r.barrier();
        let t0 = r.now();
        if r.rank() == VICTIM {
            r.fabric().faults().kill_node(VICTIM);
            return ("dead".to_string(), r.now() - t0);
        }
        let mut buf = vec![1.0f64; F64_RDV];
        let outcome = match r.allreduce(&mut buf, ReduceOp::Sum) {
            Ok(()) => "ok".to_string(),
            Err(e) => format!("{e:?}"),
        };
        if r.rank() == REVOKER {
            // Real-time pause (costs no virtual time) so the fault has
            // quiesced before the revocation lands: the error-site map
            // stays a pure function of the schedule.
            std::thread::sleep(std::time::Duration::from_millis(800));
            revoke(r);
        }
        (outcome, r.now() - t0)
    })
}

#[test]
fn dying_rank_error_maps_are_deterministic_per_algorithm() {
    let budget = death_delay(&Tuning::default());
    let bound = budget * 2 + SimDuration::from_ms(50);
    // Naive, Ring and RecursiveDoubling are the three distinct allreduce
    // schedules (Binomial aliases Naive, Bruck aliases RecursiveDoubling).
    for algo in [
        CollectiveAlgo::Naive,
        CollectiveAlgo::Ring,
        CollectiveAlgo::RecursiveDoubling,
    ] {
        for seed in [11u64, env_seed().unwrap_or(23)] {
            let a = dying_allreduce(algo, seed);
            let b = dying_allreduce(algo, seed);
            assert_eq!(a, b, "{algo:?} seed {seed}: error-site map must replay");
            assert_eq!(a[2].0, "dead", "{algo:?}: victim records its death");
            let pd = format!("{:?}", ScimpiError::PeerDead { peer: 2 });
            let rv = format!("{:?}", ScimpiError::Revoked);
            assert!(
                a.iter().any(|(o, _)| *o == pd),
                "{algo:?} seed {seed}: someone must observe PeerDead, got {a:?}"
            );
            for (rank, (outcome, elapsed)) in a.iter().enumerate() {
                assert!(
                    *outcome == "ok" || *outcome == "dead" || *outcome == pd || *outcome == rv,
                    "{algo:?} seed {seed} rank {rank}: unexpected outcome {outcome}"
                );
                if *outcome == pd || *outcome == rv {
                    assert!(
                        *elapsed <= bound,
                        "{algo:?} seed {seed} rank {rank}: {elapsed:?} > {bound:?}"
                    );
                }
            }
        }
    }
}
