//! The §5.3 outlook: systems built from multiple 8-node ringlets
//! ("with 3D-torus topology … a 512 nodes system"). These tests exercise
//! the multi-ring topology end to end: routing, switch-crossing costs,
//! and whole-application correctness on 2–4 ringlets.

use scimpi::{run, ClusterSpec, ReduceOp, Source, TagSel, WinMemory};
use simclock::SimDuration;

#[test]
fn collectives_across_rings() {
    // 3 ringlets of 4: collectives span the switch transparently.
    let out = run(ClusterSpec::multi_ring(3, 4), |r| {
        assert_eq!(r.size(), 12);
        let mut sum = [r.rank() as f64];
        r.allreduce(&mut sum, ReduceOp::Sum).unwrap();
        let mut token = vec![0u8; 8];
        if r.rank() == 0 {
            token = 0xDEADBEEFu64.to_le_bytes().to_vec();
        }
        r.bcast(0, &mut token).unwrap();
        (
            sum[0],
            u64::from_le_bytes(token.try_into().expect("8 bytes")),
        )
    });
    let expect: f64 = (0..12).map(|i| i as f64).sum();
    assert!(out.iter().all(|&(s, t)| s == expect && t == 0xDEADBEEF));
}

#[test]
fn one_sided_across_the_switch() {
    run(ClusterSpec::multi_ring(2, 4), |r| {
        let mem = r.alloc_mem(256).unwrap();
        let mut win = r.win_create(WinMemory::Alloc(mem)).unwrap();
        win.fence(r).unwrap();
        // Rank 0 (ring 0) puts into rank 5 (ring 1) and vice versa.
        if r.rank() == 0 {
            win.put(r, 5, 0, &[0xA1; 32]).unwrap();
        } else if r.rank() == 5 {
            win.put(r, 0, 0, &[0xB2; 32]).unwrap();
        }
        win.fence(r).unwrap();
        if r.rank() == 5 {
            let mut b = [0u8; 32];
            win.read_local(r, 0, &mut b);
            assert!(b.iter().all(|&x| x == 0xA1));
        }
        if r.rank() == 0 {
            let mut b = [0u8; 32];
            win.read_local(r, 0, &mut b);
            assert!(b.iter().all(|&x| x == 0xB2));
        }
        win.fence(r).unwrap();
    });
}

#[test]
fn cross_ring_latency_exceeds_intra_ring() {
    let out = run(ClusterSpec::multi_ring(2, 4), |r| {
        let mut lat = SimDuration::ZERO;
        // Intra-ring pingpong 0<->1; cross-ring pingpong 2<->6.
        let pairs = [(0usize, 1usize, 10), (2, 6, 20)];
        for &(a, b, tag) in &pairs {
            let mut buf = [0u8; 64];
            if r.rank() == a {
                let t0 = r.now();
                r.send(b, tag, &buf).unwrap();
                r.recv(Source::Rank(b), TagSel::Value(tag), &mut buf)
                    .unwrap();
                lat = r.now() - t0;
            } else if r.rank() == b {
                r.recv(Source::Rank(a), TagSel::Value(tag), &mut buf)
                    .unwrap();
                r.send(a, tag, &buf).unwrap();
            }
            r.barrier();
        }
        lat
    });
    assert!(
        out[2] > out[0],
        "cross-ring rtt {:?} should exceed intra-ring {:?}",
        out[2],
        out[0]
    );
}

#[test]
fn large_system_smoke() {
    // 8 ringlets of 8 = 64 ranks: a slice of the 512-node outlook.
    let out = run(ClusterSpec::multi_ring(8, 8), |r| {
        let n = r.size();
        assert_eq!(n, 64);
        // Nearest-neighbour exchange plus a global reduction.
        let next = (r.rank() + 1) % n;
        let prev = (r.rank() + n - 1) % n;
        let mine = vec![r.rank() as u8; 512];
        let mut got = vec![0u8; 512];
        r.sendrecv(
            next,
            3,
            scimpi::SendData::Bytes(&mine),
            Source::Rank(prev),
            TagSel::Value(3),
            scimpi::RecvBuf::Bytes(&mut got),
        )
        .unwrap();
        assert!(got.iter().all(|&b| b == prev as u8));
        let mut total = [1.0f64];
        r.allreduce(&mut total, ReduceOp::Sum).unwrap();
        total[0] as usize
    });
    assert!(out.iter().all(|&v| v == 64));
}
