//! The observability counters must attribute each protocol decision to
//! the right path: eager vs rendezvous sends, shared vs emulated window
//! accesses — and stay silent when the recorder is disabled.
//!
//! The recorder is process-global, so all scenarios run sequentially
//! inside one test function (the harness would otherwise interleave
//! them).

use obs::Counter;
use scimpi::{run, ClusterSpec, ObsConfig, Rank, Source, TagSel, WinMemory};

fn enabled_spec() -> ClusterSpec {
    // `reset_on_start` wipes the previous scenario's counters.
    ClusterSpec::ringlet(2).obs(ObsConfig::enabled())
}

fn shared_window(r: &mut Rank, len: usize) -> scimpi::Window {
    let mem = r.alloc_mem(len).unwrap();
    r.win_create(WinMemory::Alloc(mem)).unwrap()
}

#[test]
fn counters_attribute_protocol_paths() {
    // --- 1. Small message: eager, no rendezvous traffic. ---
    run(enabled_spec(), |r| {
        if r.rank() == 0 {
            r.send(1, 0, &[7u8; 128]).unwrap();
        } else {
            let mut buf = [0u8; 128];
            r.recv(Source::Rank(0), TagSel::Value(0), &mut buf).unwrap();
        }
    });
    assert_eq!(obs::counter_value(Counter::EagerSends), 1);
    assert_eq!(obs::counter_value(Counter::RendezvousSends), 0);
    assert_eq!(obs::counter_value(Counter::RendezvousChunks), 0);

    // --- 2. Large message: rendezvous, chunked through the pair ring. ---
    let spec = enabled_spec();
    let total = 160 * 1024;
    assert!(total > spec.tuning.eager_threshold);
    let expected_chunks = total.div_ceil(spec.tuning.rendezvous_chunk) as u64;
    run(spec, move |r| {
        if r.rank() == 0 {
            r.send(1, 0, &vec![1u8; total]).unwrap();
        } else {
            let mut buf = vec![0u8; total];
            r.recv(Source::Rank(0), TagSel::Value(0), &mut buf).unwrap();
        }
    });
    assert_eq!(obs::counter_value(Counter::EagerSends), 0);
    assert_eq!(obs::counter_value(Counter::RendezvousSends), 1);
    assert_eq!(
        obs::counter_value(Counter::RendezvousChunks),
        expected_chunks
    );

    // --- 3. Put into a shared (MPI_Alloc_mem) window: direct path. ---
    run(enabled_spec(), |r| {
        let mut win = shared_window(r, 1024);
        if r.rank() == 0 {
            win.put(r, 1, 0, &[3u8; 64]).unwrap();
        }
        win.fence(r).unwrap();
    });
    assert_eq!(obs::counter_value(Counter::OscPutShared), 1);
    assert_eq!(obs::counter_value(Counter::OscPutEmulated), 0);

    // --- 4. Put into a private window: emulation path. ---
    run(enabled_spec(), |r| {
        let mut win = r.win_create(WinMemory::Private(1024)).unwrap();
        if r.rank() == 0 {
            win.put(r, 1, 0, &[4u8; 64]).unwrap();
        }
        win.fence(r).unwrap();
    });
    assert_eq!(obs::counter_value(Counter::OscPutShared), 0);
    assert_eq!(obs::counter_value(Counter::OscPutEmulated), 1);

    // --- 5. Gets split by the remote-put conversion threshold. ---
    let spec = enabled_spec();
    let threshold = spec.tuning.get_remote_put_threshold;
    run(spec, move |r| {
        let mut win = shared_window(r, 2 * threshold);
        win.fence(r).unwrap();
        if r.rank() == 0 {
            let mut small = vec![0u8; 16];
            win.get(r, 1, 0, &mut small).unwrap();
            let mut large = vec![0u8; threshold];
            win.get(r, 1, 0, &mut large).unwrap();
        }
        win.fence(r).unwrap();
    });
    assert_eq!(obs::counter_value(Counter::OscGetDirect), 1);
    assert_eq!(obs::counter_value(Counter::OscGetRemotePut), 1);

    // --- 6. Disabled recorder: the same traffic moves no counter. ---
    obs::reset();
    run(ClusterSpec::ringlet(2).obs(ObsConfig::disabled()), |r| {
        let mut win = shared_window(r, 1024);
        if r.rank() == 0 {
            r.send(1, 0, &[7u8; 128]).unwrap();
            win.put(r, 1, 0, &[3u8; 64]).unwrap();
        } else {
            let mut buf = [0u8; 128];
            r.recv(Source::Rank(0), TagSel::Value(0), &mut buf).unwrap();
        }
        win.fence(r).unwrap();
    });
    for (name, value) in obs::counters_snapshot() {
        assert_eq!(value, 0, "counter {name} moved while disabled");
    }
    assert!(
        obs::take_events().is_empty(),
        "events recorded while disabled"
    );
}
