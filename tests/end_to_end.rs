//! Cross-crate integration tests: whole-stack scenarios through the
//! public API (fabric → SMI → datatypes → MPI runtime).

use mpi_datatype::{typed, Committed, Datatype};
use scimpi::{run, AccumulateOp, ClusterSpec, ReduceOp, Source, TagSel, Tuning, WinMemory};
use simclock::SimDuration;

/// The same deterministic seed and workload must produce bit-identical
/// virtual times on repeated runs — the core promise of the simulation.
#[test]
fn runs_are_deterministic() {
    let workload = || {
        run(ClusterSpec::ringlet(4), |r| {
            let data = vec![r.rank() as u8; 100_000];
            let mut buf = vec![0u8; 100_000];
            let dst = (r.rank() + 1) % r.size();
            let src = (r.rank() + r.size() - 1) % r.size();
            r.sendrecv(
                dst,
                1,
                scimpi::SendData::Bytes(&data),
                Source::Rank(src),
                TagSel::Value(1),
                scimpi::RecvBuf::Bytes(&mut buf),
            )
            .unwrap();
            r.barrier();
            r.now()
        })
    };
    let a = workload();
    let b = workload();
    assert_eq!(a, b, "virtual times diverged between identical runs");
}

/// Mixed two-sided and one-sided traffic in one program, with full data
/// verification.
#[test]
fn mixed_two_sided_and_one_sided() {
    run(ClusterSpec::ringlet(4), |r| {
        let me = r.rank();
        let n = r.size();
        // Phase 1: ring pass of a token, two-sided.
        let mut token = vec![0u8; 16];
        if me == 0 {
            token = b"token-round-one!".to_vec();
            r.send(1, 5, &token).unwrap();
            r.recv(Source::Rank(n - 1), TagSel::Value(5), &mut token)
                .unwrap();
        } else {
            r.recv(Source::Rank(me - 1), TagSel::Value(5), &mut token)
                .unwrap();
            r.send((me + 1) % n, 5, &token).unwrap();
        }
        assert_eq!(&token, b"token-round-one!");

        // Phase 2: every rank publishes a value in its window; everyone
        // reads everyone (one-sided all-gather).
        let mem = r.alloc_mem(8).unwrap();
        let mut win = r.win_create(WinMemory::Alloc(mem)).unwrap();
        win.write_local(r, 0, &typed::to_bytes(&[me as f64 * 1.5]));
        win.fence(r).unwrap();
        let mut sum = 0.0;
        for t in 0..n {
            let mut buf = [0u8; 8];
            win.get(r, t, 0, &mut buf).unwrap();
            sum += f64::from_le_bytes(buf);
        }
        win.fence(r).unwrap();
        assert_eq!(sum, 1.5 * (0..n).sum::<usize>() as f64);

        // Phase 3: collective check.
        let mut total = [sum];
        r.allreduce(&mut total, ReduceOp::Sum).unwrap();
        assert_eq!(total[0], sum * n as f64);
    });
}

/// Non-contiguous one-sided put through the full stack with a receiver
/// datatype check.
#[test]
fn typed_rma_roundtrip_through_stack() {
    run(ClusterSpec::ringlet(2), |r| {
        // Vector-of-struct type, the paper's Figure 3 example.
        let chars = Datatype::contiguous(3, &Datatype::byte());
        let s = Datatype::structure(&[(1, 0, Datatype::int()), (1, 4, chars)]);
        let v = Datatype::hvector(8, 1, 16, &s);
        let c = Committed::commit(&v);
        let mem = r.alloc_mem(c.extent()).unwrap();
        let mut win = r.win_create(WinMemory::Alloc(mem)).unwrap();
        win.fence(r).unwrap();
        if r.rank() == 0 {
            let src: Vec<u8> = (0..c.extent()).map(|i| (i * 3) as u8).collect();
            win.put_typed(r, 1, 0, &c, 1, &src, 0).unwrap();
        }
        win.fence(r).unwrap();
        if r.rank() == 1 {
            let mut got = vec![0u8; c.extent()];
            win.read_local(r, 0, &mut got);
            // The 7 data bytes of every 16-byte element arrived; the
            // 9 gap bytes stayed zero (extent 7*16+7 = 119: the final
            // element has no trailing gap).
            assert_eq!(c.extent(), 119);
            for e in 0..8 {
                let base = e * 16;
                for i in 0..7 {
                    assert_eq!(got[base + i], ((base + i) * 3) as u8, "data byte");
                }
                if e < 7 {
                    for i in 7..16 {
                        assert_eq!(got[base + i], 0, "gap byte");
                    }
                }
            }
        }
        win.fence(r).unwrap();
    });
}

/// The engines must agree end-to-end: same messages, same received bytes,
/// different virtual cost.
#[test]
fn engines_agree_on_data_disagree_on_time() {
    let payload_for = |tuning: Tuning| {
        let dt = Datatype::vector(1024, 4, 8, &Datatype::double()); // 32 KiB
        let c = Committed::commit(&dt);
        run(ClusterSpec::ringlet(2).tuning(tuning), move |r| {
            if r.rank() == 0 {
                let src: Vec<u8> = (0..c.extent()).map(|i| (i ^ 0xA5) as u8).collect();
                r.send_typed(1, 0, &c, 1, &src, 0).unwrap();
                (Vec::new(), r.now())
            } else {
                let mut buf = vec![0u8; c.extent()];
                r.recv_typed(Source::Rank(0), TagSel::Value(0), &c, 1, &mut buf, 0)
                    .unwrap();
                (buf, r.now())
            }
        })
    };
    let generic = payload_for(Tuning::default().generic_only());
    let ff = payload_for(Tuning::default().full_ff_comparison());
    assert_eq!(
        generic[1].0, ff[1].0,
        "received bytes differ between engines"
    );
    assert_ne!(generic[1].1, ff[1].1, "virtual cost should differ");
}

/// Many ranks per node: intra-node pairs communicate via shared memory at
/// lower cost than inter-node pairs, within one run.
#[test]
fn intra_node_cheaper_within_one_run() {
    let mut spec = ClusterSpec::ringlet(2);
    spec.procs_per_node = 2; // ranks 0,1 on node 0; ranks 2,3 on node 1
    let out = run(spec, |r| {
        let payload = vec![1u8; 64 * 1024];
        let mut buf = vec![0u8; 64 * 1024];
        match r.rank() {
            // Pair A: 0 <-> 1 (same node)
            0 => {
                r.send(1, 0, &payload).unwrap();
                r.barrier();
                SimDuration::ZERO
            }
            1 => {
                let t0 = r.now();
                r.recv(Source::Rank(0), TagSel::Value(0), &mut buf).unwrap();
                let e = r.now() - t0;
                r.barrier();
                e
            }
            // Pair B: 2 <-> 3... actually 2 sends to 3 across? They share
            // node 1, so use 0->2 for inter-node in a second phase below.
            2 => {
                r.send(3, 0, &payload).unwrap();
                r.barrier();
                SimDuration::ZERO
            }
            _ => {
                let t0 = r.now();
                r.recv(Source::Rank(2), TagSel::Value(0), &mut buf).unwrap();
                let e = r.now() - t0;
                r.barrier();
                e
            }
        }
    });
    // Both receivers were intra-node here; verify parity.
    assert!(out[1] > SimDuration::ZERO);
    assert!(out[3] > SimDuration::ZERO);

    // Now inter-node: 0 -> 2.
    let mut spec = ClusterSpec::ringlet(2);
    spec.procs_per_node = 2;
    let inter = run(spec, |r| {
        let payload = vec![1u8; 64 * 1024];
        let mut buf = vec![0u8; 64 * 1024];
        match r.rank() {
            0 => {
                r.send(2, 0, &payload).unwrap();
                SimDuration::ZERO
            }
            2 => {
                let t0 = r.now();
                r.recv(Source::Rank(0), TagSel::Value(0), &mut buf).unwrap();
                r.now() - t0
            }
            _ => SimDuration::ZERO,
        }
    });
    assert!(
        inter[2] > out[1],
        "inter-node {:?} should cost more than intra-node {:?}",
        inter[2],
        out[1]
    );
}

/// Passive-target accumulate from several origins with locking sums
/// correctly regardless of interleaving.
#[test]
fn concurrent_locked_accumulates() {
    let out = run(ClusterSpec::ringlet(4), |r| {
        let mem = r.alloc_mem(8).unwrap();
        let mut win = r.win_create(WinMemory::Alloc(mem)).unwrap();
        win.write_local(r, 0, &0i64.to_le_bytes());
        win.fence(r).unwrap();
        // Everyone (including rank 0) adds into rank 0's counter, many
        // times, under the window lock.
        for _ in 0..50 {
            win.locked(r, 0, |w, r| {
                w.accumulate(r, 0, 0, AccumulateOp::SumI64, &1i64.to_le_bytes())
                    .unwrap();
            })
            .unwrap();
        }
        win.fence(r).unwrap();
        let mut buf = [0u8; 8];
        win.read_local(r, 0, &mut buf);
        i64::from_le_bytes(buf)
    });
    assert_eq!(out[0], 200, "lost updates under lock");
}
