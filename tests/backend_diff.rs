//! Differential backend suite: every scenario runs twice — once on the
//! reference thread-per-rank backend, once on the deterministic
//! event-driven scheduler ([`scimpi::Backend::Event`]) — and the two
//! runs must agree *bit for bit*: delivered payloads, per-rank virtual
//! times, the full observability counter table, and the profile report
//! JSON. One representative scenario per test family rides here: eager
//! and rendezvous p2p, sendrecv, collectives, one-sided communication,
//! nonblocking overlap, rank death plus shrink, end-to-end integrity
//! retransmission, and the overload policies. A seed-sweep property
//! test cross-checks randomized workloads; CI sweeps `BACKEND_DIFF_SEED`
//! over several values. See `docs/SCHEDULER.md` for the execution model.

use mpi_datatype::{Committed, Datatype};
use sci_fabric::FaultConfig;
use scimpi::{
    revoke, run, shrink, AccumulateOp, Backend, ClusterSpec, ErrorMode, IntegrityMode,
    OverloadPolicy, Rank, ReduceOp, Source, TagSel, Tuning, WinMemory,
};
use simclock::{SimDuration, SimTime};
use std::sync::Mutex;

/// The obs recorder (and its enable switch, which `run` flips per spec)
/// is process-global: every test in this binary serialises on this mutex.
static OBS_SERIAL: Mutex<()> = Mutex::new(());

/// Everything observable from one run: per-rank scenario output bytes,
/// per-rank finish times, the counter table, and the profile JSON.
#[derive(Debug, PartialEq)]
struct Artifacts {
    per_rank: Vec<(Vec<u8>, SimTime)>,
    counters: Vec<(&'static str, u64)>,
    profile: String,
}

/// Run `f` on `spec`'s backend with observability enabled and capture
/// the comparable artifacts.
fn capture<F>(spec: ClusterSpec, f: F) -> Artifacts
where
    F: Fn(&mut Rank) -> Vec<u8> + Send + Sync,
{
    // The layout cache is process-global and would otherwise hand the
    // second run free hits the first run paid misses for.
    mpi_datatype::layout_cache::clear();
    let spec = spec.obs(obs::ObsConfig::enabled());
    let per_rank = run(spec, |r| {
        let bytes = f(r);
        (bytes, r.now())
    });
    Artifacts {
        per_rank,
        counters: obs::counters_snapshot(),
        profile: obs::report::last_profile()
            .map(|p| obs::report::profile_json(&p))
            .unwrap_or_default(),
    }
}

/// The heart of the suite: run the scenario on both backends and demand
/// byte-identical artifacts, with a targeted message per artifact class
/// so a divergence names what broke.
fn diff<F>(name: &str, spec: ClusterSpec, f: F)
where
    F: Fn(&mut Rank) -> Vec<u8> + Send + Sync,
{
    let _g = OBS_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let thread = capture(spec.clone().backend(Backend::Thread), &f);
    let event = capture(spec.backend(Backend::Event), &f);
    for (rank, (t, e)) in thread.per_rank.iter().zip(&event.per_rank).enumerate() {
        assert_eq!(
            t.0, e.0,
            "[{name}] rank {rank}: payload bytes diverged between backends"
        );
        assert_eq!(
            t.1, e.1,
            "[{name}] rank {rank}: virtual finish time diverged between backends"
        );
    }
    for ((n, t), (_, e)) in thread.counters.iter().zip(&event.counters) {
        assert_eq!(
            t, e,
            "[{name}] counter `{n}` diverged: thread={t} event={e}"
        );
    }
    assert_eq!(
        thread.profile, event.profile,
        "[{name}] profile JSON diverged between backends"
    );
}

// ---------------------------------------------------------------------
// Representative scenario per test family.
// ---------------------------------------------------------------------

/// p2p family, eager protocol: a ring pass of 4 KiB messages (below the
/// eager threshold) with full payload capture.
#[test]
fn diff_p2p_eager_ring() {
    diff("p2p_eager_ring", ClusterSpec::ringlet(4), |r| {
        let me = r.rank();
        let n = r.size();
        let payload: Vec<u8> = (0..4096).map(|i| (me * 31 + i * 7) as u8).collect();
        let mut buf = vec![0u8; 4096];
        r.sendrecv(
            (me + 1) % n,
            1,
            scimpi::SendData::Bytes(&payload),
            Source::Rank((me + n - 1) % n),
            TagSel::Value(1),
            scimpi::RecvBuf::Bytes(&mut buf),
        )
        .unwrap();
        r.barrier();
        buf
    });
}

/// p2p family, rendezvous protocol: a 600 KB transfer (ring-slot
/// pipelined) between a pair, plus a reverse small message.
#[test]
fn diff_p2p_rendezvous_pair() {
    diff("p2p_rendezvous", ClusterSpec::ringlet(2), |r| {
        if r.rank() == 0 {
            let data: Vec<u8> = (0..600_000).map(|i| (i * 13) as u8).collect();
            r.send(1, 7, &data).unwrap();
            let mut ack = vec![0u8; 32];
            r.recv(Source::Rank(1), TagSel::Value(8), &mut ack).unwrap();
            ack
        } else {
            let mut buf = vec![0u8; 600_000];
            r.recv(Source::Rank(0), TagSel::Value(7), &mut buf).unwrap();
            r.send(0, 8, &buf[..32]).unwrap();
            buf
        }
    });
}

/// Collective family: bcast, allreduce, alltoall, and a barrier, all
/// folded into one deterministic digest.
#[test]
fn diff_collectives() {
    diff("collectives", ClusterSpec::ringlet(4), |r| {
        let me = r.rank();
        let n = r.size();
        let mut root_msg = vec![0u8; 64];
        if me == 0 {
            root_msg = (0..64).map(|i| (i * 3) as u8).collect();
        }
        r.bcast(0, &mut root_msg).unwrap();
        let mut summed = [me as f64, 1.0, me as f64 * 0.5];
        r.allreduce(&mut summed, ReduceOp::Sum).unwrap();
        let blocks: Vec<Vec<u8>> = (0..n).map(|dst| vec![(me * 16 + dst) as u8; 128]).collect();
        let gathered = r.alltoall(&blocks).unwrap();
        r.barrier();
        let mut out = root_msg;
        out.extend(summed.iter().flat_map(|v| v.to_le_bytes()));
        out.extend(gathered.into_iter().flatten());
        out
    });
}

/// One-sided family: fence-synchronised typed put, get, and locked
/// accumulates from a single origin (order-deterministic).
#[test]
fn diff_one_sided_fence() {
    diff("one_sided", ClusterSpec::ringlet(3), |r| {
        let me = r.rank();
        let dt = Datatype::vector(16, 4, 8, &Datatype::double());
        let c = Committed::commit(&dt);
        let mem = r.alloc_mem(c.extent().max(512)).unwrap();
        let mut win = r.win_create(WinMemory::Alloc(mem)).unwrap();
        win.write_local(r, 0, &vec![0u8; 512]);
        win.fence(r).unwrap();
        if me == 0 {
            let src: Vec<u8> = (0..c.extent()).map(|i| (i ^ 0x5C) as u8).collect();
            win.put_typed(r, 1, 0, &c, 1, &src, 0).unwrap();
            win.accumulate(r, 2, 0, AccumulateOp::SumI64, &5i64.to_le_bytes())
                .unwrap();
            win.accumulate(r, 2, 0, AccumulateOp::SumI64, &7i64.to_le_bytes())
                .unwrap();
        }
        win.fence(r).unwrap();
        let mut got = vec![0u8; 256];
        win.get(r, 1, 0, &mut got).unwrap();
        win.fence(r).unwrap();
        let mut local = vec![0u8; 64];
        win.read_local(r, 0, &mut local);
        got.extend(local);
        got
    });
}

/// Saturated-segment arbitration: two origins keep direct-path streams
/// open across a shared ring segment into the same target. Window
/// streams are created lazily on first use and then stay open, so a
/// barrier relay pins the *arrival order* — the arbitration order
/// bandwidth shares resolve in — identically on both backends (a real
/// happens-before edge on the thread backend, dispatch order on the
/// event backend). The contended puts that follow then see a constant
/// competitor count, which is exactly the scheduler-owned arbitration
/// policy `docs/ASYNC.md` documents: contention outcomes are a function
/// of stream lifetime, not host-scheduler timing.
#[test]
fn diff_saturated_segment_arbitration() {
    const BLOCK: usize = 96 * 1024; // saturates the shared segment
    diff("arbitration", ClusterSpec::ringlet(3), |r| {
        let me = r.rank();
        let mem = r.alloc_mem(1 << 18).unwrap();
        let mut win = r.win_create(WinMemory::Alloc(mem)).unwrap();
        win.fence(r).unwrap();
        // Phase A: open the streams one origin at a time. On the
        // unidirectional ringlet both routes (1->2->0 and 2->0) cross
        // the segment into node 0.
        if me == 1 {
            win.put(r, 0, 0, &[0x11; 64]).unwrap();
        }
        r.barrier();
        if me == 2 {
            win.put(r, 0, 64, &[0x22; 64]).unwrap();
        }
        r.barrier();
        let topo = r.fabric().topology();
        let shared = *topo
            .route(sci_fabric::NodeId(2), sci_fabric::NodeId(0))
            .links
            .last()
            .expect("remote route crosses at least one segment");
        let open = r.fabric().links().open_streams(shared);
        assert_eq!(open.len(), 2, "both direct-path streams stay open");
        assert!(open[0] < open[1], "arrival stamps preserve open order");
        // Phase B: contend. Both origins push a large put through the
        // saturated segment; the competitor count is pinned at two for
        // the whole phase, so every share each transfer samples is
        // deterministic on either backend.
        if me != 0 {
            let block = vec![me as u8; BLOCK];
            win.put(r, 0, 4096 + (me - 1) * BLOCK, &block).unwrap();
        }
        win.fence(r).unwrap();
        let mut out: Vec<u8> = open.iter().flat_map(|s| s.to_le_bytes()).collect();
        if me == 0 {
            let mut snap = vec![0u8; 4096 + 2 * BLOCK];
            win.read_local(r, 0, &mut snap);
            out.extend(snap);
        }
        out
    });
}

/// Nonblocking family: isend/irecv with compute overlap, waitany on a
/// mixed eager/rendezvous pair, then waitall.
#[test]
fn diff_nonblocking_overlap() {
    diff("nonblocking", ClusterSpec::ringlet(3), |r| {
        if r.rank() == 0 {
            let mut reqs = vec![
                r.irecv(Source::Rank(1), TagSel::Value(1), 150_000).unwrap(),
                r.irecv(Source::Rank(2), TagSel::Value(2), 64).unwrap(),
            ];
            r.compute(SimDuration::from_us(300));
            let (first, res) = r.waitany(&mut reqs);
            let a = res.unwrap();
            let (_second, res) = r.waitany(&mut reqs);
            let b = res.unwrap();
            let mut out = vec![first as u8];
            out.extend(&a.data[..32.min(a.data.len())]);
            out.extend(&b.data[..32.min(b.data.len())]);
            out
        } else if r.rank() == 1 {
            let bulk: Vec<u8> = (0..150_000).map(|i| (i * 11) as u8).collect();
            let mut req = r.isend(0, 1, &bulk).unwrap();
            r.compute(SimDuration::from_us(100));
            r.wait(&mut req).unwrap();
            Vec::new()
        } else {
            r.send(0, 2, &[9u8; 64]).unwrap();
            Vec::new()
        }
    });
}

/// Chaos family: an administrative mid-run rank death with a single
/// detector — rank 3 runs into the corpse, charges the deterministic
/// timeout/backoff schedule, and revokes; ranks 0 and 1 sit blocked on
/// live peers and escape through the gossip front. One detector means
/// one revocation front, so the escape times are a pure function of the
/// spec on both backends. (With several concurrent detectors the
/// reference thread backend races on which interim front a blocked rank
/// observes — see docs/SCHEDULER.md — so the differential scenario pins
/// the single-front shape.)
#[test]
fn diff_chaos_death_and_shrink() {
    let spec = ClusterSpec::ringlet(4).errors(ErrorMode::ErrorsReturn);
    diff("chaos_death", spec, |r| {
        let me = r.world_rank();
        r.barrier();
        if me == 2 {
            r.fabric().faults().kill_node(2);
            return b"dead".to_vec();
        }
        let mut buf = [0u8; 64];
        let err = match me {
            // The only rank talking to the corpse: detects the death.
            3 => r
                .recv(Source::Rank(2), TagSel::Value(9), &mut buf)
                .expect_err("recv from a dead rank must fail"),
            // Blocked on live-but-stuck peers: escape via revocation.
            0 => r
                .recv(Source::Rank(3), TagSel::Value(9), &mut buf)
                .expect_err("revocation must unblock the wait"),
            _ => r
                .recv(Source::Rank(0), TagSel::Value(9), &mut buf)
                .expect_err("revocation must unblock the wait"),
        };
        let _ = format!("{err:?}");
        if me == 3 {
            revoke(r);
        }
        let report = shrink(r).expect("survivors agree in one epoch");
        let mut sum = [me as f64 + 1.0];
        r.allreduce(&mut sum, ReduceOp::Sum)
            .expect("post-shrink collective");
        let mut out = sum.iter().flat_map(|v| v.to_le_bytes()).collect::<Vec<_>>();
        out.push(report.dead.len() as u8);
        out.push(r.size() as u8);
        out
    });
}

/// Integrity family: deterministic silent corruption under `EndToEnd`
/// integrity — both protocols retransmit to bit-perfect delivery.
#[test]
fn diff_integrity_retransmit() {
    let tuning = Tuning {
        integrity_mode: IntegrityMode::EndToEnd,
        max_retransmits: 64,
        ..Tuning::default()
    };
    let mut spec = ClusterSpec::ringlet(2).tuning(tuning);
    spec.faults = FaultConfig::silent(3e-4, 1e-4);
    spec.seed = 20020415;
    diff("integrity", spec, |r| {
        if r.rank() == 0 {
            let eager: Vec<u8> = (0..4096).map(|i| (i * 13) as u8).collect();
            let large: Vec<u8> = (0..300_000).map(|i| (i * 31) as u8).collect();
            r.send(1, 1, &eager).unwrap();
            r.send(1, 2, &large).unwrap();
            Vec::new()
        } else {
            let mut eager = vec![0u8; 4096];
            let mut large = vec![0u8; 300_000];
            r.recv(Source::Rank(0), TagSel::Value(1), &mut eager)
                .unwrap();
            r.recv(Source::Rank(0), TagSel::Value(2), &mut large)
                .unwrap();
            assert!(eager.iter().enumerate().all(|(i, &b)| b == (i * 13) as u8));
            assert!(large.iter().enumerate().all(|(i, &b)| b == (i * 31) as u8));
            eager.extend(large.into_iter().step_by(1009));
            eager
        }
    });
}

/// Overload family, `Stall` and `Degrade`: a governed eager flood with
/// a paced receiver delivers everything — `Stall` by parking the sender
/// on returned credits (the backpressure park/wake path), `Degrade` by
/// rerouting overflow to the uncredited path.
#[test]
fn diff_overload_stall_and_degrade() {
    for policy in [OverloadPolicy::Stall, OverloadPolicy::Degrade] {
        let tuning = Tuning {
            eager_credits_bytes: 16 * 1024,
            eager_credit_slots: 256,
            overload_policy: policy,
            ..Tuning::default()
        };
        let spec = ClusterSpec::ringlet(2).tuning(tuning);
        diff(&format!("overload_{policy:?}"), spec, |r| {
            const MSG: usize = 4096;
            const COUNT: usize = 32;
            let pattern =
                |i: usize| -> Vec<u8> { (0..MSG).map(|j| (i * 131 + j * 7) as u8).collect() };
            if r.rank() == 0 {
                for i in 0..COUNT {
                    r.send(1, 9, &pattern(i)).expect("flood send");
                }
                r.barrier();
                Vec::new()
            } else {
                let mut digest = Vec::new();
                for i in 0..COUNT {
                    r.compute(SimDuration::from_us(200));
                    let mut buf = vec![0u8; MSG];
                    r.recv(Source::Rank(0), TagSel::Value(9), &mut buf)
                        .expect("flood recv");
                    assert_eq!(buf, pattern(i), "in order and bit-perfect");
                    digest.push(buf[MSG / 2]);
                }
                r.barrier();
                digest
            }
        });
    }
}

/// Overload family, `Shed`: a burst past the slot budget drops exactly
/// the overflow; the delivered prefix arrives intact on both backends.
#[test]
fn diff_overload_shed() {
    const SLOTS: usize = 4;
    const TOTAL: usize = 12;
    let tuning = Tuning {
        eager_credit_slots: SLOTS,
        eager_credits_bytes: 64 * 1024,
        overload_policy: OverloadPolicy::Shed,
        ..Tuning::default()
    };
    diff(
        "overload_shed",
        ClusterSpec::ringlet(2).tuning(tuning),
        |r| {
            if r.rank() == 0 {
                for i in 0..TOTAL {
                    r.send(1, 5, &[i as u8; 512]).expect("shed send is local");
                }
                r.barrier();
                Vec::new()
            } else {
                let mut got = Vec::new();
                for _ in 0..SLOTS {
                    let mut buf = [0u8; 512];
                    r.recv(Source::Rank(0), TagSel::Value(5), &mut buf)
                        .expect("delivered prefix");
                    got.push(buf[0]);
                }
                r.barrier();
                got
            }
        },
    );
}

/// Overload family, `Error`: exhausted slots refuse the send with
/// `ResourceExhausted`; the verdict sequence and the delivered prefix
/// must agree across backends.
#[test]
fn diff_overload_error() {
    const SLOTS: usize = 2;
    let tuning = Tuning {
        eager_credit_slots: SLOTS,
        eager_credits_bytes: 64 * 1024,
        overload_policy: OverloadPolicy::Error,
        ..Tuning::default()
    };
    let spec = ClusterSpec::ringlet(2)
        .tuning(tuning)
        .errors(ErrorMode::ErrorsReturn);
    diff("overload_error", spec, |r| {
        if r.rank() == 0 {
            let mut verdicts = Vec::new();
            for i in 0..SLOTS + 2 {
                verdicts.push(match r.send(1, 3, &[i as u8; 64]) {
                    Ok(()) => 1u8,
                    Err(_) => 0u8,
                });
            }
            r.barrier();
            verdicts
        } else {
            let mut got = Vec::new();
            for _ in 0..SLOTS {
                let mut buf = [0u8; 64];
                r.recv(Source::Rank(0), TagSel::Value(3), &mut buf)
                    .expect("delivered prefix");
                got.push(buf[0]);
            }
            r.barrier();
            got
        }
    });
}

// ---------------------------------------------------------------------
// Seed-sweep property test: randomized workloads cross-checked between
// backends.
// ---------------------------------------------------------------------

/// Tiny deterministic PRNG (xorshift64*), so the sweep needs no
/// external crates and a failing case reproduces from its seed alone.
struct Prng(u64);

impl Prng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One randomized workload drawn from `seed`: a ring of 2..=8 ranks
/// (CI keeps the per-case cost low; sizes up to 32 are exercised by the
/// dedicated scenarios above and the megascale bench), mixed eager and
/// rendezvous sendrecv with per-seed message sizes, a typed-datatype
/// transfer with a randomized vector shape, an optional collective, and
/// an optional governed-flood segment.
#[derive(Debug, Clone)]
struct Workload {
    seed: u64,
    ranks: usize,
    msg_len: usize,
    bulk_len: usize,
    vec_count: usize,
    vec_block: usize,
    vec_stride: usize,
    collective: bool,
    governed: bool,
}

impl Workload {
    fn draw(seed: u64) -> Workload {
        let mut rng = Prng(seed);
        Workload {
            seed,
            ranks: 2 + rng.below(7) as usize,
            msg_len: 64 + rng.below(8000) as usize,
            bulk_len: 20_000 + rng.below(400_000) as usize,
            vec_count: 1 + rng.below(64) as usize,
            vec_block: 1 + rng.below(8) as usize,
            vec_stride: 0,
            collective: rng.below(2) == 1,
            governed: rng.below(2) == 1,
        }
        .fix()
    }

    fn fix(mut self) -> Workload {
        // Stride must cover the block.
        let mut rng = Prng(self.seed ^ 0x9E3779B97F4A7C15);
        self.vec_stride = self.vec_block + rng.below(8) as usize;
        self
    }

    fn spec(&self) -> ClusterSpec {
        let mut spec = ClusterSpec::ringlet(self.ranks).errors(ErrorMode::ErrorsReturn);
        spec.seed = self.seed;
        if self.governed {
            spec = spec.tuning(Tuning {
                eager_credits_bytes: 16 * 1024,
                eager_credit_slots: 256,
                overload_policy: OverloadPolicy::Stall,
                ..Tuning::default()
            });
        }
        spec
    }

    fn body(&self, r: &mut Rank) -> Vec<u8> {
        let me = r.rank();
        let n = r.size();
        let mut out = Vec::new();
        // Phase 1: eager ring pass.
        let msg: Vec<u8> = (0..self.msg_len)
            .map(|i| (me * 37 + i * 11) as u8)
            .collect();
        let mut buf = vec![0u8; self.msg_len];
        r.sendrecv(
            (me + 1) % n,
            1,
            scimpi::SendData::Bytes(&msg),
            Source::Rank((me + n - 1) % n),
            TagSel::Value(1),
            scimpi::RecvBuf::Bytes(&mut buf),
        )
        .unwrap();
        out.extend(buf.iter().step_by(97));
        // Phase 2: rendezvous bulk between neighbours 0 -> n-1.
        if me == 0 {
            let bulk: Vec<u8> = (0..self.bulk_len).map(|i| (i * 29) as u8).collect();
            r.send(n - 1, 2, &bulk).unwrap();
        } else if me == n - 1 {
            let mut bulk = vec![0u8; self.bulk_len];
            r.recv(Source::Rank(0), TagSel::Value(2), &mut bulk)
                .unwrap();
            out.extend(bulk.iter().step_by(1013));
        }
        // Phase 3: typed transfer with the drawn vector shape.
        let dt = Datatype::vector(
            self.vec_count,
            self.vec_block,
            self.vec_stride as isize,
            &Datatype::double(),
        );
        let c = Committed::commit(&dt);
        if me == 0 {
            let src: Vec<u8> = (0..c.extent()).map(|i| (i ^ 0xA5) as u8).collect();
            r.send_typed(1 % n, 3, &c, 1, &src, 0).unwrap();
            if n == 1 {
                unreachable!("ranks >= 2 by construction");
            }
        } else if me == 1 {
            let mut t = vec![0u8; c.extent()];
            r.recv_typed(Source::Rank(0), TagSel::Value(3), &c, 1, &mut t, 0)
                .unwrap();
            out.extend(t.iter().step_by(53));
        }
        // Phase 4: optional collective.
        if self.collective {
            let mut s = [me as f64 + 0.5, self.seed as u32 as f64];
            r.allreduce(&mut s, ReduceOp::Max).unwrap();
            out.extend(s.iter().flat_map(|v| v.to_le_bytes()));
        }
        // Phase 5: optional governed flood 0 -> 1 (stall policy).
        if self.governed {
            if me == 0 {
                for i in 0..16 {
                    r.send(1, 4, &vec![(i * 3) as u8; 4096]).unwrap();
                }
            } else if me == 1 {
                for _ in 0..16 {
                    r.compute(SimDuration::from_us(150));
                    let mut b = vec![0u8; 4096];
                    r.recv(Source::Rank(0), TagSel::Value(4), &mut b).unwrap();
                    out.push(b[0]);
                }
            }
        }
        r.barrier();
        out
    }
}

/// Cross-check one drawn workload between the backends, printing a
/// minimized reproduction recipe on mismatch.
fn check_workload(seed: u64) {
    let w = Workload::draw(seed);
    let run_one = |backend: Backend| {
        let w = w.clone();
        capture(w.spec().backend(backend), move |r| w.body(r))
    };
    let thread = run_one(Backend::Thread);
    let event = run_one(Backend::Event);
    if thread != event {
        eprintln!("=== backend divergence: minimized repro ===");
        eprintln!("  BACKEND_DIFF_SEED={seed} cargo test --test backend_diff seed_sweep");
        eprintln!("  workload: {w:?}");
        for (rank, (t, e)) in thread.per_rank.iter().zip(&event.per_rank).enumerate() {
            if t != e {
                eprintln!(
                    "  rank {rank}: thread=({} bytes, {:?}) event=({} bytes, {:?})",
                    t.0.len(),
                    t.1,
                    e.0.len(),
                    e.1
                );
            }
        }
        for ((n, t), (_, e)) in thread.counters.iter().zip(&event.counters) {
            if t != e {
                eprintln!("  counter {n}: thread={t} event={e}");
            }
        }
        if thread.profile != event.profile {
            eprintln!("  profile JSON diverged");
        }
        panic!("seed {seed}: backends diverged (see repro above)");
    }
}

/// The sweep: `BACKEND_DIFF_SEED` pins a single seed (the CI matrix
/// sweeps several); unset, a fixed small set runs.
#[test]
fn seed_sweep_randomized_workloads() {
    let _g = OBS_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    if let Ok(seed) = std::env::var("BACKEND_DIFF_SEED") {
        let seed: u64 = seed.parse().expect("BACKEND_DIFF_SEED must be an integer");
        for s in [seed, seed.wrapping_mul(3).wrapping_add(1)] {
            check_workload(s);
        }
    } else {
        for s in [1, 20020415, 0xDEAD_BEEF] {
            check_workload(s);
        }
    }
}

/// Same seed, event backend, twice: the scheduler itself must be a
/// deterministic function of the spec (heap tie-break: time, then rank,
/// then task sequence), not merely agree with the thread backend.
#[test]
fn event_backend_self_deterministic() {
    let _g = OBS_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let w = Workload::draw(7);
    let run_one = || {
        let w = w.clone();
        capture(w.spec().backend(Backend::Event), move |r| w.body(r))
    };
    assert_eq!(run_one(), run_one(), "event backend diverged from itself");
}
