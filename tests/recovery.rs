//! Acceptance tests for the recovery subsystem: revoke → shrink →
//! restore survives rank death with bit-identical survivor results, the
//! fault-tolerant agreement tolerates a second death *during* agreement,
//! and — just as load-bearing — a fault-free run with recovery enabled
//! charges zero recovery virtual time beyond the checkpoints themselves.
//!
//! CI sweeps `RECOVERY_SEED` × `RECOVERY_DEATHS` ∈ {0,1,2} through
//! `seeded_death_sweep_recovers_within_one_epoch`, drawing victims from
//! the pure `sci_fabric::death_schedule` (which never kills node 0, the
//! shrink leader).
//!
//! All state arithmetic stays in the integers-and-halves f64 domain
//! (exactly representable, order-independent), so "bit-identical" is a
//! meaningful cross-topology claim even through tree-order reductions.

use sci_fabric::death_schedule;
use scimpi::{
    revoke, run, shrink, shrink_with_fault, Checkpointer, ClusterSpec, ErrorMode, Rank, ReduceOp,
    ScimpiError,
};
use simclock::SimDuration;
use std::sync::Mutex;

/// The obs recorder (and its enable switch, which `run` flips per spec)
/// is process-global: tests that read counters serialise on this mutex.
static OBS_SERIAL: Mutex<()> = Mutex::new(());

/// Words of per-rank application state (2 KiB images: eager-sized, so
/// the failure scenarios exercise the recv-side death detection too).
const WORDS: usize = 256;

fn init_state(world_rank: usize) -> Vec<f64> {
    (0..WORDS)
        .map(|i| ((world_rank + 1) * 1000 + i) as f64)
        .collect()
}

/// `Σ_w init_state(w)[i]` over a fault-free world of `n` ranks — the
/// closed form of what one allreduce round sums, exact in f64.
fn world_sum(n: usize, i: usize) -> f64 {
    (1000 * n * (n + 1) / 2 + n * i) as f64
}

fn to_bytes(v: &[f64]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

fn from_bytes(b: &[u8]) -> Vec<f64> {
    b.chunks(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte words")))
        .collect()
}

/// One work round: allreduce the state and fold half the global sum back
/// into every element (stays exact: integers and halves only).
fn advance(r: &mut Rank, state: &mut [f64]) -> Result<(), ScimpiError> {
    let mut sum = state.to_vec();
    r.allreduce(&mut sum, ReduceOp::Sum)?;
    for (s, t) in state.iter_mut().zip(sum) {
        *s += 0.5 * t;
    }
    Ok(())
}

/// Kill one rank mid-run: the survivors revoke, agree in one epoch,
/// shrink to a dense re-ranking, replay the buddy checkpoint, and finish
/// with results bit-identical to a fault-free run of the shrunk size
/// seeded from the same checkpoint state.
#[test]
fn kill_one_rank_shrink_restore_matches_fault_free_run() {
    const SURVIVORS: [usize; 3] = [0, 1, 3];
    let faulty = run(
        ClusterSpec::ringlet(4).errors(ErrorMode::ErrorsReturn),
        |r| {
            let me_w = r.world_rank();
            let mut state = init_state(me_w);
            let mut ckpt = Checkpointer::new(r, WORDS * 8).unwrap();
            // Round 1 on the full world, then checkpoint it.
            advance(r, &mut state).unwrap();
            ckpt.checkpoint(r, &to_bytes(&state)).unwrap();
            r.barrier();
            if me_w == 2 {
                r.fabric().faults().kill_node(2);
                return ("dead".to_string(), Vec::new());
            }
            // Round 2 runs into the corpse; every survivor must error
            // out (directly or through the revocation) instead of
            // hanging.
            let mut wasted = state.clone();
            let err = advance(r, &mut wasted).expect_err("the collective must fail");
            let err_site = format!("{err:?}");
            revoke(r);
            let report = shrink(r).unwrap();
            assert_eq!(report.epoch, 1, "one agreement epoch suffices");
            assert_eq!(report.dead, vec![2]);
            assert_eq!(report.size, 3);
            assert_eq!(r.epoch(), 1);
            assert_eq!(
                r.rank(),
                SURVIVORS.iter().position(|&w| w == me_w).unwrap(),
                "survivors are re-ranked densely in world order"
            );
            assert_eq!(r.world_rank(), me_w, "the world rank never changes");
            // Replay the checkpoint: bit-identical to the captured state.
            let restored = from_bytes(&ckpt.restore(r).unwrap());
            assert_eq!(restored, state, "restore replays the exact image");
            // The corpse's image survives on its buddy (old logical 3).
            if me_w == 3 {
                let (dead_w, image) = ckpt.adopt(r).expect("rank 3 holds rank 2's replica");
                assert_eq!(dead_w, 2);
                let expect: Vec<f64> = init_state(2)
                    .iter()
                    .enumerate()
                    .map(|(i, v)| v + 0.5 * world_sum(4, i))
                    .collect();
                assert_eq!(from_bytes(&image), expect, "adopted image is round 1's");
            }
            let mut ckpt = ckpt.rebind(r).unwrap();
            // Round 2 again, now on the shrunk world.
            let mut state = restored;
            advance(r, &mut state).unwrap();
            ckpt.checkpoint(r, &to_bytes(&state)).unwrap();
            ckpt.free(r);
            (err_site, to_bytes(&state))
        },
    );
    // Fault-free reference of the shrunk size, seeded with the same
    // post-round-1 (checkpoint) state the survivors restored.
    let reference = run(
        ClusterSpec::ringlet(3).errors(ErrorMode::ErrorsReturn),
        |r| {
            let me_w = SURVIVORS[r.rank()];
            let mut state = init_state(me_w);
            for (i, s) in state.iter_mut().enumerate() {
                *s += 0.5 * world_sum(4, i);
            }
            advance(r, &mut state).unwrap();
            to_bytes(&state)
        },
    );
    for (idx, &w) in SURVIVORS.iter().enumerate() {
        assert_eq!(
            faulty[w].1, reference[idx],
            "survivor world rank {w}: results must be bit-identical to the fault-free run"
        );
    }
    assert_eq!(faulty[2].0, "dead");
    // Rank 1 was blocked on a *live* survivor (the aborted root), so
    // only the revocation can have freed it.
    let rv = format!("{:?}", ScimpiError::Revoked);
    let pd = format!("{:?}", ScimpiError::PeerDead { peer: 2 });
    assert_eq!(
        faulty[1].0, rv,
        "stranded-on-live-peer rank must be Revoked"
    );
    for w in [0usize, 3] {
        assert!(
            faulty[w].0 == pd || faulty[w].0 == rv,
            "rank {w} surfaced an unexpected error site: {}",
            faulty[w].0
        );
    }
    assert!(
        faulty[0].0 == pd || faulty[3].0 == pd,
        "at least one survivor must have detected the death directly"
    );
}

/// Env-swept recovery scenario (CI: `RECOVERY_SEED` × `RECOVERY_DEATHS`
/// ∈ {{0,1,2}}): victims come from the pure `death_schedule`; the first
/// dies before the shrink, the second dies *during* the agreement
/// (`shrink_with_fault` after one sweep) — survivors must still agree in
/// one epoch, restore their checkpoints, and keep computing.
#[test]
fn seeded_death_sweep_recovers_within_one_epoch() {
    let seed: u64 = std::env::var("RECOVERY_SEED")
        .map(|v| v.parse().expect("RECOVERY_SEED must be an integer"))
        .unwrap_or(20020415);
    let deaths: usize = std::env::var("RECOVERY_DEATHS")
        .map(|v| v.parse().expect("RECOVERY_DEATHS must be an integer"))
        .unwrap_or(1);
    let mut spec = ClusterSpec::ringlet(4).errors(ErrorMode::ErrorsReturn);
    spec.seed = seed;
    let events = death_schedule(seed, 4, deaths, SimDuration::from_ms(10));
    let pre_victim = events.first().map(|e| e.node);
    let mid_victim = events.get(1).map(|e| e.node);
    let expected_dead: Vec<usize> = {
        let mut d: Vec<usize> = events.iter().map(|e| e.node).collect();
        d.sort_unstable();
        d
    };
    let survivors = 4 - expected_dead.len();
    let expected_dead2 = expected_dead.clone();
    let out = run(spec, move |r| {
        let me_w = r.world_rank();
        let mut state = init_state(me_w);
        let mut ckpt = Checkpointer::new(r, WORDS * 8).unwrap();
        advance(r, &mut state).unwrap();
        ckpt.checkpoint(r, &to_bytes(&state)).unwrap();
        r.barrier();
        if Some(me_w) == pre_victim {
            r.fabric().faults().kill_node(r.node().0);
            return 0u64;
        }
        if Some(me_w) == mid_victim {
            let err = shrink_with_fault(r, 1).expect_err("this victim dies mid-agreement");
            assert_eq!(err, ScimpiError::PeerDead { peer: me_w });
            return 0;
        }
        let report = shrink(r).unwrap();
        assert_eq!(report.epoch, 1, "one agreement epoch suffices");
        assert_eq!(report.dead, expected_dead2, "agreed dead set");
        assert_eq!(report.size, survivors);
        // Post-shrink life: replay the checkpoint, adopt a dead
        // predecessor's image if this rank holds one, re-pair buddies,
        // and keep computing on the shrunk world.
        let restored = from_bytes(&ckpt.restore(r).unwrap());
        assert_eq!(restored, state, "restore replays the exact image");
        if let Some((dead_w, image)) = ckpt.adopt(r) {
            assert!(expected_dead2.contains(&dead_w));
            assert_eq!(image.len(), WORDS * 8);
        }
        let mut ckpt = ckpt.rebind(r).unwrap();
        let mut state = restored;
        advance(r, &mut state).unwrap();
        ckpt.checkpoint(r, &to_bytes(&state)).unwrap();
        ckpt.free(r);
        r.epoch()
    });
    for (w, epoch) in out.iter().enumerate() {
        if !expected_dead.contains(&w) {
            assert_eq!(*epoch, 1, "survivor {w} must land in epoch 1");
        }
    }
}

/// Fault-free runs with recovery enabled charge zero recovery virtual
/// time: no revocations observed, no restores, attribution shows an
/// exactly-conserved decomposition with an empty `recovery` wait bucket,
/// and the only recovery-side cost is the checkpoints themselves.
#[test]
fn fault_free_recovery_charges_zero_recovery_time() {
    let _g = OBS_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    const ROUNDS: u64 = 3;
    let workload = |r: &mut Rank| {
        let mut state = init_state(r.world_rank());
        let mut ckpt = Checkpointer::new(r, WORDS * 8).unwrap();
        for _ in 0..ROUNDS {
            advance(r, &mut state).unwrap();
            ckpt.checkpoint(r, &to_bytes(&state)).unwrap();
        }
        ckpt.free(r);
        r.barrier();
        r.now()
    };
    let mut spec = ClusterSpec::ringlet(4)
        .errors(ErrorMode::ErrorsReturn)
        .obs(obs::ObsConfig::enabled());
    spec.seed = 20020415;
    let with_obs = run(spec, workload);
    let profile = obs::report::last_profile().expect("profile built at teardown");

    assert_eq!(obs::counter_value(obs::Counter::Revocations), 0);
    assert_eq!(obs::counter_value(obs::Counter::RevokesObserved), 0);
    assert_eq!(obs::counter_value(obs::Counter::RecoveryRestores), 0);
    assert_eq!(
        obs::counter_value(obs::Counter::CheckpointsTaken),
        4 * ROUNDS
    );
    assert_eq!(
        obs::counter_value(obs::Counter::CheckpointBytes),
        4 * ROUNDS * (WORDS as u64) * 8
    );
    for p in &profile.ranks {
        assert_eq!(
            p.wait_ps[obs::WaitKind::Recovery as usize],
            0,
            "rank {}: fault-free run must charge zero recovery wait",
            p.rank
        );
        assert_eq!(
            p.total_busy_ps() + p.total_wait_ps() + p.other_ps,
            p.makespan_ps,
            "rank {}: attribution must conserve exactly",
            p.rank
        );
        assert_eq!(
            p.makespan_ps,
            with_obs[p.rank as usize].as_ps(),
            "rank {}: profiled makespan disagrees with its clock",
            p.rank
        );
    }

    // And the recorder itself must not have perturbed virtual time.
    let mut plain = ClusterSpec::ringlet(4)
        .errors(ErrorMode::ErrorsReturn)
        .obs(obs::ObsConfig::disabled());
    plain.seed = 20020415;
    let without_obs = run(plain, workload);
    assert_eq!(with_obs, without_obs, "attribution perturbed virtual time");
}
