//! End-to-end data-integrity integration tests: silent fault injection
//! (bit flips and dropped stores drawn from deterministic per-pair RNG
//! streams) against the three [`IntegrityMode`]s.
//!
//! - `Off` — faults land; payloads observably corrupt; the
//!   `UndetectedAtOff` counter records what a checksummed stack would
//!   have caught.
//! - `SequenceCheck` — the SISCI `SCIStartSequence`/`SCICheckSequence`
//!   guard detects PIO-path corruption and surfaces `DataCorruption`
//!   through the error-handler machinery; it never repairs.
//! - `EndToEnd` — CRC32-framed protocols with bounded retransmission
//!   deliver bit-identical payloads on every p2p, collective, and
//!   one-sided path.

use sci_fabric::FaultConfig;
use scimpi::{
    run, AccumulateOp, ClusterSpec, ErrorMode, IntegrityMode, ScimpiError, Source, TagSel, Tuning,
    WinMemory,
};
use std::sync::Mutex;

/// The obs recorder (counters and the enable switch `run` flips per spec)
/// is process-global: every test in this binary serialises on this mutex.
static OBS_SERIAL: Mutex<()> = Mutex::new(());

/// CI sweeps `INTEGRITY_SEED` to exercise the fault streams under several
/// RNGs; the assertions themselves are seed-independent.
fn seed() -> u64 {
    std::env::var("INTEGRITY_SEED")
        .map(|s| s.parse().expect("INTEGRITY_SEED must be an integer"))
        .unwrap_or(20020415)
}

/// A ringlet with silent faults at the given rates and a retransmission
/// budget generous enough that `EndToEnd` delivery never exhausts it at
/// the rates used here.
fn lossy_spec(ranks: usize, mode: IntegrityMode, corrupt: f64, drop: f64) -> ClusterSpec {
    let tuning = Tuning {
        integrity_mode: mode,
        max_retransmits: 64,
        ..Tuning::default()
    };
    let mut spec = ClusterSpec::ringlet(ranks).tuning(tuning);
    spec.faults = FaultConfig::silent(corrupt, drop);
    spec.seed = seed();
    spec
}

/// `EndToEnd` delivers bit-identical payloads over a lossy fabric on both
/// p2p protocols: eager (sender-verified delivery) and rendezvous
/// (per-chunk CRC handshake with retransmission).
#[test]
fn end_to_end_delivers_bit_identical_p2p() {
    let _g = OBS_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let spec = lossy_spec(2, IntegrityMode::EndToEnd, 3e-4, 1e-4).obs(obs::ObsConfig::enabled());
    let eager: Vec<u8> = (0..4096).map(|i| (i * 13) as u8).collect();
    let large: Vec<u8> = (0..600_000).map(|i| (i * 31) as u8).collect();
    run(spec, move |r| {
        if r.rank() == 0 {
            r.send(1, 1, &eager).unwrap();
            r.send(1, 2, &large).unwrap();
        } else {
            let mut a = vec![0u8; eager.len()];
            r.recv(Source::Rank(0), TagSel::Value(1), &mut a).unwrap();
            assert_eq!(a, eager, "eager payload must be bit-identical");
            let mut b = vec![0u8; large.len()];
            r.recv(Source::Rank(0), TagSel::Value(2), &mut b).unwrap();
            assert_eq!(b, large, "rendezvous payload must be bit-identical");
        }
    });
    assert!(
        obs::counter_value(obs::Counter::CorruptionsInjected) > 0,
        "the fault streams must actually have injected corruption"
    );
    assert!(
        obs::counter_value(obs::Counter::CorruptionsDetected) > 0,
        "every injected fault on a checked path must be detected"
    );
    assert_eq!(
        obs::counter_value(obs::Counter::UndetectedAtOff),
        0,
        "EndToEnd leaves no path uncovered"
    );
}

/// Collectives ride the p2p layer, so `EndToEnd` covers every hop of the
/// broadcast tree with no collective-specific code.
#[test]
fn end_to_end_collective_delivers() {
    let _g = OBS_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let spec = lossy_spec(4, IntegrityMode::EndToEnd, 3e-4, 1e-4);
    let expect: Vec<u8> = (0..100_000).map(|i| (i * 17) as u8).collect();
    run(spec, move |r| {
        let mut buf = if r.rank() == 0 {
            expect.clone()
        } else {
            vec![0u8; expect.len()]
        };
        r.bcast(0, &mut buf).unwrap();
        assert_eq!(buf, expect, "bcast must be bit-identical on every rank");
    });
}

/// Every one-sided path — direct put (epoch-verified at the fence),
/// direct and remote-put gets, read-modify-write accumulate, and the
/// emulated path of a private window — delivers exactly under faults.
#[test]
fn end_to_end_one_sided_paths_deliver() {
    let _g = OBS_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let spec = lossy_spec(2, IntegrityMode::EndToEnd, 3e-4, 1e-4);
    run(spec, |r| {
        let mem = r.alloc_mem(1 << 16).unwrap();
        let mut win = r.win_create(WinMemory::Alloc(mem)).unwrap();
        win.fence(r).unwrap();
        let pat: Vec<u8> = (0..32_768).map(|i| (i * 7) as u8).collect();
        if r.rank() == 0 {
            win.put(r, 1, 0, &pat).unwrap();
        }
        win.fence(r).unwrap();
        if r.rank() == 1 {
            let mut got = vec![0u8; pat.len()];
            win.read_local(r, 0, &mut got);
            assert_eq!(got, pat, "direct put must survive epoch verification");
        }
        win.fence(r).unwrap();
        // Gets: small rides the direct read, large the remote-put
        // conversion; both returns are integrity-checked.
        if r.rank() == 0 {
            let mut small = [0u8; 64];
            win.get(r, 1, 0, &mut small).unwrap();
            assert_eq!(&small[..], &pat[..64], "direct get must be exact");
            let mut big = vec![0u8; 4096];
            win.get(r, 1, 0, &mut big).unwrap();
            assert_eq!(big, pat[..4096], "remote-put get must be exact");
        }
        win.fence(r).unwrap();
        // Ordered accumulates within one epoch: the ledger keeps only the
        // final image per region, and the combine stays exact.
        let ones: Vec<u8> = (0..8i64).flat_map(|i| (i + 1).to_le_bytes()).collect();
        if r.rank() == 0 {
            win.accumulate(r, 1, 0, AccumulateOp::Replace, &[0u8; 64])
                .unwrap();
            win.accumulate(r, 1, 0, AccumulateOp::SumI64, &ones)
                .unwrap();
            win.accumulate(r, 1, 0, AccumulateOp::SumI64, &ones)
                .unwrap();
        }
        win.fence(r).unwrap();
        if r.rank() == 1 {
            let mut got = [0u8; 64];
            win.read_local(r, 0, &mut got);
            for i in 0..8usize {
                let v = i64::from_le_bytes(got[i * 8..i * 8 + 8].try_into().unwrap());
                assert_eq!(v, 2 * (i as i64 + 1), "accumulate must be exact");
            }
        }
        win.fence(r).unwrap();
        // Private window: the one-sided emulation packet path.
        let mut priv_win = r.win_create(WinMemory::Private(8192)).unwrap();
        priv_win.fence(r).unwrap();
        if r.rank() == 0 {
            priv_win.put(r, 1, 16, &pat[..4096]).unwrap();
        }
        priv_win.fence(r).unwrap();
        if r.rank() == 1 {
            let mut got = vec![0u8; 4096];
            priv_win.read_local(r, 16, &mut got);
            assert_eq!(got, pat[..4096], "emulated put must be bit-identical");
        }
        priv_win.fence(r).unwrap();
    });
}

/// With integrity off, faults land silently: payloads observably differ
/// and the `UndetectedAtOff` counter records the exposure.
#[test]
fn off_mode_observably_corrupts() {
    let _g = OBS_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let spec = lossy_spec(2, IntegrityMode::Off, 1.0, 0.0).obs(obs::ObsConfig::enabled());
    let payload: Vec<u8> = (0..4096).map(|i| (i * 11) as u8).collect();
    run(spec, move |r| {
        let mem = r.alloc_mem(8192).unwrap();
        let mut win = r.win_create(WinMemory::Alloc(mem)).unwrap();
        win.fence(r).unwrap();
        if r.rank() == 0 {
            r.send(1, 1, &payload).unwrap();
            win.put(r, 1, 0, &[0xAB; 2048]).unwrap();
        } else {
            let mut buf = vec![0u8; payload.len()];
            r.recv(Source::Rank(0), TagSel::Value(1), &mut buf).unwrap();
            assert_ne!(buf, payload, "Off must deliver the corrupted eager bytes");
        }
        win.fence(r).unwrap();
        if r.rank() == 1 {
            let mut local = [0u8; 2048];
            win.read_local(r, 0, &mut local);
            assert_ne!(
                local[..],
                [0xABu8; 2048][..],
                "Off must land corrupted puts"
            );
        }
        win.fence(r).unwrap();
    });
    assert!(
        obs::counter_value(obs::Counter::CorruptionsInjected) > 0,
        "rate 1.0 must inject"
    );
    assert!(
        obs::counter_value(obs::Counter::UndetectedAtOff) > 0,
        "Off-mode faults must be counted as uncovered"
    );
    assert_eq!(
        obs::counter_value(obs::Counter::Retransmits),
        0,
        "Off never retransmits"
    );
}

/// `SequenceCheck` detects and errors — never repairs: the eager bracket
/// trips at the sender, the rendezvous guard aborts the transfer at both
/// ends, and the one-sided epoch guard trips at the fence.
#[test]
fn sequence_check_detects_and_errors() {
    let _g = OBS_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let spec = lossy_spec(2, IntegrityMode::SequenceCheck, 1.0, 0.0)
        .errors(ErrorMode::ErrorsReturn)
        .obs(obs::ObsConfig::enabled());
    run(spec, |r| {
        // Eager: the sender's sequence bracket catches the flipped burst
        // before posting; nothing is delivered.
        if r.rank() == 0 {
            let err = r
                .send(1, 1, &[1u8; 4096][..])
                .expect_err("eager corruption must be detected");
            assert!(matches!(err, ScimpiError::DataCorruption { .. }), "{err}");
        }
        r.barrier();
        // Rendezvous: the sender aborts the chunk stream; the receiver
        // translates the abort into the same error.
        let big = vec![2u8; 200_000];
        if r.rank() == 0 {
            let err = r
                .send(1, 2, &big)
                .expect_err("rendezvous corruption must be detected");
            assert!(matches!(err, ScimpiError::DataCorruption { .. }), "{err}");
        } else {
            let mut buf = vec![0u8; big.len()];
            let err = r
                .recv(Source::Rank(0), TagSel::Value(2), &mut buf)
                .expect_err("the abort must reach the receiver");
            assert!(matches!(err, ScimpiError::DataCorruption { .. }), "{err}");
        }
        r.barrier();
        // One-sided: the put lands unchecked; the guard trips at the
        // synchronisation, after the collective part has completed (no
        // deadlocked peers).
        let mem = r.alloc_mem(4096).unwrap();
        let mut win = r.win_create(WinMemory::Alloc(mem)).unwrap();
        win.fence(r).expect("empty epoch");
        if r.rank() == 0 {
            win.put(r, 1, 0, &[7u8; 1024])
                .expect("detection happens at the fence, not the put");
            let err = win
                .fence(r)
                .expect_err("the epoch sequence guard must trip");
            assert!(matches!(err, ScimpiError::DataCorruption { .. }), "{err}");
        } else {
            win.fence(r).expect("no accesses, no taint");
        }
        r.barrier();
    });
    assert!(obs::counter_value(obs::Counter::CorruptionsDetected) > 0);
    assert_eq!(
        obs::counter_value(obs::Counter::Retransmits),
        0,
        "SequenceCheck detects but never repairs"
    );
}

/// At fault rate zero, `EndToEnd` is pure overhead: no injections, no
/// detections, and — the contract the bench relies on — zero retransmits.
#[test]
fn zero_fault_rate_end_to_end_never_retransmits() {
    let _g = OBS_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let spec = lossy_spec(2, IntegrityMode::EndToEnd, 0.0, 0.0).obs(obs::ObsConfig::enabled());
    run(spec, |r| {
        let mem = r.alloc_mem(8192).unwrap();
        let mut win = r.win_create(WinMemory::Alloc(mem)).unwrap();
        win.fence(r).unwrap();
        if r.rank() == 0 {
            r.send(1, 1, &[3u8; 4096]).unwrap();
            r.send(1, 2, &vec![4u8; 100_000]).unwrap();
            win.put(r, 1, 0, &[5u8; 2048]).unwrap();
        } else {
            let mut a = [0u8; 4096];
            r.recv(Source::Rank(0), TagSel::Value(1), &mut a).unwrap();
            let mut b = vec![0u8; 100_000];
            r.recv(Source::Rank(0), TagSel::Value(2), &mut b).unwrap();
        }
        win.fence(r).unwrap();
    });
    assert_eq!(obs::counter_value(obs::Counter::CorruptionsInjected), 0);
    assert_eq!(obs::counter_value(obs::Counter::CorruptionsDetected), 0);
    assert_eq!(obs::counter_value(obs::Counter::Retransmits), 0);
    assert_eq!(obs::counter_value(obs::Counter::UndetectedAtOff), 0);
}

/// Identical seeds give identical virtual-time traces even while faults
/// are injected, detected, and retransmitted.
#[test]
fn lossy_end_to_end_is_deterministic() {
    let _g = OBS_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let payload: Vec<u8> = (0..150_000).map(|i| (i * 3) as u8).collect();
    let scenario = |payload: Vec<u8>| {
        run(
            lossy_spec(2, IntegrityMode::EndToEnd, 3e-4, 1e-4),
            move |r| {
                let mut digest = 0u64;
                if r.rank() == 0 {
                    r.send(1, 9, &payload).unwrap();
                } else {
                    let mut buf = vec![0u8; payload.len()];
                    r.recv(Source::Rank(0), TagSel::Value(9), &mut buf).unwrap();
                    digest = buf.iter().map(|&b| u64::from(b)).sum();
                }
                r.barrier();
                (r.now(), digest)
            },
        )
    };
    let a = scenario(payload.clone());
    let b = scenario(payload);
    assert_eq!(a, b, "same seed ⇒ same virtual-time trace, same payloads");
}
