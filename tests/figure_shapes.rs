//! Reproduction regression tests: the headline *shapes* of every figure
//! and table, asserted numerically. If a refactor breaks the calibration
//! that makes a figure come out like the paper's, these tests fail.
//!
//! Workload sizes are reduced relative to the harness binaries where that
//! does not change the effect being checked.

use sci_fabric::{Fabric, FabricSpec, NodeId, SciParams};
use scimpi::ClusterSpec;
use simclock::{Bandwidth, Clock, SimTime};

// ---- Figure 1: raw SCI characteristics --------------------------------

#[test]
fn fig1_write_read_dma_ordering() {
    let fabric = Fabric::new(FabricSpec::default());
    let seg = fabric.export(NodeId(1), 8 << 20);
    let bw_of = |f: &dyn Fn(&mut Clock)| {
        let mut clock = Clock::new();
        f(&mut clock);
        clock.now() - SimTime::ZERO
    };
    let len = 64 * 1024;
    let data = vec![0u8; len];

    let write = bw_of(&|c| {
        let mut s = fabric.pio_stream(NodeId(0), &seg, len);
        s.write(c, 0, &data).unwrap();
        s.barrier(c);
    });
    let read = bw_of(&|c| {
        let r = fabric.pio_reader(NodeId(0), &seg);
        let mut buf = vec![0u8; len];
        r.read(c, 0, &mut buf).unwrap();
    });
    // Figure 1: read bandwidth is an order of magnitude below write.
    assert!(
        read.as_ps() > 8 * write.as_ps(),
        "write {write}, read {read}"
    );

    // DMA has high setup: tiny transfers lose to PIO.
    let tiny_pio = bw_of(&|c| {
        let mut s = fabric.pio_stream(NodeId(0), &seg, 64);
        s.write(c, 0, &data[..64]).unwrap();
        s.barrier(c);
    });
    let tiny_dma = {
        let dma = fabric.dma_engine(NodeId(0), &seg);
        let mut c = Clock::new();
        let comp = dma.write(&mut c, 0, &data[..64]).unwrap();
        comp.done - SimTime::ZERO
    };
    assert!(tiny_dma.as_ps() > 5 * tiny_pio.as_ps());
}

#[test]
fn fig1_pio_write_dips_past_l2() {
    let fabric = Fabric::new(FabricSpec::default());
    let seg = fabric.export(NodeId(1), 8 << 20);
    let bw = |len: usize| {
        let data = vec![0u8; len];
        let mut c = Clock::new();
        let mut s = fabric.pio_stream(NodeId(0), &seg, len);
        s.write(&mut c, 0, &data).unwrap();
        s.barrier(&mut c);
        Bandwidth::observed(len as u64, c.now() - SimTime::ZERO).mib_per_sec()
    };
    let at_64k = bw(64 * 1024);
    let at_1m = bw(1 << 20);
    assert!(at_64k > 200.0, "peak region should be >200, got {at_64k}");
    assert!(
        at_1m < 170.0,
        "memory-limited region should dip, got {at_1m}"
    );
}

// ---- Figure 7: noncontig crossovers ------------------------------------

#[test]
fn fig7_crossovers() {
    use repro_bench::{internode_spec, noncontig_bandwidth, NoncontigCase};
    let total = 64 * 1024;
    let bw = |case, block| noncontig_bandwidth(internode_spec(), case, block, total).mib_per_sec();

    // 8 B: generic wins inter-node (paper's only generic win). The 2002
    // stack had no software store batcher, so this shape is asserted with
    // the pack engine off; with WC batching on, tiny adjacent ff stores
    // coalesce into full transactions and the win inverts (checked below).
    let bw_paper = |case, block| {
        let mut spec = internode_spec();
        spec.tuning = spec.tuning.without_pack_engine();
        noncontig_bandwidth(spec, case, block, total).mib_per_sec()
    };
    assert!(bw_paper(NoncontigCase::Generic, 8) > bw_paper(NoncontigCase::DirectPackFf, 8));
    assert!(bw(NoncontigCase::DirectPackFf, 8) > bw(NoncontigCase::Generic, 8));
    // 16..128 B: ff at least ~2x generic. (The paper claims 2x "for 16
    // bytes and above"; our generic baseline is a more efficient
    // implementation than 2001-era MPICH's, so past ~256 B the advantage
    // shrinks to ~1.4-1.6x — recorded as a deviation in EXPERIMENTS.md.)
    for block in [16usize, 64] {
        let g = bw(NoncontigCase::Generic, block);
        let f = bw(NoncontigCase::DirectPackFf, block);
        assert!(f >= 1.9 * g, "block {block}: ff {f} vs generic {g}");
    }
    for block in [128usize, 256, 1024] {
        let g = bw(NoncontigCase::Generic, block);
        let f = bw(NoncontigCase::DirectPackFf, block);
        assert!(f >= 1.25 * g, "block {block}: ff {f} vs generic {g}");
    }
    // Very large blocks: ff still clearly ahead (pack copies never free).
    {
        let g = bw(NoncontigCase::Generic, 8192);
        let f = bw(NoncontigCase::DirectPackFf, 8192);
        assert!(f >= 1.15 * g, "block 8192: ff {f} vs generic {g}");
    }
    // 128 B: ff within 80% of contiguous (paper: ~90%).
    let f = bw(NoncontigCase::DirectPackFf, 128);
    let c = bw(NoncontigCase::Contiguous, 128);
    assert!(f > 0.8 * c, "ff {f} vs contiguous {c}");
}

#[test]
fn fig7_intranode_ff_can_beat_contiguous() {
    // The paper's curious reproducible effect: intra-node direct_pack_ff
    // can surpass the contiguous transfer for cache-friendly block sizes.
    use repro_bench::{intranode_spec, noncontig_bandwidth, NoncontigCase};
    let total = 256 * 1024;
    let best_ff = [2048usize, 4096, 8192]
        .iter()
        .map(|&b| {
            noncontig_bandwidth(intranode_spec(), NoncontigCase::DirectPackFf, b, total)
                .mib_per_sec()
        })
        .fold(0.0f64, f64::max);
    let contig =
        noncontig_bandwidth(intranode_spec(), NoncontigCase::Contiguous, 4096, total).mib_per_sec();
    assert!(
        best_ff > 0.93 * contig,
        "intranode ff ({best_ff}) should be at least near contiguous ({contig})"
    );
}

// ---- Figure 9: one-sided characteristics --------------------------------

#[test]
fn fig9_put_get_shared_private_ordering() {
    use repro_bench::{internode_spec, sparse, SparseDir};
    let win = 64 * 1024;

    // Large accesses: put-shared fastest; get-shared ~ private paths.
    let put_s = sparse(internode_spec(), SparseDir::Put, 16 * 1024, win, true);
    let get_s = sparse(internode_spec(), SparseDir::Get, 16 * 1024, win, true);
    let put_p = sparse(internode_spec(), SparseDir::Put, 16 * 1024, win, false);
    assert!(put_s.bandwidth.mib_per_sec() > get_s.bandwidth.mib_per_sec());
    assert!(put_s.bandwidth.mib_per_sec() > put_p.bandwidth.mib_per_sec());
    let ratio = get_s.bandwidth.mib_per_sec() / put_p.bandwidth.mib_per_sec();
    assert!(
        (0.5..2.0).contains(&ratio),
        "message paths diverge: {ratio}"
    );

    // Small accesses: direct put latency is order(s) below emulation.
    let put_s8 = sparse(internode_spec(), SparseDir::Put, 8, win, true);
    let put_p8 = sparse(internode_spec(), SparseDir::Put, 8, win, false);
    assert!(put_p8.latency.as_us_f64() > 5.0 * put_s8.latency.as_us_f64());

    // Small direct gets: low latency (the "still relatively low" remark).
    let get_s8 = sparse(internode_spec(), SparseDir::Get, 8, win, true);
    assert!(get_s8.latency.as_us_f64() < 10.0);
}

// ---- Figure 12 / Table 2: ring saturation -------------------------------

#[test]
fn fig12_sci_knee_at_five_to_six_nodes() {
    use repro_bench::scaling_put_bandwidth;
    let bw = |n: usize| {
        scaling_put_bandwidth(ClusterSpec::ringlet(n), n, n - 1, 16 * 1024, 64 * 1024).mib_per_sec()
    };
    let b4 = bw(4);
    let b5 = bw(5);
    let b8 = bw(8);
    // Constant plateau through 5 nodes.
    assert!((b4 - b5).abs() < 0.1 * b4, "plateau broken: {b4} vs {b5}");
    assert!((100.0..135.0).contains(&b4), "plateau level {b4}");
    // Saturated by 8 nodes: paper measured ~72 of ~120.
    assert!(b8 < 0.75 * b4, "no saturation: {b8} vs {b4}");
    assert!(b8 > 0.4 * b4, "saturation too deep: {b8} vs {b4}");
}

#[test]
fn table2_link_upgrade_restores_bandwidth() {
    use repro_bench::scaling_put_bandwidth;
    let bw = |params: SciParams| {
        scaling_put_bandwidth(
            ClusterSpec::ringlet(8).params(params),
            8,
            7,
            16 * 1024,
            64 * 1024,
        )
        .mib_per_sec()
    };
    let slow = bw(SciParams::default());
    let fast = bw(SciParams::default().with_link_200mhz());
    let link_ratio = 762.0 / 633.0;
    let measured_ratio = fast / slow;
    // "increased linearly with the ring bandwidth".
    assert!(
        (measured_ratio - link_ratio).abs() < 0.15,
        "upgrade ratio {measured_ratio} vs link ratio {link_ratio}"
    );
}

#[test]
fn table2_neighbour_traffic_never_saturates() {
    use repro_bench::scaling_put_bandwidth;
    // 1 transfer/segment: per-node bandwidth constant for any node count.
    let bw = |n: usize| {
        scaling_put_bandwidth(ClusterSpec::ringlet(8), n, 1, 16 * 1024, 64 * 1024).mib_per_sec()
    };
    let b4 = bw(4);
    let b8 = bw(8);
    assert!(
        (b4 - b8).abs() < 0.05 * b4,
        "neighbour pattern degraded: {b4} vs {b8}"
    );
}

// ---- §4.3: write-combine stride sensitivity ------------------------------

#[test]
fn strided_write_ranges_match_paper() {
    let fabric = Fabric::new(FabricSpec::default());
    let seg = fabric.export(NodeId(1), 8 << 20);
    let bw = |access: usize, stride: usize| {
        let count = (1 << 20) / stride;
        let data = vec![0u8; access * count];
        let mut c = Clock::new();
        let mut s = fabric.pio_stream(NodeId(0), &seg, access * count);
        s.write_strided(&mut c, 0, access, stride, count, &data)
            .unwrap();
        s.barrier(&mut c);
        Bandwidth::observed((access * count) as u64, c.now() - SimTime::ZERO).mib_per_sec()
    };
    // Paper: 5..28 MiB/s at 8 B, 7..162 MiB/s at 256 B.
    let lo8 = bw(8, 24);
    let hi8 = bw(8, 32);
    assert!((4.0..10.0).contains(&lo8), "8B misaligned {lo8}");
    assert!((15.0..30.0).contains(&hi8), "8B aligned {hi8}");
    let lo256 = bw(256, 264);
    let hi256 = bw(256, 256);
    assert!((5.0..15.0).contains(&lo256), "256B misaligned {lo256}");
    assert!((120.0..170.0).contains(&hi256), "256B aligned {hi256}");
}

#[test]
fn disabling_write_combining_flattens_and_halves() {
    let params = SciParams::default().with_write_combining_disabled();
    let fabric = Fabric::new(FabricSpec {
        params,
        ..FabricSpec::default()
    });
    let seg = fabric.export(NodeId(1), 8 << 20);
    let bw = |stride: usize| {
        let count = (1 << 20) / stride;
        let data = vec![0u8; 64 * count];
        let mut c = Clock::new();
        let mut s = fabric.pio_stream(NodeId(0), &seg, 64 * count);
        s.write_strided(&mut c, 0, 64, stride, count, &data)
            .unwrap();
        s.barrier(&mut c);
        Bandwidth::observed((64 * count) as u64, c.now() - SimTime::ZERO).mib_per_sec()
    };
    // Both strides are fresh bursts (stride > access); without WC there
    // is no alignment cliff between them.
    let aligned = bw(96);
    let misaligned = bw(72);
    assert!(
        (aligned - misaligned).abs() < 0.1 * aligned,
        "wc-off cliff remains: {aligned} vs {misaligned}"
    );
    // ...but the peak is roughly halved relative to WC-enabled aligned.
    let full = {
        let fabric = Fabric::new(FabricSpec::default());
        let seg = fabric.export(NodeId(1), 8 << 20);
        let count = (1 << 20) / 96;
        let data = vec![0u8; 64 * count];
        let mut c = Clock::new();
        let mut s = fabric.pio_stream(NodeId(0), &seg, 64 * count);
        s.write_strided(&mut c, 0, 64, 96, count, &data).unwrap();
        s.barrier(&mut c);
        Bandwidth::observed((64 * count) as u64, c.now() - SimTime::ZERO).mib_per_sec()
    };
    assert!(aligned < 0.65 * full, "wc-off {aligned} vs wc-on {full}");
}
