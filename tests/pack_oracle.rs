//! Differential pack oracle (seeded property tests, tier-1 adjacent).
//!
//! Random datatype trees — including zero-count and zero-extent
//! degenerate shapes that the ordinary constructors allow — are driven
//! through `direct_pack_ff` and compared bit-for-bit against the naive
//! generic engine, with the flattened-layout cache both enabled and
//! disabled. A second suite sweeps *every* byte-offset boundary of the
//! datatype-gallery types through `find_position`, checking that resumed
//! partial packs splice back into the full stream bit-identically.
//!
//! `PACK_ORACLE_SEED=<n>` re-seeds the random trees (CI runs three fixed
//! seeds); the default seed is used otherwise.

use mpi_datatype::{ff, layout_cache, subarray, tree, ArrayOrder, Committed, Datatype, FfPosition};
use simclock::SplitMix64;

fn oracle_seed() -> u64 {
    std::env::var("PACK_ORACLE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x0AC1E)
}

/// A random datatype tree of at most `depth` nested levels. Unlike the
/// in-crate randomized suite, this generator deliberately mixes in
/// zero-count blocks and zero-extent children (the degenerate shapes the
/// commit-time leaf filter must absorb).
fn random_datatype(rng: &mut SplitMix64, depth: usize) -> Datatype {
    let leaf = |rng: &mut SplitMix64| match rng.next_below(4) {
        0 => Datatype::byte(),
        1 => Datatype::int(),
        2 => Datatype::double(),
        _ => Datatype::float(),
    };
    if depth == 0 || rng.chance(0.3) {
        return leaf(rng);
    }
    let inner = if rng.chance(0.08) {
        // Zero-extent child: contiguous(0, _) has no bytes at all.
        Datatype::contiguous(0, &leaf(rng))
    } else {
        random_datatype(rng, depth - 1)
    };
    match rng.next_below(5) {
        0 => Datatype::contiguous(rng.next_range(1, 4) as usize, &inner),
        // vector with stride >= blocklen (no overlap)
        1 => {
            let bl = rng.next_range(1, 3) as usize;
            let extra = rng.next_below(4) as isize;
            Datatype::vector(
                rng.next_range(1, 4) as usize,
                bl,
                bl as isize + extra,
                &inner,
            )
        }
        // hvector with byte stride >= blocklen * extent
        2 => {
            let bl = rng.next_range(1, 3) as usize;
            let extra = rng.next_below(16) as i64;
            Datatype::hvector(
                rng.next_range(1, 3) as usize,
                bl,
                (bl * inner.extent()) as i64 + extra,
                &inner,
            )
        }
        // indexed with ascending non-overlapping blocks; some zero-count
        3 => {
            let n = rng.next_range(1, 4) as usize;
            let mut disp = 0isize;
            let blocks: Vec<(usize, isize)> = (0..n)
                .map(|_| {
                    let bl = if rng.chance(0.2) {
                        0
                    } else {
                        rng.next_range(1, 2) as usize
                    };
                    let gap = rng.next_below(3) as isize;
                    let b = (bl, disp);
                    disp += bl as isize + gap;
                    b
                })
                .collect();
            Datatype::indexed(&blocks, &inner)
        }
        // struct of two fields at ascending displacements; field A may be
        // zero-count
        _ => {
            let a = inner;
            let b = random_datatype(rng, depth - 1);
            let gap = rng.next_below(8) as i64;
            let bl = if rng.chance(0.15) {
                0
            } else {
                rng.next_range(1, 2) as usize
            };
            let disp_b = (bl * a.extent()) as i64 + gap;
            Datatype::structure(&[(bl, 0, a), (1, disp_b, b)])
        }
    }
}

fn source_buffer(dt: &Datatype, count: usize) -> Vec<u8> {
    // Zero-count leading blocks give some generated types lb > 0, so the
    // footprint of `count` instances is (count-1)*extent + ub, not
    // count*extent.
    let span = count.saturating_sub(1) * dt.extent() + dt.ub().max(0) as usize;
    (0..span + 16)
        .map(|i| (i as u32).wrapping_mul(2654435761) as u8)
        .collect()
}

/// The naive reference: the generic recursive tree engine.
fn reference_pack(dt: &Datatype, count: usize, src: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    tree::pack(dt, count, src, 0, &mut out);
    out
}

/// ff pack over one commit == reference, and the packed stream is the
/// right length even for degenerate (zero-size) types.
fn assert_ff_matches_reference(dt: &Datatype, count: usize) {
    let src = source_buffer(dt, count);
    let reference = reference_pack(dt, count, &src);
    assert_eq!(reference.len(), dt.size() * count);

    let c = Committed::commit(dt);
    let mut sink = ff::VecSink::default();
    ff::pack_ff(&c, count, &src, 0, 0, usize::MAX, &mut sink).unwrap();
    assert_eq!(sink.data, reference, "ff diverged from reference for {dt}");

    // Commit-time invariant: the zero-extent shapes above must never
    // leave a zero-length leaf that would emit empty stores.
    for leaf in c.leaves() {
        assert!(leaf.len > 0, "zero-length leaf survived commit for {dt}");
    }
}

/// Differential oracle with the layout cache ON (the default).
#[test]
fn oracle_ff_equals_reference_with_cache() {
    let mut rng = SplitMix64::new(oracle_seed());
    for _ in 0..300 {
        let dt = random_datatype(&mut rng, 3);
        let count = rng.next_range(1, 3) as usize;
        assert_ff_matches_reference(&dt, count);
        // A second commit of the identical tree (a cache hit whenever the
        // global cache is on) must behave identically too.
        assert_ff_matches_reference(&dt, count);
    }
}

/// Differential oracle with the layout cache OFF: memoisation must be a
/// pure performance artefact, never a behavioural one.
#[test]
fn oracle_ff_equals_reference_without_cache() {
    // The cache flag is global to the process; run this suite's commits
    // in a scope that disables it and always restore on exit.
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            layout_cache::set_enabled(true);
        }
    }
    let _restore = Restore;
    layout_cache::set_enabled(false);
    let mut rng = SplitMix64::new(oracle_seed() ^ 0x5EED);
    for _ in 0..300 {
        let dt = random_datatype(&mut rng, 3);
        let count = rng.next_range(1, 3) as usize;
        let c = Committed::commit(&dt);
        assert!(!c.cache_hit(), "disabled cache must never report a hit");
        assert_ff_matches_reference(&dt, count);
    }
}

/// The datatype-gallery types: every committed shape the worked example
/// tours (contiguous run, the Fig. 7 vector, the Fig. 3 struct, its
/// hvector, a ragged indexed, and the ocean-boundary subarray).
fn gallery() -> Vec<Datatype> {
    let chars = Datatype::contiguous(3, &Datatype::byte());
    let fig3 = Datatype::structure(&[(1, 0, Datatype::int()), (1, 4, chars)]);
    vec![
        Datatype::contiguous(12, &Datatype::double()),
        Datatype::vector(16, 2, 4, &Datatype::double()),
        fig3.clone(),
        Datatype::hvector(4, 1, 16, &fig3),
        Datatype::indexed(&[(2, 0), (3, 2), (1, 9)], &Datatype::int()),
        subarray(
            &[4, 6, 8],
            &[4, 6, 1],
            &[0, 0, 7],
            ArrayOrder::C,
            &Datatype::double(),
        ),
    ]
}

/// Partial-pack resume sweep: for every byte offset of every gallery
/// type, `find_position` resolves, and a pack resumed there splices
/// bit-identically onto the prefix.
#[test]
fn resume_splices_bit_identically_at_every_offset() {
    for dt in gallery() {
        let count = 2usize;
        let c = Committed::commit(&dt);
        let total = c.size() * count;
        let src = source_buffer(&dt, count);
        let whole = reference_pack(&dt, count, &src);
        assert_eq!(whole.len(), total);

        for split in 0..=total {
            // The resume point must resolve for every in-range offset…
            let pos: Option<FfPosition> = c.find_position(split, count);
            if split < total {
                assert!(pos.is_some(), "find_position failed at {split} for {dt}");
            }
            // …and the two halves packed separately must splice into the
            // full stream.
            let mut head = ff::VecSink::default();
            ff::pack_ff(&c, count, &src, 0, 0, split, &mut head).unwrap();
            let mut tail = ff::VecSink::default();
            ff::pack_ff(&c, count, &src, 0, split, usize::MAX, &mut tail).unwrap();
            assert_eq!(head.data.len(), split, "short head at {split} for {dt}");
            let mut spliced = head.data;
            spliced.extend_from_slice(&tail.data);
            assert_eq!(spliced, whole, "splice mismatch at {split} for {dt}");
        }
    }
}

/// Zero-count and zero-extent fixed cases, spelled out (the random
/// generator reaches these shapes probabilistically; these always run).
#[test]
fn degenerate_types_pack_to_empty_or_exact_streams() {
    let empty = Datatype::contiguous(0, &Datatype::double());
    let cases = [
        Datatype::indexed(&[(0, 3), (2, 0), (0, 9)], &Datatype::int()),
        Datatype::hindexed(&[(1, 8), (0, 0)], &Datatype::double()),
        Datatype::structure(&[(0, 0, Datatype::int()), (1, 4, Datatype::int())]),
        Datatype::hvector(3, 2, 64, &empty),
        Datatype::contiguous(5, &Datatype::structure(&[])),
        empty,
    ];
    for dt in &cases {
        for count in [0usize, 1, 3] {
            let src = source_buffer(dt, count.max(1));
            let reference = reference_pack(dt, count, &src);
            let c = Committed::commit(dt);
            let mut sink = ff::VecSink::default();
            ff::pack_ff(&c, count, &src, 0, 0, usize::MAX, &mut sink).unwrap();
            assert_eq!(sink.data, reference, "degenerate {dt} x{count}");
            assert_eq!(sink.data.len(), dt.size() * count);
        }
    }
}
