//! Resource-governance acceptance tests: credit-based eager flow
//! control must bound the receiver's queued eager bytes by the
//! configured budget without changing a single delivered byte, every
//! [`OverloadPolicy`] must behave per its contract (stall, degrade,
//! shed, refuse), the drop-bin reaper must hand in-flight budget back,
//! and the whole machinery must stay deadlock-free and deterministic
//! when a rank dies holding credits (see `docs/BACKPRESSURE.md`).
//!
//! CI sweeps `OVERLOAD_SEED` × `OVERLOAD_POLICY` ∈ {stall, degrade,
//! shed, error} through this binary: the flood tests pin their own
//! policy, while the composed chaos test draws it from the environment
//! so every policy is exercised against rank death.

use scimpi::{
    revoke, run, shrink, ClusterSpec, ErrorMode, OverloadPolicy, ReduceOp, ScimpiError, Source,
    TagSel, Tuning,
};
use simclock::{SimDuration, SimTime};
use std::sync::Mutex;

/// The obs recorder (and its enable switch, which `run` flips per spec)
/// is process-global: tests that read counters serialise on this mutex.
static OBS_SERIAL: Mutex<()> = Mutex::new(());

/// Eager-byte budget used by the governed floods: the minimum
/// `Tuning::validate` allows (one full eager-threshold message).
const BUDGET: usize = 16 * 1024;
/// Flood message size (eager: below the 16 KiB threshold).
const MSG: usize = 4096;
/// Flood length: `COUNT * MSG` is 8× the budget, so governance binds.
const COUNT: usize = 32;

fn seeded(mut spec: ClusterSpec) -> ClusterSpec {
    if let Ok(seed) = std::env::var("OVERLOAD_SEED") {
        spec.seed = seed.parse().expect("OVERLOAD_SEED must be an integer");
    }
    spec
}

fn policy_from_env() -> OverloadPolicy {
    match std::env::var("OVERLOAD_POLICY").as_deref() {
        Ok("degrade") => OverloadPolicy::Degrade,
        Ok("shed") => OverloadPolicy::Shed,
        Ok("error") => OverloadPolicy::Error,
        _ => OverloadPolicy::Stall,
    }
}

fn governed(policy: OverloadPolicy) -> Tuning {
    Tuning {
        eager_credits_bytes: BUDGET,
        eager_credit_slots: 256,
        overload_policy: policy,
        ..Tuning::default()
    }
}

/// Deterministic per-message payload for the floods.
fn pattern(i: usize) -> Vec<u8> {
    (0..MSG).map(|j| (i * 131 + j * 7) as u8).collect()
}

/// Fast sender, slow receiver: rank 0 fires `COUNT` eager messages
/// back-to-back while rank 1 pays 200 µs of compute before each
/// receive, checking every byte in order. Returns per-rank
/// `(finish time, payload digest)`.
fn flood(spec: ClusterSpec) -> Vec<(SimTime, u64)> {
    run(spec, |r| {
        let mut digest = 0u64;
        if r.rank() == 0 {
            for i in 0..COUNT {
                r.send(1, 9, &pattern(i)).expect("flood send");
            }
        } else {
            for i in 0..COUNT {
                r.compute(SimDuration::from_us(200));
                let mut buf = vec![0u8; MSG];
                r.recv(Source::Rank(0), TagSel::Value(9), &mut buf)
                    .expect("flood recv");
                assert_eq!(buf, pattern(i), "message {i}: in order and bit-perfect");
                digest = digest
                    .wrapping_mul(1_000_003)
                    .wrapping_add(buf.iter().map(|&b| u64::from(b)).sum::<u64>());
            }
        }
        r.barrier();
        (r.now(), digest)
    })
}

/// The receiver's peak simultaneously queued eager bytes, from the
/// deterministic virtual-time backlog sweep recorded at teardown.
fn receiver_peak_eager_bytes() -> u64 {
    obs::peak_backlogs()
        .iter()
        .find(|p| p.rank == 1)
        .expect("rank 1 backlog gauge recorded")
        .eager_bytes
}

/// Under `Stall` the flood's peak queued eager bytes never exceed the
/// credit budget, the delivered bytes are identical to an unbounded
/// baseline run, the bound demonstrably binds (the baseline exceeds
/// it), and the governed outcome is bit-deterministic across runs.
#[test]
fn stall_flood_bounds_backlog_and_delivers_identically() {
    let _g = OBS_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let spec = || {
        seeded(ClusterSpec::ringlet(2))
            .tuning(governed(OverloadPolicy::Stall))
            .obs(obs::ObsConfig::enabled())
    };
    let a = flood(spec());
    let peak_a = receiver_peak_eager_bytes();
    assert!(
        peak_a <= BUDGET as u64,
        "stall: peak queued eager bytes {peak_a} exceed the {BUDGET}-byte budget"
    );
    assert!(
        obs::counter_value(obs::Counter::EagerCreditStalls) > 0,
        "an 8×-oversubscribed flood must actually stall"
    );
    let credit_peak = obs::counter_value(obs::Counter::CreditBytesPeak);
    assert!(
        credit_peak > 0 && credit_peak <= BUDGET as u64,
        "credit high-water mark {credit_peak} must be within the budget"
    );

    // Same seed, same governed run: bit-identical times, digests, peak.
    let b = flood(spec());
    assert_eq!(a, b, "governed flood must be deterministic");
    assert_eq!(peak_a, receiver_peak_eager_bytes());

    // Unbounded baseline (default 4 MiB budget): same bytes delivered,
    // but the queue grows far past the governed bound — the budget binds.
    let base = flood(
        seeded(ClusterSpec::ringlet(2))
            .tuning(Tuning::default())
            .obs(obs::ObsConfig::enabled()),
    );
    assert_eq!(a[1].1, base[1].1, "flow control must not change one byte");
    assert!(
        receiver_peak_eager_bytes() > BUDGET as u64,
        "the ungoverned flood must overrun the governed bound, else the test proves nothing"
    );
}

/// Under `Degrade` exhausted credits switch the message to the
/// rendezvous protocol instead of queueing more eager payload: the
/// eager-byte bound still holds, delivery is still in-order and
/// byte-identical, and the degradations are counted.
#[test]
fn degrade_flood_bounds_backlog_via_rendezvous() {
    let _g = OBS_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let spec = || {
        seeded(ClusterSpec::ringlet(2))
            .tuning(governed(OverloadPolicy::Degrade))
            .obs(obs::ObsConfig::enabled())
    };
    let a = flood(spec());
    let peak = receiver_peak_eager_bytes();
    assert!(
        peak <= BUDGET as u64,
        "degrade: peak queued eager bytes {peak} exceed the {BUDGET}-byte budget"
    );
    assert!(
        obs::counter_value(obs::Counter::DegradedPaths) > 0,
        "the oversubscribed flood must take the degraded path"
    );
    let b = flood(spec());
    assert_eq!(a, b, "degraded flood must be deterministic");

    let base = flood(seeded(ClusterSpec::ringlet(2)).obs(obs::ObsConfig::enabled()));
    assert_eq!(a[1].1, base[1].1, "degradation must not change one byte");
}

/// Backpressure is a first-class wait state: the stalled flood's
/// profile stays exactly conservative (busy + wait + other ==
/// makespan, per rank), the sender's stall shows up in the
/// `backpressure` bucket, and the serialized PROFILE document carries
/// the new key.
#[test]
fn stall_wait_time_is_conserved_in_backpressure_bucket() {
    let _g = OBS_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let profile_path = std::env::temp_dir().join(format!(
        "scimpi_overload_profile_{}.json",
        std::process::id()
    ));
    let finish = flood(
        seeded(ClusterSpec::ringlet(2))
            .tuning(governed(OverloadPolicy::Stall))
            .obs(obs::ObsConfig::enabled().and_profile(&profile_path)),
    );
    let profile = obs::report::last_profile().expect("profile built at teardown");
    for p in &profile.ranks {
        assert_eq!(
            p.total_busy_ps() + p.total_wait_ps() + p.other_ps,
            p.makespan_ps,
            "rank {}: decomposition must sum exactly to the makespan",
            p.rank
        );
        assert_eq!(
            p.makespan_ps,
            finish[p.rank as usize].0.as_ps(),
            "rank {}: profiled makespan disagrees with its clock",
            p.rank
        );
    }
    assert!(
        profile.ranks[0].wait_ps[obs::WaitKind::Backpressure as usize] > 0,
        "the stalled sender's wait must be classified as backpressure"
    );
    let doc = std::fs::read_to_string(&profile_path).expect("profile written");
    let _ = std::fs::remove_file(&profile_path);
    assert!(
        doc.contains("\"backpressure_ps\":"),
        "the PROFILE wait breakdown must export the backpressure bucket"
    );
}

/// Under `Shed` a sender that outruns its slot budget drops the
/// overflow on the floor — deterministically the burst's prefix is
/// delivered, the rest are counted as shed, and nothing blocks.
#[test]
fn shed_policy_drops_overflow_deterministically() {
    let _g = OBS_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    const SLOTS: usize = 4;
    const TOTAL: usize = 12;
    let tuning = Tuning {
        eager_credit_slots: SLOTS,
        eager_credits_bytes: 64 * 1024,
        overload_policy: OverloadPolicy::Shed,
        ..Tuning::default()
    };
    run(
        seeded(ClusterSpec::ringlet(2))
            .tuning(tuning)
            .obs(obs::ObsConfig::enabled()),
        |r| {
            if r.rank() == 0 {
                // Credits only return at sync points, so exactly the
                // first SLOTS sends of the burst are delivered.
                for i in 0..TOTAL {
                    r.send(1, 5, &[i as u8; 512])
                        .expect("shed send completes locally");
                }
            } else {
                for i in 0..SLOTS {
                    let mut buf = [0u8; 512];
                    r.recv(Source::Rank(0), TagSel::Value(5), &mut buf)
                        .expect("delivered prefix");
                    assert!(
                        buf.iter().all(|&b| b == i as u8),
                        "message {i} of the prefix must arrive intact and in order"
                    );
                }
            }
            r.barrier();
        },
    );
    assert_eq!(
        obs::counter_value(obs::Counter::MessagesShed),
        (TOTAL - SLOTS) as u64,
        "everything past the slot budget is shed"
    );
}

/// Under `Error` exhaustion surfaces as `ResourceExhausted` through the
/// rank's error mode; a sync point returns the credits and the sender
/// is whole again.
#[test]
fn error_policy_surfaces_resource_exhausted_and_recovers() {
    let _g = OBS_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let tuning = Tuning {
        eager_credit_slots: 2,
        eager_credits_bytes: BUDGET,
        overload_policy: OverloadPolicy::Error,
        ..Tuning::default()
    };
    run(
        seeded(ClusterSpec::ringlet(2))
            .tuning(tuning)
            .errors(ErrorMode::ErrorsReturn)
            .obs(obs::ObsConfig::enabled()),
        |r| {
            if r.rank() == 0 {
                r.send(1, 3, &[1u8; 64]).expect("first slot");
                r.send(1, 3, &[2u8; 64]).expect("second slot");
                let err = r
                    .send(1, 3, &[3u8; 64])
                    .expect_err("no slots left: the policy must refuse");
                assert!(
                    matches!(
                        err,
                        ScimpiError::ResourceExhausted {
                            what: "eager credits",
                            ..
                        }
                    ),
                    "unexpected error: {err:?}"
                );
            } else {
                for want in [1u8, 2] {
                    let mut buf = [0u8; 64];
                    r.recv(Source::Rank(0), TagSel::Value(3), &mut buf).unwrap();
                    assert!(buf.iter().all(|&b| b == want));
                }
            }
            r.barrier(); // the barrier hands the matched credits back
            if r.rank() == 0 {
                assert_eq!(
                    r.eager_credits_available(1),
                    (BUDGET, 2),
                    "a sync point restores the full pair budget"
                );
                r.send(1, 4, &[4u8; 64]).expect("capacity restored");
            } else {
                let mut buf = [0u8; 64];
                r.recv(Source::Rank(0), TagSel::Value(4), &mut buf).unwrap();
            }
            r.barrier();
        },
    );
    assert!(
        obs::counter_value(obs::Counter::BudgetDenials) > 0,
        "the refusal must be counted"
    );
}

/// `Rank::eager_credits_available` tracks consumption send-by-send and
/// snaps back to the full budget at the next sync point.
#[test]
fn credit_gauge_tracks_consumption_and_barrier_return() {
    run(
        seeded(ClusterSpec::ringlet(2)).tuning(governed(OverloadPolicy::Stall)),
        |r| {
            if r.rank() == 0 {
                assert_eq!(r.eager_credits_available(1), (BUDGET, 256));
                r.send(1, 6, &[7u8; 512]).unwrap();
                assert_eq!(
                    r.eager_credits_available(1),
                    (BUDGET - 512, 255),
                    "a posted eager message holds bytes and a slot"
                );
            } else {
                let mut buf = [0u8; 512];
                r.recv(Source::Rank(0), TagSel::Value(6), &mut buf).unwrap();
            }
            r.barrier();
            if r.rank() == 0 {
                assert_eq!(
                    r.eager_credits_available(1),
                    (BUDGET, 256),
                    "matched credits are folded back in at the barrier"
                );
            }
        },
    );
}

/// Dropping `isend` handles must not leak in-flight budget: the posts
/// hit the cap, the refusal surfaces as `ResourceExhausted`, and the
/// drop-bin reaper at the next sync point returns the capacity.
#[test]
fn drop_bin_reaper_returns_inflight_budget() {
    let _g = OBS_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let tuning = Tuning {
        max_inflight_requests: 2,
        ..Tuning::default()
    };
    run(
        seeded(ClusterSpec::ringlet(2))
            .tuning(tuning)
            .errors(ErrorMode::ErrorsReturn)
            .obs(obs::ObsConfig::enabled()),
        |r| {
            if r.rank() == 0 {
                // Two fire-and-forget posts fill the in-flight set.
                drop(r.isend(1, 0, &[1u8; 16]).expect("first post"));
                drop(r.isend(1, 1, &[2u8; 16]).expect("second post"));
                match r.isend(1, 2, &[3u8; 16]) {
                    Ok(_) => panic!("the in-flight cap must refuse the third post"),
                    Err(err) => assert_eq!(
                        err,
                        ScimpiError::ResourceExhausted {
                            what: "in-flight requests",
                            needed: 3,
                            limit: 2,
                        }
                    ),
                }
            } else {
                for tag in [0i32, 1] {
                    let mut buf = [0u8; 16];
                    r.recv(Source::Rank(0), TagSel::Value(tag), &mut buf)
                        .unwrap();
                }
            }
            r.barrier(); // reaps the drop bin
            if r.rank() == 0 {
                assert_eq!(r.pending_requests(), 0, "both dropped requests retired");
                let mut req = r
                    .isend(1, 3, &[4u8; 16])
                    .expect("budget returned by the reaper");
                r.wait(&mut req).unwrap();
            } else {
                let mut buf = [0u8; 16];
                r.recv(Source::Rank(0), TagSel::Value(3), &mut buf).unwrap();
            }
            r.barrier();
        },
    );
    assert!(
        obs::counter_value(obs::Counter::BudgetDenials) > 0,
        "the refused post must be counted"
    );
    assert_eq!(
        obs::counter_value(obs::Counter::RequestsCompletedByDrop),
        2,
        "both unwaited isends complete through the drop bin"
    );
}

/// A `Tuning` that violates its invariants must be refused when the
/// cluster is built, before any thread spawns.
#[test]
#[should_panic(expected = "invalid cluster spec")]
fn invalid_tuning_is_refused_at_build() {
    let spec = ClusterSpec::ringlet(2).tuning(Tuning {
        eager_credit_slots: 0,
        ..Tuning::default()
    });
    run(spec, |_r| {});
}

/// Composed chaos: a receiver dies while holding its senders' eager
/// credits. Whatever the overload policy, the stranded sender must
/// surface an error within the deterministic detection budget (never
/// deadlock), the survivors must revoke + shrink — which reclaims the
/// corpse's credit pairs — and the shrunk world must keep
/// communicating. CI sweeps `OVERLOAD_SEED` × `OVERLOAD_POLICY`.
#[test]
fn rank_dying_with_held_credits_never_deadlocks() {
    let policy = policy_from_env();
    let scenario = move || {
        let tuning = Tuning {
            eager_credit_slots: 2,
            eager_credits_bytes: BUDGET,
            overload_policy: policy,
            ..Tuning::default()
        };
        run(
            seeded(ClusterSpec::ringlet(4))
                .tuning(tuning)
                .errors(ErrorMode::ErrorsReturn),
            move |r| {
                r.barrier();
                let me_w = r.world_rank();
                if me_w == 2 {
                    r.fabric().faults().kill_node(2);
                    return ("dead".to_string(), r.now());
                }
                if me_w == 0 {
                    // Burst past the slot budget into the corpse. The
                    // first two eager sends complete locally and pin
                    // their credits forever; the third runs into the
                    // policy with the pair exhausted.
                    let mut refused = None;
                    for i in 0..3u8 {
                        if let Err(e) = r.send(2, 4, &[i; 64]) {
                            refused = Some(e);
                            break;
                        }
                    }
                    let err = match refused {
                        Some(e) => e,
                        // Shed completes every eager send locally; the
                        // rendezvous path exposes the death instead.
                        None => r
                            .send(2, 5, &vec![9u8; 150_000])
                            .expect_err("the corpse must surface on the rendezvous path"),
                    };
                    match policy {
                        OverloadPolicy::Error => assert!(
                            matches!(
                                err,
                                ScimpiError::ResourceExhausted {
                                    what: "eager credits",
                                    ..
                                }
                            ),
                            "error policy: unexpected error {err:?}"
                        ),
                        _ => assert_eq!(
                            err,
                            ScimpiError::PeerDead { peer: 2 },
                            "{policy:?}: the stranded sender must learn of the death"
                        ),
                    }
                    // The corpse still holds both slots of our pair.
                    assert_eq!(r.eager_credits_available(2).1, 0);
                    revoke(r);
                } else {
                    // Ranks 1 and 3 are parked in a barrier the sender
                    // never joins; the revocation gossip releases them.
                    let err = r
                        .barrier_checked()
                        .expect_err("the revocation must release the barrier");
                    assert_eq!(err, ScimpiError::Revoked);
                }
                let report = shrink(r).expect("survivors agree and shrink");
                assert_eq!(report.dead, vec![2]);
                assert_eq!(report.size, 3);
                // The shrunk world is fully live: collectives (which
                // ride the same credited sends) and fresh eager pairs
                // both work.
                let mut sums = [1.0f64];
                r.allreduce(&mut sums, ReduceOp::Sum)
                    .expect("post-shrink collective");
                assert_eq!(sums[0], 3.0);
                if r.rank() == 0 {
                    r.send(1, 8, &[0xEE; 64]).expect("post-shrink eager send");
                } else if r.rank() == 1 {
                    let mut buf = [0u8; 64];
                    r.recv(Source::Rank(0), TagSel::Value(8), &mut buf).unwrap();
                    assert_eq!(buf, [0xEE; 64]);
                }
                r.barrier();
                ("ok".to_string(), r.now())
            },
        )
    };
    let a = scenario();
    let outcomes: Vec<&str> = a.iter().map(|(o, _)| o.as_str()).collect();
    assert_eq!(outcomes, ["ok", "ok", "dead", "ok"]);
    let b = scenario();
    assert_eq!(a, b, "same seed ⇒ identical error sites and virtual times");
}
