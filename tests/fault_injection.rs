//! Failure-injection integration tests: §2 of the paper — "SCI is still a
//! network in which single nodes may fail or physical connections may be
//! disturbed". Transmission errors cause retried (and possibly reordered)
//! transfers; the store barrier hides all of it from correctness, at a
//! latency cost.

use sci_fabric::{
    ConnectionMonitor, Fabric, FabricSpec, FaultConfig, LinkId, NodeId, SciError, Topology,
};
use scimpi::{run, ClusterSpec, Source, TagSel};
use simclock::{Clock, SimDuration, SimTime};

/// A lossy fabric must still deliver bit-perfect data — only slower.
#[test]
fn lossy_fabric_is_correct_but_slower() {
    let run_with = |error_rate: f64| {
        let mut spec = ClusterSpec::ringlet(2);
        spec.faults = FaultConfig::lossy(error_rate);
        let payload: Vec<u8> = (0..200_000).map(|i| (i * 131) as u8).collect();
        let expect = payload.clone();
        let out = run(spec, move |r| {
            if r.rank() == 0 {
                r.send(1, 0, &payload).unwrap();
                r.barrier();
                SimTime::ZERO
            } else {
                let mut buf = vec![0u8; 200_000];
                r.recv(Source::Rank(0), TagSel::Value(0), &mut buf).unwrap();
                assert_eq!(buf, expect, "corrupted payload on lossy fabric");
                r.barrier();
                r.now()
            }
        });
        out[1]
    };
    let clean = run_with(0.0);
    let lossy = run_with(0.05);
    assert!(
        lossy > clean,
        "retries must cost time: clean {clean:?}, lossy {lossy:?}"
    );
}

/// Identical seeds reproduce identical fault patterns (deterministic
/// injection).
#[test]
fn fault_injection_is_deterministic() {
    let run_once = || {
        let mut spec = ClusterSpec::ringlet(2);
        spec.faults = FaultConfig::lossy(0.1);
        spec.seed = 1234;

        run(spec, |r| {
            if r.rank() == 0 {
                r.send(1, 0, &vec![9u8; 100_000]).unwrap();
            } else {
                let mut buf = vec![0u8; 100_000];
                r.recv(Source::Rank(0), TagSel::Value(0), &mut buf).unwrap();
            }
            r.barrier();
            r.now()
        })
    };
    assert_eq!(run_once(), run_once());
}

/// Pulling a cable severs exactly the routes through it; restore heals.
#[test]
fn cable_pull_and_restore() {
    let fabric = Fabric::new(FabricSpec {
        topology: Topology::ringlet(4),
        ..FabricSpec::default()
    });
    let seg = fabric.export(NodeId(2), 1024);
    let mut clock = Clock::new();

    // Route 0 -> 2 crosses links 0 and 1.
    let mut stream = fabric.pio_stream(NodeId(0), &seg, 64);
    stream.write(&mut clock, 0, &[1u8; 64]).unwrap();

    fabric.faults().fail_link(LinkId(1));
    let mut broken = fabric.pio_stream(NodeId(0), &seg, 64);
    assert!(matches!(
        broken.write(&mut clock, 0, &[1u8; 64]),
        Err(SciError::LinkDown(LinkId(1)))
    ));
    // Route 3 -> 2 (link 3... wraps 3->0? no: 3 -> 2 crosses links 3, 0, 1).
    // Route 1 -> 2 crosses only link 1 — also broken.
    let mut also_broken = fabric.pio_stream(NodeId(1), &seg, 64);
    assert!(also_broken.write(&mut clock, 0, &[1u8; 64]).is_err());

    fabric.faults().restore_link(LinkId(1));
    let mut healed = fabric.pio_stream(NodeId(0), &seg, 64);
    assert!(healed.write(&mut clock, 0, &[1u8; 64]).is_ok());
}

/// The connection monitor detects a dead peer before the runtime trusts
/// transparent remote memory.
#[test]
fn connection_monitor_detects_failures() {
    let fabric = Fabric::new(FabricSpec {
        topology: Topology::ringlet(4),
        ..FabricSpec::default()
    });
    let monitor = ConnectionMonitor::new(fabric.faults(), SimDuration::from_us(4));
    let route = fabric.topology().route(NodeId(0), NodeId(3));
    let mut clock = Clock::new();

    assert!(monitor.probe(&mut clock, 3, &route).is_ok());
    fabric.faults().kill_node(3);
    assert_eq!(
        monitor.probe(&mut clock, 3, &route),
        Err(SciError::PeerDead(3))
    );
    // Other peers unaffected.
    let route1 = fabric.topology().route(NodeId(0), NodeId(1));
    assert!(monitor.probe(&mut clock, 1, &route1).is_ok());
    fabric.faults().revive_node(3);
    assert!(monitor.probe(&mut clock, 3, &route).is_ok());
}

/// Reordering: without a store barrier, arrival timestamps on a lossy
/// fabric are not monotone in issue order; the barrier is what provides
/// the paper's delivery guarantee.
#[test]
fn store_barrier_covers_reordered_arrivals() {
    let fabric = Fabric::new(FabricSpec {
        topology: Topology::ringlet(2),
        faults: FaultConfig::lossy(0.4),
        seed: 99,
        ..FabricSpec::default()
    });
    let seg = fabric.export(NodeId(1), 1 << 20);
    let mut clock = Clock::new();
    let mut stream = fabric.pio_stream(NodeId(0), &seg, 4096);
    let chunk = [7u8; 64];
    let mut last_outstanding = SimTime::ZERO;
    let mut grew_by_jitter = false;
    for i in 0..256 {
        stream.write(&mut clock, i * 128, &chunk).unwrap();
        let o = stream.outstanding();
        // Outstanding never decreases (high-water mark)...
        assert!(o >= last_outstanding);
        if o > last_outstanding + SimDuration::from_us(3) {
            grew_by_jitter = true; // ...but can jump by retry jitter.
        }
        last_outstanding = o;
    }
    assert!(grew_by_jitter, "no retry jitter observed at 40% loss");
    // After the barrier the clock covers every arrival.
    stream.barrier(&mut clock);
    assert!(clock.now() >= last_outstanding);
}

/// MPI-level traffic across a degraded ring still completes and the
/// degradation is visible in virtual time.
#[test]
fn end_to_end_under_sustained_loss() {
    let mut spec = ClusterSpec::ringlet(4);
    spec.faults = FaultConfig::lossy(0.02);
    let out = run(spec, |r| {
        let n = r.size();
        // All-to-all style exchange with verification.
        let blocks: Vec<Vec<u8>> = (0..n)
            .map(|d| vec![(r.rank() * 16 + d) as u8; 4096])
            .collect();
        let got = r.alltoall(&blocks).unwrap();
        for (src, b) in got.iter().enumerate() {
            assert!(b.iter().all(|&x| x == (src * 16 + r.rank()) as u8));
        }
        r.barrier();
        r.now()
    });
    assert!(out[0] > SimTime::ZERO);
}
