//! Chaos integration tests: administrative faults (cable pulls, node
//! crashes) injected mid-run on a multi-ring cluster. The fault-tolerant
//! protocol layer must deliver bit-perfect data over alternate routes,
//! degrade one-sided communication to the emulated path when the direct
//! path stays severed, detect dead peers within the deterministic
//! virtual-time budget instead of hanging, and do all of it bit-identically
//! across same-seed runs.
//!
//! All fault schedules here are *administrative* (fail/restore/kill/revive
//! at barrier-separated points) with `error_rate == 0`: random injection
//! draws from one shared RNG whose interleaving across rank threads is not
//! deterministic, while admin faults are. Silent corruption is the one
//! exception — its per-pair RNG streams are deterministic — so CI also
//! runs this binary with `CHAOS_CORRUPT_RATE` set, layering bit flips and
//! dropped stores under `EndToEnd` integrity on top of every admin
//! schedule; all the bit-perfect assertions must keep holding.

use mpi_datatype::{Committed, Datatype};
use sci_fabric::LinkId;
use scimpi::{
    death_delay, run, AccumulateOp, ClusterSpec, ErrorMode, IntegrityMode, ScimpiError, Source,
    TagSel, Tuning, WinMemory,
};
use std::sync::Mutex;

/// The obs recorder (and its enable switch, which `run` flips per spec) is
/// process-global: every test in this binary serialises on this mutex.
static OBS_SERIAL: Mutex<()> = Mutex::new(());

/// CI sweeps `CHAOS_SEED` to exercise the fault schedules under several
/// RNG streams; the scenarios themselves are seed-independent. When
/// `CHAOS_CORRUPT_RATE` is set, silent bit flips (plus dropped stores at a
/// quarter of the rate) ride under `EndToEnd` integrity, so every
/// bit-perfect assertion doubles as a corruption-recovery check.
fn chaos_spec() -> ClusterSpec {
    let mut spec = ClusterSpec::multi_ring(2, 4).errors(ErrorMode::ErrorsReturn);
    if let Ok(seed) = std::env::var("CHAOS_SEED") {
        spec.seed = seed.parse().expect("CHAOS_SEED must be an integer");
    }
    if let Ok(rate) = std::env::var("CHAOS_CORRUPT_RATE") {
        let rate: f64 = rate.parse().expect("CHAOS_CORRUPT_RATE must be a float");
        spec.faults.corrupt_rate = rate;
        spec.faults.drop_rate = rate / 4.0;
        spec = spec.tuning(Tuning {
            integrity_mode: IntegrityMode::EndToEnd,
            max_retransmits: 64,
            ..Tuning::default()
        });
    }
    spec
}

/// Pulling a cable on the primary route mid-run reroutes rendezvous
/// traffic over the alternate ring direction, bit-perfectly.
#[test]
fn link_failure_reroutes_rendezvous_traffic() {
    let _g = OBS_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let payload: Vec<u8> = (0..200_000).map(|i| (i * 37) as u8).collect();
    let expect = payload.clone();
    let spec = chaos_spec().obs(obs::ObsConfig::enabled());
    run(spec, move |r| {
        // Sever node1→node2, the middle of the primary route 0→2.
        if r.rank() == 0 {
            r.fabric().faults().fail_link(LinkId(1));
        }
        r.barrier();
        if r.rank() == 0 {
            r.send(2, 7, &payload)
                .expect("failover should absorb the cable pull");
        } else if r.rank() == 2 {
            let mut buf = vec![0u8; 200_000];
            let st = r
                .recv(Source::Rank(0), TagSel::Value(7), &mut buf)
                .expect("delivery over the alternate route");
            assert_eq!(st.len, 200_000);
            assert_eq!(buf, expect, "payload must be bit-perfect after reroute");
        }
        r.barrier();
        if r.rank() == 0 {
            r.fabric().faults().restore_link(LinkId(1));
        }
        r.barrier();
    });
    assert!(
        obs::counter_value(obs::Counter::RouteFailovers) > 0,
        "the reroute must be visible in the failover counter"
    );
}

/// A persistent one-sided window stream fails over when the cable is
/// pulled and heals back to the primary route once it is restored.
#[test]
fn window_stream_fails_over_and_heals() {
    let _g = OBS_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let spec = chaos_spec().obs(obs::ObsConfig::enabled());
    run(spec, move |r| {
        let mem = r.alloc_mem(1 << 16).unwrap();
        let mut win = r.win_create(WinMemory::Alloc(mem)).unwrap();
        win.fence(r).unwrap();
        if r.rank() == 0 {
            r.fabric().faults().fail_link(LinkId(1));
            // First put rides the alternate (degraded) route.
            win.put(r, 2, 0, &[0xAA; 4096]).expect("failover");
            r.fabric().faults().restore_link(LinkId(1));
            // The stream notices the healthy primary and switches back.
            win.put(r, 2, 4096, &[0xBB; 4096]).expect("healed");
        }
        win.fence(r).unwrap();
        if r.rank() == 2 {
            let mut buf = vec![0u8; 4096];
            win.read_local(r, 0, &mut buf);
            assert!(buf.iter().all(|&b| b == 0xAA), "degraded-route put landed");
            win.read_local(r, 4096, &mut buf);
            assert!(buf.iter().all(|&b| b == 0xBB), "post-heal put landed");
        }
        win.fence(r).unwrap();
    });
    assert!(obs::counter_value(obs::Counter::RouteFailovers) > 0);
    assert!(
        obs::counter_value(obs::Counter::RouteHeals) > 0,
        "restoring the link must heal the stream back to the primary route"
    );
}

/// With both ring directions severed the direct one-sided path is
/// unrecoverable: the window degrades to control-message emulation, keeps
/// delivering, and re-promotes at the fence after the links come back.
#[test]
fn one_sided_falls_back_to_emulation_and_repromotes() {
    let _g = OBS_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let spec = chaos_spec().obs(obs::ObsConfig::enabled());
    run(spec, move |r| {
        let mem = r.alloc_mem(1 << 16).unwrap();
        let mut win = r.win_create(WinMemory::Alloc(mem)).unwrap();
        win.fence(r).unwrap();
        if r.rank() == 0 {
            // Primary 0→2 is [0,1]; the alternate rides [3,2]. Severing
            // one link of each leaves no direct route at all.
            r.fabric().faults().fail_link(LinkId(1));
            r.fabric().faults().fail_link(LinkId(2));
            // Default threshold is 2 consecutive failures: the first put
            // errors out, the retry demotes the target and is served by
            // the emulation path.
            let first = win.put(r, 2, 0, &[0x11; 2048]);
            assert!(first.is_err(), "no route: first direct put must fail");
            win.put(r, 2, 0, &[0x22; 2048])
                .expect("fallback must serve the retry via emulation");
            // Still under fallback: a get is emulated, not direct.
            let mut back = [0u8; 16];
            win.get(r, 2, 0, &mut back).expect("emulated get");
            assert_eq!(back, [0x22; 16]);
            r.fabric().faults().restore_link(LinkId(1));
            r.fabric().faults().restore_link(LinkId(2));
        }
        win.fence(r).unwrap(); // fence probes the healed primary and re-promotes
        if r.rank() == 0 {
            win.put(r, 2, 4096, &[0x33; 64]).expect("direct again");
        }
        win.fence(r).unwrap();
        if r.rank() == 2 {
            let mut buf = [0u8; 64];
            win.read_local(r, 0, &mut buf[..16]);
            assert_eq!(&buf[..16], &[0x22; 16]);
            win.read_local(r, 4096, &mut buf);
            assert_eq!(buf, [0x33; 64]);
        }
        win.fence(r).unwrap();
    });
    assert!(
        obs::counter_value(obs::Counter::OscFallbacks) > 0,
        "the demotion must be counted"
    );
    assert!(
        obs::counter_value(obs::Counter::OscRepromotions) > 0,
        "the fence-time probe must re-promote the healed target"
    );
}

/// Sustained one-sided traffic over the *emulated* path: with both ring
/// directions severed, a multi-round put/get/accumulate/typed-put sweep
/// keeps delivering bit-perfect data via control-message emulation, then
/// re-promotes once the cables are back. CI also runs this binary under
/// `CHAOS_CORRUPT_RATE`, layering silent corruption (absorbed by
/// `EndToEnd` retransmission) on top of the severed-route emulation.
#[test]
fn emulated_one_sided_sweep_under_link_failure() {
    let _g = OBS_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let spec = chaos_spec().obs(obs::ObsConfig::enabled());
    run(spec, move |r| {
        let mem = r.alloc_mem(1 << 16).unwrap();
        let mut win = r.win_create(WinMemory::Alloc(mem)).unwrap();
        win.fence(r).unwrap();
        if r.rank() == 0 {
            // No direct route 0→2 at all (see the fallback test above).
            r.fabric().faults().fail_link(LinkId(1));
            r.fabric().faults().fail_link(LinkId(2));
            let first = win.put(r, 2, 0, &[0x01; 512]);
            assert!(first.is_err(), "no route: first direct put must fail");
            win.put(r, 2, 0, &[0x01; 512]).expect("demoted retry");
            // Multi-round emulated put/get round trips, each bit-checked.
            for round in 0..4usize {
                let off = round * 4096;
                let pattern: Vec<u8> = (0..2048)
                    .map(|i: usize| (i * 13 + round * 7) as u8)
                    .collect();
                win.put(r, 2, off, &pattern).expect("emulated put");
                let mut back = vec![0u8; 2048];
                win.get(r, 2, off, &mut back).expect("emulated get");
                assert_eq!(back, pattern, "round {round}: emulated round trip");
            }
            // Emulated read-modify-write: ordered accumulates in one epoch.
            let ones: Vec<u8> = (0..8).flat_map(|_| 1i64.to_le_bytes()).collect();
            win.accumulate(r, 2, 16384, AccumulateOp::Replace, &[0u8; 64])
                .expect("emulated replace");
            win.accumulate(r, 2, 16384, AccumulateOp::SumI64, &ones)
                .expect("emulated sum");
            win.accumulate(r, 2, 16384, AccumulateOp::SumI64, &ones)
                .expect("emulated sum");
            // Emulated non-contiguous put: strided doubles.
            let dt = Datatype::vector(4, 1, 2, &Datatype::double());
            let c = Committed::commit(&dt);
            let src: Vec<u8> = (0..c.extent()).map(|i| (i + 1) as u8).collect();
            win.put_typed(r, 2, 20480, &c, 1, &src, 0)
                .expect("emulated typed put");
            r.fabric().faults().restore_link(LinkId(1));
            r.fabric().faults().restore_link(LinkId(2));
        }
        win.fence(r).unwrap(); // fence probes the healed primary and re-promotes
        if r.rank() == 0 {
            win.put(r, 2, 24576, &[0x44; 64]).expect("direct again");
        }
        win.fence(r).unwrap();
        if r.rank() == 2 {
            for round in 0..4usize {
                let off = round * 4096;
                let expect: Vec<u8> = (0..2048)
                    .map(|i: usize| (i * 13 + round * 7) as u8)
                    .collect();
                let mut buf = vec![0u8; 2048];
                win.read_local(r, off, &mut buf);
                assert_eq!(buf, expect, "round {round}: put landed in backing memory");
            }
            let mut acc = [0u8; 64];
            win.read_local(r, 16384, &mut acc);
            for (i, chunk) in acc.chunks(8).enumerate() {
                assert_eq!(
                    i64::from_le_bytes(chunk.try_into().unwrap()),
                    2,
                    "accumulate word {i}"
                );
            }
            let mut typed = [0u8; 56];
            win.read_local(r, 20480, &mut typed);
            for blk in 0..4 {
                let at = blk * 16;
                let expect: Vec<u8> = (at..at + 8).map(|i| (i + 1) as u8).collect();
                assert_eq!(&typed[at..at + 8], &expect[..], "typed block {blk}");
            }
            let mut direct = [0u8; 64];
            win.read_local(r, 24576, &mut direct);
            assert_eq!(direct, [0x44; 64]);
        }
        win.fence(r).unwrap();
    });
    assert!(
        obs::counter_value(obs::Counter::OscFallbacks) > 0,
        "the severed routes must demote the target"
    );
    assert!(
        obs::counter_value(obs::Counter::OscRepromotions) > 0,
        "the healed fence must re-promote"
    );
}

/// A receive from a crashed peer returns `PeerDead` after exactly the
/// deterministic timeout/backoff budget — no hang, no real-time dependence.
#[test]
fn dead_peer_is_detected_within_the_virtual_time_budget() {
    let _g = OBS_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let budget = death_delay(&Tuning::default());
    run(chaos_spec(), move |r| {
        r.barrier();
        if r.rank() == 6 {
            r.fabric().faults().kill_node(7);
            let t0 = r.now();
            let mut buf = [0u8; 8];
            let err = r
                .recv(Source::Rank(7), TagSel::Value(1), &mut buf)
                .expect_err("rank 7 is dead and never sent");
            assert_eq!(err, ScimpiError::PeerDead { peer: 7 });
            assert_eq!(
                r.now() - t0,
                budget,
                "the declared-dead wait must charge exactly the schedule"
            );
            r.fabric().faults().revive_node(7);
        }
        // Rank 7 idles (it crashed); everyone just meets at the barrier.
        r.barrier();
    });
}

/// The whole chaos scenario — reroute, dead peer — produces bit-identical
/// per-rank virtual times and payload digests across two same-seed runs.
#[test]
fn chaos_outcome_is_deterministic() {
    let _g = OBS_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let payload = vec![0x5A; 100_000];
    let scenario = || {
        run(chaos_spec(), |r| {
            if r.rank() == 0 {
                r.fabric().faults().fail_link(LinkId(1));
            }
            r.barrier();
            let mut digest = 0u64;
            if r.rank() == 0 {
                r.send(2, 7, &payload).expect("failover");
            } else if r.rank() == 2 {
                let mut buf = vec![0u8; 100_000];
                r.recv(Source::Rank(0), TagSel::Value(7), &mut buf)
                    .expect("delivery");
                digest = buf.iter().map(|&b| u64::from(b)).sum();
            }
            r.barrier();
            if r.rank() == 0 {
                r.fabric().faults().restore_link(LinkId(1));
            }
            r.barrier();
            if r.rank() == 6 {
                r.fabric().faults().kill_node(7);
                let mut buf = [0u8; 8];
                let err = r
                    .recv(Source::Rank(7), TagSel::Value(1), &mut buf)
                    .expect_err("dead peer");
                assert_eq!(err, ScimpiError::PeerDead { peer: 7 });
                r.fabric().faults().revive_node(7);
            }
            r.barrier();
            (r.now(), digest)
        })
    };
    let a = scenario();
    let b = scenario();
    assert_eq!(a, b, "same seed, same faults ⇒ same virtual-time outcome");
}
