//! Chaos integration tests: administrative faults (cable pulls, node
//! crashes) injected mid-run on a multi-ring cluster. The fault-tolerant
//! protocol layer must deliver bit-perfect data over alternate routes,
//! degrade one-sided communication to the emulated path when the direct
//! path stays severed, detect dead peers within the deterministic
//! virtual-time budget instead of hanging, and do all of it bit-identically
//! across same-seed runs.
//!
//! All fault schedules here are *administrative* (fail/restore/kill/revive
//! at barrier-separated points) with `error_rate == 0`: random injection
//! draws from one shared RNG whose interleaving across rank threads is not
//! deterministic, while admin faults are. Silent corruption is the one
//! exception — its per-pair RNG streams are deterministic — so CI also
//! runs this binary with `CHAOS_CORRUPT_RATE` set, layering bit flips and
//! dropped stores under `EndToEnd` integrity on top of every admin
//! schedule; all the bit-perfect assertions must keep holding.

use mpi_datatype::{Committed, Datatype};
use sci_fabric::LinkId;
use scimpi::{
    death_delay, revoke, run, AccumulateOp, ClusterSpec, CollectiveAlgo, ErrorMode, IntegrityMode,
    Rank, ReduceOp, ScimpiError, Source, TagSel, Tuning, WinMemory,
};
use simclock::SimDuration;
use std::sync::Mutex;

/// The obs recorder (and its enable switch, which `run` flips per spec) is
/// process-global: every test in this binary serialises on this mutex.
static OBS_SERIAL: Mutex<()> = Mutex::new(());

/// CI sweeps `CHAOS_SEED` to exercise the fault schedules under several
/// RNG streams; the scenarios themselves are seed-independent. When
/// `CHAOS_CORRUPT_RATE` is set, silent bit flips (plus dropped stores at a
/// quarter of the rate) ride under `EndToEnd` integrity, so every
/// bit-perfect assertion doubles as a corruption-recovery check.
fn chaos_spec() -> ClusterSpec {
    // The dying-collective scenarios assert rank-by-rank outcomes against
    // the naive schedules, so pin the algorithm rather than letting the
    // engine's Auto selection reshape who talks to whom.
    let mut tuning = Tuning {
        collective_algo: CollectiveAlgo::Naive,
        ..Tuning::default()
    };
    let mut spec = ClusterSpec::multi_ring(2, 4).errors(ErrorMode::ErrorsReturn);
    if let Ok(seed) = std::env::var("CHAOS_SEED") {
        spec.seed = seed.parse().expect("CHAOS_SEED must be an integer");
    }
    if let Ok(rate) = std::env::var("CHAOS_CORRUPT_RATE") {
        let rate: f64 = rate.parse().expect("CHAOS_CORRUPT_RATE must be a float");
        spec.faults.corrupt_rate = rate;
        spec.faults.drop_rate = rate / 4.0;
        tuning.integrity_mode = IntegrityMode::EndToEnd;
        tuning.max_retransmits = 64;
    }
    spec.tuning(tuning)
}

/// Pulling a cable on the primary route mid-run reroutes rendezvous
/// traffic over the alternate ring direction, bit-perfectly.
#[test]
fn link_failure_reroutes_rendezvous_traffic() {
    let _g = OBS_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let payload: Vec<u8> = (0..200_000).map(|i| (i * 37) as u8).collect();
    let expect = payload.clone();
    let spec = chaos_spec().obs(obs::ObsConfig::enabled());
    run(spec, move |r| {
        // Sever node1→node2, the middle of the primary route 0→2.
        if r.rank() == 0 {
            r.fabric().faults().fail_link(LinkId(1));
        }
        r.barrier();
        if r.rank() == 0 {
            r.send(2, 7, &payload)
                .expect("failover should absorb the cable pull");
        } else if r.rank() == 2 {
            let mut buf = vec![0u8; 200_000];
            let st = r
                .recv(Source::Rank(0), TagSel::Value(7), &mut buf)
                .expect("delivery over the alternate route");
            assert_eq!(st.len, 200_000);
            assert_eq!(buf, expect, "payload must be bit-perfect after reroute");
        }
        r.barrier();
        if r.rank() == 0 {
            r.fabric().faults().restore_link(LinkId(1));
        }
        r.barrier();
    });
    assert!(
        obs::counter_value(obs::Counter::RouteFailovers) > 0,
        "the reroute must be visible in the failover counter"
    );
}

/// A persistent one-sided window stream fails over when the cable is
/// pulled and heals back to the primary route once it is restored.
#[test]
fn window_stream_fails_over_and_heals() {
    let _g = OBS_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let spec = chaos_spec().obs(obs::ObsConfig::enabled());
    run(spec, move |r| {
        let mem = r.alloc_mem(1 << 16).unwrap();
        let mut win = r.win_create(WinMemory::Alloc(mem)).unwrap();
        win.fence(r).unwrap();
        if r.rank() == 0 {
            r.fabric().faults().fail_link(LinkId(1));
            // First put rides the alternate (degraded) route.
            win.put(r, 2, 0, &[0xAA; 4096]).expect("failover");
            r.fabric().faults().restore_link(LinkId(1));
            // The stream notices the healthy primary and switches back.
            win.put(r, 2, 4096, &[0xBB; 4096]).expect("healed");
        }
        win.fence(r).unwrap();
        if r.rank() == 2 {
            let mut buf = vec![0u8; 4096];
            win.read_local(r, 0, &mut buf);
            assert!(buf.iter().all(|&b| b == 0xAA), "degraded-route put landed");
            win.read_local(r, 4096, &mut buf);
            assert!(buf.iter().all(|&b| b == 0xBB), "post-heal put landed");
        }
        win.fence(r).unwrap();
    });
    assert!(obs::counter_value(obs::Counter::RouteFailovers) > 0);
    assert!(
        obs::counter_value(obs::Counter::RouteHeals) > 0,
        "restoring the link must heal the stream back to the primary route"
    );
}

/// With both ring directions severed the direct one-sided path is
/// unrecoverable: the window degrades to control-message emulation, keeps
/// delivering, and re-promotes at the fence after the links come back.
#[test]
fn one_sided_falls_back_to_emulation_and_repromotes() {
    let _g = OBS_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let spec = chaos_spec().obs(obs::ObsConfig::enabled());
    run(spec, move |r| {
        let mem = r.alloc_mem(1 << 16).unwrap();
        let mut win = r.win_create(WinMemory::Alloc(mem)).unwrap();
        win.fence(r).unwrap();
        if r.rank() == 0 {
            // Primary 0→2 is [0,1]; the alternate rides [3,2]. Severing
            // one link of each leaves no direct route at all.
            r.fabric().faults().fail_link(LinkId(1));
            r.fabric().faults().fail_link(LinkId(2));
            // Default threshold is 2 consecutive failures: the first put
            // errors out, the retry demotes the target and is served by
            // the emulation path.
            let first = win.put(r, 2, 0, &[0x11; 2048]);
            assert!(first.is_err(), "no route: first direct put must fail");
            win.put(r, 2, 0, &[0x22; 2048])
                .expect("fallback must serve the retry via emulation");
            // Still under fallback: a get is emulated, not direct.
            let mut back = [0u8; 16];
            win.get(r, 2, 0, &mut back).expect("emulated get");
            assert_eq!(back, [0x22; 16]);
            r.fabric().faults().restore_link(LinkId(1));
            r.fabric().faults().restore_link(LinkId(2));
        }
        win.fence(r).unwrap(); // fence probes the healed primary and re-promotes
        if r.rank() == 0 {
            win.put(r, 2, 4096, &[0x33; 64]).expect("direct again");
        }
        win.fence(r).unwrap();
        if r.rank() == 2 {
            let mut buf = [0u8; 64];
            win.read_local(r, 0, &mut buf[..16]);
            assert_eq!(&buf[..16], &[0x22; 16]);
            win.read_local(r, 4096, &mut buf);
            assert_eq!(buf, [0x33; 64]);
        }
        win.fence(r).unwrap();
    });
    assert!(
        obs::counter_value(obs::Counter::OscFallbacks) > 0,
        "the demotion must be counted"
    );
    assert!(
        obs::counter_value(obs::Counter::OscRepromotions) > 0,
        "the fence-time probe must re-promote the healed target"
    );
}

/// Sustained one-sided traffic over the *emulated* path: with both ring
/// directions severed, a multi-round put/get/accumulate/typed-put sweep
/// keeps delivering bit-perfect data via control-message emulation, then
/// re-promotes once the cables are back. CI also runs this binary under
/// `CHAOS_CORRUPT_RATE`, layering silent corruption (absorbed by
/// `EndToEnd` retransmission) on top of the severed-route emulation.
#[test]
fn emulated_one_sided_sweep_under_link_failure() {
    let _g = OBS_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let spec = chaos_spec().obs(obs::ObsConfig::enabled());
    run(spec, move |r| {
        let mem = r.alloc_mem(1 << 16).unwrap();
        let mut win = r.win_create(WinMemory::Alloc(mem)).unwrap();
        win.fence(r).unwrap();
        if r.rank() == 0 {
            // No direct route 0→2 at all (see the fallback test above).
            r.fabric().faults().fail_link(LinkId(1));
            r.fabric().faults().fail_link(LinkId(2));
            let first = win.put(r, 2, 0, &[0x01; 512]);
            assert!(first.is_err(), "no route: first direct put must fail");
            win.put(r, 2, 0, &[0x01; 512]).expect("demoted retry");
            // Multi-round emulated put/get round trips, each bit-checked.
            for round in 0..4usize {
                let off = round * 4096;
                let pattern: Vec<u8> = (0..2048)
                    .map(|i: usize| (i * 13 + round * 7) as u8)
                    .collect();
                win.put(r, 2, off, &pattern).expect("emulated put");
                let mut back = vec![0u8; 2048];
                win.get(r, 2, off, &mut back).expect("emulated get");
                assert_eq!(back, pattern, "round {round}: emulated round trip");
            }
            // Emulated read-modify-write: ordered accumulates in one epoch.
            let ones: Vec<u8> = (0..8).flat_map(|_| 1i64.to_le_bytes()).collect();
            win.accumulate(r, 2, 16384, AccumulateOp::Replace, &[0u8; 64])
                .expect("emulated replace");
            win.accumulate(r, 2, 16384, AccumulateOp::SumI64, &ones)
                .expect("emulated sum");
            win.accumulate(r, 2, 16384, AccumulateOp::SumI64, &ones)
                .expect("emulated sum");
            // Emulated non-contiguous put: strided doubles.
            let dt = Datatype::vector(4, 1, 2, &Datatype::double());
            let c = Committed::commit(&dt);
            let src: Vec<u8> = (0..c.extent()).map(|i| (i + 1) as u8).collect();
            win.put_typed(r, 2, 20480, &c, 1, &src, 0)
                .expect("emulated typed put");
            r.fabric().faults().restore_link(LinkId(1));
            r.fabric().faults().restore_link(LinkId(2));
        }
        win.fence(r).unwrap(); // fence probes the healed primary and re-promotes
        if r.rank() == 0 {
            win.put(r, 2, 24576, &[0x44; 64]).expect("direct again");
        }
        win.fence(r).unwrap();
        if r.rank() == 2 {
            for round in 0..4usize {
                let off = round * 4096;
                let expect: Vec<u8> = (0..2048)
                    .map(|i: usize| (i * 13 + round * 7) as u8)
                    .collect();
                let mut buf = vec![0u8; 2048];
                win.read_local(r, off, &mut buf);
                assert_eq!(buf, expect, "round {round}: put landed in backing memory");
            }
            let mut acc = [0u8; 64];
            win.read_local(r, 16384, &mut acc);
            for (i, chunk) in acc.chunks(8).enumerate() {
                assert_eq!(
                    i64::from_le_bytes(chunk.try_into().unwrap()),
                    2,
                    "accumulate word {i}"
                );
            }
            let mut typed = [0u8; 56];
            win.read_local(r, 20480, &mut typed);
            for blk in 0..4 {
                let at = blk * 16;
                let expect: Vec<u8> = (at..at + 8).map(|i| (i + 1) as u8).collect();
                assert_eq!(&typed[at..at + 8], &expect[..], "typed block {blk}");
            }
            let mut direct = [0u8; 64];
            win.read_local(r, 24576, &mut direct);
            assert_eq!(direct, [0x44; 64]);
        }
        win.fence(r).unwrap();
    });
    assert!(
        obs::counter_value(obs::Counter::OscFallbacks) > 0,
        "the severed routes must demote the target"
    );
    assert!(
        obs::counter_value(obs::Counter::OscRepromotions) > 0,
        "the healed fence must re-promote"
    );
}

/// A receive from a crashed peer returns `PeerDead` after exactly the
/// deterministic timeout/backoff budget — no hang, no real-time dependence.
#[test]
fn dead_peer_is_detected_within_the_virtual_time_budget() {
    let _g = OBS_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let budget = death_delay(&Tuning::default());
    run(chaos_spec(), move |r| {
        r.barrier();
        if r.rank() == 6 {
            r.fabric().faults().kill_node(7);
            let t0 = r.now();
            let mut buf = [0u8; 8];
            let err = r
                .recv(Source::Rank(7), TagSel::Value(1), &mut buf)
                .expect_err("rank 7 is dead and never sent");
            assert_eq!(err, ScimpiError::PeerDead { peer: 7 });
            assert_eq!(
                r.now() - t0,
                budget,
                "the declared-dead wait must charge exactly the schedule"
            );
            r.fabric().faults().revive_node(7);
        }
        // Rank 7 idles (it crashed); everyone just meets at the barrier.
        r.barrier();
    });
}

/// The whole chaos scenario — reroute, dead peer — produces bit-identical
/// per-rank virtual times and payload digests across two same-seed runs.
#[test]
fn chaos_outcome_is_deterministic() {
    let _g = OBS_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let payload = vec![0x5A; 100_000];
    let scenario = || {
        run(chaos_spec(), |r| {
            if r.rank() == 0 {
                r.fabric().faults().fail_link(LinkId(1));
            }
            r.barrier();
            let mut digest = 0u64;
            if r.rank() == 0 {
                r.send(2, 7, &payload).expect("failover");
            } else if r.rank() == 2 {
                let mut buf = vec![0u8; 100_000];
                r.recv(Source::Rank(0), TagSel::Value(7), &mut buf)
                    .expect("delivery");
                digest = buf.iter().map(|&b| u64::from(b)).sum();
            }
            r.barrier();
            if r.rank() == 0 {
                r.fabric().faults().restore_link(LinkId(1));
            }
            r.barrier();
            if r.rank() == 6 {
                r.fabric().faults().kill_node(7);
                let mut buf = [0u8; 8];
                let err = r
                    .recv(Source::Rank(7), TagSel::Value(1), &mut buf)
                    .expect_err("dead peer");
                assert_eq!(err, ScimpiError::PeerDead { peer: 7 });
                r.fabric().faults().revive_node(7);
            }
            r.barrier();
            (r.now(), digest)
        })
    };
    let a = scenario();
    let b = scenario();
    assert_eq!(a, b, "same seed, same faults ⇒ same virtual-time outcome");
}

// ---------------------------------------------------------------------------
// Dying collectives: a rank's node crashes while a collective operation is
// in flight. Every survivor must come back within the deterministic
// timeout budget — `PeerDead` for ranks talking to the corpse directly,
// `Revoked` for ranks stranded on live peers that aborted — and the
// per-rank error-site map must be bit-identical across same-seed runs.
// ---------------------------------------------------------------------------

/// Rendezvous-sized payload: eager sends to a dead peer complete locally
/// (fire-and-forget), so only rendezvous traffic exposes the death.
const RDV: usize = 150_000;
/// The same threshold in f64 elements (160 kB) for the typed collectives.
const F64_RDV: usize = 20_000;

/// Drive one collective on the chaos cluster while `victim` crashes right
/// after the opening barrier, so the operation is in flight when the
/// death is discovered. `revoker` — always a rank whose tree/chain edges
/// touch the victim, hence guaranteed `PeerDead` — then revokes the
/// communicator to unblock survivors stranded on live-but-aborted peers.
///
/// The revoke is held back behind a real-time pause: whether a rank
/// blocked on the *dead* peer observes `PeerDead` or `Revoked` first
/// depends on which check its poll loop hits first, so installing the
/// revocation only after the fault has quiesced keeps the error-site map
/// a pure function of the collective's structure. The pause costs no
/// virtual time (determinism is virtual-time determinism).
///
/// Returns per-rank `(outcome, virtual elapsed since the barrier)`.
fn dying_collective<F>(victim: usize, revoker: usize, op: F) -> Vec<(String, SimDuration)>
where
    F: Fn(&mut Rank) -> Result<(), ScimpiError> + Send + Sync,
{
    run(chaos_spec(), move |r| {
        r.barrier();
        let t0 = r.now();
        if r.rank() == victim {
            r.fabric().faults().kill_node(victim);
            return ("dead".to_string(), r.now() - t0);
        }
        let outcome = match op(r) {
            Ok(()) => "ok".to_string(),
            Err(e) => format!("{e:?}"),
        };
        if r.rank() == revoker {
            std::thread::sleep(std::time::Duration::from_millis(800));
            revoke(r);
        }
        (outcome, r.now() - t0)
    })
}

/// Assert the per-rank outcome map (`"ok"`, `"dead"`, `"pd"` =
/// `PeerDead{victim}`, `"rev"` = `Revoked`) and that every error
/// surfaced within a budget-scale bound rather than a hang-scale one.
fn check_dying_outcomes(
    name: &str,
    victim: usize,
    expect: &[&str; 8],
    outcomes: &[(String, SimDuration)],
    budget: SimDuration,
) {
    let pd = format!("{:?}", ScimpiError::PeerDead { peer: victim });
    let rv = format!("{:?}", ScimpiError::Revoked);
    let want: Vec<String> = expect
        .iter()
        .map(|w| match *w {
            "pd" => pd.clone(),
            "rev" => rv.clone(),
            other => other.to_string(),
        })
        .collect();
    let got: Vec<String> = outcomes.iter().map(|(o, _)| o.clone()).collect();
    assert_eq!(got, want, "{name}: per-rank outcome map");
    // One death schedule plus transfer costs plus the revocation gossip:
    // generous, but distinguishes "bounded detection" from a hang.
    let bound = budget * 2 + SimDuration::from_ms(50);
    for (rank, (outcome, elapsed)) in outcomes.iter().enumerate() {
        if outcome != "ok" && outcome != "dead" {
            assert!(
                *elapsed <= bound,
                "{name}: rank {rank} took {elapsed:?} (> {bound:?}) to surface {outcome}"
            );
        }
    }
}

/// Broadcast with a dying interior (non-leaf) tree node: the root stalls
/// sending to the corpse, the corpse's child stalls receiving from it,
/// the still-unserved subtree is stranded and needs the revocation,
/// while the subtree served before the death completes bit-perfectly.
#[test]
fn dying_interior_rank_cuts_bcast_deterministically() {
    let _g = OBS_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let budget = death_delay(&Tuning::default());
    // Binomial tree from root 0 over 8 ranks: 0→{4,2,1}, 2→3, 4→{6,5},
    // 6→7, and the root sends highest-mask-first. Victim 2: rank 0 serves
    // 4's subtree, then dies on the send to 2 (never reaching 1); rank 3
    // dies on the recv from its parent 2.
    let scenario = || {
        dying_collective(2, 3, |r| {
            let mut buf = vec![0u8; RDV];
            if r.rank() == 0 {
                for (i, b) in buf.iter_mut().enumerate() {
                    *b = (i * 31) as u8;
                }
            }
            r.bcast(0, &mut buf)?;
            for (i, b) in buf.iter().enumerate() {
                assert_eq!(*b, (i * 31) as u8, "completed bcast must be bit-perfect");
            }
            Ok(())
        })
    };
    let a = scenario();
    check_dying_outcomes(
        "bcast",
        2,
        &["pd", "rev", "dead", "pd", "ok", "ok", "ok", "ok"],
        &a,
        budget,
    );
    // Rank 3's first action is the recv from its dead parent, so its
    // clock charges exactly the death schedule — nothing more.
    assert_eq!(
        a[3].1, budget,
        "child of the corpse pays exactly the schedule"
    );
    let b = scenario();
    assert_eq!(a, b, "same seed ⇒ identical error sites and virtual times");
}

/// All-reduce with the dying rank being the reduce root: every survivor
/// surfaces an error — the root's reduce children get `PeerDead`, the
/// rest finish the reduce but strand in the broadcast and get `Revoked`.
#[test]
fn dying_root_fails_allreduce_on_every_survivor() {
    let _g = OBS_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let budget = death_delay(&Tuning::default());
    let scenario = || {
        dying_collective(0, 1, |r| {
            let mut buf = vec![1.0f64; F64_RDV];
            r.allreduce(&mut buf, ReduceOp::Sum)
        })
    };
    let a = scenario();
    check_dying_outcomes(
        "allreduce",
        0,
        &["dead", "pd", "pd", "rev", "pd", "rev", "rev", "rev"],
        &a,
        budget,
    );
    let b = scenario();
    assert_eq!(a, b, "same seed ⇒ identical error sites and virtual times");
}

/// Gatherv with a dying contributor: the root collects the ranks before
/// the corpse, dies on it, and the contributors after it — whose
/// rendezvous payloads now wait on a root that gave up — are released by
/// the revocation instead of hanging on a live peer.
#[test]
fn dying_sender_mid_gather_strands_then_revokes() {
    let _g = OBS_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let budget = death_delay(&Tuning::default());
    let scenario = || {
        dying_collective(3, 0, |r| {
            let mine = vec![r.rank() as u8; RDV];
            r.gatherv(0, &mine).map(|_| ())
        })
    };
    let a = scenario();
    check_dying_outcomes(
        "gatherv",
        3,
        &["pd", "ok", "ok", "dead", "rev", "rev", "rev", "rev"],
        &a,
        budget,
    );
    let b = scenario();
    assert_eq!(a, b, "same seed ⇒ identical error sites and virtual times");
}

/// All-gather with a dying contributor: the gather phase dies at the
/// root, so no rank ever reaches the broadcast payload — everyone except
/// the root is stranded (in the gather or in the broadcast prefix) and
/// must be released by the revocation.
#[test]
fn dying_contributor_fails_allgather_everywhere() {
    let _g = OBS_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let budget = death_delay(&Tuning::default());
    let scenario = || {
        dying_collective(5, 0, |r| {
            let mine = vec![r.rank() as u8; RDV];
            r.allgather(&mine).map(|_| ())
        })
    };
    let a = scenario();
    check_dying_outcomes(
        "allgather",
        5,
        &["pd", "rev", "rev", "rev", "rev", "dead", "rev", "rev"],
        &a,
        budget,
    );
    let b = scenario();
    assert_eq!(a, b, "same seed ⇒ identical error sites and virtual times");
}

/// Prefix-sum chain with a dying middle link: ranks before the corpse
/// complete with correct prefixes, its chain neighbours get `PeerDead`,
/// and the tail of the chain is stranded until the revocation.
#[test]
fn dying_link_in_scan_chain_splits_outcomes() {
    let _g = OBS_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let budget = death_delay(&Tuning::default());
    let scenario = || {
        dying_collective(4, 5, |r| {
            let me = r.rank();
            let mut out = vec![1.0f64; F64_RDV];
            r.scan(&mut out, ReduceOp::Sum)?;
            assert_eq!(
                out[0],
                (me + 1) as f64,
                "completed scan must hold the exact prefix"
            );
            Ok(())
        })
    };
    let a = scenario();
    check_dying_outcomes(
        "scan",
        4,
        &["ok", "ok", "ok", "pd", "dead", "pd", "rev", "rev"],
        &a,
        budget,
    );
    // Rank 5's first action is the recv from its dead predecessor, so
    // its clock charges exactly the death schedule.
    assert_eq!(
        a[5].1, budget,
        "successor of the corpse pays exactly the schedule"
    );
    let b = scenario();
    assert_eq!(a, b, "same seed ⇒ identical error sites and virtual times");
}

/// Pairwise all-to-all with a dying rank: each step's partner of the
/// corpse gets `PeerDead` as the steps sweep past it, and ranks whose
/// step-partners aborted earlier are stranded until the revocation.
#[test]
fn dying_rank_aborts_alltoall_pairwise_exchange() {
    let _g = OBS_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let budget = death_delay(&Tuning::default());
    let scenario = || {
        dying_collective(6, 5, |r| {
            let me = r.rank();
            let blocks: Vec<Vec<u8>> = (0..8).map(|d| vec![(me * 8 + d) as u8; RDV]).collect();
            r.alltoall(&blocks).map(|_| ())
        })
    };
    let a = scenario();
    check_dying_outcomes(
        "alltoall",
        6,
        &["pd", "rev", "rev", "rev", "pd", "pd", "dead", "pd"],
        &a,
        budget,
    );
    let b = scenario();
    assert_eq!(a, b, "same seed ⇒ identical error sites and virtual times");
}
