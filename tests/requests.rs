//! Integration tests for the nonblocking request engine: completion
//! idempotence, waitany ordering, persistent-request timing, overlap
//! accounting, and — the load-bearing property — bit-identical behaviour
//! vs the blocking verbs under end-to-end integrity checking and silent
//! fault injection. CI sweeps `REQUESTS_SEED` over several values.

use scimpi::{
    death_delay, run, ClusterSpec, ErrorMode, IntegrityMode, RecvBuf, ScimpiError, SendData,
    Source, TagSel, Tuning, WinMemory,
};
use simclock::{SimDuration, SimTime};
use std::sync::Mutex;

/// The obs recorder (and its enable switch, which `run` flips per spec)
/// is process-global: tests that read counters serialise on this mutex.
static OBS_SERIAL: Mutex<()> = Mutex::new(());

/// Above the eager threshold, so transfers take the rendezvous path and
/// actually have wire time to hide.
const RDV: usize = 150_000;

fn seeded(spec: ClusterSpec) -> ClusterSpec {
    let mut spec = spec;
    if let Ok(seed) = std::env::var("REQUESTS_SEED") {
        spec.seed = seed.parse().expect("REQUESTS_SEED must be an integer");
    }
    spec
}

#[test]
fn wait_after_complete_is_idempotent() {
    let out = run(seeded(ClusterSpec::ringlet(2)), |r| {
        if r.rank() == 0 {
            let mut req = r.irecv(Source::Rank(1), TagSel::Value(3), 64).unwrap();
            let first = r.wait(&mut req).unwrap();
            let t_after_first = r.now();
            // Re-waiting returns the stored result without touching the
            // clock — like waiting an inactive MPI request.
            let second = r.wait(&mut req).unwrap();
            assert_eq!(first.data, second.data);
            assert_eq!(first.status.len, second.status.len);
            assert_eq!(r.now(), t_after_first, "re-wait must not charge time");
            // And `test` on a completed request stays complete, also free.
            let third = r.test(&mut req).expect("completed request tests Some");
            assert_eq!(third.unwrap().data, first.data);
            assert_eq!(r.now(), t_after_first);
            first.data
        } else {
            r.send(0, 3, &[7u8; 64]).unwrap();
            Vec::new()
        }
    });
    assert!(out[0].iter().all(|&b| b == 7));
}

#[test]
fn waitany_returns_earliest_virtual_completion() {
    run(seeded(ClusterSpec::ringlet(3)), |r| {
        if r.rank() == 0 {
            // Two receives: rank 2's small eager message drains long
            // before rank 1's rendezvous bulk. waitany must pick it
            // first regardless of posting order.
            let mut reqs = vec![
                r.irecv(Source::Rank(1), TagSel::Value(1), RDV).unwrap(),
                r.irecv(Source::Rank(2), TagSel::Value(2), 32).unwrap(),
            ];
            let (first, res) = r.waitany(&mut reqs);
            let done = res.unwrap();
            assert_eq!(first, 1, "the small eager message completes first");
            assert_eq!(done.status.src, 2);
            let (second, res) = r.waitany(&mut reqs);
            assert_eq!(second, 0);
            assert_eq!(res.unwrap().status.len, RDV);
        } else if r.rank() == 1 {
            r.send(0, 1, &vec![1u8; RDV]).unwrap();
        } else {
            r.send(0, 2, &[2u8; 32]).unwrap();
        }
    });
}

#[test]
fn persistent_restart_matches_fresh_requests() {
    // N iterations through persistent handles must be bit-identical in
    // virtual time to N fresh isend/irecv posts of the same arguments.
    let persistent = run(seeded(ClusterSpec::ringlet(2)), |r| {
        if r.rank() == 0 {
            let data = vec![9u8; RDV];
            let ps = r.send_init(1, 5, &data);
            for _ in 0..3 {
                let mut req = ps.start(r).unwrap();
                r.compute(SimDuration::from_us(500));
                r.wait(&mut req).unwrap();
            }
        } else {
            let pr = r.recv_init(Source::Rank(0), TagSel::Value(5), RDV);
            for _ in 0..3 {
                let mut req = pr.start(r).unwrap();
                r.compute(SimDuration::from_us(500));
                let done = r.wait(&mut req).unwrap();
                assert!(done.data.iter().all(|&b| b == 9));
            }
        }
        r.barrier();
        r.now()
    });
    let fresh = run(seeded(ClusterSpec::ringlet(2)), |r| {
        if r.rank() == 0 {
            let data = vec![9u8; RDV];
            for _ in 0..3 {
                let mut req = r.isend(1, 5, &data).unwrap();
                r.compute(SimDuration::from_us(500));
                r.wait(&mut req).unwrap();
            }
        } else {
            for _ in 0..3 {
                let mut req = r.irecv(Source::Rank(0), TagSel::Value(5), RDV).unwrap();
                r.compute(SimDuration::from_us(500));
                let done = r.wait(&mut req).unwrap();
                assert!(done.data.iter().all(|&b| b == 9));
            }
        }
        r.barrier();
        r.now()
    });
    assert_eq!(persistent, fresh, "persistent restart must cost the same");
}

/// A 4-rank ring-shift halo exchange (two messages to the right
/// neighbour, two received from the left — the unidirectional SCI
/// ringlet's natural pattern, keeping every pair's route link-disjoint
/// so contention stays order-free); `nonblocking` selects the arm.
/// Returns each rank's two received halos and finish time — the
/// payloads must match between arms bit for bit.
fn halo_exchange(spec: ClusterSpec, nonblocking: bool) -> Vec<(Vec<u8>, Vec<u8>, SimTime)> {
    run(spec, move |r| {
        let me = r.rank();
        let n = r.size();
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        let row_a: Vec<u8> = (0..RDV).map(|i| (me * 31 + i * 7) as u8).collect();
        let row_b: Vec<u8> = (0..RDV).map(|i| (me * 17 + i * 3) as u8).collect();
        let (got_a, got_b) = if nonblocking {
            let mut reqs = vec![
                r.irecv(Source::Rank(left), TagSel::Value(0), RDV).unwrap(),
                r.irecv(Source::Rank(left), TagSel::Value(1), RDV).unwrap(),
            ];
            let mut sreqs = vec![
                r.isend(right, 0, &row_a).unwrap(),
                r.isend(right, 1, &row_b).unwrap(),
            ];
            r.compute(SimDuration::from_ms(2));
            r.waitall(&mut sreqs).unwrap();
            let done = r.waitall(&mut reqs).unwrap();
            let mut it = done.into_iter();
            (it.next().unwrap().data, it.next().unwrap().data)
        } else {
            let mut got_a = vec![0u8; RDV];
            let mut got_b = vec![0u8; RDV];
            r.sendrecv(
                right,
                0,
                SendData::Bytes(&row_a),
                Source::Rank(left),
                TagSel::Value(0),
                RecvBuf::Bytes(&mut got_a),
            )
            .unwrap();
            r.sendrecv(
                right,
                1,
                SendData::Bytes(&row_b),
                Source::Rank(left),
                TagSel::Value(1),
                RecvBuf::Bytes(&mut got_b),
            )
            .unwrap();
            r.compute(SimDuration::from_ms(2));
            (got_a, got_b)
        };
        r.barrier();
        (got_a, got_b, r.now())
    })
}

#[test]
fn nonblocking_delivers_blocking_payloads_under_end_to_end_integrity() {
    // Same payloads as the blocking arm, bit for bit, with CRC framing
    // verifying every byte and silent faults flipping bits underneath.
    let lossy = |spec: ClusterSpec| {
        let mut spec = seeded(spec);
        spec.faults.corrupt_rate = 2e-4;
        spec.faults.drop_rate = 5e-5;
        spec.tuning(Tuning {
            integrity_mode: IntegrityMode::EndToEnd,
            max_retransmits: 64,
            ..Tuning::default()
        })
    };
    let nb = halo_exchange(lossy(ClusterSpec::ringlet(4)), true);
    let bl = halo_exchange(lossy(ClusterSpec::ringlet(4)), false);
    for (rank, ((na, nb_, _), (ba, bb, _))) in nb.iter().zip(bl.iter()).enumerate() {
        assert_eq!(na, ba, "rank {rank} first halo differs between arms");
        assert_eq!(nb_, bb, "rank {rank} second halo differs between arms");
    }
}

// Known rare flake on the thread backend: the two concurrent isends to
// one neighbour drain on separate engine threads and interleave their
// draws on the injector's shared per-pair fault stream in host order,
// so retransmit counts — and with them the finish time — can be
// bimodal while every payload stays exact. See the thread-backend
// nondeterminism notes in docs/SCHEDULER.md; the event backend pins
// this scenario.
#[test]
fn nonblocking_halo_is_deterministic_across_same_seed_runs() {
    let spec = || {
        let mut spec = seeded(ClusterSpec::ringlet(4));
        spec.faults.corrupt_rate = 2e-4;
        spec.faults.drop_rate = 5e-5;
        spec.tuning(Tuning {
            integrity_mode: IntegrityMode::EndToEnd,
            max_retransmits: 64,
            ..Tuning::default()
        })
    };
    let a = halo_exchange(spec(), true);
    let b = halo_exchange(spec(), true);
    assert_eq!(a, b, "same seed must give bit-identical times and bytes");
}

#[test]
fn iget_overlap_composes_with_integrity_checking() {
    // The clock-swap fork in iget must not disturb the one-sided epoch
    // ledger: bytes verified end-to-end, stall hidden behind compute.
    let spec = {
        let mut spec = seeded(ClusterSpec::ringlet(2));
        spec.faults.corrupt_rate = 1e-4;
        spec.tuning(Tuning {
            integrity_mode: IntegrityMode::EndToEnd,
            max_retransmits: 64,
            ..Tuning::default()
        })
    };
    run(spec, |r| {
        let mem = r.alloc_mem(4096).unwrap();
        let mut win = r.win_create(WinMemory::Alloc(mem)).unwrap();
        if r.rank() == 1 {
            win.write_local(r, 0, &[0x5Au8; 1024]);
        }
        win.fence(r).unwrap();
        if r.rank() == 0 {
            let mut req = win.iget(r, 1, 0, 1024).unwrap();
            let t0 = r.now();
            r.compute(SimDuration::from_ms(5));
            let got = r.wait(&mut req).unwrap();
            assert!(got.iter().all(|&b| b == 0x5A));
            assert_eq!(
                r.now() - t0,
                SimDuration::from_ms(5),
                "read stall must hide behind the compute"
            );
        }
        win.fence(r).unwrap();
    });
}

#[test]
fn request_counters_balance_and_overlap_is_credited() {
    let _g = OBS_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let spec = seeded(ClusterSpec::ringlet(2)).obs(obs::ObsConfig::enabled());
    run(spec, |r| {
        if r.rank() == 0 {
            let data = vec![8u8; RDV];
            let mut req = r.isend(1, 0, &data).unwrap();
            r.compute(SimDuration::from_ms(2));
            r.wait(&mut req).unwrap();
            // And one fire-and-forget, reaped at the barrier.
            let _ = r.isend(1, 1, &[1u8; 16]).unwrap();
        } else {
            let mut buf = vec![0u8; RDV];
            r.recv(Source::Rank(0), TagSel::Value(0), &mut buf).unwrap();
            let mut small = [0u8; 16];
            r.recv(Source::Rank(0), TagSel::Value(1), &mut small)
                .unwrap();
        }
        r.barrier();
        assert_eq!(r.pending_requests(), 0, "all requests retired");
    });
    let posted = obs::counter_value(obs::Counter::RequestsPosted);
    let completed = obs::counter_value(obs::Counter::RequestsCompleted);
    let dropped = obs::counter_value(obs::Counter::RequestsCompletedByDrop);
    assert_eq!(posted, 2);
    assert_eq!(completed, 2, "waited + dropped both count as completed");
    assert_eq!(dropped, 1);
    assert!(
        obs::counter_value(obs::Counter::OverlapSavedNs) > 0,
        "hiding a rendezvous transfer behind 2 ms of compute saves time"
    );
}

/// A peer death detected on the engine thread must come back through
/// `wait` as an error value under `ErrorsReturn` — the engine helper
/// only records it; the rank's error mode is consulted at the sync point.
#[test]
fn wait_surfaces_engine_detected_peer_death() {
    let budget = death_delay(&Tuning::default());
    run(
        seeded(ClusterSpec::ringlet(2)).errors(ErrorMode::ErrorsReturn),
        move |r| {
            r.barrier();
            if r.rank() == 0 {
                r.fabric().faults().kill_node(1);
                let t0 = r.now();
                let data = vec![3u8; RDV];
                let mut req = r.isend(1, 9, &data).unwrap();
                let err = r
                    .wait(&mut req)
                    .expect_err("the rendezvous peer is dead: wait must escalate");
                assert_eq!(err, ScimpiError::PeerDead { peer: 1 });
                assert!(
                    r.now() - t0 >= budget,
                    "the engine's death schedule must be merged into the waiter"
                );
                r.fabric().faults().revive_node(1);
            }
            // Rank 1 idles (its node was dead); both meet at the barrier.
            r.barrier();
        },
    );
}

/// A *dropped* failing request must route its error through the rank's
/// error handler at reap time (under `ErrorsReturn`: counted and traced,
/// not silently swallowed in the drop bin).
#[test]
fn dropped_failing_request_routes_through_error_handler() {
    let _g = OBS_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let spec = seeded(ClusterSpec::ringlet(2))
        .errors(ErrorMode::ErrorsReturn)
        .obs(obs::ObsConfig::enabled());
    run(spec, |r| {
        r.barrier();
        if r.rank() == 0 {
            r.fabric().faults().kill_node(1);
            // Fire-and-forget to a corpse: the engine observes PeerDead,
            // the handle is dropped without ever being waited on.
            let data = vec![3u8; RDV];
            drop(r.isend(1, 9, &data).unwrap());
            r.fabric().faults().revive_node(1);
        }
        r.barrier(); // the barrier reaps the drop bin
        assert_eq!(r.pending_requests(), 0, "the dropped request is retired");
    });
    assert_eq!(
        obs::counter_value(obs::Counter::RequestsCompletedByDrop),
        1,
        "the dropped request still completes through the drop bin"
    );
    assert!(
        obs::events_snapshot()
            .iter()
            .any(|e| e.name == "req.dropped_error"),
        "the dropped request's PeerDead must surface through the error handler trace"
    );
}
