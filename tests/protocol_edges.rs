//! Protocol edge cases: zero-length messages, threshold boundaries,
//! self-messaging, tag multiplexing, and many-small-message streams —
//! the corners where eager/rendezvous switching and matching logic break
//! if anything is off by one.

use mpi_datatype::{Committed, Datatype};
use scimpi::{run, ClusterSpec, RecvBuf, SendData, Source, TagSel, Tuning};
use simclock::SimTime;

#[test]
fn zero_length_messages_match_and_cost_little() {
    run(ClusterSpec::ringlet(2), |r| {
        if r.rank() == 0 {
            r.send(1, 42, &[]).unwrap();
        } else {
            let mut buf = [0u8; 0];
            let st = r
                .recv(Source::Rank(0), TagSel::Value(42), &mut buf)
                .unwrap();
            assert_eq!(st.len, 0);
            assert_eq!(st.tag, 42);
            assert!(r.now() > SimTime::ZERO, "even empty messages cost time");
        }
    });
}

#[test]
fn messages_at_protocol_thresholds() {
    // Exactly at, one below, one above the short and eager thresholds.
    let t = Tuning::default();
    let sizes = [
        t.short_threshold - 1,
        t.short_threshold,
        t.short_threshold + 1,
        t.eager_threshold - 1,
        t.eager_threshold,
        t.eager_threshold + 1,
        t.rendezvous_chunk,
        t.rendezvous_chunk + 1,
        t.rendezvous_chunk * t.ring_slots + 7,
    ];
    run(ClusterSpec::ringlet(2), move |r| {
        for (i, &len) in sizes.iter().enumerate() {
            if r.rank() == 0 {
                let data: Vec<u8> = (0..len).map(|j| (j ^ i) as u8).collect();
                r.send(1, i as i32, &data).unwrap();
            } else {
                let mut buf = vec![0u8; len];
                let st = r
                    .recv(Source::Rank(0), TagSel::Value(i as i32), &mut buf)
                    .unwrap();
                assert_eq!(st.len, len);
                assert!(
                    buf.iter().enumerate().all(|(j, &b)| b == (j ^ i) as u8),
                    "payload corrupted at size {len}"
                );
            }
        }
    });
}

#[test]
fn self_sendrecv_works() {
    run(ClusterSpec::ringlet(2), |r| {
        // Eager self-message.
        let me = r.rank();
        let mut buf = vec![0u8; 64];
        let st = r
            .sendrecv(
                me,
                1,
                SendData::Bytes(&[me as u8; 64]),
                Source::Rank(me),
                TagSel::Value(1),
                RecvBuf::Bytes(&mut buf),
            )
            .unwrap();
        assert_eq!(st.src, me);
        assert!(buf.iter().all(|&b| b == me as u8));

        // Rendezvous-size self-message through the helper-thread path.
        let big = vec![me as u8 + 10; 100_000];
        let mut bbuf = vec![0u8; 100_000];
        r.sendrecv(
            me,
            2,
            SendData::Bytes(&big),
            Source::Rank(me),
            TagSel::Value(2),
            RecvBuf::Bytes(&mut bbuf),
        )
        .unwrap();
        assert!(bbuf.iter().all(|&b| b == me as u8 + 10));
    });
}

#[test]
fn tag_multiplexing_between_same_pair() {
    run(ClusterSpec::ringlet(2), |r| {
        if r.rank() == 0 {
            // Interleave three tag streams.
            for i in 0..10u8 {
                r.send(1, 100, &[i, 0]).unwrap();
                r.send(1, 200, &[i, 1]).unwrap();
                r.send(1, 300, &[i, 2]).unwrap();
            }
        } else {
            // Drain them in a different order; per-tag order must hold.
            for tag in [300, 100, 200] {
                for i in 0..10u8 {
                    let mut buf = [0u8; 2];
                    r.recv(Source::Rank(0), TagSel::Value(tag), &mut buf)
                        .unwrap();
                    assert_eq!(buf[0], i, "tag {tag} out of order");
                }
            }
        }
    });
}

#[test]
fn typed_message_with_offset_origin() {
    // Negative-displacement type: origin points into the middle of the
    // buffer, exactly like an interior grid cell with halo.
    run(ClusterSpec::ringlet(2), |r| {
        let dt = Datatype::hindexed(&[(2, -16), (2, 16)], &Datatype::double());
        let c = Committed::commit(&dt);
        assert_eq!(c.size(), 32);
        if r.rank() == 0 {
            let buf: Vec<u8> = (0..64).map(|i| i as u8).collect();
            r.send_typed(1, 0, &c, 1, &buf, 24).unwrap(); // origin at byte 24
        } else {
            let mut buf = vec![0u8; 64];
            r.recv_typed(Source::Rank(0), TagSel::Value(0), &c, 1, &mut buf, 24)
                .unwrap();
            // Blocks at 24-16=8..24 and 24+16=40..56.
            for (i, b) in buf.iter().enumerate().take(24).skip(8) {
                assert_eq!(*b, i as u8);
            }
            for (i, b) in buf.iter().enumerate().take(56).skip(40) {
                assert_eq!(*b, i as u8);
            }
            assert!(buf[24..40].iter().all(|&b| b == 0), "gap written");
        }
    });
}

#[test]
fn thousand_small_messages_stream_through() {
    run(ClusterSpec::ringlet(2), |r| {
        const N: usize = 1000;
        if r.rank() == 0 {
            for i in 0..N {
                r.send(1, 7, &(i as u32).to_le_bytes()).unwrap();
            }
        } else {
            for i in 0..N {
                let mut buf = [0u8; 4];
                r.recv(Source::Rank(0), TagSel::Value(7), &mut buf).unwrap();
                assert_eq!(u32::from_le_bytes(buf) as usize, i);
            }
        }
    });
}

#[test]
fn empty_datatype_send() {
    run(ClusterSpec::ringlet(2), |r| {
        let dt = Datatype::contiguous(0, &Datatype::double());
        let c = Committed::commit(&dt);
        if r.rank() == 0 {
            r.send_typed(1, 5, &c, 4, &[], 0).unwrap();
        } else {
            let mut buf = [0u8; 0];
            let st = r
                .recv_typed(Source::Rank(0), TagSel::Value(5), &c, 4, &mut buf, 0)
                .unwrap();
            assert_eq!(st.len, 0);
        }
    });
}

#[test]
fn probe_then_receive() {
    run(ClusterSpec::ringlet(2), |r| {
        if r.rank() == 0 {
            r.send(1, 77, b"probed").unwrap();
            r.barrier();
        } else {
            r.barrier(); // ensure the message is queued
            let (src, tag) = loop {
                if let Some(hit) = r.probe(Source::Any, TagSel::Any) {
                    break hit;
                }
            };
            assert_eq!((src, tag), (0, 77));
            let mut buf = [0u8; 6];
            r.recv(Source::Rank(src), TagSel::Value(tag), &mut buf)
                .unwrap();
            assert_eq!(&buf, b"probed");
        }
    });
}
