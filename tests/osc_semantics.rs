//! MPI-2 one-sided semantics: epoch rules, multiple windows, PSCW with
//! proper subgroups, accumulate operators, window bounds, and the memory
//! allocator interplay — the correctness surface behind Figure 9's
//! performance surface.

use mpi_datatype::typed;
use scimpi::{run, AccumulateOp, ClusterSpec, Rank, WinMemory, Window};
use simclock::SimDuration;

fn shared_window(r: &mut Rank, len: usize) -> Window {
    let mem = r.alloc_mem(len).unwrap();
    r.win_create(WinMemory::Alloc(mem)).unwrap()
}

/// Several windows coexist: operations through one never touch another.
#[test]
fn multiple_windows_are_isolated() {
    run(ClusterSpec::ringlet(2), |r| {
        let mut w1 = shared_window(r, 256);
        let mut w2 = shared_window(r, 256);
        if r.rank() == 0 {
            w1.put(r, 1, 0, &[0xAA; 64]).unwrap();
            w2.put(r, 1, 0, &[0xBB; 64]).unwrap();
        }
        w1.fence(r).unwrap();
        w2.fence(r).unwrap();
        if r.rank() == 1 {
            let mut a = [0u8; 64];
            let mut b = [0u8; 64];
            w1.read_local(r, 0, &mut a);
            w2.read_local(r, 0, &mut b);
            assert!(a.iter().all(|&x| x == 0xAA));
            assert!(b.iter().all(|&x| x == 0xBB));
        }
        w1.fence(r).unwrap();
        w2.fence(r).unwrap();
    });
}

/// PSCW with proper subgroups: rank 0 exposes to {1}, rank 3 exposes to
/// {2}; the two epochs proceed independently.
#[test]
fn pscw_disjoint_groups() {
    run(ClusterSpec::ringlet(4), |r| {
        let mut win = shared_window(r, 128);
        match r.rank() {
            0 => {
                win.post(r, &[1]);
                win.wait(r, &[1]).unwrap();
                let mut b = [0u8; 4];
                win.read_local(r, 0, &mut b);
                assert_eq!(b, [1; 4]);
            }
            3 => {
                win.post(r, &[2]);
                win.wait(r, &[2]).unwrap();
                let mut b = [0u8; 4];
                win.read_local(r, 0, &mut b);
                assert_eq!(b, [2; 4]);
            }
            1 => {
                win.start(r, &[0]).unwrap();
                win.put(r, 0, 0, &[1; 4]).unwrap();
                win.complete(r, &[0]).unwrap();
            }
            _ => {
                win.start(r, &[3]).unwrap();
                win.put(r, 3, 0, &[2; 4]).unwrap();
                win.complete(r, &[3]).unwrap();
            }
        }
        // Cleanly end the program for everyone.
        r.barrier();
    });
}

/// Back-to-back PSCW epochs on the same window reuse handles correctly.
#[test]
fn pscw_repeated_epochs() {
    run(ClusterSpec::ringlet(2), |r| {
        let mut win = shared_window(r, 64);
        for round in 0..5u8 {
            if r.rank() == 0 {
                win.post(r, &[1]);
                win.wait(r, &[1]).unwrap();
                let mut b = [0u8; 1];
                win.read_local(r, 0, &mut b);
                assert_eq!(b[0], round);
            } else {
                win.start(r, &[0]).unwrap();
                win.put(r, 0, 0, &[round]).unwrap();
                win.complete(r, &[0]).unwrap();
            }
        }
    });
}

/// All accumulate operators.
#[test]
fn accumulate_operators() {
    run(ClusterSpec::ringlet(2), |r| {
        let mut win = shared_window(r, 64);
        if r.rank() == 1 {
            win.write_local(r, 0, &typed::to_bytes(&[10.0f64, -4.0]));
            win.write_local(r, 16, &5i64.to_le_bytes());
        }
        win.fence(r).unwrap();
        if r.rank() == 0 {
            win.accumulate(
                r,
                1,
                0,
                AccumulateOp::SumF64,
                &typed::to_bytes(&[2.5f64, 4.0]),
            )
            .unwrap();
            win.accumulate(
                r,
                1,
                0,
                AccumulateOp::MaxF64,
                &typed::to_bytes(&[5.0f64, -100.0]),
            )
            .unwrap();
            win.accumulate(r, 1, 16, AccumulateOp::SumI64, &(-7i64).to_le_bytes())
                .unwrap();
            win.accumulate(r, 1, 24, AccumulateOp::Replace, &[9u8; 8])
                .unwrap();
        }
        win.fence(r).unwrap();
        if r.rank() == 1 {
            let mut f = [0u8; 16];
            win.read_local(r, 0, &mut f);
            let v: Vec<f64> = typed::from_bytes(&f);
            assert_eq!(v, vec![12.5, 0.0]); // max(10+2.5, 5); max(-4+4, -100)
            let mut i = [0u8; 8];
            win.read_local(r, 16, &mut i);
            assert_eq!(i64::from_le_bytes(i), -2);
            let mut rep = [0u8; 8];
            win.read_local(r, 24, &mut rep);
            assert_eq!(rep, [9u8; 8]);
        }
        win.fence(r).unwrap();
    });
}

/// Heterogeneous windows: some ranks contribute shared memory, some
/// private, some nothing at all — each target uses its own path.
#[test]
fn mixed_shared_private_empty_window() {
    run(ClusterSpec::ringlet(3), |r| {
        let mut win = match r.rank() {
            0 => {
                let mem = r.alloc_mem(128).unwrap();
                r.win_create(WinMemory::Alloc(mem)).unwrap()
            }
            1 => r.win_create(WinMemory::Private(128)).unwrap(),
            _ => r.win_create(WinMemory::Private(0)).unwrap(),
        };
        assert!(win.is_shared(0));
        assert!(!win.is_shared(1));
        assert!(win.is_empty(2));
        win.fence(r).unwrap();
        if r.rank() == 2 {
            win.put(r, 0, 0, &[1; 16]).unwrap();
            win.put(r, 1, 0, &[2; 16]).unwrap();
            // Out of range on the empty window.
            assert!(win.put(r, 2, 0, &[3; 1]).is_err());
        }
        win.fence(r).unwrap();
        match r.rank() {
            0 => {
                let mut b = [0u8; 16];
                win.read_local(r, 0, &mut b);
                assert!(b.iter().all(|&x| x == 1));
            }
            1 => {
                let mut b = [0u8; 16];
                win.read_local(r, 0, &mut b);
                assert!(b.iter().all(|&x| x == 2));
            }
            _ => {}
        }
        win.fence(r).unwrap();
    });
}

/// Passive-target lock gives exclusive read-modify-write without any
/// target action; interleavings from many origins never lose updates.
#[test]
fn lock_rmw_from_all_ranks() {
    let n = 6;
    let per_rank = 25;
    let out = run(ClusterSpec::ringlet(n), move |r| {
        let mut win = shared_window(r, 8);
        if r.rank() == 0 {
            win.write_local(r, 0, &0i64.to_le_bytes());
        }
        win.fence(r).unwrap();
        for _ in 0..per_rank {
            win.locked(r, 0, |w, r| {
                let mut cur = [0u8; 8];
                w.get(r, 0, 0, &mut cur).unwrap();
                let v = i64::from_le_bytes(cur) + 1;
                w.put(r, 0, 0, &v.to_le_bytes()).unwrap();
            })
            .unwrap();
        }
        win.fence(r).unwrap();
        // Everyone reads the counter from rank 0's window part.
        let mut b = [0u8; 8];
        if r.rank() == 0 {
            win.read_local(r, 0, &mut b);
        } else {
            win.get(r, 0, 0, &mut b).unwrap();
        }
        win.fence(r).unwrap();
        i64::from_le_bytes(b)
    });
    assert!(
        out.iter().all(|&v| v == (n * per_rank) as i64),
        "lost updates: {out:?}"
    );
}

/// Emulated puts to distinct targets do not serialise on one handler.
#[test]
fn emulation_parallel_across_targets() {
    let time_to = |targets: usize| {
        let out = run(ClusterSpec::ringlet(4), move |r| {
            let mut win = r.win_create(WinMemory::Private(8192)).unwrap();
            win.fence(r).unwrap();
            if r.rank() == 0 {
                for i in 0..12 {
                    let t = 1 + (i % targets);
                    win.put(r, t, (i / targets) * 512, &[1u8; 512]).unwrap();
                }
            }
            win.fence(r).unwrap();
            r.now()
        });
        out[0]
    };
    let one_target = time_to(1);
    let three_targets = time_to(3);
    assert!(
        three_targets < one_target,
        "spreading across handlers should help: {three_targets:?} vs {one_target:?}"
    );
}

/// alloc_mem fragments and frees interleave with window lifetimes.
#[test]
fn alloc_mem_lifecycle_with_windows() {
    run(ClusterSpec::ringlet(2), |r| {
        let a = r.alloc_mem(4096).unwrap();
        let first_offset = a.offset;
        let mut w1 = r.win_create(WinMemory::Alloc(a)).unwrap();
        w1.fence(r).unwrap();
        if r.rank() == 0 {
            w1.put(r, 1, 0, &[3; 32]).unwrap();
        }
        w1.fence(r).unwrap();
        // A second allocation lands elsewhere while the first is live.
        let b = r.alloc_mem(4096).unwrap();
        assert_ne!(b.offset, first_offset);
        r.free_mem(b);
        // Charging time keeps clocks moving even without comms.
        r.compute(SimDuration::from_us(5));
        r.barrier();
    });
}
