//! [`ObsConfig`] — the knob that lives in `scimpi::ClusterSpec` next to
//! `Tuning` and `FaultConfig`.

use std::path::PathBuf;

/// Observability configuration for one simulated run.
///
/// `scimpi::run` applies this before spawning rank threads: it enables or
/// disables the global recorder, and at teardown writes the requested
/// export files (after recording an end-of-run per-link traffic
/// snapshot).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ObsConfig {
    /// Master switch. When `false`, every hook in the stack is one
    /// relaxed atomic load and a branch.
    pub enabled: bool,
    /// If set, write a Chrome `trace_event` JSON here at teardown.
    pub trace_path: Option<PathBuf>,
    /// If set, write the JSONL counter dump here at teardown.
    pub counters_path: Option<PathBuf>,
    /// If set, write the `PROFILE` report (attribution table, span
    /// histograms, critical path) here at teardown.
    pub profile_path: Option<PathBuf>,
    /// Reset counters/events when the run starts (default `true`), so a
    /// run's exports describe only that run. Set to `false` to
    /// accumulate across several `run` calls.
    pub reset_on_start: bool,
}

impl ObsConfig {
    /// Recording off — the default, and the zero-overhead mode.
    pub fn disabled() -> Self {
        ObsConfig::default()
    }

    /// Recording on, nothing written to disk (inspect via the `obs` API).
    pub fn enabled() -> Self {
        ObsConfig {
            enabled: true,
            trace_path: None,
            counters_path: None,
            profile_path: None,
            reset_on_start: true,
        }
    }

    /// Recording on, with a Chrome trace written to `path` at teardown.
    pub fn with_trace(path: impl Into<PathBuf>) -> Self {
        ObsConfig {
            trace_path: Some(path.into()),
            ..ObsConfig::enabled()
        }
    }

    /// Add a JSONL counter dump at `path`.
    pub fn and_counters(mut self, path: impl Into<PathBuf>) -> Self {
        self.counters_path = Some(path.into());
        self.enabled = true;
        self
    }

    /// Add a `PROFILE` report (attribution + histograms + critical
    /// path) at `path`.
    pub fn and_profile(mut self, path: impl Into<PathBuf>) -> Self {
        self.profile_path = Some(path.into());
        self.enabled = true;
        self
    }

    /// Keep counters/events from previous runs instead of resetting.
    pub fn accumulate(mut self) -> Self {
        self.reset_on_start = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert!(!ObsConfig::disabled().enabled);
        assert!(ObsConfig::enabled().enabled);
        let c = ObsConfig::with_trace("/tmp/t.json")
            .and_counters("/tmp/c.jsonl")
            .and_profile("/tmp/p.json");
        assert!(c.enabled && c.trace_path.is_some() && c.counters_path.is_some());
        assert!(c.profile_path.is_some());
        assert!(c.reset_on_start);
        assert!(!c.accumulate().reset_on_start);
    }
}
