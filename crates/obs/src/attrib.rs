//! Per-rank virtual-time attribution: busy buckets and classified waits.
//!
//! Every picosecond a rank's clock moves is charged to exactly one
//! bucket: it either advanced doing local work (**compute**, **pack**,
//! **transfer**) or it was pushed forward by a merge while blocked on a
//! peer (**wait**, sub-classified Scalasca-style: late-sender,
//! late-receiver, wait-at-barrier, lock-contention, request-wait). Time
//! charged to no bucket surfaces as *other* in the report, so the
//! decomposition is conservative by construction:
//! `compute + pack + transfer + wait + other == makespan`, exactly.
//!
//! Attribution never touches the clocks themselves — the helpers here
//! ([`advance`], [`merge_waited`], [`charged`]) perform the identical
//! clock mutation the call site performed before and only *observe* the
//! delta, so virtual time is bit-identical with attribution on or off.
//!
//! Only threads explicitly marked with [`set_thread_attrib`] contribute
//! (the runtime marks rank threads; request-engine helper threads stay
//! unmarked so forked clocks are not double-counted — their time shows
//! up at rank level as a request-wait when the completion time merges).

use crate::recorder::{self, is_enabled};
use simclock::{Clock, SimDuration, SimTime};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Buckets for time a rank spends moving its own clock forward.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Bucket {
    /// Application compute charged through `Rank::compute`.
    Compute,
    /// Datatype handling: pack/unpack engines, layout resolution,
    /// checksums, local copies.
    Pack,
    /// Wire work: PIO/DMA stores and reads, control messages, handler
    /// round-trips, stream drains.
    Transfer,
}

/// Number of busy buckets.
pub const BUCKET_COUNT: usize = 3;

impl Bucket {
    /// Stable export names, indexable by `Bucket as usize`.
    pub const NAMES: [&'static str; BUCKET_COUNT] = ["compute", "pack", "transfer"];

    /// The export name of this bucket.
    pub fn name(self) -> &'static str {
        Self::NAMES[self as usize]
    }
}

/// Scalasca-style wait-state classification for merges that pushed a
/// rank's clock forward.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum WaitKind {
    /// A receiver blocked because the matching send started too late
    /// (envelope or data chunk not yet arrived).
    LateSender,
    /// A sender blocked because the receiver was not ready (CTS pending,
    /// ring slot still occupied, chunk ack outstanding).
    LateReceiver,
    /// Blocked in a barrier (or barrier-backed fence) for the last
    /// arriver.
    Barrier,
    /// Blocked acquiring a shared-memory lock held by another rank.
    Lock,
    /// Blocked on a nonblocking request's completion (`wait`/`waitall`,
    /// drop-bin reaping, helper-clock joins, stream flushes).
    RequestWait,
    /// Blocked in the recovery machinery: a revocation front reaching
    /// this rank, a fault-tolerant agreement round, or a declared-dead
    /// schedule charged while agreeing on membership.
    Recovery,
    /// A sender blocked on exhausted eager credits under
    /// `OverloadPolicy::Stall`, waiting for the receiver to match
    /// messages and grant the credits back (flow-control backpressure).
    Backpressure,
}

/// Number of wait kinds.
pub const WAIT_KIND_COUNT: usize = 7;

impl WaitKind {
    /// Stable export names, indexable by `WaitKind as usize`.
    pub const NAMES: [&'static str; WAIT_KIND_COUNT] = [
        "late_sender",
        "late_receiver",
        "barrier",
        "lock",
        "request_wait",
        "recovery",
        "backpressure",
    ];

    /// The export name of this wait kind.
    pub fn name(self) -> &'static str {
        Self::NAMES[self as usize]
    }
}

/// One classified wait: rank `rank` was blocked over
/// `[start_ps, end_ps)` of virtual time, optionally on a known peer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WaitEvent {
    /// The rank that was blocked.
    pub rank: u32,
    /// Why it was blocked.
    pub kind: WaitKind,
    /// Virtual time the wait began (clock value before the merge), ps.
    pub start_ps: u64,
    /// Virtual time the wait ended (clock value after the merge), ps.
    pub end_ps: u64,
    /// The peer whose lateness caused the wait, when known.
    pub peer: Option<u32>,
}

impl WaitEvent {
    /// Length of the wait in picoseconds.
    pub fn dur_ps(&self) -> u64 {
        self.end_ps.saturating_sub(self.start_ps)
    }
}

#[derive(Default)]
struct AttribState {
    /// Per-rank busy sums in picoseconds, indexed by [`Bucket`].
    busy: BTreeMap<u32, [u64; BUCKET_COUNT]>,
    /// Every classified wait, in recording order (order is *not*
    /// deterministic across threads; consumers must sort).
    waits: Vec<WaitEvent>,
    /// Per-rank final clock value at teardown, ps.
    makespans: BTreeMap<u32, u64>,
}

static STATE: Mutex<AttribState> = Mutex::new(AttribState {
    busy: BTreeMap::new(),
    waits: Vec::new(),
    makespans: BTreeMap::new(),
});

thread_local! {
    static THREAD_ATTRIB: Cell<bool> = const { Cell::new(false) };
}

/// Mark (or unmark) the calling thread as contributing to attribution.
/// The runtime marks rank threads; engine/helper threads with forked
/// clocks must stay unmarked to keep the per-rank sums conservative.
pub fn set_thread_attrib(on: bool) {
    THREAD_ATTRIB.with(|a| a.set(on));
}

/// Is the calling thread marked for attribution?
pub fn thread_attrib() -> bool {
    THREAD_ATTRIB.with(|a| a.get())
}

/// Run `f` with attribution suppressed on this thread, restoring the
/// previous state after. Used around speculative clock excursions that
/// are later rolled back (e.g. `iget` running on a forked-then-restored
/// clock), which must not inflate the rank's busy sums.
pub fn paused<R>(f: impl FnOnce() -> R) -> R {
    let was = thread_attrib();
    set_thread_attrib(false);
    let r = f();
    set_thread_attrib(was);
    r
}

#[inline]
fn active() -> bool {
    is_enabled() && thread_attrib()
}

/// Charge `dur` of busy time to `bucket` on the calling thread's rank.
/// No-op unless the recorder is enabled and the thread is marked.
#[inline]
pub fn busy(bucket: Bucket, dur: SimDuration) {
    if !active() || dur.is_zero() {
        return;
    }
    let rank = recorder::thread_rank();
    let mut st = STATE.lock().unwrap();
    st.busy.entry(rank).or_default()[bucket as usize] += dur.as_ps();
}

/// Record a classified wait over `[start, end)` on the calling thread's
/// rank. Zero-length waits are dropped. No-op unless active.
pub fn wait(kind: WaitKind, start: SimTime, end: SimTime, peer: Option<u32>) {
    if !active() || end <= start {
        return;
    }
    let rank = recorder::thread_rank();
    STATE.lock().unwrap().waits.push(WaitEvent {
        rank,
        kind,
        start_ps: start.as_ps(),
        end_ps: end.as_ps(),
        peer,
    });
}

/// `clock.advance(cost)` plus attribution of `cost` to `bucket`.
/// Returns the new time, exactly like [`Clock::advance`].
#[inline]
pub fn advance(clock: &mut Clock, bucket: Bucket, cost: SimDuration) -> SimTime {
    let t = clock.advance(cost);
    busy(bucket, cost);
    t
}

/// `clock.merge(t)` plus classification of any forward jump as a `kind`
/// wait on `peer`. Returns the wait, exactly like [`Clock::merge`].
#[inline]
pub fn merge_waited(
    clock: &mut Clock,
    t: SimTime,
    kind: WaitKind,
    peer: Option<u32>,
) -> SimDuration {
    let start = clock.now();
    let w = clock.merge(t);
    if !w.is_zero() {
        wait(kind, start, clock.now(), peer);
    }
    w
}

/// Run `f` and charge however far it moved `clock` to `bucket`. Used to
/// bracket regions whose costs are charged inside lower layers (PIO
/// stream writes, DMA posts, read stalls). Do not nest with the other
/// helpers — every picosecond must be charged exactly once.
pub fn charged<R>(clock: &mut Clock, bucket: Bucket, f: impl FnOnce(&mut Clock) -> R) -> R {
    let t0 = clock.now();
    let r = f(clock);
    let d = clock.now().duration_since(t0);
    busy(bucket, d);
    r
}

/// Record rank `rank`'s final clock value. The runtime calls this as
/// each rank thread finishes; the report uses it as the makespan the
/// buckets must sum to.
pub fn record_makespan(rank: u32, t: SimTime) {
    if !is_enabled() {
        return;
    }
    let mut st = STATE.lock().unwrap();
    let entry = st.makespans.entry(rank).or_insert(0);
    *entry = (*entry).max(t.as_ps());
}

/// Clear all attribution state (called from `obs::reset`).
pub(crate) fn reset() {
    let mut st = STATE.lock().unwrap();
    st.busy.clear();
    st.waits.clear();
    st.makespans.clear();
}

/// Per-rank busy sums `(rank, [compute, pack, transfer])` in ps, sorted
/// by rank.
pub fn busy_table() -> Vec<(u32, [u64; BUCKET_COUNT])> {
    STATE
        .lock()
        .unwrap()
        .busy
        .iter()
        .map(|(&r, &b)| (r, b))
        .collect()
}

/// Clone of every recorded wait event (recording order; sort before
/// using in anything that must be deterministic).
pub fn wait_events() -> Vec<WaitEvent> {
    STATE.lock().unwrap().waits.clone()
}

/// Per-rank makespans `(rank, ps)`, sorted by rank.
pub fn makespans() -> Vec<(u32, u64)> {
    STATE
        .lock()
        .unwrap()
        .makespans
        .iter()
        .map(|(&r, &m)| (r, m))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // Attribution state is process-global; serialize tests.
    static LOCK: StdMutex<()> = StdMutex::new(());

    fn with_clean<R>(f: impl FnOnce() -> R) -> R {
        let _g = LOCK.lock().unwrap();
        crate::recorder::reset();
        crate::recorder::enable();
        set_thread_attrib(true);
        crate::recorder::set_thread_rank(0);
        let r = f();
        set_thread_attrib(false);
        crate::recorder::disable();
        crate::recorder::reset();
        r
    }

    #[test]
    fn helpers_mutate_clock_identically() {
        with_clean(|| {
            let mut a = Clock::new();
            let mut b = Clock::new();
            a.advance(SimDuration::from_ns(50));
            advance(&mut b, Bucket::Pack, SimDuration::from_ns(50));
            a.merge(SimTime::from_ps(999_000));
            merge_waited(
                &mut b,
                SimTime::from_ps(999_000),
                WaitKind::LateSender,
                Some(1),
            );
            assert_eq!(a, b);
        });
    }

    #[test]
    fn busy_and_waits_accumulate_per_rank() {
        with_clean(|| {
            let mut c = Clock::new();
            advance(&mut c, Bucket::Compute, SimDuration::from_ns(10));
            advance(&mut c, Bucket::Compute, SimDuration::from_ns(5));
            advance(&mut c, Bucket::Transfer, SimDuration::from_ns(2));
            merge_waited(&mut c, SimTime::from_ps(100_000), WaitKind::Barrier, None);
            // Merge into the past: no wait recorded.
            merge_waited(&mut c, SimTime::ZERO, WaitKind::Barrier, None);
            let busy = busy_table();
            assert_eq!(busy.len(), 1);
            assert_eq!(busy[0].1[Bucket::Compute as usize], 15_000);
            assert_eq!(busy[0].1[Bucket::Transfer as usize], 2_000);
            let waits = wait_events();
            assert_eq!(waits.len(), 1);
            assert_eq!(waits[0].kind, WaitKind::Barrier);
            assert_eq!(waits[0].start_ps, 17_000);
            assert_eq!(waits[0].end_ps, 100_000);
        });
    }

    #[test]
    fn unmarked_threads_do_not_contribute() {
        with_clean(|| {
            paused(|| {
                let mut c = Clock::new();
                advance(&mut c, Bucket::Compute, SimDuration::from_ns(10));
                // The clock still moved (the helper is transparent) ...
                assert_eq!(c.now(), SimTime::from_ps(10_000));
            });
            // ... but nothing was attributed.
            assert!(busy_table().is_empty());
        });
    }

    #[test]
    fn charged_brackets_inner_motion() {
        with_clean(|| {
            let mut c = Clock::new();
            let out = charged(&mut c, Bucket::Transfer, |c| {
                c.advance(SimDuration::from_ns(7));
                c.merge(SimTime::from_ps(12_000));
                42
            });
            assert_eq!(out, 42);
            let busy = busy_table();
            assert_eq!(busy[0].1[Bucket::Transfer as usize], 12_000);
        });
    }
}
