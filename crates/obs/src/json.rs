//! Minimal hand-rolled JSON emission.
//!
//! The build is fully self-contained (no external crates), so the
//! exporters format JSON by hand. Only what the trace/bench dumps need:
//! string escaping and finite-float formatting.

/// Escape a string for inclusion inside JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON number. JSON has no NaN/Inf, so non-finite
/// values become `null`.
pub fn num(v: f64) -> String {
    if v.is_finite() {
        // Enough digits to round-trip a measurement, short for integers.
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v:.6}")
        }
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers() {
        assert_eq!(num(3.0), "3");
        assert_eq!(num(3.25), "3.250000");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }
}
