//! # scimpi-obs — observability for the SCI-MPICH reproduction
//!
//! The paper's entire argument is made through measurements that compare
//! *protocol paths*: eager vs. rendezvous, `direct_pack_ff` vs. the
//! buffered generic engine, shared-window direct access vs. message-based
//! emulation, get-as-remote-put. This crate makes those paths observable:
//!
//! * an **event tracer** recording spans and instants stamped with virtual
//!   [`simclock::SimTime`] (protocol phase, message size, path taken,
//!   route hops), one lane per rank;
//! * a **counter registry** for the decision points that define the paper
//!   (see [`Counter`]);
//! * per-link **traffic snapshots** taken from the fabric's link registry;
//! * **exporters**: Chrome `trace_event` JSON (open in `chrome://tracing`
//!   or [Perfetto](https://ui.perfetto.dev)) and a JSONL counter dump.
//!
//! The recorder is a process-wide static so instrumentation hooks deep in
//! the pack/protocol code never thread a handle through their signatures.
//! When disabled (the default) every hook bails after **one relaxed atomic
//! load** — no locks, no allocation, no formatting. `scimpi::run` flips
//! the switch from [`ObsConfig`] in `ClusterSpec` and writes the export
//! files at teardown.
//!
//! ```
//! use simclock::SimTime;
//!
//! obs::reset();
//! obs::enable();
//! obs::set_thread_rank(0);
//! obs::inc(obs::Counter::EagerSends);
//! obs::span("send", SimTime::ZERO, SimTime::from_ps(2_000_000), vec![
//!     ("bytes", obs::Arg::U64(128)),
//!     ("path", obs::Arg::Str("eager".into())),
//! ]);
//! assert_eq!(obs::counter_value(obs::Counter::EagerSends), 1);
//! obs::disable();
//! ```

pub mod attrib;
pub mod config;
pub mod critpath;
pub mod export;
pub mod histogram;
pub mod json;
pub mod recorder;
pub mod report;

pub use attrib::{Bucket, WaitKind};
pub use config::ObsConfig;
pub use export::{chrome_trace_json, counters_jsonl, write_chrome_trace, write_counters_jsonl};
pub use histogram::Histogram;
pub use recorder::{
    add, counter_value, counters_snapshot, disable, enable, events_snapshot, inc, instant,
    is_enabled, link_snapshots, max, peak_backlogs, record_link_snapshot, record_peak_backlog,
    reset, set_thread_rank, span, take_events, thread_rank, Arg, Counter, EventKind, LinkSnapshot,
    PeakBacklog, TraceEvent,
};
pub use report::Profile;
