//! The profile report: per-rank attribution table, span-family latency
//! histograms, and the critical path, serialized as
//! `PROFILE_<name>.json`.
//!
//! `scimpi::run` builds the profile at teardown (after the per-rank
//! makespans are recorded) and stores it as the process-wide "last
//! profile"; harnesses read it back in-process via [`last_profile`] or
//! write it next to their `BENCH_<name>.json` via [`write_profile_for`].
//! Every field is an integer picosecond/nanosecond count, so same-seed
//! runs serialize byte-identically.

use crate::attrib::{self, Bucket, WaitKind, BUCKET_COUNT, WAIT_KIND_COUNT};
use crate::critpath::{self, CriticalPath};
use crate::histogram::Histogram;
use crate::json::escape;
use crate::recorder::{EventKind, TraceEvent};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// One rank's virtual-time decomposition. The identity
/// `compute + pack + transfer + wait + other == makespan` holds exactly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RankProfile {
    /// The rank.
    pub rank: u32,
    /// Final clock value, ps.
    pub makespan_ps: u64,
    /// Busy sums indexed by [`Bucket`], ps.
    pub busy_ps: [u64; BUCKET_COUNT],
    /// Wait sums indexed by [`WaitKind`], ps.
    pub wait_ps: [u64; WAIT_KIND_COUNT],
    /// Time charged to no bucket (uninstrumented costs), ps.
    pub other_ps: u64,
}

impl RankProfile {
    /// Total classified wait time, ps.
    pub fn total_wait_ps(&self) -> u64 {
        self.wait_ps.iter().sum()
    }

    /// Total busy time across the three buckets, ps.
    pub fn total_busy_ps(&self) -> u64 {
        self.busy_ps.iter().sum()
    }
}

/// Latency histogram for one span family (all spans sharing a name).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanFamily {
    /// The span name (e.g. `p2p.recv`).
    pub name: String,
    /// Histogram over the spans' durations.
    pub hist: Histogram,
}

/// The full report.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Profile {
    /// Per-rank decomposition, sorted by rank.
    pub ranks: Vec<RankProfile>,
    /// Per-family latency histograms, sorted by name.
    pub families: Vec<SpanFamily>,
    /// The cross-rank critical path.
    pub critical_path: CriticalPath,
}

impl Profile {
    /// Sum of every rank's classified wait time, ps.
    pub fn total_wait_ps(&self) -> u64 {
        self.ranks.iter().map(RankProfile::total_wait_ps).sum()
    }

    /// The histogram for one span family, if recorded.
    pub fn family(&self, name: &str) -> Option<&Histogram> {
        self.families
            .iter()
            .find(|f| f.name == name)
            .map(|f| &f.hist)
    }
}

/// Build a profile from the attribution state and the given trace
/// events (span durations feed the histograms; attribution and
/// makespans come from [`crate::attrib`]).
pub fn build(events: &[TraceEvent]) -> Profile {
    let busy = attrib::busy_table();
    let waits = attrib::wait_events();
    let makespans = attrib::makespans();

    let mut ranks: BTreeMap<u32, RankProfile> = BTreeMap::new();
    fn touch(map: &mut BTreeMap<u32, RankProfile>, r: u32) -> &mut RankProfile {
        map.entry(r).or_insert_with(|| RankProfile {
            rank: r,
            ..RankProfile::default()
        })
    }
    for (r, b) in &busy {
        touch(&mut ranks, *r).busy_ps = *b;
    }
    for w in &waits {
        touch(&mut ranks, w.rank).wait_ps[w.kind as usize] += w.dur_ps();
    }
    for (r, m) in &makespans {
        touch(&mut ranks, *r).makespan_ps = *m;
    }
    for p in ranks.values_mut() {
        let classified = p.total_busy_ps() + p.total_wait_ps();
        // The instrumentation charges each clock movement at most once,
        // so classified time can never exceed the recorded makespan; a
        // rank seen only through busy/wait records (no recorded
        // makespan) gets the classified sum as its makespan.
        debug_assert!(
            p.makespan_ps == 0 || classified <= p.makespan_ps,
            "rank {} over-attributed: {} classified vs {} makespan",
            p.rank,
            classified,
            p.makespan_ps
        );
        p.makespan_ps = p.makespan_ps.max(classified);
        p.other_ps = p.makespan_ps - classified;
    }

    let mut fams: BTreeMap<&'static str, Histogram> = BTreeMap::new();
    for ev in events {
        if let EventKind::Span { dur_ps } = ev.kind {
            fams.entry(ev.name).or_default().record(dur_ps);
        }
    }

    Profile {
        ranks: ranks.into_values().collect(),
        families: fams
            .into_iter()
            .map(|(name, hist)| SpanFamily {
                name: name.to_string(),
                hist,
            })
            .collect(),
        critical_path: critpath::extract(&makespans, &waits),
    }
}

/// Serialize a profile as deterministic JSON (integers only, fixed key
/// order).
pub fn profile_json(p: &Profile) -> String {
    let mut out = String::from("{\"schema\":\"scimpi-profile-v1\",\n\"ranks\":[\n");
    let ranks: Vec<String> = p
        .ranks
        .iter()
        .map(|r| {
            let waits: Vec<String> = WaitKind::NAMES
                .iter()
                .zip(&r.wait_ps)
                .map(|(n, v)| format!("\"{n}_ps\":{v}"))
                .collect();
            format!(
                "{{\"rank\":{},\"makespan_ps\":{},\"compute_ps\":{},\"pack_ps\":{},\"transfer_ps\":{},\"wait_ps\":{},\"other_ps\":{},\"wait_breakdown\":{{{}}}}}",
                r.rank,
                r.makespan_ps,
                r.busy_ps[Bucket::Compute as usize],
                r.busy_ps[Bucket::Pack as usize],
                r.busy_ps[Bucket::Transfer as usize],
                r.total_wait_ps(),
                r.other_ps,
                waits.join(",")
            )
        })
        .collect();
    out.push_str(&ranks.join(",\n"));
    out.push_str("\n],\n\"span_histograms\":[\n");
    let fams: Vec<String> = p
        .families
        .iter()
        .map(|f| {
            let buckets: Vec<String> = f
                .hist
                .nonzero_buckets()
                .iter()
                .map(|(i, c)| format!("[{i},{c}]"))
                .collect();
            format!(
                "{{\"span\":\"{}\",\"count\":{},\"mean_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"max_ns\":{},\"buckets\":[{}]}}",
                escape(&f.name),
                f.hist.count(),
                f.hist.mean_ps() / 1000,
                f.hist.p50() / 1000,
                f.hist.p95() / 1000,
                f.hist.p99() / 1000,
                f.hist.max_ps() / 1000,
                buckets.join(",")
            )
        })
        .collect();
    out.push_str(&fams.join(",\n"));
    out.push_str("\n],\n\"critical_path\":{");
    let cp = &p.critical_path;
    out.push_str(&format!(
        "\"makespan_ps\":{},\"bound_rank\":{},\"total_slack_ps\":{},\"hops\":[\n",
        cp.makespan_ps, cp.bound_rank, cp.total_slack_ps
    ));
    let hops: Vec<String> = cp
        .hops
        .iter()
        .map(|h| {
            let kind = h.wait.map(WaitKind::name).unwrap_or("local");
            let peer = h
                .peer
                .map(|p| p.to_string())
                .unwrap_or_else(|| "null".into());
            format!(
                "{{\"rank\":{},\"kind\":\"{}\",\"start_ps\":{},\"end_ps\":{},\"peer\":{},\"slack_ps\":{}}}",
                h.rank,
                kind,
                h.start_ps,
                h.end_ps,
                peer,
                h.slack_ps()
            )
        })
        .collect();
    out.push_str(&hops.join(",\n"));
    out.push_str("\n]}}\n");
    out
}

static LAST: Mutex<Option<Profile>> = Mutex::new(None);

/// Store `p` as the process-wide last profile (`scimpi::run` does this
/// at teardown).
pub fn set_last(p: Profile) {
    *LAST.lock().unwrap() = Some(p);
}

/// Clone of the most recently built profile, if any.
pub fn last_profile() -> Option<Profile> {
    LAST.lock().unwrap().clone()
}

/// Clear the stored profile (called from `obs::reset`).
pub(crate) fn reset() {
    *LAST.lock().unwrap() = None;
}

/// Write the last profile to `path`. No-op (Ok) when none was built.
pub fn write_last(path: &Path) -> std::io::Result<()> {
    if let Some(p) = last_profile() {
        let mut f = std::fs::File::create(path)?;
        f.write_all(profile_json(&p).as_bytes())?;
    }
    Ok(())
}

/// Write the last profile as `PROFILE_<name>.json` in the current
/// directory (the convention next to `BENCH_<name>.json`). Returns the
/// path written, or `None` when no profile was built.
pub fn write_profile_for(name: &str) -> std::io::Result<Option<PathBuf>> {
    if last_profile().is_none() {
        return Ok(None);
    }
    let path = PathBuf::from(format!("PROFILE_{name}.json"));
    write_last(&path)?;
    Ok(Some(path))
}

/// Render a compact human-readable attribution table (used by examples
/// and harness printouts).
pub fn render_table(p: &Profile) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>4} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
        "rank", "makespan_us", "compute_us", "pack_us", "transfer_us", "wait_us", "other_us"
    ));
    let us = |ps: u64| ps as f64 / 1e6;
    for r in &p.ranks {
        out.push_str(&format!(
            "{:>4} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>12.1}\n",
            r.rank,
            us(r.makespan_ps),
            us(r.busy_ps[Bucket::Compute as usize]),
            us(r.busy_ps[Bucket::Pack as usize]),
            us(r.busy_ps[Bucket::Transfer as usize]),
            us(r.total_wait_ps()),
            us(r.other_ps),
        ));
    }
    out
}

/// Render the critical path as one line per hop.
pub fn render_critical_path(p: &Profile) -> String {
    let cp = &p.critical_path;
    let mut out = format!(
        "critical path (bounding rank {}, makespan {:.1} us, recoverable slack {:.1} us):\n",
        cp.bound_rank,
        cp.makespan_ps as f64 / 1e6,
        cp.total_slack_ps as f64 / 1e6
    );
    for h in &cp.hops {
        let label = match (h.wait, h.peer) {
            (Some(k), Some(peer)) => format!("wait[{}] on rank {}", k.name(), peer),
            (Some(k), None) => format!("wait[{}]", k.name()),
            (None, _) => "busy".to_string(),
        };
        out.push_str(&format!(
            "  rank {:>3}  {:>10.1} .. {:>10.1} us  {}\n",
            h.rank,
            h.start_ps as f64 / 1e6,
            h.end_ps as f64 / 1e6,
            label
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Arg, EventKind, TraceEvent};

    #[test]
    fn profile_json_is_deterministic_and_balanced() {
        let p = Profile {
            ranks: vec![RankProfile {
                rank: 0,
                makespan_ps: 100,
                busy_ps: [10, 20, 30],
                wait_ps: [5, 5, 10, 0, 10, 0, 0],
                other_ps: 10,
            }],
            families: vec![SpanFamily {
                name: "p2p.send".into(),
                hist: {
                    let mut h = Histogram::new();
                    h.record(1000);
                    h.record(3000);
                    h
                },
            }],
            critical_path: CriticalPath::default(),
        };
        let a = profile_json(&p);
        let b = profile_json(&p.clone());
        assert_eq!(a, b);
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
        assert!(a.contains("\"compute_ps\":10"));
        assert!(a.contains("\"late_sender_ps\":5"));
        assert!(a.contains("\"span\":\"p2p.send\""));
    }

    #[test]
    fn build_groups_span_families() {
        let ev = |name: &'static str, dur: u64| TraceEvent {
            rank: 0,
            name,
            kind: EventKind::Span { dur_ps: dur },
            ts_ps: 0,
            args: vec![("bytes", Arg::U64(1))],
        };
        let events = vec![ev("a", 10), ev("b", 20), ev("a", 30)];
        let p = build(&events);
        assert_eq!(p.families.len(), 2);
        assert_eq!(p.family("a").unwrap().count(), 2);
        assert_eq!(p.family("b").unwrap().count(), 1);
        assert!(p.family("nope").is_none());
    }
}
