//! The process-wide recorder: enabled flag, counters, trace events and
//! link snapshots.
//!
//! Everything funnels through one static `Recorder`. Hooks check the
//! enabled flag with a single `Relaxed` atomic load before doing any
//! work, so a disabled recorder costs one predictable branch per hook.

use simclock::SimTime;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// The protocol decision points counted by the registry.
///
/// Each variant is one named counter; [`Counter::NAMES`] gives the stable
/// string used in exports and assertions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Two-sided sends that took the eager path (`len <= eager_threshold`).
    EagerSends,
    /// Two-sided sends that took the rendezvous (RTS/CTS) path.
    RendezvousSends,
    /// Ring-buffer chunks streamed by rendezvous transfers.
    RendezvousChunks,
    /// Calls into the `direct_pack_ff` pack/unpack engine.
    FfPackCalls,
    /// Leaf blocks merged away while committing a datatype (adjacent
    /// blocks fused into longer copies — the "flattening" in
    /// flattening-on-the-fly).
    FfLeafMerges,
    /// `pack_ff`/`unpack_ff` invocations that resumed mid-stream
    /// (`skip > 0`), i.e. partial-pack continuations across chunks.
    FfPartialResumes,
    /// Pack/unpack operations routed to the generic recursive engine.
    GenericPackCalls,
    /// One-sided puts that wrote directly into a shared (SCI-exported)
    /// window via PIO.
    OscPutShared,
    /// One-sided puts emulated with two-sided messages (private window).
    OscPutEmulated,
    /// One-sided gets served by a direct stalling remote read.
    OscGetDirect,
    /// One-sided gets converted to a remote put by the target
    /// (`len >= get_remote_put_threshold`).
    OscGetRemotePut,
    /// One-sided accumulates applied directly on a shared window.
    OscAccShared,
    /// One-sided accumulates emulated with two-sided messages.
    OscAccEmulated,
    /// SMI shared-lock acquisitions.
    SmiLockAcquires,
    /// Time-barrier crossings (one per rank per barrier).
    BarrierCrossings,
    /// SCI transaction retries absorbed by the link layer (transient
    /// transmission errors that were resent successfully).
    LinkTxnRetries,
    /// Transactions that errored out hard after exhausting `max_retries`.
    LinkHardFailures,
    /// Route failovers: a stream switched to an alternate (degraded) route
    /// after its primary route failed.
    RouteFailovers,
    /// Route heals: a degraded stream switched back to its primary route.
    RouteHeals,
    /// Protocol-level virtual-time timeouts (rendezvous handshake, ring
    /// slots, one-sided control) that expired while probing a peer.
    ProtocolTimeouts,
    /// Peers declared dead after the timeout/backoff schedule ran out.
    PeersDeclaredDead,
    /// One-sided targets demoted from the direct shared-segment path to
    /// the emulated control-message path.
    OscFallbacks,
    /// One-sided targets re-promoted to the direct path after a
    /// successful connection probe.
    OscRepromotions,
    /// Silent faults (bit flips / dropped stores) injected by the fabric.
    CorruptionsInjected,
    /// Corruptions caught by a sequence check or a CRC mismatch.
    CorruptionsDetected,
    /// Retransmissions performed after a detected corruption.
    Retransmits,
    /// Silent faults that sailed through a path with integrity checking
    /// off (bookkeeping: the modelled program never sees these).
    UndetectedAtOff,
    /// Commits served from the layout cache (flattening skipped).
    LayoutCacheHits,
    /// Commits that flattened the type tree (cache cold or disabled).
    LayoutCacheMisses,
    /// Leaf stores absorbed into a pending write-combining batch instead
    /// of issuing their own SCI transaction.
    WcCoalescedStores,
    /// Typed transfers routed to the direct flattening-on-the-fly path by
    /// the adaptive selector.
    PathSelectedDirectFf,
    /// Typed transfers routed through a staged pack buffer.
    PathSelectedStaged,
    /// Typed transfers routed to DMA scatter/gather.
    PathSelectedDma,
    /// Nonblocking requests posted (`isend`/`irecv`/`iput`/`iget`/
    /// `ialltoall` and persistent-request starts).
    RequestsPosted,
    /// Nonblocking requests completed through `wait`/`test`/`waitall`/
    /// `waitany`.
    RequestsCompleted,
    /// Requests completed implicitly because they were dropped before
    /// being waited on (their completion time is merged at the next
    /// synchronisation point).
    RequestsCompletedByDrop,
    /// Virtual nanoseconds of communication hidden behind compute by the
    /// nonblocking engine (blocking-equivalent cost minus time actually
    /// stalled in `wait`).
    OverlapSavedNs,
    /// Communicator revocations initiated (one per `revoke()` call that
    /// actually installed a revocation front).
    Revocations,
    /// Blocking paths that errored out with `ScimpiError::Revoked` after
    /// observing a revocation front.
    RevokesObserved,
    /// Fault-tolerant agreement exchange rounds executed (one per
    /// pairwise exchange per sweep per rank).
    AgreementRounds,
    /// Buddy checkpoints taken (`Checkpointer::checkpoint` calls).
    CheckpointsTaken,
    /// Payload bytes replicated to buddy ranks by checkpoints.
    CheckpointBytes,
    /// Checkpoint restores performed (`Checkpointer::restore` calls).
    RecoveryRestores,
    /// Eager sends that stalled on exhausted pair credits under
    /// `OverloadPolicy::Stall` (one tick per message that had to wait).
    EagerCreditStalls,
    /// Peak outstanding eager credit bytes observed on any single
    /// sender/receiver pair (a high-water gauge kept with `max`).
    CreditBytesPeak,
    /// Messages dropped at post time under `OverloadPolicy::Shed`.
    MessagesShed,
    /// Operations refused (or forcibly rerouted) because a resource
    /// budget was exhausted: `OverloadPolicy::Error` sends, window and
    /// staging budget misses, in-flight request cap hits.
    BudgetDenials,
    /// Transfers that left their preferred path because of governance:
    /// credit-exhausted eager sends downgraded to rendezvous, pack paths
    /// degraded Dma→Staged→DirectFf on staging-budget misses.
    DegradedPaths,
    /// Collective operations executed with the naive linear/legacy
    /// schedule (one tick per collective call per rank).
    CollAlgoNaive,
    /// Collective operations executed with a ring schedule.
    CollAlgoRing,
    /// Collective operations executed with a recursive-doubling schedule.
    CollAlgoRecursiveDoubling,
    /// Collective operations executed with a binomial-tree schedule.
    CollAlgoBinomial,
    /// Collective operations executed with a Bruck schedule.
    CollAlgoBruck,
    /// Payload bytes moved by collectives over one-sided window puts
    /// instead of two-sided p2p.
    CollOnesidedBytes,
    /// Payload bytes that datatype-aware collectives had to stage through
    /// an explicit pack buffer (zero when the direct flattened-layout
    /// path wins everywhere, which is the Träff acceptance bar).
    CollPackedBytes,
}

impl Counter {
    /// Stable export names, indexable by `Counter as usize`.
    pub const NAMES: [&'static str; COUNTER_COUNT] = [
        "eager_sends",
        "rendezvous_sends",
        "rendezvous_chunks",
        "ff_pack_calls",
        "ff_leaf_merges",
        "ff_partial_resumes",
        "generic_pack_calls",
        "osc_put_shared",
        "osc_put_emulated",
        "osc_get_direct",
        "osc_get_remote_put",
        "osc_acc_shared",
        "osc_acc_emulated",
        "smi_lock_acquires",
        "barrier_crossings",
        "link_txn_retries",
        "link_hard_failures",
        "route_failovers",
        "route_heals",
        "protocol_timeouts",
        "peers_declared_dead",
        "osc_fallbacks",
        "osc_repromotions",
        "corruptions_injected",
        "corruptions_detected",
        "retransmits",
        "undetected_at_off",
        "layout_cache_hits",
        "layout_cache_misses",
        "wc_coalesced_stores",
        "path_selected_direct_ff",
        "path_selected_staged",
        "path_selected_dma",
        "requests_posted",
        "requests_completed",
        "requests_completed_by_drop",
        "overlap_saved_ns",
        "revocations",
        "revokes_observed",
        "agreement_rounds",
        "checkpoints_taken",
        "checkpoint_bytes",
        "recovery_restores",
        "eager_credit_stalls",
        "credit_bytes_peak",
        "messages_shed",
        "budget_denials",
        "degraded_paths",
        "coll_algo_naive",
        "coll_algo_ring",
        "coll_algo_recursive_doubling",
        "coll_algo_binomial",
        "coll_algo_bruck",
        "coll_onesided_bytes",
        "coll_packed_bytes",
    ];

    /// The export name of this counter.
    pub fn name(self) -> &'static str {
        Self::NAMES[self as usize]
    }
}

/// Number of counters in the registry.
pub const COUNTER_COUNT: usize = 55;

/// A trace-event argument value.
#[derive(Clone, Debug)]
pub enum Arg {
    /// Unsigned integer (sizes, counts, hops).
    U64(u64),
    /// Float (rates, ratios).
    F64(f64),
    /// Free-form label (path names).
    Str(String),
}

/// Span or instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A phase with a duration (Chrome `ph:"X"`).
    Span {
        /// Duration in picoseconds of virtual time.
        dur_ps: u64,
    },
    /// A point event (Chrome `ph:"i"`).
    Instant,
}

/// One recorded event, stamped with virtual time.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Rank whose lane this event belongs to.
    pub rank: u32,
    /// Event name (one of a small set of static protocol phases).
    pub name: &'static str,
    /// Span-with-duration or instant.
    pub kind: EventKind,
    /// Virtual timestamp in picoseconds.
    pub ts_ps: u64,
    /// Key/value annotations (message size, path, hops, ...).
    pub args: Vec<(&'static str, Arg)>,
}

/// A per-link traffic snapshot (from `sci_fabric::link::TrafficStats`).
#[derive(Clone, Debug)]
pub struct LinkSnapshot {
    /// Where in the run the snapshot was taken (e.g. `"end-of-run"`).
    pub label: String,
    /// `(link index, data bytes, flow-control bytes)` per link.
    pub per_link: Vec<(usize, u64, u64)>,
}

/// One rank's mailbox high-water marks over the virtual timeline (see
/// `Mailbox::drain_backlog_events` in `scimpi`): peak queued envelopes
/// and peak queued eager payload bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PeakBacklog {
    /// The receiving rank.
    pub rank: u32,
    /// Peak simultaneously queued envelopes (any head kind).
    pub msgs: u64,
    /// Peak simultaneously queued eager payload bytes.
    pub eager_bytes: u64,
}

struct Recorder {
    enabled: AtomicBool,
    counters: [AtomicU64; COUNTER_COUNT],
    events: Mutex<Vec<TraceEvent>>,
    links: Mutex<Vec<LinkSnapshot>>,
    backlogs: Mutex<Vec<PeakBacklog>>,
}

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);

static GLOBAL: Recorder = Recorder {
    enabled: AtomicBool::new(false),
    counters: [ZERO; COUNTER_COUNT],
    events: Mutex::new(Vec::new()),
    links: Mutex::new(Vec::new()),
    backlogs: Mutex::new(Vec::new()),
};

thread_local! {
    static THREAD_RANK: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// Bind the calling thread to a rank lane. `scimpi::run` calls this at
/// the top of every rank thread; events recorded on the thread land in
/// that rank's lane.
pub fn set_thread_rank(rank: u32) {
    THREAD_RANK.with(|r| r.set(rank));
}

/// The rank lane the calling thread is bound to (0 if never bound).
pub fn thread_rank() -> u32 {
    THREAD_RANK.with(|r| r.get())
}

/// Turn recording on.
pub fn enable() {
    GLOBAL.enabled.store(true, Ordering::Relaxed);
}

/// Turn recording off. Hooks become a single load-and-branch.
pub fn disable() {
    GLOBAL.enabled.store(false, Ordering::Relaxed);
}

/// Is the recorder currently enabled?
#[inline]
pub fn is_enabled() -> bool {
    GLOBAL.enabled.load(Ordering::Relaxed)
}

/// Zero every counter and drop all buffered events and snapshots.
/// Does not change the enabled flag.
pub fn reset() {
    for c in &GLOBAL.counters {
        c.store(0, Ordering::Relaxed);
    }
    GLOBAL.events.lock().unwrap().clear();
    GLOBAL.links.lock().unwrap().clear();
    GLOBAL.backlogs.lock().unwrap().clear();
    crate::attrib::reset();
    crate::report::reset();
}

/// Increment a counter by one. No-op when disabled.
#[inline]
pub fn inc(counter: Counter) {
    add(counter, 1);
}

/// Increment a counter by `n`. No-op when disabled.
#[inline]
pub fn add(counter: Counter, n: u64) {
    if !is_enabled() {
        return;
    }
    GLOBAL.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
}

/// Raise a counter to at least `v` (a high-water gauge). No-op when
/// disabled.
#[inline]
pub fn max(counter: Counter, v: u64) {
    if !is_enabled() {
        return;
    }
    GLOBAL.counters[counter as usize].fetch_max(v, Ordering::Relaxed);
}

/// Current value of a counter.
pub fn counter_value(counter: Counter) -> u64 {
    GLOBAL.counters[counter as usize].load(Ordering::Relaxed)
}

/// Snapshot of all counters as `(name, value)` pairs, in declaration
/// order.
pub fn counters_snapshot() -> Vec<(&'static str, u64)> {
    Counter::NAMES
        .iter()
        .zip(&GLOBAL.counters)
        .map(|(&n, c)| (n, c.load(Ordering::Relaxed)))
        .collect()
}

/// Record a span covering `[start, end)` of virtual time on the calling
/// thread's rank lane. No-op when disabled.
pub fn span(name: &'static str, start: SimTime, end: SimTime, args: Vec<(&'static str, Arg)>) {
    if !is_enabled() {
        return;
    }
    let dur_ps = end.as_ps().saturating_sub(start.as_ps());
    push_event(TraceEvent {
        rank: THREAD_RANK.with(|r| r.get()),
        name,
        kind: EventKind::Span { dur_ps },
        ts_ps: start.as_ps(),
        args,
    });
}

/// Record an instant at virtual time `at` on the calling thread's rank
/// lane. No-op when disabled.
pub fn instant(name: &'static str, at: SimTime, args: Vec<(&'static str, Arg)>) {
    if !is_enabled() {
        return;
    }
    push_event(TraceEvent {
        rank: THREAD_RANK.with(|r| r.get()),
        name,
        kind: EventKind::Instant,
        ts_ps: at.as_ps(),
        args,
    });
}

fn push_event(ev: TraceEvent) {
    GLOBAL.events.lock().unwrap().push(ev);
}

/// Record a per-link traffic snapshot. No-op when disabled.
pub fn record_link_snapshot(label: String, per_link: Vec<(usize, u64, u64)>) {
    if !is_enabled() {
        return;
    }
    GLOBAL
        .links
        .lock()
        .unwrap()
        .push(LinkSnapshot { label, per_link });
}

/// Drain and return all buffered trace events (oldest first).
pub fn take_events() -> Vec<TraceEvent> {
    std::mem::take(&mut *GLOBAL.events.lock().unwrap())
}

/// Clone the buffered trace events without draining them (the report
/// builder reads them at teardown while leaving them for the trace
/// exporter or in-process inspection).
pub fn events_snapshot() -> Vec<TraceEvent> {
    GLOBAL.events.lock().unwrap().clone()
}

/// Clone the recorded link snapshots.
pub fn link_snapshots() -> Vec<LinkSnapshot> {
    GLOBAL.links.lock().unwrap().clone()
}

/// Record one rank's mailbox peak backlog (taken at teardown by
/// `scimpi::run`). No-op when disabled.
pub fn record_peak_backlog(rank: u32, msgs: u64, eager_bytes: u64) {
    if !is_enabled() {
        return;
    }
    GLOBAL.backlogs.lock().unwrap().push(PeakBacklog {
        rank,
        msgs,
        eager_bytes,
    });
}

/// Per-rank mailbox peak backlogs recorded by the most recent run,
/// sorted by rank. Cleared by [`reset`].
pub fn peak_backlogs() -> Vec<PeakBacklog> {
    let mut v = GLOBAL.backlogs.lock().unwrap().clone();
    v.sort_by_key(|b| b.rank);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    // The recorder is process-global; tests in this module serialize on
    // a lock so their deltas do not interleave.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_recorder_drops_everything() {
        let _g = LOCK.lock().unwrap();
        reset();
        disable();
        let before = counter_value(Counter::EagerSends);
        inc(Counter::EagerSends);
        span("x", SimTime::ZERO, SimTime::from_ps(10), vec![]);
        instant("y", SimTime::ZERO, vec![]);
        record_link_snapshot("s".into(), vec![(0, 1, 2)]);
        assert_eq!(counter_value(Counter::EagerSends), before);
        assert!(take_events().is_empty());
        assert!(link_snapshots().is_empty());
    }

    #[test]
    fn enabled_recorder_counts_and_buffers() {
        let _g = LOCK.lock().unwrap();
        reset();
        enable();
        set_thread_rank(3);
        inc(Counter::RendezvousSends);
        add(Counter::RendezvousChunks, 4);
        span(
            "send",
            SimTime::from_ps(100),
            SimTime::from_ps(400),
            vec![("bytes", Arg::U64(64))],
        );
        assert_eq!(counter_value(Counter::RendezvousSends), 1);
        assert_eq!(counter_value(Counter::RendezvousChunks), 4);
        let evs = take_events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].rank, 3);
        assert_eq!(evs[0].kind, EventKind::Span { dur_ps: 300 });
        disable();
        reset();
    }

    #[test]
    fn max_and_peak_backlogs_record_when_enabled() {
        let _g = LOCK.lock().unwrap();
        reset();
        enable();
        max(Counter::CreditBytesPeak, 10);
        max(Counter::CreditBytesPeak, 5);
        assert_eq!(counter_value(Counter::CreditBytesPeak), 10);
        record_peak_backlog(1, 3, 4096);
        record_peak_backlog(0, 2, 64);
        let p = peak_backlogs();
        assert_eq!((p[0].rank, p[0].msgs, p[0].eager_bytes), (0, 2, 64));
        assert_eq!((p[1].rank, p[1].msgs, p[1].eager_bytes), (1, 3, 4096));
        disable();
        reset();
        assert!(peak_backlogs().is_empty());
    }

    #[test]
    fn counter_names_cover_all_variants() {
        assert_eq!(Counter::NAMES.len(), COUNTER_COUNT);
        assert_eq!(Counter::CollPackedBytes as usize, COUNTER_COUNT - 1);
        assert_eq!(Counter::DegradedPaths.name(), "degraded_paths");
        assert_eq!(Counter::CollAlgoNaive.name(), "coll_algo_naive");
        assert_eq!(Counter::CollAlgoRing.name(), "coll_algo_ring");
        assert_eq!(
            Counter::CollAlgoRecursiveDoubling.name(),
            "coll_algo_recursive_doubling"
        );
        assert_eq!(Counter::CollAlgoBinomial.name(), "coll_algo_binomial");
        assert_eq!(Counter::CollAlgoBruck.name(), "coll_algo_bruck");
        assert_eq!(Counter::CollOnesidedBytes.name(), "coll_onesided_bytes");
        assert_eq!(Counter::CollPackedBytes.name(), "coll_packed_bytes");
        assert_eq!(Counter::EagerCreditStalls.name(), "eager_credit_stalls");
        assert_eq!(Counter::CreditBytesPeak.name(), "credit_bytes_peak");
        assert_eq!(Counter::MessagesShed.name(), "messages_shed");
        assert_eq!(Counter::BudgetDenials.name(), "budget_denials");
        assert_eq!(Counter::Revocations.name(), "revocations");
        assert_eq!(Counter::CheckpointsTaken.name(), "checkpoints_taken");
        assert_eq!(Counter::CorruptionsInjected.name(), "corruptions_injected");
        assert_eq!(Counter::Retransmits.name(), "retransmits");
        assert_eq!(Counter::FfLeafMerges.name(), "ff_leaf_merges");
        assert_eq!(Counter::RouteFailovers.name(), "route_failovers");
        assert_eq!(Counter::LayoutCacheHits.name(), "layout_cache_hits");
        assert_eq!(Counter::WcCoalescedStores.name(), "wc_coalesced_stores");
        assert_eq!(Counter::PathSelectedStaged.name(), "path_selected_staged");
    }
}
