//! Cross-rank critical-path extraction from the recorded wait graph.
//!
//! The classified waits ([`crate::attrib::WaitEvent`]) are the edges of
//! a dependency graph: a rank that waited resumed exactly when some
//! remote event happened, so walking backwards from the rank that
//! finished last — alternating local busy segments and the waits that
//! interrupted them, hopping to the blamed peer at each wait — yields
//! the chain of operations that bounded the run. Each wait hop carries
//! its duration as *slack*: the time the makespan would shrink if that
//! one dependency were satisfied instantly (to first order).
//!
//! Extraction is deterministic: waits are sorted by
//! `(rank, end, start, kind, peer)` before the walk and every selection
//! is a maximum under that total order, so same-seed runs produce the
//! same path byte for byte.

use crate::attrib::{WaitEvent, WaitKind};

/// One step of the critical path (oldest first in the report).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hop {
    /// Rank on whose timeline this segment lies.
    pub rank: u32,
    /// Segment start, virtual ps.
    pub start_ps: u64,
    /// Segment end, virtual ps.
    pub end_ps: u64,
    /// `None` for a local busy segment; `Some(kind)` for a wait.
    pub wait: Option<WaitKind>,
    /// The blamed peer, when the wait names one.
    pub peer: Option<u32>,
}

impl Hop {
    /// First-order slack: the wait's duration, zero for busy segments.
    pub fn slack_ps(&self) -> u64 {
        if self.wait.is_some() {
            self.end_ps.saturating_sub(self.start_ps)
        } else {
            0
        }
    }
}

/// The extracted path.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CriticalPath {
    /// The run's makespan (latest rank finish), ps.
    pub makespan_ps: u64,
    /// The rank that finished last (walk origin).
    pub bound_rank: u32,
    /// Path segments, oldest first.
    pub hops: Vec<Hop>,
    /// Sum of wait-hop durations along the path, ps.
    pub total_slack_ps: u64,
}

/// Safety valve: a path longer than this is truncated (cannot trigger
/// in practice because each wait is followed at most once).
const MAX_HOPS: usize = 4096;

/// Extract the critical path from per-rank makespans and the classified
/// waits. Returns an empty path when no makespans were recorded.
pub fn extract(makespans: &[(u32, u64)], waits: &[WaitEvent]) -> CriticalPath {
    let Some(&(origin, makespan)) = makespans
        .iter()
        .max_by_key(|&&(r, m)| (m, std::cmp::Reverse(r)))
    else {
        return CriticalPath::default();
    };
    let mut rank = origin;

    let mut sorted: Vec<&WaitEvent> = waits.iter().collect();
    sorted.sort_by_key(|w| (w.rank, w.end_ps, w.start_ps, w.kind, w.peer));

    let mut t = makespan;
    let mut rev: Vec<Hop> = Vec::new();
    let mut used = vec![false; sorted.len()];

    while rev.len() < MAX_HOPS {
        // Latest unused wait on `rank` ending at or before `t`; the sort
        // order makes "last match wins" the deterministic maximum.
        let pick = sorted
            .iter()
            .enumerate()
            .filter(|(i, w)| !used[*i] && w.rank == rank && w.end_ps <= t)
            .map(|(i, _)| i)
            .next_back();

        let Some(i) = pick else {
            // No earlier dependency on this timeline: everything back to
            // the epoch is local work.
            if t > 0 {
                rev.push(Hop {
                    rank,
                    start_ps: 0,
                    end_ps: t,
                    wait: None,
                    peer: None,
                });
            }
            break;
        };
        used[i] = true;
        let w = sorted[i];

        if w.end_ps < t {
            rev.push(Hop {
                rank,
                start_ps: w.end_ps,
                end_ps: t,
                wait: None,
                peer: None,
            });
        }
        rev.push(Hop {
            rank,
            start_ps: w.start_ps,
            end_ps: w.end_ps,
            wait: Some(w.kind),
            peer: w.peer,
        });

        match (w.peer, w.kind) {
            (Some(p), _) => {
                // The waiter resumed when the peer's event (send, CTS,
                // ack) reached it: continue on the peer's timeline at
                // that moment.
                rank = p;
                t = w.end_ps;
            }
            (None, WaitKind::Barrier) => {
                // The barrier released at the last arrival; the recorded
                // wait with the latest start is the closest proxy for
                // the last arriver (which itself waited zero time and
                // left no event).
                let co = sorted
                    .iter()
                    .enumerate()
                    .filter(|(j, v)| {
                        !used[*j] && v.kind == WaitKind::Barrier && v.end_ps == w.end_ps
                    })
                    .max_by_key(|(_, v)| (v.start_ps, v.rank));
                if let Some((j, v)) = co {
                    used[j] = true;
                    rank = v.rank;
                    t = v.start_ps;
                } else {
                    t = w.start_ps;
                }
            }
            (None, _) => {
                // Cause unattributable to a specific peer: keep walking
                // this rank's own timeline from before the wait.
                t = w.start_ps;
            }
        }
        if t == 0 {
            break;
        }
    }

    rev.reverse();
    let total_slack_ps = rev.iter().map(Hop::slack_ps).sum();
    CriticalPath {
        makespan_ps: makespan,
        bound_rank: origin,
        hops: rev,
        total_slack_ps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(rank: u32, kind: WaitKind, start: u64, end: u64, peer: Option<u32>) -> WaitEvent {
        WaitEvent {
            rank,
            kind,
            start_ps: start,
            end_ps: end,
            peer,
        }
    }

    #[test]
    fn empty_inputs_give_empty_path() {
        let p = extract(&[], &[]);
        assert_eq!(p, CriticalPath::default());
    }

    #[test]
    fn no_waits_is_one_local_segment_on_slowest_rank() {
        let p = extract(&[(0, 500), (1, 900), (2, 700)], &[]);
        assert_eq!(p.makespan_ps, 900);
        assert_eq!(p.bound_rank, 1);
        assert_eq!(p.hops.len(), 1);
        assert_eq!(
            p.hops[0],
            Hop {
                rank: 1,
                start_ps: 0,
                end_ps: 900,
                wait: None,
                peer: None
            }
        );
        assert_eq!(p.total_slack_ps, 0);
    }

    #[test]
    fn late_sender_chain_hops_to_the_peer() {
        // Rank 1 computes 0..800; its send reaches rank 0 at 1000.
        // Rank 0 posted its recv at 100 and waited 100..1000, then
        // worked 1000..1500.
        let makespans = [(0, 1500), (1, 800)];
        let waits = [w(0, WaitKind::LateSender, 100, 1000, Some(1))];
        let p = extract(&makespans, &waits);
        assert_eq!(p.bound_rank, 0);
        // tail local [1000,1500) on 0, the wait, then local on rank 1.
        assert_eq!(p.hops.len(), 3);
        assert_eq!(p.hops[0].rank, 1);
        assert_eq!(p.hops[0].wait, None);
        assert_eq!(p.hops[0].end_ps, 1000);
        assert_eq!(p.hops[1].wait, Some(WaitKind::LateSender));
        assert_eq!(p.hops[1].peer, Some(1));
        assert_eq!(p.hops[1].slack_ps(), 900);
        assert_eq!(
            p.hops[2],
            Hop {
                rank: 0,
                start_ps: 1000,
                end_ps: 1500,
                wait: None,
                peer: None
            }
        );
        assert_eq!(p.total_slack_ps, 900);
    }

    #[test]
    fn barrier_hops_to_last_recorded_arriver() {
        // Three ranks meet a barrier releasing at 1000; rank 2 arrived
        // last among the *waiters* (start 900). Rank 0 finishes last.
        let makespans = [(0, 1200), (1, 1000), (2, 1000)];
        let waits = [
            w(0, WaitKind::Barrier, 300, 1000, None),
            w(1, WaitKind::Barrier, 500, 1000, None),
            w(2, WaitKind::Barrier, 900, 1000, None),
        ];
        let p = extract(&makespans, &waits);
        // Walk: local [1000,1200) on 0 ← barrier wait on 0 ← hop to
        // rank 2 (latest start) at t=900 ← local [0,900) on 2.
        let ranks: Vec<u32> = p.hops.iter().map(|h| h.rank).collect();
        assert_eq!(ranks, vec![2, 0, 0]);
        assert_eq!(p.hops[0].end_ps, 900);
        assert_eq!(p.hops[1].wait, Some(WaitKind::Barrier));
        assert_eq!(p.total_slack_ps, 700);
    }

    #[test]
    fn two_hop_relay_is_followed_transitively() {
        // 2 → 1 → 0 relay: rank 2 works til 400, rank 1 waits on 2
        // (100..500) then works til 700, rank 0 waits on 1 (50..900)
        // and finishes at 1000.
        let makespans = [(0, 1000), (1, 700), (2, 400)];
        let waits = [
            w(0, WaitKind::LateSender, 50, 900, Some(1)),
            w(1, WaitKind::LateSender, 100, 500, Some(2)),
        ];
        let p = extract(&makespans, &waits);
        let ranks: Vec<u32> = p.hops.iter().map(|h| h.rank).collect();
        assert_eq!(ranks, vec![2, 1, 1, 0, 0]);
        assert_eq!(p.total_slack_ps, (900 - 50) + (500 - 100));
        // Hops are time-ordered oldest-first along the walk.
        assert!(p.hops.first().unwrap().start_ps == 0);
        assert_eq!(p.hops.last().unwrap().end_ps, 1000);
    }

    #[test]
    fn mutual_waits_terminate() {
        // Degenerate ping-pong: both ranks blame each other at the same
        // instant. Each wait may be followed at most once, so the walk
        // terminates.
        let makespans = [(0, 100), (1, 100)];
        let waits = [
            w(0, WaitKind::LateSender, 50, 100, Some(1)),
            w(1, WaitKind::LateSender, 50, 100, Some(0)),
        ];
        let p = extract(&makespans, &waits);
        assert!(p.hops.len() <= 6);
        assert_eq!(p.makespan_ps, 100);
    }

    #[test]
    fn extraction_is_deterministic_under_input_order() {
        let makespans = [(0, 1000), (1, 700), (2, 400)];
        let mut waits = vec![
            w(0, WaitKind::LateSender, 50, 900, Some(1)),
            w(1, WaitKind::LateSender, 100, 500, Some(2)),
            w(2, WaitKind::Lock, 10, 20, None),
        ];
        let a = extract(&makespans, &waits);
        waits.reverse();
        let b = extract(&makespans, &waits);
        assert_eq!(a, b);
    }
}
