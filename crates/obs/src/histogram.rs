//! Deterministic fixed-bucket latency histograms.
//!
//! Buckets are powers of two over picosecond durations: bucket 0 holds
//! exactly 0, bucket `i` (i ≥ 1) holds durations in `[2^(i-1), 2^i)`.
//! Fixed bucket edges make percentiles deterministic: a reported
//! quantile is the inclusive upper bound of the bucket containing the
//! target observation (clamped to the true maximum), so the same
//! samples always produce the same numbers — byte-identical output for
//! same-seed runs, and histograms from different sources merge without
//! re-binning.

/// Number of buckets: one for zero plus one per power of two up to
/// `2^64`.
pub const BUCKET_COUNT: usize = 65;

/// A fixed-bucket histogram of virtual-time durations (picoseconds).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKET_COUNT],
    count: u64,
    sum_ps: u64,
    max_ps: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKET_COUNT],
            count: 0,
            sum_ps: 0,
            max_ps: 0,
        }
    }
}

/// Bucket index for a duration: 0 for 0, else `65 - leading_zeros` so
/// `[2^(i-1), 2^i)` lands in bucket `i`.
fn bucket_of(dur_ps: u64) -> usize {
    (u64::BITS - dur_ps.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one observation.
    pub fn record(&mut self, dur_ps: u64) {
        self.counts[bucket_of(dur_ps)] += 1;
        self.count += 1;
        self.sum_ps = self.sum_ps.saturating_add(dur_ps);
        self.max_ps = self.max_ps.max(dur_ps);
    }

    /// Fold another histogram into this one. Because bucket edges are
    /// fixed, merging is exact: the result is identical to having
    /// recorded all observations into one histogram.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ps = self.sum_ps.saturating_add(other.sum_ps);
        self.max_ps = self.max_ps.max(other.max_ps);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact maximum observation, ps.
    pub fn max_ps(&self) -> u64 {
        self.max_ps
    }

    /// Sum of observations, ps (saturating).
    pub fn sum_ps(&self) -> u64 {
        self.sum_ps
    }

    /// Mean observation, ps (integer division; 0 when empty).
    pub fn mean_ps(&self) -> u64 {
        self.sum_ps.checked_div(self.count).unwrap_or(0)
    }

    /// The `pct`-th percentile (0–100): the upper bound of the bucket
    /// containing the `ceil(pct/100 · count)`-th smallest observation,
    /// clamped to the exact maximum. Deterministic by construction.
    pub fn percentile(&self, pct: u32) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (self.count * pct as u64).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper(i).min(self.max_ps);
            }
        }
        self.max_ps
    }

    /// Median (see [`Histogram::percentile`]).
    pub fn p50(&self) -> u64 {
        self.percentile(50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.percentile(95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99)
    }

    /// Non-empty buckets as `(bucket index, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(3), 7);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn percentiles_are_deterministic_bucket_bounds() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000, 1000, 1000, 5000, 5000, 70_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.max_ps(), 70_000);
        // p50: 5th smallest = 1000 → bucket [512,1024) → upper 1023.
        assert_eq!(h.p50(), 1023);
        // p99: 10th smallest = 70_000 → bucket [65536,131072) → 131071,
        // clamped to max.
        assert_eq!(h.p99(), 70_000);
        assert_eq!(h.percentile(100), 70_000);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.max_ps(), 0);
        assert_eq!(h.mean_ps(), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn merge_equals_recording_everything_into_one() {
        let samples_a = [0u64, 7, 7, 512, 90_000];
        let samples_b = [3u64, 512, 1_000_000, 1_000_001];
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for &v in &samples_a {
            a.record(v);
            whole.record(v);
        }
        for &v in &samples_b {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        assert_eq!(a.count(), 9);
        assert_eq!(a.p50(), whole.p50());
        assert_eq!(a.max_ps(), 1_000_001);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Histogram::new();
        a.record(42);
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, before);
        let mut e = Histogram::new();
        e.merge(&before);
        assert_eq!(e, before);
    }
}
