//! Exporters: Chrome `trace_event` JSON and a JSONL counter dump.
//!
//! The Chrome format is the stable subset understood by both
//! `chrome://tracing` and Perfetto: an object with a `traceEvents` array
//! of `ph:"X"` (complete span), `ph:"i"` (instant) and `ph:"M"`
//! (metadata) records. Virtual time maps to the `ts`/`dur` microsecond
//! fields; each rank gets its own `tid` lane under one `pid`.

use crate::json::{escape, num};
use crate::recorder::{self, Arg, EventKind, TraceEvent};
use std::io::Write;
use std::path::Path;

fn args_json(args: &[(&'static str, Arg)]) -> String {
    let body: Vec<String> = args
        .iter()
        .map(|(k, v)| {
            let val = match v {
                Arg::U64(u) => u.to_string(),
                Arg::F64(f) => num(*f),
                Arg::Str(s) => format!("\"{}\"", escape(s)),
            };
            format!("\"{}\":{}", escape(k), val)
        })
        .collect();
    format!("{{{}}}", body.join(","))
}

fn event_json(ev: &TraceEvent) -> String {
    let ts_us = ev.ts_ps as f64 / 1e6;
    match ev.kind {
        EventKind::Span { dur_ps } => format!(
            "{{\"name\":\"{}\",\"cat\":\"scimpi\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{}}}",
            escape(ev.name),
            ev.rank,
            num(ts_us),
            num(dur_ps as f64 / 1e6),
            args_json(&ev.args)
        ),
        EventKind::Instant => format!(
            "{{\"name\":\"{}\",\"cat\":\"scimpi\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{},\"ts\":{},\"args\":{}}}",
            escape(ev.name),
            ev.rank,
            num(ts_us),
            args_json(&ev.args)
        ),
    }
}

/// Render `events` as a complete Chrome `trace_event` JSON document.
/// One lane (`tid`) per rank, virtual time on the axis.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut lanes: Vec<u32> = events.iter().map(|e| e.rank).collect();
    lanes.sort_unstable();
    lanes.dedup();

    let mut records: Vec<String> = lanes
        .iter()
        .map(|r| {
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{r},\"args\":{{\"name\":\"rank {r}\"}}}}"
            )
        })
        .collect();
    records.extend(events.iter().map(event_json));

    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n",
        records.join(",\n")
    )
}

/// Drain the recorder's events and write them to `path` as Chrome trace
/// JSON.
pub fn write_chrome_trace(path: &Path) -> std::io::Result<()> {
    let events = recorder::take_events();
    let mut f = std::fs::File::create(path)?;
    f.write_all(chrome_trace_json(&events).as_bytes())
}

/// Render the counter registry and link snapshots as JSON Lines: one
/// `{"counter":name,"value":v}` record per counter, then one
/// `{"link_snapshot":label,"links":[{"link":i,"data_bytes":d,"fc_bytes":f},..]}`
/// record per snapshot.
pub fn counters_jsonl() -> String {
    let mut out = String::new();
    for (name, value) in recorder::counters_snapshot() {
        out.push_str(&format!(
            "{{\"counter\":\"{}\",\"value\":{}}}\n",
            escape(name),
            value
        ));
    }
    for snap in recorder::link_snapshots() {
        let links: Vec<String> = snap
            .per_link
            .iter()
            .map(|(i, d, f)| format!("{{\"link\":{i},\"data_bytes\":{d},\"fc_bytes\":{f}}}"))
            .collect();
        out.push_str(&format!(
            "{{\"link_snapshot\":\"{}\",\"links\":[{}]}}\n",
            escape(&snap.label),
            links.join(",")
        ));
    }
    out
}

/// Write [`counters_jsonl`] to `path`.
pub fn write_counters_jsonl(path: &Path) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(counters_jsonl().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_trace_is_well_formed() {
        let events = vec![
            TraceEvent {
                rank: 0,
                name: "send",
                kind: EventKind::Span { dur_ps: 2_000_000 },
                ts_ps: 1_000_000,
                args: vec![("bytes", Arg::U64(128)), ("path", Arg::Str("eager".into()))],
            },
            TraceEvent {
                rank: 1,
                name: "cts",
                kind: EventKind::Instant,
                ts_ps: 3_000_000,
                args: vec![],
            },
        ];
        let doc = chrome_trace_json(&events);
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"ph\":\"i\""));
        assert!(doc.contains("\"name\":\"rank 0\""));
        assert!(doc.contains("\"dur\":2"));
        assert!(doc.contains("\"path\":\"eager\""));
        // Balanced braces / brackets — cheap well-formedness check.
        assert_eq!(
            doc.matches('{').count(),
            doc.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn jsonl_lines_parse_shape() {
        let doc = counters_jsonl();
        for line in doc.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }
}
