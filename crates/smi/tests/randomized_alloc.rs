//! Randomized tests of the shared-region allocator: any interleaving of
//! allocations and frees preserves the free-list invariants, never hands
//! out overlapping blocks, and always recovers the full capacity.
//!
//! Deterministic seeded randomness (`SplitMix64`) replaces an external
//! property-testing framework.

use simclock::SplitMix64;
use smi::alloc::ALLOC_ALIGN;
use smi::ShregAllocator;

#[derive(Clone, Debug)]
enum Op {
    Alloc(usize),
    FreeIdx(usize),
}

fn random_ops(rng: &mut SplitMix64) -> Vec<Op> {
    let n = rng.next_range(1, 199) as usize;
    (0..n)
        .map(|_| {
            if rng.chance(0.5) {
                Op::Alloc(rng.next_range(1, 4999) as usize)
            } else {
                Op::FreeIdx(rng.next_below(64) as usize)
            }
        })
        .collect()
}

#[test]
fn allocator_never_overlaps_and_recovers() {
    let mut rng = SplitMix64::new(0xA110C);
    for _ in 0..256 {
        let ops = random_ops(&mut rng);
        let capacity = rng.next_range(1, 63) as usize * 1024;
        let mut a = ShregAllocator::new(capacity);
        let mut live: Vec<(usize, usize)> = Vec::new(); // (offset, requested)

        for op in ops {
            match op {
                Op::Alloc(len) => {
                    if let Ok(off) = a.alloc(len) {
                        assert_eq!(off % ALLOC_ALIGN, 0, "misaligned offset");
                        let rounded = len.max(1).div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN;
                        assert!(off + rounded <= capacity, "block outside region");
                        // No overlap with any live block.
                        for &(o, l) in &live {
                            let r = l.max(1).div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN;
                            assert!(
                                off + rounded <= o || o + r <= off,
                                "overlap: [{off},{}) with [{o},{})",
                                off + rounded,
                                o + r
                            );
                        }
                        live.push((off, len));
                    }
                }
                Op::FreeIdx(i) => {
                    if !live.is_empty() {
                        let (off, _) = live.remove(i % live.len());
                        assert!(a.free(off).is_ok(), "valid free rejected");
                    }
                }
            }
            assert!(a.used() <= a.capacity());
            assert_eq!(a.live_count(), live.len());
        }

        // Free the rest; full capacity must come back as one block.
        for (off, _) in live {
            assert!(a.free(off).is_ok());
        }
        assert_eq!(a.used(), 0);
        assert_eq!(a.largest_free(), capacity);
    }
}

#[test]
fn double_free_always_rejected() {
    let mut rng = SplitMix64::new(0xA110D);
    for _ in 0..256 {
        let len = rng.next_range(1, 999) as usize;
        let mut a = ShregAllocator::new(1 << 16);
        let off = a.alloc(len).unwrap();
        a.free(off).unwrap();
        assert!(a.free(off).is_err());
    }
}

#[test]
fn alloc_respects_exhaustion() {
    let mut rng = SplitMix64::new(0xA110E);
    for _ in 0..256 {
        let capacity = 16 * 1024;
        let mut a = ShregAllocator::new(capacity);
        let mut total = 0usize;
        let n = rng.next_range(1, 99) as usize;
        for _ in 0..n {
            let len = rng.next_range(1, 2047) as usize;
            let rounded = len.div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN;
            match a.alloc(len) {
                Ok(_) => {
                    total += rounded;
                    assert!(total <= capacity, "over-allocated");
                }
                Err(_) => {
                    // Exhaustion must be consistent with accounting:
                    // a failure means no free block of `rounded` exists.
                    assert!(a.largest_free() < rounded);
                }
            }
        }
    }
}
