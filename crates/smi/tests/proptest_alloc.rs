//! Property-based tests of the shared-region allocator: any interleaving
//! of allocations and frees preserves the free-list invariants, never
//! hands out overlapping blocks, and always recovers the full capacity.

use proptest::prelude::*;
use smi::alloc::ALLOC_ALIGN;
use smi::ShregAllocator;

#[derive(Clone, Debug)]
enum Op {
    Alloc(usize),
    FreeIdx(usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (1usize..5000).prop_map(Op::Alloc),
            (0usize..64).prop_map(Op::FreeIdx),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn allocator_never_overlaps_and_recovers(ops in ops(), cap_kib in 1usize..64) {
        let capacity = cap_kib * 1024;
        let mut a = ShregAllocator::new(capacity);
        let mut live: Vec<(usize, usize)> = Vec::new(); // (offset, requested)

        for op in ops {
            match op {
                Op::Alloc(len) => {
                    if let Ok(off) = a.alloc(len) {
                        prop_assert_eq!(off % ALLOC_ALIGN, 0, "misaligned offset");
                        let rounded = len.max(1).div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN;
                        prop_assert!(off + rounded <= capacity, "block outside region");
                        // No overlap with any live block.
                        for &(o, l) in &live {
                            let r = l.max(1).div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN;
                            prop_assert!(
                                off + rounded <= o || o + r <= off,
                                "overlap: [{off},{}) with [{o},{})",
                                off + rounded,
                                o + r
                            );
                        }
                        live.push((off, len));
                    }
                }
                Op::FreeIdx(i) => {
                    if !live.is_empty() {
                        let (off, _) = live.remove(i % live.len());
                        prop_assert!(a.free(off).is_ok(), "valid free rejected");
                    }
                }
            }
            prop_assert!(a.used() <= a.capacity());
            prop_assert_eq!(a.live_count(), live.len());
        }

        // Free the rest; full capacity must come back as one block.
        for (off, _) in live {
            prop_assert!(a.free(off).is_ok());
        }
        prop_assert_eq!(a.used(), 0);
        prop_assert_eq!(a.largest_free(), capacity);
    }

    #[test]
    fn double_free_always_rejected(len in 1usize..1000) {
        let mut a = ShregAllocator::new(1 << 16);
        let off = a.alloc(len).unwrap();
        a.free(off).unwrap();
        prop_assert!(a.free(off).is_err());
    }

    #[test]
    fn alloc_respects_exhaustion(lens in proptest::collection::vec(1usize..2048, 1..100)) {
        let capacity = 16 * 1024;
        let mut a = ShregAllocator::new(capacity);
        let mut total = 0usize;
        for len in lens {
            let rounded = len.div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN;
            match a.alloc(len) {
                Ok(_) => {
                    total += rounded;
                    prop_assert!(total <= capacity, "over-allocated");
                }
                Err(_) => {
                    // Exhaustion must be consistent with accounting:
                    // a failure means no free block of `rounded` exists.
                    prop_assert!(a.largest_free() < rounded);
                }
            }
        }
    }
}
