//! # smi — the Shared Memory Interface
//!
//! A reproduction of the SMI library (reference 26 in the paper): the abstraction
//! layer that lets SCI-MPICH treat **intra-node shared memory and
//! inter-node SCI memory uniformly**. The paper points out (§6) that every
//! optimisation built on SCI applies unchanged to intra-node shared memory
//! thanks to this layer — our Figure 7 "shm" curves use exactly that.
//!
//! Concepts:
//!
//! * an [`SmiWorld`] binds a set of *processes* to cluster *nodes* over one
//!   [`sci_fabric::Fabric`];
//! * a [`region::SharedRegion`] is memory exported by one process and
//!   mappable by all (remote access costs SCI time, local access costs
//!   memcpy time);
//! * [`region::RegionHandle`] provides the transfer engine with PIO / DMA /
//!   automatic mode selection;
//! * [`sync`] provides the shared-memory spinlocks and barriers of
//!   Schulz (reference 14) that SCI-MPICH uses for one-sided synchronisation;
//! * [`alloc::ShregAllocator`] manages sub-allocations inside a region —
//!   the machinery behind `MPI_Alloc_mem`.

pub mod alloc;
pub mod region;
pub mod sync;

pub use alloc::ShregAllocator;
pub use region::{RegionHandle, SharedRegion, TransferMode};
pub use sync::{SmiLock, TimeBarrier};

use sci_fabric::{Fabric, NodeId};
use std::sync::Arc;

/// Identifies one SMI process (maps 1:1 to an MPI rank above this layer).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProcId(pub usize);

impl core::fmt::Display for ProcId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// The process-to-node binding of a cluster run.
#[derive(Debug)]
pub struct SmiWorld {
    fabric: Arc<Fabric>,
    proc_nodes: Vec<NodeId>,
}

impl SmiWorld {
    /// Bind `proc_nodes[p]` as the node hosting process `p`.
    pub fn new(fabric: Arc<Fabric>, proc_nodes: Vec<NodeId>) -> Arc<Self> {
        let max = proc_nodes.iter().map(|n| n.0).max().unwrap_or(0);
        assert!(
            max < fabric.topology().node_count(),
            "process mapped to node {max} outside the topology"
        );
        Arc::new(SmiWorld { fabric, proc_nodes })
    }

    /// One process per node, in order — the paper's standard setup.
    pub fn one_per_node(fabric: Arc<Fabric>) -> Arc<Self> {
        let nodes: Vec<NodeId> = fabric.topology().nodes().collect();
        SmiWorld::new(fabric, nodes)
    }

    /// `ppn` processes on each node, packed.
    pub fn packed(fabric: Arc<Fabric>, ppn: usize) -> Arc<Self> {
        assert!(ppn > 0);
        let mut nodes = Vec::new();
        for n in fabric.topology().nodes() {
            for _ in 0..ppn {
                nodes.push(n);
            }
        }
        SmiWorld::new(fabric, nodes)
    }

    /// Number of processes.
    pub fn num_procs(&self) -> usize {
        self.proc_nodes.len()
    }

    /// Node hosting a process.
    pub fn node_of(&self, p: ProcId) -> NodeId {
        self.proc_nodes[p.0]
    }

    /// True if two processes share a node (intra-node shared memory).
    pub fn same_node(&self, a: ProcId, b: ProcId) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// The underlying fabric.
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// Create a shared region owned by process `owner`.
    pub fn create_region(self: &Arc<Self>, owner: ProcId, len: usize) -> Arc<SharedRegion> {
        SharedRegion::create(Arc::clone(self), owner, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sci_fabric::{FabricSpec, Topology};

    fn world() -> Arc<SmiWorld> {
        let fabric = Fabric::new(FabricSpec {
            topology: Topology::ringlet(4),
            ..FabricSpec::default()
        });
        SmiWorld::one_per_node(fabric)
    }

    #[test]
    fn one_per_node_mapping() {
        let w = world();
        assert_eq!(w.num_procs(), 4);
        assert_eq!(w.node_of(ProcId(2)), NodeId(2));
        assert!(!w.same_node(ProcId(0), ProcId(1)));
    }

    #[test]
    fn packed_mapping() {
        let fabric = Fabric::new(FabricSpec {
            topology: Topology::ringlet(2),
            ..FabricSpec::default()
        });
        let w = SmiWorld::packed(fabric, 2);
        assert_eq!(w.num_procs(), 4);
        assert!(w.same_node(ProcId(0), ProcId(1)));
        assert!(!w.same_node(ProcId(1), ProcId(2)));
        assert_eq!(w.node_of(ProcId(3)), NodeId(1));
    }

    #[test]
    #[should_panic(expected = "outside the topology")]
    fn bad_mapping_panics() {
        let fabric = Fabric::new(FabricSpec {
            topology: Topology::ringlet(2),
            ..FabricSpec::default()
        });
        let _ = SmiWorld::new(fabric, vec![NodeId(0), NodeId(5)]);
    }
}
