//! Shared-memory synchronisation: spinlocks and barriers.
//!
//! SCI-MPICH performs the mutual exclusion required by passive- and
//! active-target one-sided synchronisation "via shared memory locks and
//! barriers" (§4.2, citing Schulz (reference 14)): the lock word lives in an SCI
//! segment and is manipulated by transparent remote accesses. These
//! primitives have very low latency under little contention — and the
//! paper explicitly warns that contended locks should be avoided.
//!
//! In the simulation the *mutual exclusion itself* is provided by real
//! process-wide primitives (the rank threads genuinely block), while the
//! *cost* is charged to virtual clocks: a local acquisition costs an atomic
//! RMW, a remote acquisition costs an SCI read (check) plus an SCI write
//! (set); contended acquisitions additionally wait for the holder's
//! virtual release time.
//!
//! Under the event backend (`docs/SCHEDULER.md`) a contended acquisition
//! or barrier arrival parks the calling *task* instead of blocking on the
//! condvar: release/completion wakes the registered waiters through a
//! [`sched::WaitQueue`], so dispatch order — and therefore lock handover
//! order — is the scheduler's deterministic `(time, rank, seq)` order.

use crate::{ProcId, SmiWorld};
use simclock::{clock::barrier_release, Clock, SimDuration, SimTime};
use std::sync::Arc;
use std::sync::{Condvar, Mutex, MutexGuard, TryLockError};

/// A lock whose lock word lives in the shared memory of `owner`'s node.
#[derive(Debug)]
pub struct SmiLock {
    world: Arc<SmiWorld>,
    owner: ProcId,
    /// Virtual time at which the lock was last released, protected by the
    /// real mutex that provides actual exclusion between rank threads.
    state: Mutex<SimTime>,
    /// Event-backend tasks parked on a contended acquire.
    waiters: sched::WaitQueue,
}

/// Exclusive access to an [`SmiLock`]. Call [`SmiLockGuard::release`] to
/// unlock with correct virtual-time accounting; dropping the guard without
/// releasing unlocks too (so poisoned paths cannot deadlock) but then the
/// next holder does not observe this holder's critical-section time.
#[derive(Debug)]
pub struct SmiLockGuard<'a> {
    inner: Option<MutexGuard<'a, SimTime>>,
    waiters: &'a sched::WaitQueue,
}

impl SmiLock {
    /// Cost of a local (same-node) lock operation: one atomic RMW.
    const LOCAL_OP: SimDuration = SimDuration::from_ns(120);

    /// Create a lock resident at `owner`.
    pub fn new(world: Arc<SmiWorld>, owner: ProcId) -> Self {
        SmiLock {
            world,
            owner,
            state: Mutex::new(SimTime::ZERO),
            waiters: sched::WaitQueue::new(),
        }
    }

    fn acquire_cost(&self, p: ProcId) -> SimDuration {
        if self.world.same_node(p, self.owner) {
            Self::LOCAL_OP
        } else {
            // Remote check (stalling read) + remote set (posted write +
            // barrier).
            let params = self.world.fabric().params();
            let hops = self
                .world
                .fabric()
                .topology()
                .distance(self.world.node_of(p), self.world.node_of(self.owner));
            params.read_stall
                + params.txn_overhead
                + params.wire_latency(hops)
                + params.store_barrier
        }
    }

    /// Acquire the lock for process `p`, blocking the calling thread until
    /// the real mutex is free and charging `clock` for the SCI traffic and
    /// for any virtual wait on the previous holder.
    pub fn acquire<'a>(&'a self, clock: &mut Clock, p: ProcId) -> SmiLockGuard<'a> {
        let guard = if sched::is_event_task() {
            // A task must never block on the real mutex while holding the
            // run token (the holder may itself be parked): try, park,
            // retry on wake. The scheduler's dispatch order makes the
            // handover deterministic.
            loop {
                match self.state.try_lock() {
                    Ok(g) => break g,
                    Err(TryLockError::WouldBlock) => {
                        self.waiters.register_current();
                        sched::park(clock.now());
                    }
                    Err(TryLockError::Poisoned(e)) => {
                        panic!("SmiLock state poisoned: {e}")
                    }
                }
            }
        } else {
            self.state.lock().unwrap()
        };
        obs::inc(obs::Counter::SmiLockAcquires);
        // Wait (in virtual time) for the previous holder's release.
        obs::attrib::merge_waited(clock, *guard, obs::WaitKind::Lock, None);
        obs::attrib::advance(clock, obs::Bucket::Transfer, self.acquire_cost(p));
        SmiLockGuard {
            inner: Some(guard),
            waiters: &self.waiters,
        }
    }

    /// Try to acquire without blocking the thread. Charges the probe cost
    /// either way (the remote check happens regardless of success).
    pub fn try_acquire<'a>(&'a self, clock: &mut Clock, p: ProcId) -> Option<SmiLockGuard<'a>> {
        let probe = self.acquire_cost(p);
        match self.state.try_lock() {
            Ok(guard) => {
                obs::inc(obs::Counter::SmiLockAcquires);
                obs::attrib::merge_waited(clock, *guard, obs::WaitKind::Lock, None);
                obs::attrib::advance(clock, obs::Bucket::Transfer, probe);
                Some(SmiLockGuard {
                    inner: Some(guard),
                    waiters: &self.waiters,
                })
            }
            Err(_) => {
                obs::attrib::advance(clock, obs::Bucket::Transfer, probe);
                None
            }
        }
    }

    /// The process whose node hosts the lock word.
    pub fn owner(&self) -> ProcId {
        self.owner
    }
}

impl SmiLockGuard<'_> {
    /// Unlock, recording the holder's current virtual time so the next
    /// acquirer waits for it.
    pub fn release(mut self, clock: &mut Clock) {
        obs::attrib::advance(clock, obs::Bucket::Transfer, SmiLock::LOCAL_OP);
        if let Some(mut inner) = self.inner.take() {
            *inner = clock.now();
            drop(inner);
            self.waiters.wake_all();
        }
    }
}

impl Drop for SmiLockGuard<'_> {
    fn drop(&mut self) {
        // Drop-without-release (poisoned paths) must still wake parked
        // event tasks or they would stall until the next liveness sweep.
        if self.inner.take().is_some() {
            self.waiters.wake_all();
        }
    }
}

/// A barrier that synchronises both the real rank threads and their
/// virtual clocks: everyone leaves with `clock.now()` equal to the common
/// release time (latest arrival plus a logarithmic fan-in cost).
#[derive(Debug)]
pub struct TimeBarrier {
    n: usize,
    per_hop: SimDuration,
    state: Mutex<BarrierState>,
    cv: Condvar,
    /// Event-backend tasks parked waiting for the generation to advance.
    waiters: sched::WaitQueue,
}

#[derive(Debug, Default)]
struct BarrierState {
    generation: u64,
    arrived: usize,
    max_arrival: SimTime,
    release: SimTime,
}

impl TimeBarrier {
    /// A barrier for `n` participants with a per-tree-level cost of
    /// `per_hop` (use the fabric's store latency for SCI barriers).
    pub fn new(n: usize, per_hop: SimDuration) -> Self {
        assert!(n > 0, "a barrier needs at least one participant");
        TimeBarrier {
            n,
            per_hop,
            state: Mutex::new(BarrierState::default()),
            cv: Condvar::new(),
            waiters: sched::WaitQueue::new(),
        }
    }

    /// Number of participants.
    pub fn parties(&self) -> usize {
        self.n
    }

    /// Enter the barrier; blocks the thread until all `n` participants
    /// arrive, then merges every clock to the common release time.
    /// Returns `true` on the "leader" (last arriver), mirroring
    /// `std::sync::Barrier`.
    pub fn wait(&self, clock: &mut Clock) -> bool {
        obs::inc(obs::Counter::BarrierCrossings);
        let mut st = self.state.lock().unwrap();
        st.arrived += 1;
        st.max_arrival = st.max_arrival.max(clock.now());
        if st.arrived == self.n {
            let arrivals = [st.max_arrival];
            st.release = barrier_release(&arrivals, self.per_hop, self.n);
            st.arrived = 0;
            st.max_arrival = SimTime::ZERO;
            st.generation += 1;
            let release = st.release;
            drop(st);
            self.cv.notify_all();
            self.waiters.wake_all();
            obs::attrib::merge_waited(clock, release, obs::WaitKind::Barrier, None);
            true
        } else {
            let gen = st.generation;
            if sched::is_event_task() {
                while st.generation == gen {
                    self.waiters.register_current();
                    drop(st);
                    sched::park(clock.now());
                    st = self.state.lock().unwrap();
                }
            } else {
                while st.generation == gen {
                    st = self.cv.wait(st).unwrap();
                }
            }
            let release = st.release;
            drop(st);
            obs::attrib::merge_waited(clock, release, obs::WaitKind::Barrier, None);
            false
        }
    }

    /// Enter the barrier, but keep polling `cancel` while blocked: if it
    /// returns `Some(at)` before the barrier completes, withdraw this
    /// participant's arrival and return `Err(at)` (the caller converts
    /// `at` into its own cancellation accounting). The leader path — the
    /// last arriver — always completes the barrier exactly like
    /// [`TimeBarrier::wait`], and a completion that races a cancellation
    /// wins: the generation change is checked before `cancel` under the
    /// same lock. With a `cancel` that never fires, the virtual-time
    /// semantics are identical to `wait`.
    pub fn wait_cancel(
        &self,
        clock: &mut Clock,
        mut cancel: impl FnMut() -> Option<SimTime>,
    ) -> Result<(), SimTime> {
        obs::inc(obs::Counter::BarrierCrossings);
        let mut st = self.state.lock().unwrap();
        st.arrived += 1;
        st.max_arrival = st.max_arrival.max(clock.now());
        if st.arrived == self.n {
            let arrivals = [st.max_arrival];
            st.release = barrier_release(&arrivals, self.per_hop, self.n);
            st.arrived = 0;
            st.max_arrival = SimTime::ZERO;
            st.generation += 1;
            let release = st.release;
            drop(st);
            self.cv.notify_all();
            self.waiters.wake_all();
            obs::attrib::merge_waited(clock, release, obs::WaitKind::Barrier, None);
            return Ok(());
        }
        let gen = st.generation;
        loop {
            if st.generation != gen {
                let release = st.release;
                drop(st);
                obs::attrib::merge_waited(clock, release, obs::WaitKind::Barrier, None);
                return Ok(());
            }
            if let Some(at) = cancel() {
                st.arrived -= 1;
                return Err(at);
            }
            if sched::is_event_task() {
                // A stall round re-runs `cancel` — the event-backend
                // equivalent of this condvar's 10 ms poll slice.
                self.waiters.register_current();
                drop(st);
                sched::park(clock.now());
                st = self.state.lock().unwrap();
            } else {
                let (guard, _timeout) = self
                    .cv
                    .wait_timeout(st, std::time::Duration::from_millis(10))
                    .unwrap();
                st = guard;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sci_fabric::{Fabric, FabricSpec, Topology};
    use std::thread;

    fn world(nodes: usize) -> Arc<SmiWorld> {
        let fabric = Fabric::new(FabricSpec {
            topology: Topology::ringlet(nodes),
            ..FabricSpec::default()
        });
        SmiWorld::one_per_node(fabric)
    }

    #[test]
    fn lock_provides_exclusion_across_threads() {
        let w = world(4);
        let lock = Arc::new(SmiLock::new(Arc::clone(&w), ProcId(0)));
        let counter = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for p in 0..4 {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(thread::spawn(move || {
                let mut clock = Clock::new();
                for _ in 0..250 {
                    let g = lock.acquire(&mut clock, ProcId(p));
                    {
                        let mut c = counter.lock().unwrap();
                        *c += 1;
                    }
                    clock.advance(SimDuration::from_ns(50));
                    g.release(&mut clock);
                }
                clock.now()
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock().unwrap(), 1000);
    }

    #[test]
    fn remote_acquire_costs_more_than_local() {
        let w = world(4);
        let lock = SmiLock::new(Arc::clone(&w), ProcId(0));
        let mut local = Clock::new();
        lock.acquire(&mut local, ProcId(0)).release(&mut local);
        let mut remote = Clock::new();
        lock.acquire(&mut remote, ProcId(3)).release(&mut remote);
        assert!(
            remote.now().as_ps() > 3 * local.now().as_ps(),
            "remote {:?} vs local {:?}",
            remote.now(),
            local.now()
        );
    }

    #[test]
    fn second_holder_waits_virtually_for_first() {
        let w = world(2);
        let lock = SmiLock::new(Arc::clone(&w), ProcId(0));
        let mut c0 = Clock::new();
        let g = lock.acquire(&mut c0, ProcId(0));
        c0.advance(SimDuration::from_us(100)); // long critical section
        g.release(&mut c0);

        let mut c1 = Clock::new(); // starts at t=0
        let g = lock.acquire(&mut c1, ProcId(1));
        g.release(&mut c1);
        assert!(
            c1.now() >= SimTime::ZERO + SimDuration::from_us(100),
            "waiter did not observe holder's critical section: {:?}",
            c1.now()
        );
    }

    #[test]
    fn try_acquire_fails_when_held() {
        let w = world(2);
        let lock = SmiLock::new(Arc::clone(&w), ProcId(0));
        let mut c0 = Clock::new();
        let g = lock.acquire(&mut c0, ProcId(0));
        let mut c1 = Clock::new();
        assert!(lock.try_acquire(&mut c1, ProcId(1)).is_none());
        // The failed probe still cost time.
        assert!(c1.now() > SimTime::ZERO);
        g.release(&mut c0);
        assert!(lock.try_acquire(&mut c1, ProcId(1)).is_some());
    }

    #[test]
    fn barrier_aligns_clocks() {
        let barrier = Arc::new(TimeBarrier::new(4, SimDuration::from_us(1)));
        let mut handles = Vec::new();
        for i in 0..4u64 {
            let barrier = Arc::clone(&barrier);
            handles.push(thread::spawn(move || {
                let mut clock = Clock::new();
                clock.advance(SimDuration::from_us(10 * i)); // skewed arrivals
                barrier.wait(&mut clock);
                clock.now()
            }));
        }
        let times: Vec<SimTime> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Everyone leaves at the same virtual time, at or after the latest
        // arrival (30us).
        assert!(times.iter().all(|t| *t == times[0]));
        assert!(times[0] >= SimTime::ZERO + SimDuration::from_us(30));
    }

    #[test]
    fn barrier_is_reusable() {
        let barrier = Arc::new(TimeBarrier::new(2, SimDuration::from_us(1)));
        for round in 0..3u64 {
            let b = Arc::clone(&barrier);
            let t = thread::spawn(move || {
                let mut c = Clock::new();
                c.advance(SimDuration::from_us(round * 5));
                b.wait(&mut c);
                c.now()
            });
            let mut c = Clock::new();
            c.advance(SimDuration::from_us(100));
            barrier.wait(&mut c);
            let other = t.join().unwrap();
            assert_eq!(other, c.now(), "round {round}");
        }
    }

    #[test]
    fn single_party_barrier_is_nonblocking() {
        let barrier = TimeBarrier::new(1, SimDuration::from_us(1));
        let mut c = Clock::new();
        assert!(barrier.wait(&mut c));
        assert!(barrier.wait(&mut c));
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_party_barrier_panics() {
        let _ = TimeBarrier::new(0, SimDuration::ZERO);
    }

    #[test]
    fn wait_cancel_completes_like_wait_when_not_cancelled() {
        let barrier = Arc::new(TimeBarrier::new(2, SimDuration::from_us(1)));
        let b = Arc::clone(&barrier);
        let t = thread::spawn(move || {
            let mut c = Clock::new();
            b.wait_cancel(&mut c, || None).unwrap();
            c.now()
        });
        let mut c = Clock::new();
        c.advance(SimDuration::from_us(50));
        barrier.wait(&mut c);
        assert_eq!(t.join().unwrap(), c.now());
    }

    #[test]
    fn wait_cancel_withdraws_and_leaves_barrier_reusable() {
        let barrier = Arc::new(TimeBarrier::new(2, SimDuration::from_us(1)));
        let mut c = Clock::new();
        let cancel_at = SimTime::ZERO + SimDuration::from_us(7);
        let err = barrier
            .wait_cancel(&mut c, || Some(cancel_at))
            .expect_err("must cancel");
        assert_eq!(err, cancel_at);
        // The withdrawn arrival must not linger: a fresh pair of waiters
        // completes normally.
        let b = Arc::clone(&barrier);
        let t = thread::spawn(move || {
            let mut c = Clock::new();
            b.wait(&mut c);
            c.now()
        });
        let mut c2 = Clock::new();
        barrier.wait(&mut c2);
        assert_eq!(t.join().unwrap(), c2.now());
    }
}
