//! Sub-allocation inside a shared region.
//!
//! On real SCI clusters, remotely accessible memory must come from segments
//! allocated through the SCI kernel driver — an MPI process cannot export
//! arbitrary heap memory (§4.2; reference 13 later lifted this). `MPI_Alloc_mem`
//! therefore hands out pieces of a pre-exported region. This module
//! provides the free-list allocator behind it: first-fit with coalescing,
//! fixed alignment, O(free-list) operations — plenty for the allocation
//! patterns of an MPI process.

use core::fmt;

/// Alignment of every returned offset (covers SCI transaction alignment).
pub const ALLOC_ALIGN: usize = 64;

/// Allocation failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocError {
    /// Not enough contiguous free space.
    OutOfMemory {
        /// Bytes requested.
        requested: usize,
        /// Largest free block currently available.
        largest_free: usize,
    },
    /// Freeing an offset that was never allocated (or double free).
    InvalidFree(usize),
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory {
                requested,
                largest_free,
            } => write!(
                f,
                "shared region exhausted: requested {requested} bytes, largest free block {largest_free}"
            ),
            AllocError::InvalidFree(off) => write!(f, "invalid free at offset {off}"),
        }
    }
}

impl std::error::Error for AllocError {}

/// A first-fit free-list allocator over `[0, capacity)`.
#[derive(Debug, Clone)]
pub struct ShregAllocator {
    capacity: usize,
    /// Sorted, non-adjacent free intervals `(offset, len)`.
    free: Vec<(usize, usize)>,
    /// Live allocations `(offset, len)`, sorted by offset.
    live: Vec<(usize, usize)>,
}

impl ShregAllocator {
    /// An allocator over a region of `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        ShregAllocator {
            capacity,
            free: if capacity > 0 {
                vec![(0, capacity)]
            } else {
                Vec::new()
            },
            live: Vec::new(),
        }
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently allocated (including alignment padding).
    pub fn used(&self) -> usize {
        self.live.iter().map(|&(_, l)| l).sum()
    }

    /// Largest currently free contiguous block.
    pub fn largest_free(&self) -> usize {
        self.free.iter().map(|&(_, l)| l).max().unwrap_or(0)
    }

    /// Number of live allocations.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Allocate `len` bytes (rounded up to [`ALLOC_ALIGN`]); returns the
    /// offset.
    pub fn alloc(&mut self, len: usize) -> Result<usize, AllocError> {
        let len = len.max(1).div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN;
        let slot =
            self.free
                .iter()
                .position(|&(_, flen)| flen >= len)
                .ok_or(AllocError::OutOfMemory {
                    requested: len,
                    largest_free: self.largest_free(),
                })?;
        let (off, flen) = self.free[slot];
        if flen == len {
            self.free.remove(slot);
        } else {
            self.free[slot] = (off + len, flen - len);
        }
        let pos = self.live.partition_point(|&(o, _)| o < off);
        self.live.insert(pos, (off, len));
        Ok(off)
    }

    /// Free the allocation starting at `offset`.
    pub fn free(&mut self, offset: usize) -> Result<(), AllocError> {
        let idx = self
            .live
            .iter()
            .position(|&(o, _)| o == offset)
            .ok_or(AllocError::InvalidFree(offset))?;
        let (off, len) = self.live.remove(idx);
        // Insert into the sorted free list and coalesce neighbours.
        let pos = self.free.partition_point(|&(o, _)| o < off);
        self.free.insert(pos, (off, len));
        self.coalesce(pos);
        Ok(())
    }

    fn coalesce(&mut self, pos: usize) {
        // Merge with successor first (indices stay valid), then predecessor.
        if pos + 1 < self.free.len() {
            let (o, l) = self.free[pos];
            let (no, nl) = self.free[pos + 1];
            if o + l == no {
                self.free[pos] = (o, l + nl);
                self.free.remove(pos + 1);
            }
        }
        if pos > 0 {
            let (po, pl) = self.free[pos - 1];
            let (o, l) = self.free[pos];
            if po + pl == o {
                self.free[pos - 1] = (po, pl + l);
                self.free.remove(pos);
            }
        }
    }

    /// True if `offset` is the start of a live allocation.
    pub fn is_live(&self, offset: usize) -> bool {
        self.live.iter().any(|&(o, _)| o == offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_returns_aligned_offsets() {
        let mut a = ShregAllocator::new(4096);
        let o1 = a.alloc(10).unwrap();
        let o2 = a.alloc(100).unwrap();
        assert_eq!(o1 % ALLOC_ALIGN, 0);
        assert_eq!(o2 % ALLOC_ALIGN, 0);
        assert_ne!(o1, o2);
        assert_eq!(a.used(), 64 + 128);
    }

    #[test]
    fn zero_sized_alloc_takes_one_unit() {
        let mut a = ShregAllocator::new(256);
        let o = a.alloc(0).unwrap();
        assert!(a.is_live(o));
        assert_eq!(a.used(), ALLOC_ALIGN);
    }

    #[test]
    fn exhaustion_reports_largest_block() {
        let mut a = ShregAllocator::new(256);
        a.alloc(128).unwrap();
        let err = a.alloc(256).unwrap_err();
        assert_eq!(
            err,
            AllocError::OutOfMemory {
                requested: 256,
                largest_free: 128
            }
        );
    }

    #[test]
    fn free_and_reuse() {
        let mut a = ShregAllocator::new(256);
        let o1 = a.alloc(128).unwrap();
        let _o2 = a.alloc(128).unwrap();
        assert!(a.alloc(1).is_err());
        a.free(o1).unwrap();
        let o3 = a.alloc(64).unwrap();
        assert_eq!(o3, o1, "first fit should reuse the freed block");
    }

    #[test]
    fn double_free_rejected() {
        let mut a = ShregAllocator::new(256);
        let o = a.alloc(64).unwrap();
        a.free(o).unwrap();
        assert_eq!(a.free(o), Err(AllocError::InvalidFree(o)));
        assert_eq!(a.free(999), Err(AllocError::InvalidFree(999)));
    }

    #[test]
    fn coalescing_restores_full_capacity() {
        let mut a = ShregAllocator::new(1024);
        let offs: Vec<usize> = (0..8).map(|_| a.alloc(128).unwrap()).collect();
        assert_eq!(a.largest_free(), 0);
        // Free in a scrambled order.
        for &i in &[3usize, 0, 7, 1, 5, 2, 6, 4] {
            a.free(offs[i]).unwrap();
        }
        assert_eq!(a.largest_free(), 1024);
        assert_eq!(a.used(), 0);
        // One big allocation fits again.
        assert!(a.alloc(1024).is_ok());
    }

    #[test]
    fn interleaved_pattern_keeps_invariants() {
        let mut a = ShregAllocator::new(64 * 1024);
        let mut live = Vec::new();
        for round in 0..100 {
            if round % 3 != 2 {
                if let Ok(o) = a.alloc(64 * (1 + round % 7)) {
                    live.push(o);
                }
            } else if !live.is_empty() {
                let o = live.remove(round % live.len());
                a.free(o).unwrap();
            }
            // Used + free never exceeds capacity.
            assert!(a.used() <= a.capacity());
            assert_eq!(a.live_count(), live.len());
        }
        for o in live {
            a.free(o).unwrap();
        }
        assert_eq!(a.largest_free(), 64 * 1024);
    }

    #[test]
    fn zero_capacity_allocator() {
        let mut a = ShregAllocator::new(0);
        assert!(a.alloc(1).is_err());
        assert_eq!(a.largest_free(), 0);
    }
}
