//! Shared regions and the transfer engine.
//!
//! A [`SharedRegion`] is the SMI unit of remotely accessible memory: one
//! process exports it, everyone can map it. A [`RegionHandle`] is one
//! process's mapping, through which reads/writes are charged intra-node
//! memcpy cost or inter-node SCI cost as appropriate. The handle also picks
//! between PIO and DMA per transfer ([`TransferMode::Auto`] switches to DMA
//! above a threshold, like SCI-MPICH's protocol parameters).

use crate::{ProcId, SmiWorld};
use sci_fabric::{DmaCompletion, SciError, Segment};
use simclock::{Clock, SimTime};
use std::sync::Arc;

/// How a transfer should move its bytes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TransferMode {
    /// Transparent CPU stores/loads (low latency, CPU-bound).
    #[default]
    Pio,
    /// The adapter's DMA engine (high setup, streams without the CPU).
    Dma,
    /// PIO below `auto_dma_threshold` bytes, DMA at or above it.
    Auto,
}

/// Transfers at or above this many bytes use DMA in [`TransferMode::Auto`].
/// Chosen near the PIO/DMA crossover of Figure 1.
pub const AUTO_DMA_THRESHOLD: usize = 512 * 1024;

/// A chunk of memory exported by one process for remote access.
#[derive(Debug)]
pub struct SharedRegion {
    world: Arc<SmiWorld>,
    owner: ProcId,
    segment: Arc<Segment>,
}

impl SharedRegion {
    pub(crate) fn create(world: Arc<SmiWorld>, owner: ProcId, len: usize) -> Arc<Self> {
        let node = world.node_of(owner);
        let segment = world.fabric().export(node, len);
        Arc::new(SharedRegion {
            world,
            owner,
            segment,
        })
    }

    /// The exporting process.
    pub fn owner(&self) -> ProcId {
        self.owner
    }

    /// Capacity in bytes.
    pub fn len(&self) -> usize {
        self.segment.len()
    }

    /// True if the region has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.segment.is_empty()
    }

    /// The backing fabric segment.
    pub fn segment(&self) -> &Arc<Segment> {
        &self.segment
    }

    /// Map the region at process `p`.
    pub fn map(self: &Arc<Self>, p: ProcId) -> RegionHandle {
        RegionHandle {
            region: Arc::clone(self),
            proc: p,
        }
    }
}

/// One process's mapping of a [`SharedRegion`]: the transfer engine.
#[derive(Debug, Clone)]
pub struct RegionHandle {
    region: Arc<SharedRegion>,
    proc: ProcId,
}

impl RegionHandle {
    /// The mapping process.
    pub fn proc(&self) -> ProcId {
        self.proc
    }

    /// The mapped region.
    pub fn region(&self) -> &Arc<SharedRegion> {
        &self.region
    }

    /// True if this mapping is intra-node (plain shared memory).
    pub fn is_local(&self) -> bool {
        self.region.world.same_node(self.proc, self.region.owner)
    }

    fn node(&self) -> sci_fabric::NodeId {
        self.region.world.node_of(self.proc)
    }

    /// Open a raw PIO store stream into the region (the `direct_pack_ff`
    /// sink uses this to stream many small blocks with burst-merge
    /// semantics).
    pub fn pio_stream(&self, source_working_set: usize) -> sci_fabric::PioStream {
        self.region
            .world
            .fabric()
            .pio_stream(self.node(), &self.region.segment, source_working_set)
    }

    /// Write `data` at `offset`, charging `clock`, using `mode`.
    /// PIO writes include the store barrier so the data is delivered on
    /// return (synchronous semantics); use [`Self::pio_stream`] for posted
    /// writes.
    pub fn write(
        &self,
        clock: &mut Clock,
        offset: usize,
        data: &[u8],
        mode: TransferMode,
    ) -> Result<(), SciError> {
        match self.resolve(mode, data.len()) {
            TransferMode::Dma => {
                let done = self.dma_write(clock, offset, data)?;
                clock.merge(done.done);
                Ok(())
            }
            _ => {
                let mut s = self.pio_stream(data.len());
                s.write(clock, offset, data)?;
                s.barrier(clock);
                Ok(())
            }
        }
    }

    /// Read into `dst` from `offset`, charging `clock`, using `mode`.
    pub fn read(
        &self,
        clock: &mut Clock,
        offset: usize,
        dst: &mut [u8],
        mode: TransferMode,
    ) -> Result<(), SciError> {
        match self.resolve(mode, dst.len()) {
            TransferMode::Dma => {
                let dma = self
                    .region
                    .world
                    .fabric()
                    .dma_engine(self.node(), &self.region.segment);
                let done = dma.read(clock, offset, dst)?;
                clock.merge(done.done);
                Ok(())
            }
            _ => {
                let r = self
                    .region
                    .world
                    .fabric()
                    .pio_reader(self.node(), &self.region.segment);
                r.read(clock, offset, dst)
            }
        }
    }

    /// Posted DMA write; returns the completion for callers that overlap.
    pub fn dma_write(
        &self,
        clock: &mut Clock,
        offset: usize,
        data: &[u8],
    ) -> Result<DmaCompletion, SciError> {
        let dma = self
            .region
            .world
            .fabric()
            .dma_engine(self.node(), &self.region.segment);
        dma.write(clock, offset, data)
    }

    fn resolve(&self, mode: TransferMode, len: usize) -> TransferMode {
        match mode {
            TransferMode::Auto => {
                if len >= AUTO_DMA_THRESHOLD && !self.is_local() {
                    TransferMode::Dma
                } else {
                    TransferMode::Pio
                }
            }
            m => m,
        }
    }
}

/// Timestamped completion of a region write, used by protocol code.
#[derive(Clone, Copy, Debug)]
pub struct WriteReceipt {
    /// When the data is fully visible at the owner.
    pub delivered: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sci_fabric::{Fabric, FabricSpec, Topology};

    fn world(nodes: usize) -> Arc<SmiWorld> {
        let fabric = Fabric::new(FabricSpec {
            topology: Topology::ringlet(nodes),
            ..FabricSpec::default()
        });
        SmiWorld::one_per_node(fabric)
    }

    #[test]
    fn write_read_roundtrip_remote() {
        let w = world(4);
        let region = w.create_region(ProcId(1), 4096);
        let writer = region.map(ProcId(0));
        let reader = region.map(ProcId(2));
        assert!(!writer.is_local());

        let mut c = Clock::new();
        writer
            .write(&mut c, 100, b"one-sided", TransferMode::Pio)
            .unwrap();
        let t_write = c.now();
        assert!(t_write > SimTime::ZERO);

        let mut buf = [0u8; 9];
        reader
            .read(&mut c, 100, &mut buf, TransferMode::Pio)
            .unwrap();
        assert_eq!(&buf, b"one-sided");
    }

    #[test]
    fn local_mapping_detected() {
        let w = world(2);
        let region = w.create_region(ProcId(0), 64);
        assert!(region.map(ProcId(0)).is_local());
        assert!(!region.map(ProcId(1)).is_local());
    }

    #[test]
    fn intra_node_procs_share_locality() {
        let fabric = Fabric::new(FabricSpec {
            topology: Topology::ringlet(2),
            ..FabricSpec::default()
        });
        let w = SmiWorld::packed(fabric, 2); // procs 0,1 on node 0
        let region = w.create_region(ProcId(0), 64);
        assert!(region.map(ProcId(1)).is_local());
        assert!(!region.map(ProcId(2)).is_local());
    }

    #[test]
    fn auto_mode_picks_dma_for_large_remote() {
        let w = world(2);
        let region = w.create_region(ProcId(1), 2 << 20);
        let h = region.map(ProcId(0));
        assert_eq!(h.resolve(TransferMode::Auto, 1024), TransferMode::Pio);
        assert_eq!(
            h.resolve(TransferMode::Auto, AUTO_DMA_THRESHOLD),
            TransferMode::Dma
        );
        // Local mappings never use the DMA engine.
        let l = region.map(ProcId(1));
        assert_eq!(
            l.resolve(TransferMode::Auto, AUTO_DMA_THRESHOLD),
            TransferMode::Pio
        );
    }

    #[test]
    fn dma_and_pio_both_deliver_bytes() {
        let w = world(2);
        let region = w.create_region(ProcId(1), 2 << 20);
        let h = region.map(ProcId(0));
        let data = vec![0xCDu8; 1 << 20];
        let mut c = Clock::new();
        h.write(&mut c, 0, &data, TransferMode::Dma).unwrap();
        let mut out = vec![0u8; 1 << 20];
        region.segment().mem().read(0, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn remote_read_slower_than_remote_write() {
        let w = world(2);
        let region = w.create_region(ProcId(1), 64 * 1024);
        let h = region.map(ProcId(0));
        let data = vec![1u8; 32 * 1024];
        let mut cw = Clock::new();
        h.write(&mut cw, 0, &data, TransferMode::Pio).unwrap();
        let mut cr = Clock::new();
        let mut buf = vec![0u8; 32 * 1024];
        h.read(&mut cr, 0, &mut buf, TransferMode::Pio).unwrap();
        assert!(cr.now() > cw.now(), "PIO read should cost more than write");
    }

    #[test]
    fn out_of_bounds_surfaces_error() {
        let w = world(2);
        let region = w.create_region(ProcId(0), 16);
        let h = region.map(ProcId(1));
        let mut c = Clock::new();
        assert!(h.write(&mut c, 10, &[0u8; 16], TransferMode::Pio).is_err());
    }
}
