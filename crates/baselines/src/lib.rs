//! # baselines — comparison-platform models for the cross-platform figures
//!
//! The paper's §5.3 evaluation compares SCI-MPICH against seven other
//! machine/MPI configurations (Table 1) running the same two
//! micro-benchmarks. Those machines (a Cray T3E, a Sun Fire 6800, Xeon
//! and Pentium-II SMPs with LAM/SCore, a Giganet VIA cluster) are modelled
//! here analytically: published latency/bandwidth/engine parameters plus
//! closed-form benchmark math. See [`model`] for the maths and
//! [`platforms`] for the Table 1 registry with per-parameter provenance
//! notes.
//!
//! The SCI rows of every figure come from the actual simulator
//! (`scimpi` + `sci-fabric`), never from this crate.

pub mod model;
pub mod platforms;

pub use model::{NoncontigQuirk, OscModel, OscSupport, Platform, ScalingModel, TwoSidedModel};
