//! Analytic transport models for the comparison platforms.
//!
//! The paper evaluates SCI-MPICH against seven other machine/MPI
//! configurations (Table 1) that we obviously cannot run. Each is modelled
//! by a small set of published/derivable parameters — message latency,
//! peak bandwidth, local copy bandwidth, datatype-engine overhead, and
//! one-sided characteristics — and closed-form benchmark math that mirrors
//! exactly what the harnesses measure on the simulated SCI cluster:
//!
//! * the `noncontig` micro-benchmark (§3.4): strided-vector transfer of a
//!   fixed payload, non-contiguous vs. contiguous bandwidth;
//! * the `sparse` micro-benchmark (§4.3, Figure 8): strided one-sided
//!   accesses with fence synchronisation;
//! * the scaling experiment (Figure 12): per-process put bandwidth as the
//!   process count grows.
//!
//! The models reproduce the *class* behaviour the paper reports (hardware
//! RMA vs. message emulation vs. bus-based SMP), not exact numbers.

use simclock::{Bandwidth, SimDuration};

/// Whether/how a platform supports MPI-2 one-sided communication
/// (Table 1's "OSC" column).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OscSupport {
    /// Full support.
    Yes,
    /// No support (the sparse benchmark cannot run).
    No,
    /// Only `MPI_Get` works (`MPI_Put` deadlocked on the Xeon/LAM shm
    /// configuration — Table 1 footnote b).
    GetOnly,
}

/// Two-sided transport parameters.
#[derive(Clone, Debug)]
pub struct TwoSidedModel {
    /// MPI message startup latency (one-way).
    pub latency: SimDuration,
    /// Peak contiguous MPI bandwidth.
    pub bandwidth: Bandwidth,
    /// Local memory copy bandwidth (pack/unpack buffers).
    pub copy_bw: Bandwidth,
    /// Datatype-engine CPU overhead per non-contiguous block.
    pub per_block: SimDuration,
    /// Extra copy operations a non-contiguous transfer performs
    /// (2 = pack + unpack, the generic technique).
    pub pack_copies: usize,
}

impl TwoSidedModel {
    /// Time to move `bytes` as one contiguous message.
    pub fn contiguous_time(&self, bytes: usize) -> SimDuration {
        self.latency + self.bandwidth.cost(bytes as u64)
    }

    /// Contiguous bandwidth for a `bytes`-sized message.
    pub fn contiguous_bw(&self, bytes: usize) -> Bandwidth {
        Bandwidth::observed(bytes as u64, self.contiguous_time(bytes))
    }

    /// Time to move `bytes` of non-contiguous data in blocks of
    /// `blocksize` with the generic pack-and-send technique.
    pub fn noncontig_time(&self, bytes: usize, blocksize: usize) -> SimDuration {
        let blocks = bytes.div_ceil(blocksize.max(1));
        let pack_one =
            self.per_block.saturating_mul(blocks as u64) + self.copy_bw.cost(bytes as u64);
        self.contiguous_time(bytes) + pack_one.saturating_mul(self.pack_copies as u64)
    }

    /// Non-contiguous bandwidth for the `noncontig` benchmark.
    pub fn noncontig_bw(&self, bytes: usize, blocksize: usize) -> Bandwidth {
        Bandwidth::observed(bytes as u64, self.noncontig_time(bytes, blocksize))
    }
}

/// Platform-specific quirks in non-contiguous handling, per the paper's
/// Figure 10 discussion.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NoncontigQuirk {
    /// Plain generic pack-and-send everywhere.
    None,
    /// Sun MPI shared memory: constant efficiency that jumps from ~0.5 to
    /// ~1.0 at the threshold ("a simple optimization has been
    /// implemented", no documentation available).
    EfficiencyStep {
        /// Block size at which the optimisation engages.
        threshold: usize,
        /// Efficiency below the threshold.
        low: f64,
        /// Efficiency at or above it.
        high: f64,
    },
    /// Cray T3E: efficiency ≈ 1 for mid-size blocks but poor for very
    /// small (< low_edge) and big (> high_edge) ones.
    Band {
        /// Lower edge of the efficient band.
        low_edge: usize,
        /// Upper edge of the efficient band.
        high_edge: usize,
        /// Efficiency outside the band.
        outside: f64,
    },
}

/// One-sided communication parameters.
#[derive(Clone, Debug)]
pub struct OscModel {
    /// Support level.
    pub support: OscSupport,
    /// Per-call latency of a strided put (includes synchronisation
    /// amortised over many calls, as in the sparse benchmark).
    pub put_latency: SimDuration,
    /// Streaming bandwidth of puts.
    pub put_bw: Bandwidth,
    /// Per-call latency of a get.
    pub get_latency: SimDuration,
    /// Streaming bandwidth of gets.
    pub get_bw: Bandwidth,
    /// True if remote memory access is performed by hardware (Figure 12's
    /// selection criterion).
    pub hardware_rma: bool,
}

impl OscModel {
    /// Sparse-benchmark per-call time for an access of `bytes`.
    pub fn put_time(&self, bytes: usize) -> SimDuration {
        self.put_latency + self.put_bw.cost(bytes as u64)
    }

    /// Sparse-benchmark per-call get time.
    pub fn get_time(&self, bytes: usize) -> SimDuration {
        self.get_latency + self.get_bw.cost(bytes as u64)
    }

    /// Aggregate put bandwidth over a window sweep with `bytes`-sized
    /// accesses.
    pub fn put_bandwidth(&self, bytes: usize) -> Bandwidth {
        Bandwidth::observed(bytes as u64, self.put_time(bytes))
    }

    /// Aggregate get bandwidth.
    pub fn get_bandwidth(&self, bytes: usize) -> Bandwidth {
        Bandwidth::observed(bytes as u64, self.get_time(bytes))
    }
}

/// How per-process one-sided bandwidth scales with the number of active
/// processes (Figure 12).
#[derive(Clone, Debug)]
pub enum ScalingModel {
    /// A shared memory system: all processes share `total` of backplane/
    /// bus bandwidth; beyond `knee` processes contention overhead shaves
    /// `degrade` of the remaining share per extra process.
    SharedBus {
        /// Aggregate transport capacity.
        total: Bandwidth,
        /// Processes the fabric serves at full speed.
        knee: usize,
        /// Fractional per-process degradation beyond the knee.
        degrade: f64,
    },
    /// A distributed machine with per-node links: per-process bandwidth is
    /// constant up to the network's saturation point.
    Distributed {
        /// Per-process cap.
        per_proc: Bandwidth,
        /// Aggregate network capacity (0 = effectively unlimited in the
        /// measured range, like the T3E torus).
        network_total: Bandwidth,
    },
}

impl ScalingModel {
    /// Per-process bandwidth with `n` active processes, each streaming
    /// accesses of `bytes`.
    pub fn per_proc_bw(&self, n: usize, single: Bandwidth) -> Bandwidth {
        let n = n.max(1);
        match self {
            ScalingModel::SharedBus {
                total,
                knee,
                degrade,
            } => {
                let fair = total.share(n as u64);
                let mut bw = single.min(fair);
                if n > *knee {
                    let over = (n - knee) as f64;
                    bw = bw.scale((1.0 - degrade * over).max(0.15));
                }
                bw
            }
            ScalingModel::Distributed {
                per_proc,
                network_total,
            } => {
                let cap = single.min(*per_proc);
                if network_total.bytes_per_sec() == 0 {
                    cap
                } else {
                    cap.min(network_total.share(n as u64))
                }
            }
        }
    }
}

/// A complete comparison platform (one row of Table 1).
#[derive(Clone, Debug)]
pub struct Platform {
    /// Table 1 ID (e.g. "C", "M-S", "X-f").
    pub id: &'static str,
    /// Machine description.
    pub machine: &'static str,
    /// Interconnect used for message passing.
    pub interconnect: &'static str,
    /// MPI implementation.
    pub mpi: &'static str,
    /// Two-sided transport model.
    pub two_sided: TwoSidedModel,
    /// Non-contiguous handling quirk.
    pub quirk: NoncontigQuirk,
    /// One-sided model.
    pub osc: OscModel,
    /// Scaling model for Figure 12.
    pub scaling: ScalingModel,
}

impl Platform {
    /// Non-contiguous bandwidth including platform quirks.
    pub fn noncontig_bw(&self, bytes: usize, blocksize: usize) -> Bandwidth {
        let c = self.two_sided.contiguous_bw(bytes);
        match self.quirk {
            NoncontigQuirk::None => self.two_sided.noncontig_bw(bytes, blocksize),
            NoncontigQuirk::EfficiencyStep {
                threshold,
                low,
                high,
            } => {
                let eff = if blocksize >= threshold { high } else { low };
                c.scale(eff)
            }
            NoncontigQuirk::Band {
                low_edge,
                high_edge,
                outside,
            } => {
                if (low_edge..=high_edge).contains(&blocksize) {
                    c
                } else {
                    // Outside the band the generic engine takes over, with
                    // a floor at `outside` of contiguous.
                    self.two_sided
                        .noncontig_bw(bytes, blocksize)
                        .min(c.scale(outside))
                }
            }
        }
    }

    /// Contiguous reference bandwidth.
    pub fn contiguous_bw(&self, bytes: usize) -> Bandwidth {
        self.two_sided.contiguous_bw(bytes)
    }

    /// Non-contiguous efficiency (nc / c).
    pub fn noncontig_efficiency(&self, bytes: usize, blocksize: usize) -> f64 {
        let c = self.contiguous_bw(bytes).mib_per_sec();
        if c == 0.0 {
            return 0.0;
        }
        self.noncontig_bw(bytes, blocksize).mib_per_sec() / c
    }

    /// Figure 12: per-process put bandwidth with `n` active processes at
    /// access size `bytes`.
    pub fn scaled_put_bw(&self, n: usize, bytes: usize) -> Bandwidth {
        let single = self.osc.put_bandwidth(bytes);
        self.scaling.per_proc_bw(n, single)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TwoSidedModel {
        TwoSidedModel {
            latency: SimDuration::from_us(20),
            bandwidth: Bandwidth::from_mib_per_sec(100),
            copy_bw: Bandwidth::from_mib_per_sec(300),
            per_block: SimDuration::from_ns(400),
            pack_copies: 2,
        }
    }

    #[test]
    fn contiguous_bandwidth_approaches_peak() {
        let m = model();
        let small = m.contiguous_bw(1024).mib_per_sec();
        let large = m.contiguous_bw(8 << 20).mib_per_sec();
        assert!(small < 50.0);
        assert!(large > 95.0);
    }

    #[test]
    fn noncontig_slower_and_improves_with_blocksize() {
        let m = model();
        let bytes = 256 * 1024;
        let b8 = m.noncontig_bw(bytes, 8).mib_per_sec();
        let b1k = m.noncontig_bw(bytes, 1024).mib_per_sec();
        let c = m.contiguous_bw(bytes).mib_per_sec();
        assert!(b8 < b1k);
        assert!(b1k < c);
        // Even huge blocks can't beat contiguous: the two copies remain.
        let b128k = m.noncontig_bw(bytes, 128 * 1024).mib_per_sec();
        assert!(b128k < c);
    }

    #[test]
    fn efficiency_step_quirk() {
        let p = Platform {
            id: "F-s",
            machine: "test",
            interconnect: "shm",
            mpi: "test",
            two_sided: model(),
            quirk: NoncontigQuirk::EfficiencyStep {
                threshold: 16 * 1024,
                low: 0.5,
                high: 1.0,
            },
            osc: OscModel {
                support: OscSupport::Yes,
                put_latency: SimDuration::from_us(3),
                put_bw: Bandwidth::from_mib_per_sec(400),
                get_latency: SimDuration::from_us(3),
                get_bw: Bandwidth::from_mib_per_sec(400),
                hardware_rma: true,
            },
            scaling: ScalingModel::SharedBus {
                total: Bandwidth::from_mib_per_sec(2000),
                knee: 6,
                degrade: 0.06,
            },
        };
        let bytes = 256 * 1024;
        let eff_small = p.noncontig_efficiency(bytes, 1024);
        let eff_big = p.noncontig_efficiency(bytes, 32 * 1024);
        assert!((eff_small - 0.5).abs() < 0.05, "got {eff_small}");
        assert!((eff_big - 1.0).abs() < 0.05, "got {eff_big}");
    }

    #[test]
    fn band_quirk_peaks_in_middle() {
        let p = Platform {
            id: "C",
            machine: "t",
            interconnect: "c",
            mpi: "c",
            two_sided: model(),
            quirk: NoncontigQuirk::Band {
                low_edge: 8 * 1024,
                high_edge: 32 * 1024,
                outside: 0.4,
            },
            osc: OscModel {
                support: OscSupport::Yes,
                put_latency: SimDuration::from_us(2),
                put_bw: Bandwidth::from_mib_per_sec(300),
                get_latency: SimDuration::from_us(2),
                get_bw: Bandwidth::from_mib_per_sec(300),
                hardware_rma: true,
            },
            scaling: ScalingModel::Distributed {
                per_proc: Bandwidth::from_mib_per_sec(300),
                network_total: Bandwidth::from_bytes_per_sec(0),
            },
        };
        let bytes = 256 * 1024;
        assert!(p.noncontig_efficiency(bytes, 16 * 1024) > 0.95);
        assert!(p.noncontig_efficiency(bytes, 512) < 0.5);
        assert!(p.noncontig_efficiency(bytes, 128 * 1024) <= 0.4 + 1e-9);
    }

    #[test]
    fn shared_bus_scaling_declines() {
        let s = ScalingModel::SharedBus {
            total: Bandwidth::from_mib_per_sec(400),
            knee: 2,
            degrade: 0.1,
        };
        let single = Bandwidth::from_mib_per_sec(150);
        let b1 = s.per_proc_bw(1, single).mib_per_sec();
        let b4 = s.per_proc_bw(4, single).mib_per_sec();
        let b8 = s.per_proc_bw(8, single).mib_per_sec();
        assert_eq!(b1, 150.0);
        assert!(b4 < 100.0);
        assert!(b8 < b4);
        // Never collapses to zero.
        assert!(s.per_proc_bw(64, single).mib_per_sec() > 0.0);
    }

    #[test]
    fn distributed_scaling_constant_until_saturation() {
        let s = ScalingModel::Distributed {
            per_proc: Bandwidth::from_mib_per_sec(120),
            network_total: Bandwidth::from_mib_per_sec(633),
        };
        let single = Bandwidth::from_mib_per_sec(120);
        assert_eq!(s.per_proc_bw(4, single).mib_per_sec(), 120.0);
        assert!(s.per_proc_bw(8, single).mib_per_sec() < 120.0);
    }

    #[test]
    fn osc_latency_dominates_small_accesses() {
        let o = OscModel {
            support: OscSupport::Yes,
            put_latency: SimDuration::from_us(100),
            put_bw: Bandwidth::from_mib_per_sec(10),
            get_latency: SimDuration::from_us(120),
            get_bw: Bandwidth::from_mib_per_sec(10),
            hardware_rma: false,
        };
        assert!(o.put_bandwidth(8).mib_per_sec() < 0.1);
        assert!(o.put_time(8) >= SimDuration::from_us(100));
    }
}
