//! The Table 1 platform registry.
//!
//! Parameter sources: the paper's own measurements where stated (LAM fast
//! ethernet OSC peaks at ~10 MiB/s; Sun shm noncontig efficiency steps
//! from 0.5 to 1.0 at 16 kiB; Xeon SMP scales badly; T3E in the same band
//! as SCI; VIA one-sided ~3× slower than SCI message-based and ~15× slower
//! than direct SCI put at 1 kiB), plus contemporary published figures for
//! the raw interconnects (Fast Ethernet ~11 MiB/s, Myrinet-1280 on 32-bit
//! PCI ~110 MiB/s, T3E links ~300 MiB/s, Sun Fire 6800 backplane in the
//! GB/s class). Shapes matter, not decimals — see DESIGN.md.

use crate::model::{NoncontigQuirk, OscModel, OscSupport, Platform, ScalingModel, TwoSidedModel};
use simclock::{Bandwidth, SimDuration};

/// Cray T3E-1200, custom interconnect, Cray MPI (ID "C").
pub fn cray_t3e() -> Platform {
    Platform {
        id: "C",
        machine: "Cray T3E-1200",
        interconnect: "custom (3D torus)",
        mpi: "Cray MPI",
        two_sided: TwoSidedModel {
            latency: SimDuration::from_us(14),
            bandwidth: Bandwidth::from_mib_per_sec(300),
            copy_bw: Bandwidth::from_mib_per_sec(600),
            per_block: SimDuration::from_ns(900),
            pack_copies: 2,
        },
        // Figure 10: efficiency ≈ 1 for 8–32 kiB blocks, low outside.
        quirk: NoncontigQuirk::Band {
            low_edge: 8 * 1024,
            high_edge: 32 * 1024,
            outside: 0.35,
        },
        osc: OscModel {
            support: OscSupport::Yes,
            // E-register remote stores: low latency, "uneven but regular".
            put_latency: SimDuration::from_us_f64(1.1),
            put_bw: Bandwidth::from_mib_per_sec(330),
            get_latency: SimDuration::from_us_f64(1.6),
            get_bw: Bandwidth::from_mib_per_sec(280),
            hardware_rma: true,
        },
        // Torus links don't saturate in the measured range: constant per
        // process up to 32 procs (Figure 12).
        scaling: ScalingModel::Distributed {
            per_proc: Bandwidth::from_mib_per_sec(150),
            network_total: Bandwidth::from_bytes_per_sec(0),
        },
    }
}

/// Sun Fire 6800 over Gigabit Ethernet, Sun HPC 3.1 (ID "F-G").
pub fn sun_fire_gige() -> Platform {
    Platform {
        id: "F-G",
        machine: "Sun Fire 6800 (24-way, 750 MHz)",
        interconnect: "Gigabit Ethernet",
        mpi: "Sun HPC 3.1",
        two_sided: TwoSidedModel {
            latency: SimDuration::from_us(55),
            bandwidth: Bandwidth::from_mib_per_sec(42),
            copy_bw: Bandwidth::from_mib_per_sec(500),
            per_block: SimDuration::from_ns(350),
            pack_copies: 2,
        },
        quirk: NoncontigQuirk::None,
        // Table 1: OSC not supported over the network path.
        osc: OscModel {
            support: OscSupport::No,
            put_latency: SimDuration::MAX,
            put_bw: Bandwidth::from_bytes_per_sec(0),
            get_latency: SimDuration::MAX,
            get_bw: Bandwidth::from_bytes_per_sec(0),
            hardware_rma: false,
        },
        scaling: ScalingModel::SharedBus {
            total: Bandwidth::from_mib_per_sec(42),
            knee: 1,
            degrade: 0.05,
        },
    }
}

/// Sun Fire 6800 shared memory, Sun HPC 3.1 (ID "F-s").
pub fn sun_fire_shm() -> Platform {
    Platform {
        id: "F-s",
        machine: "Sun Fire 6800 (24-way, 750 MHz)",
        interconnect: "shared memory",
        mpi: "Sun HPC 3.1",
        two_sided: TwoSidedModel {
            latency: SimDuration::from_us_f64(2.4),
            bandwidth: Bandwidth::from_mib_per_sec(480),
            copy_bw: Bandwidth::from_mib_per_sec(650),
            per_block: SimDuration::from_ns(250),
            pack_copies: 2,
        },
        // Figure 10: efficiency jumps from 0.5 to 1.0 at 16 kiB — "a
        // simple optimization has been implemented" [23].
        quirk: NoncontigQuirk::EfficiencyStep {
            threshold: 16 * 1024,
            low: 0.5,
            high: 1.0,
        },
        osc: OscModel {
            support: OscSupport::Yes,
            // Figure 11: "very good performance for shared memory".
            put_latency: SimDuration::from_us_f64(2.8),
            put_bw: Bandwidth::from_mib_per_sec(430),
            get_latency: SimDuration::from_us_f64(3.2),
            get_bw: Bandwidth::from_mib_per_sec(400),
            hardware_rma: true,
        },
        // Figure 12: "high-performance (and high-cost) shared-memory
        // design scales better, but bandwidth declines notably for more
        // than 6 active processes".
        scaling: ScalingModel::SharedBus {
            total: Bandwidth::from_mib_per_sec(2600),
            knee: 6,
            degrade: 0.025,
        },
    }
}

/// Pentium III Xeon quad SMP over Fast Ethernet, LAM 6.5.4 (ID "X-f").
pub fn xeon_lam_fe() -> Platform {
    Platform {
        id: "X-f",
        machine: "Pentium III Xeon quad SMP (550 MHz)",
        interconnect: "Fast Ethernet",
        mpi: "LAM 6.5.4",
        two_sided: TwoSidedModel {
            latency: SimDuration::from_us(75),
            bandwidth: Bandwidth::from_mib_per_sec_f64(10.8),
            copy_bw: Bandwidth::from_mib_per_sec(180),
            per_block: SimDuration::from_ns(400),
            pack_copies: 2,
        },
        quirk: NoncontigQuirk::None,
        // Figure 11: "very high latencies and a maximum of 10 MiB via
        // fast ethernet".
        osc: OscModel {
            support: OscSupport::Yes,
            put_latency: SimDuration::from_us(160),
            put_bw: Bandwidth::from_mib_per_sec(10),
            get_latency: SimDuration::from_us(190),
            get_bw: Bandwidth::from_mib_per_sec(10),
            hardware_rma: false,
        },
        scaling: ScalingModel::SharedBus {
            total: Bandwidth::from_mib_per_sec_f64(10.8),
            knee: 1,
            degrade: 0.04,
        },
    }
}

/// Pentium III Xeon quad SMP shared memory, LAM 6.5.4 (ID "X-s").
pub fn xeon_lam_shm() -> Platform {
    Platform {
        id: "X-s",
        machine: "Pentium III Xeon quad SMP (550 MHz)",
        interconnect: "shared memory",
        mpi: "LAM 6.5.4",
        two_sided: TwoSidedModel {
            latency: SimDuration::from_us(9),
            bandwidth: Bandwidth::from_mib_per_sec(140),
            copy_bw: Bandwidth::from_mib_per_sec(180),
            per_block: SimDuration::from_ns(380),
            pack_copies: 2,
        },
        quirk: NoncontigQuirk::None,
        // Figure 11: "surprisingly, a little bit lower than SCI-MPICH via
        // SCI". Table 1 footnote: only MPI_Get worked; MPI_Put deadlocked.
        osc: OscModel {
            support: OscSupport::GetOnly,
            put_latency: SimDuration::from_us(11),
            put_bw: Bandwidth::from_mib_per_sec(105),
            get_latency: SimDuration::from_us(12),
            get_bw: Bandwidth::from_mib_per_sec(100),
            hardware_rma: true,
        },
        // Figure 12: "platforms with an inferior memory system design like
        // the 4-way Xeon SMP scale very badly for coarse-grained accesses
        // and deliver a bandwidth below the SCI-connected system".
        scaling: ScalingModel::SharedBus {
            total: Bandwidth::from_mib_per_sec(340),
            knee: 1,
            degrade: 0.10,
        },
    }
}

/// Pentium II dual SMP over Myrinet 1280, SCore 2.4.1 (ID "S-M").
pub fn myrinet_score() -> Platform {
    Platform {
        id: "S-M",
        machine: "Pentium II dual SMP (400 MHz, 32-bit PCI)",
        interconnect: "Myrinet 1280",
        mpi: "SCore 2.4.1",
        two_sided: TwoSidedModel {
            latency: SimDuration::from_us(13),
            bandwidth: Bandwidth::from_mib_per_sec(108),
            copy_bw: Bandwidth::from_mib_per_sec(160),
            per_block: SimDuration::from_ns(420),
            pack_copies: 2,
        },
        quirk: NoncontigQuirk::None,
        // Table 1: no one-sided support.
        osc: OscModel {
            support: OscSupport::No,
            put_latency: SimDuration::MAX,
            put_bw: Bandwidth::from_bytes_per_sec(0),
            get_latency: SimDuration::MAX,
            get_bw: Bandwidth::from_bytes_per_sec(0),
            hardware_rma: false,
        },
        scaling: ScalingModel::Distributed {
            per_proc: Bandwidth::from_mib_per_sec(108),
            network_total: Bandwidth::from_bytes_per_sec(0),
        },
    }
}

/// Pentium II dual SMP shared memory, SCore 2.4.1 (ID "S-s").
pub fn myrinet_score_shm() -> Platform {
    Platform {
        id: "S-s",
        machine: "Pentium II dual SMP (400 MHz)",
        interconnect: "shared memory",
        mpi: "SCore 2.4.1",
        two_sided: TwoSidedModel {
            latency: SimDuration::from_us(6),
            bandwidth: Bandwidth::from_mib_per_sec(130),
            copy_bw: Bandwidth::from_mib_per_sec(160),
            per_block: SimDuration::from_ns(420),
            pack_copies: 2,
        },
        quirk: NoncontigQuirk::None,
        osc: OscModel {
            support: OscSupport::No,
            put_latency: SimDuration::MAX,
            put_bw: Bandwidth::from_bytes_per_sec(0),
            get_latency: SimDuration::MAX,
            get_bw: Bandwidth::from_bytes_per_sec(0),
            hardware_rma: false,
        },
        scaling: ScalingModel::SharedBus {
            total: Bandwidth::from_mib_per_sec(260),
            knee: 1,
            degrade: 0.08,
        },
    }
}

/// Giganet SMP cluster with VIA one-sided communication (reference 15, used in the
/// §5.3 latency comparison: ~3× slower than SCI message-based OSC and up
/// to ~15× slower than direct SCI put at 1 kiB).
pub fn via_giganet() -> Platform {
    Platform {
        id: "VIA",
        machine: "Giganet SMP cluster",
        interconnect: "Giganet VIA",
        mpi: "NEC MPI-2 OSC port (ref 15)",
        two_sided: TwoSidedModel {
            latency: SimDuration::from_us(18),
            bandwidth: Bandwidth::from_mib_per_sec(90),
            copy_bw: Bandwidth::from_mib_per_sec(250),
            per_block: SimDuration::from_ns(400),
            pack_copies: 2,
        },
        quirk: NoncontigQuirk::None,
        osc: OscModel {
            support: OscSupport::Yes,
            put_latency: SimDuration::from_us(72),
            put_bw: Bandwidth::from_mib_per_sec(75),
            get_latency: SimDuration::from_us(80),
            get_bw: Bandwidth::from_mib_per_sec(70),
            hardware_rma: false,
        },
        scaling: ScalingModel::Distributed {
            per_proc: Bandwidth::from_mib_per_sec(75),
            network_total: Bandwidth::from_bytes_per_sec(0),
        },
    }
}

/// All Table 1 platforms (the SCI rows "M-S"/"M-s" come from the simulator
/// itself, not from this registry).
pub fn all() -> Vec<Platform> {
    vec![
        cray_t3e(),
        sun_fire_gige(),
        sun_fire_shm(),
        xeon_lam_fe(),
        xeon_lam_shm(),
        myrinet_score(),
        myrinet_score_shm(),
        via_giganet(),
    ]
}

/// Look up a platform by Table 1 ID.
pub fn by_id(id: &str) -> Option<Platform> {
    all().into_iter().find(|p| p.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::OscSupport;

    #[test]
    fn registry_ids_are_unique() {
        let ids: Vec<&str> = all().iter().map(|p| p.id).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(ids.len(), dedup.len());
        assert!(by_id("C").is_some());
        assert!(by_id("nope").is_none());
    }

    #[test]
    fn osc_support_matches_table1() {
        assert_eq!(by_id("C").unwrap().osc.support, OscSupport::Yes);
        assert_eq!(by_id("F-G").unwrap().osc.support, OscSupport::No);
        assert_eq!(by_id("F-s").unwrap().osc.support, OscSupport::Yes);
        assert_eq!(by_id("X-f").unwrap().osc.support, OscSupport::Yes);
        assert_eq!(by_id("X-s").unwrap().osc.support, OscSupport::GetOnly);
        assert_eq!(by_id("S-M").unwrap().osc.support, OscSupport::No);
        assert_eq!(by_id("S-s").unwrap().osc.support, OscSupport::No);
    }

    #[test]
    fn lam_fast_ethernet_peaks_near_10mib() {
        let p = xeon_lam_fe();
        let bw = p.osc.put_bandwidth(64 * 1024).mib_per_sec();
        assert!((8.0..=10.5).contains(&bw), "got {bw}");
    }

    #[test]
    fn sun_shm_step_at_16k() {
        let p = sun_fire_shm();
        let bytes = 256 * 1024;
        let before = p.noncontig_efficiency(bytes, 8 * 1024);
        let after = p.noncontig_efficiency(bytes, 16 * 1024);
        assert!((before - 0.5).abs() < 0.05);
        assert!((after - 1.0).abs() < 0.05);
    }

    #[test]
    fn t3e_band_shape() {
        let p = cray_t3e();
        let bytes = 256 * 1024;
        assert!(p.noncontig_efficiency(bytes, 16 * 1024) > 0.9);
        assert!(p.noncontig_efficiency(bytes, 1024) < 0.5);
        assert!(p.noncontig_efficiency(bytes, 64 * 1024) < 0.5);
    }

    #[test]
    fn xeon_scales_worse_than_sun_fire() {
        let xeon = xeon_lam_shm();
        let sun = sun_fire_shm();
        let bytes = 64 * 1024;
        let x1 = xeon.scaled_put_bw(1, bytes).mib_per_sec();
        let x4 = xeon.scaled_put_bw(4, bytes).mib_per_sec();
        let s6 = sun.scaled_put_bw(6, bytes).mib_per_sec();
        let s12 = sun.scaled_put_bw(12, bytes).mib_per_sec();
        // Xeon collapses by 4 procs; Sun holds up longer but declines.
        assert!(x4 < x1 * 0.7, "xeon x1={x1} x4={x4}");
        assert!(s12 < s6, "sun s6={s6} s12={s12}");
        assert!(s6 > x4, "sun should outscale xeon");
    }

    #[test]
    fn t3e_constant_scaling_to_32() {
        let p = cray_t3e();
        let bytes = 64 * 1024;
        let b2 = p.scaled_put_bw(2, bytes).mib_per_sec();
        let b32 = p.scaled_put_bw(32, bytes).mib_per_sec();
        assert!((b2 - b32).abs() < 1e-9, "b2={b2} b32={b32}");
    }

    #[test]
    fn via_much_slower_than_hw_rma_at_1k() {
        let via = via_giganet();
        let t = via.osc.put_time(1024);
        // ~3× the SCI message-emulation path (~25 µs) per §5.3.
        assert!(t >= SimDuration::from_us(60), "got {t}");
        assert!(!via.osc.hardware_rma);
    }
}
