//! Property tests of the virtual-time arithmetic: the entire simulation's
//! accounting rests on these invariants.

use proptest::prelude::*;
use simclock::{clock::barrier_release, Bandwidth, Clock, SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Duration addition is commutative, associative (within saturation)
    /// and monotone.
    #[test]
    fn duration_addition_properties(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4, c in 0u64..u64::MAX / 4) {
        let (da, db, dc) = (
            SimDuration::from_ps(a),
            SimDuration::from_ps(b),
            SimDuration::from_ps(c),
        );
        prop_assert_eq!(da + db, db + da);
        prop_assert_eq!((da + db) + dc, da + (db + dc));
        prop_assert!(da + db >= da);
    }

    /// Saturating subtraction never underflows and inverts addition when
    /// no clamping occurred.
    #[test]
    fn duration_sub_inverts_add(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
        let (da, db) = (SimDuration::from_ps(a), SimDuration::from_ps(b));
        prop_assert_eq!((da + db) - db, da);
        if a < b {
            prop_assert_eq!(da - db, SimDuration::ZERO);
        }
    }

    /// Bandwidth cost is additive in bytes: moving n+m bytes costs within
    /// 1 ps of moving n then m (integer division remainder).
    #[test]
    fn bandwidth_cost_additive(bps in 1u64..u64::MAX / (1 << 22), n in 0u64..1 << 20, m in 0u64..1 << 20) {
        let bw = Bandwidth::from_bytes_per_sec(bps);
        let whole = bw.cost(n + m).as_ps() as i128;
        let split = bw.cost(n).as_ps() as i128 + bw.cost(m).as_ps() as i128;
        prop_assert!((whole - split).abs() <= 1, "whole {whole} split {split}");
    }

    /// observed() inverts cost() to within rounding for sane rates.
    #[test]
    fn bandwidth_roundtrip(mibs in 1u64..100_000, bytes in 1u64..1 << 30) {
        let bw = Bandwidth::from_mib_per_sec(mibs);
        let elapsed = bw.cost(bytes);
        prop_assume!(!elapsed.is_zero());
        let back = Bandwidth::observed(bytes, elapsed);
        let rel = (back.bytes_per_sec() as f64 - bw.bytes_per_sec() as f64).abs()
            / bw.bytes_per_sec() as f64;
        prop_assert!(rel < 1e-6, "relative error {rel}");
    }

    /// Clock merge is idempotent and monotone; wait accounting only grows.
    #[test]
    fn clock_merge_properties(advances in proptest::collection::vec(0u64..1 << 40, 1..50),
                              merges in proptest::collection::vec(0u64..1 << 44, 1..50)) {
        let mut clock = Clock::new();
        let mut last = SimTime::ZERO;
        let mut last_wait = SimDuration::ZERO;
        for (adv, mrg) in advances.iter().zip(merges.iter()) {
            clock.advance(SimDuration::from_ps(*adv));
            prop_assert!(clock.now() >= last);
            let t = SimTime::from_ps(*mrg);
            clock.merge(t);
            prop_assert!(clock.now() >= t, "merge went backwards");
            // Merging the same time again is a no-op.
            let before = clock.now();
            let w = clock.merge(t);
            prop_assert_eq!(w, SimDuration::ZERO);
            prop_assert_eq!(clock.now(), before);
            prop_assert!(clock.total_waited() >= last_wait);
            last = clock.now();
            last_wait = clock.total_waited();
        }
    }

    /// Barrier release is at or after every arrival, and permutation-
    /// independent.
    #[test]
    fn barrier_release_properties(mut times in proptest::collection::vec(0u64..1 << 40, 1..16)) {
        let hop = SimDuration::from_ns(100);
        let arrivals: Vec<SimTime> = times.iter().map(|&t| SimTime::from_ps(t)).collect();
        let rel = barrier_release(&arrivals, hop, arrivals.len());
        for a in &arrivals {
            prop_assert!(rel >= *a);
        }
        times.reverse();
        let rev: Vec<SimTime> = times.iter().map(|&t| SimTime::from_ps(t)).collect();
        prop_assert_eq!(barrier_release(&rev, hop, rev.len()), rel);
    }
}
