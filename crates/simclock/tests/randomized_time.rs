//! Randomized tests of the virtual-time arithmetic: the entire
//! simulation's accounting rests on these invariants.
//!
//! Deterministic seeded randomness (`SplitMix64`) replaces an external
//! property-testing framework; case counts are fixed, so failures
//! reproduce exactly.

use simclock::{clock::barrier_release, Bandwidth, Clock, SimDuration, SimTime, SplitMix64};

/// Duration addition is commutative, associative (within saturation) and
/// monotone.
#[test]
fn duration_addition_properties() {
    let mut rng = SplitMix64::new(0xDA7E1);
    for _ in 0..512 {
        let (a, b, c) = (
            rng.next_below(u64::MAX / 4),
            rng.next_below(u64::MAX / 4),
            rng.next_below(u64::MAX / 4),
        );
        let (da, db, dc) = (
            SimDuration::from_ps(a),
            SimDuration::from_ps(b),
            SimDuration::from_ps(c),
        );
        assert_eq!(da + db, db + da);
        assert_eq!((da + db) + dc, da + (db + dc));
        assert!(da + db >= da);
    }
}

/// Saturating subtraction never underflows and inverts addition when no
/// clamping occurred.
#[test]
fn duration_sub_inverts_add() {
    let mut rng = SplitMix64::new(0xDA7E2);
    for _ in 0..512 {
        let a = rng.next_below(u64::MAX / 2);
        let b = rng.next_below(u64::MAX / 2);
        let (da, db) = (SimDuration::from_ps(a), SimDuration::from_ps(b));
        assert_eq!((da + db) - db, da);
        if a < b {
            assert_eq!(da - db, SimDuration::ZERO);
        }
    }
}

/// Bandwidth cost is additive in bytes: moving n+m bytes costs within
/// 1 ps of moving n then m (integer division remainder).
#[test]
fn bandwidth_cost_additive() {
    let mut rng = SplitMix64::new(0xDA7E3);
    for _ in 0..512 {
        let bps = 1 + rng.next_below(u64::MAX / (1 << 22) - 1);
        let n = rng.next_below(1 << 20);
        let m = rng.next_below(1 << 20);
        let bw = Bandwidth::from_bytes_per_sec(bps);
        let whole = bw.cost(n + m).as_ps() as i128;
        let split = bw.cost(n).as_ps() as i128 + bw.cost(m).as_ps() as i128;
        assert!((whole - split).abs() <= 1, "whole {whole} split {split}");
    }
}

/// observed() inverts cost() to within rounding for sane rates.
#[test]
fn bandwidth_roundtrip() {
    let mut rng = SplitMix64::new(0xDA7E4);
    for _ in 0..512 {
        let mibs = rng.next_range(1, 99_999);
        let bytes = 1 + rng.next_below(1 << 30);
        let bw = Bandwidth::from_mib_per_sec(mibs);
        let elapsed = bw.cost(bytes);
        if elapsed.is_zero() {
            continue;
        }
        let back = Bandwidth::observed(bytes, elapsed);
        let rel = (back.bytes_per_sec() as f64 - bw.bytes_per_sec() as f64).abs()
            / bw.bytes_per_sec() as f64;
        assert!(rel < 1e-6, "relative error {rel}");
    }
}

/// Clock merge is idempotent and monotone; wait accounting only grows.
#[test]
fn clock_merge_properties() {
    let mut rng = SplitMix64::new(0xDA7E5);
    for _ in 0..256 {
        let steps = rng.next_range(1, 49) as usize;
        let mut clock = Clock::new();
        let mut last = SimTime::ZERO;
        let mut last_wait = SimDuration::ZERO;
        for _ in 0..steps {
            let adv = rng.next_below(1 << 40);
            let mrg = rng.next_below(1 << 44);
            clock.advance(SimDuration::from_ps(adv));
            assert!(clock.now() >= last);
            let t = SimTime::from_ps(mrg);
            clock.merge(t);
            assert!(clock.now() >= t, "merge went backwards");
            // Merging the same time again is a no-op.
            let before = clock.now();
            let w = clock.merge(t);
            assert_eq!(w, SimDuration::ZERO);
            assert_eq!(clock.now(), before);
            assert!(clock.total_waited() >= last_wait);
            last = clock.now();
            last_wait = clock.total_waited();
        }
    }
}

/// Barrier release is at or after every arrival, and permutation-
/// independent.
#[test]
fn barrier_release_properties() {
    let mut rng = SplitMix64::new(0xDA7E6);
    for _ in 0..512 {
        let n = rng.next_range(1, 15) as usize;
        let mut times: Vec<u64> = (0..n).map(|_| rng.next_below(1 << 40)).collect();
        let hop = SimDuration::from_ns(100);
        let arrivals: Vec<SimTime> = times.iter().map(|&t| SimTime::from_ps(t)).collect();
        let rel = barrier_release(&arrivals, hop, arrivals.len());
        for a in &arrivals {
            assert!(rel >= *a);
        }
        times.reverse();
        let rev: Vec<SimTime> = times.iter().map(|&t| SimTime::from_ps(t)).collect();
        assert_eq!(barrier_release(&rev, hop, rev.len()), rel);
    }
}
