//! Deterministic virtual time for the SCI-MPICH reproduction.
//!
//! Every performance number in the original paper is a wall-clock measurement
//! on specific hardware (Dolphin PCI-SCI adapters, a Cray T3E, ...). This
//! reproduction replaces wall-clock time with *virtual time*: data really
//! moves between buffers, but the cost of each operation is computed by a
//! calibrated model and accumulated on logical clocks. This makes every
//! benchmark bit-reproducible and independent of the host machine.
//!
//! The crate provides:
//!
//! * [`SimTime`] / [`SimDuration`] — picosecond-resolution time points and
//!   spans with saturating arithmetic.
//! * [`Clock`] — a per-rank logical clock supporting the two operations a
//!   message-passing simulation needs: *advance* (local work) and *merge*
//!   (causality: an incoming message carries its arrival timestamp).
//! * [`Bandwidth`] — bytes-per-second rates with exact byte→duration cost
//!   conversion, used by all fabric cost models.
//! * [`rng`] — a small deterministic RNG (SplitMix64) so simulations do not
//!   depend on external RNG crates in their hot paths.
//! * [`stats`] — online statistics and series collection for the benchmark
//!   harnesses.

pub mod bandwidth;
pub mod clock;
pub mod rng;
pub mod stats;
pub mod time;

pub use bandwidth::Bandwidth;
pub use clock::Clock;
pub use rng::SplitMix64;
pub use time::{SimDuration, SimTime};
