//! Byte-rate type used by all fabric cost models.
//!
//! A [`Bandwidth`] converts a byte count into a [`SimDuration`] exactly
//! (per-byte picosecond cost computed in 128-bit arithmetic), so repeated
//! small transfers accumulate the same virtual time as one large transfer at
//! the same rate.

use crate::time::{SimDuration, PS_PER_SEC};
use core::fmt;

/// Bytes per mebibyte.
pub const MIB: u64 = 1024 * 1024;

/// A transfer rate in bytes per second.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bandwidth {
    bytes_per_sec: u64,
}

impl Bandwidth {
    /// A rate of `bps` bytes per second. Zero is allowed and means
    /// "infinitely slow"; [`Bandwidth::cost`] saturates in that case.
    #[inline]
    pub const fn from_bytes_per_sec(bps: u64) -> Self {
        Bandwidth { bytes_per_sec: bps }
    }

    /// A rate of `mibs` MiB/s (the unit the paper reports).
    #[inline]
    pub const fn from_mib_per_sec(mibs: u64) -> Self {
        Bandwidth {
            bytes_per_sec: mibs.saturating_mul(MIB),
        }
    }

    /// A rate from fractional MiB/s.
    #[inline]
    pub fn from_mib_per_sec_f64(mibs: f64) -> Self {
        if !mibs.is_finite() || mibs <= 0.0 {
            return Bandwidth { bytes_per_sec: 0 };
        }
        Bandwidth {
            bytes_per_sec: (mibs * MIB as f64).round() as u64,
        }
    }

    /// The rate in bytes per second.
    #[inline]
    pub const fn bytes_per_sec(self) -> u64 {
        self.bytes_per_sec
    }

    /// The rate in MiB/s.
    #[inline]
    pub fn mib_per_sec(self) -> f64 {
        self.bytes_per_sec as f64 / MIB as f64
    }

    /// Virtual time needed to move `bytes` at this rate.
    ///
    /// Computed as `bytes * PS_PER_SEC / rate` in 128-bit arithmetic so there
    /// is no overflow and no per-call rounding drift. A zero rate yields
    /// [`SimDuration::MAX`].
    #[inline]
    pub fn cost(self, bytes: u64) -> SimDuration {
        if self.bytes_per_sec == 0 {
            return if bytes == 0 {
                SimDuration::ZERO
            } else {
                SimDuration::MAX
            };
        }
        let ps = (bytes as u128 * PS_PER_SEC as u128) / self.bytes_per_sec as u128;
        if ps >= u64::MAX as u128 {
            SimDuration::MAX
        } else {
            SimDuration::from_ps(ps as u64)
        }
    }

    /// The rate that moves `bytes` in `elapsed` (used by harnesses to report
    /// achieved bandwidth). Zero elapsed time yields a zero rate rather than
    /// infinity so tables stay printable.
    #[inline]
    pub fn observed(bytes: u64, elapsed: SimDuration) -> Self {
        if elapsed.is_zero() {
            return Bandwidth { bytes_per_sec: 0 };
        }
        let bps = (bytes as u128 * PS_PER_SEC as u128) / elapsed.as_ps() as u128;
        Bandwidth {
            bytes_per_sec: bps.min(u64::MAX as u128) as u64,
        }
    }

    /// Split this rate between `streams` concurrent users (fair share).
    #[inline]
    pub fn share(self, streams: u64) -> Self {
        Bandwidth {
            bytes_per_sec: self.bytes_per_sec / streams.max(1),
        }
    }

    /// The slower of two rates (bottleneck composition).
    #[inline]
    pub fn min(self, other: Bandwidth) -> Bandwidth {
        if self.bytes_per_sec <= other.bytes_per_sec {
            self
        } else {
            other
        }
    }

    /// Scale the rate by a factor (e.g. protocol efficiency).
    #[inline]
    pub fn scale(self, factor: f64) -> Bandwidth {
        Bandwidth::from_mib_per_sec_f64(self.mib_per_sec() * factor)
    }
}

impl fmt::Debug for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} MiB/s", self.mib_per_sec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_is_linear_in_bytes() {
        let bw = Bandwidth::from_mib_per_sec(100);
        let one = bw.cost(MIB);
        let ten = bw.cost(10 * MIB);
        assert_eq!(one.as_ps() * 10, ten.as_ps());
    }

    #[test]
    fn cost_of_one_mib_at_one_mib_per_sec_is_one_sec() {
        let bw = Bandwidth::from_mib_per_sec(1);
        assert_eq!(bw.cost(MIB), SimDuration::from_secs(1));
    }

    #[test]
    fn zero_rate_saturates() {
        let bw = Bandwidth::from_bytes_per_sec(0);
        assert_eq!(bw.cost(0), SimDuration::ZERO);
        assert_eq!(bw.cost(1), SimDuration::MAX);
    }

    #[test]
    fn observed_inverts_cost() {
        let bw = Bandwidth::from_mib_per_sec(85);
        let bytes = 256 * 1024;
        let elapsed = bw.cost(bytes);
        let back = Bandwidth::observed(bytes, elapsed);
        let err = (back.mib_per_sec() - 85.0).abs();
        assert!(err < 0.01, "round-trip error {err}");
    }

    #[test]
    fn observed_with_zero_elapsed_is_zero() {
        assert_eq!(
            Bandwidth::observed(100, SimDuration::ZERO).bytes_per_sec(),
            0
        );
    }

    #[test]
    fn share_and_min_compose() {
        let link = Bandwidth::from_mib_per_sec(633);
        let node = Bandwidth::from_mib_per_sec(120);
        // 8 concurrent streams on the link: each gets ~79 MiB/s, below the
        // node cap, so the link is the bottleneck.
        let eff = link.share(8).min(node);
        assert!(eff.mib_per_sec() < 80.0);
        // 4 streams: each could get ~158, capped by the node at 120.
        let eff = link.share(4).min(node);
        assert_eq!(eff, node);
    }

    #[test]
    fn share_by_zero_clamps_to_one() {
        let bw = Bandwidth::from_mib_per_sec(10);
        assert_eq!(bw.share(0), bw);
    }

    #[test]
    fn fractional_mib_rates() {
        let bw = Bandwidth::from_mib_per_sec_f64(0.5);
        assert_eq!(bw.bytes_per_sec(), MIB / 2);
        assert_eq!(Bandwidth::from_mib_per_sec_f64(-3.0).bytes_per_sec(), 0);
    }
}
