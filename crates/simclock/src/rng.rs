//! A tiny deterministic RNG (SplitMix64).
//!
//! The fault-injection layer and the workload generators need randomness
//! that is (a) fully reproducible from a seed, and (b) dependency-free in
//! hot paths. SplitMix64 passes BigCrush for these purposes and is four
//! lines long.

/// SplitMix64 pseudo-random generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Equal seeds yield equal sequences.
    #[inline]
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound == 0` returns 0.
    ///
    /// Uses the widening-multiply technique (Lemire) which is unbiased
    /// enough for simulation workloads.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi]` (inclusive). Swapped bounds are
    /// normalised.
    #[inline]
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p.is_nan() || p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.next_f64() < p
    }

    /// Fork a statistically independent generator (for per-rank streams
    /// derived from one master seed).
    #[inline]
    pub fn fork(&mut self, stream: u64) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ stream.wrapping_mul(0xA076_1D64_78BD_642F))
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.next_below(13) < 13);
        }
        assert_eq!(r.next_below(0), 0);
    }

    #[test]
    fn next_range_inclusive_and_swapped() {
        let mut r = SplitMix64::new(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.next_range(10, 3); // swapped on purpose
            assert!((3..=10).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 10;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(1234);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(5);
        assert!(!r.chance(0.0));
        assert!(!r.chance(-1.0));
        assert!(!r.chance(f64::NAN));
        assert!(r.chance(1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_rate_roughly_matches_p() {
        let mut r = SplitMix64::new(77);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut master = SplitMix64::new(100);
        let mut s1 = master.fork(1);
        let mut s2 = master.fork(2);
        let same = (0..64).filter(|_| s1.next_u64() == s2.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(3);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle did nothing");
    }
}
