//! Picosecond-resolution virtual time points and spans.
//!
//! Picoseconds were chosen so that sub-nanosecond per-byte costs (e.g. one
//! byte at 5 GiB/s is ~186 ps) accumulate without rounding drift, while a
//! `u64` still covers more than 200 days of simulated time.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds per nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds per second.
pub const PS_PER_SEC: u64 = 1_000_000_000_000;

/// A span of virtual time, in picoseconds.
///
/// All arithmetic saturates: a cost model can never wrap a clock around.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The maximum representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// A span of `ps` picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// A span of `ns` nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns.saturating_mul(PS_PER_NS))
    }

    /// A span of `us` microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us.saturating_mul(PS_PER_US))
    }

    /// A span of `ms` milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms.saturating_mul(PS_PER_MS))
    }

    /// A span of `s` seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s.saturating_mul(PS_PER_SEC))
    }

    /// A span from fractional microseconds (handy for calibration tables).
    ///
    /// Negative or non-finite inputs are clamped to zero.
    #[inline]
    pub fn from_us_f64(us: f64) -> Self {
        if !us.is_finite() || us <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((us * PS_PER_US as f64).round() as u64)
    }

    /// A span from fractional nanoseconds.
    ///
    /// Negative or non-finite inputs are clamped to zero.
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Self {
        if !ns.is_finite() || ns <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((ns * PS_PER_NS as f64).round() as u64)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// The span in whole nanoseconds (truncating).
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0 / PS_PER_NS
    }

    /// The span in fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// The span in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// True if this span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating addition.
    #[inline]
    pub const fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction (clamps at zero).
    #[inline]
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiply the span by an integer factor, saturating.
    #[inline]
    pub const fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Scale the span by a non-negative float factor (calibration knobs).
    ///
    /// Non-finite or negative factors are treated as zero.
    #[inline]
    pub fn scale(self, factor: f64) -> SimDuration {
        if !factor.is_finite() || factor <= 0.0 {
            return SimDuration::ZERO;
        }
        let scaled = self.0 as f64 * factor;
        if scaled >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(scaled.round() as u64)
        }
    }

    /// The larger of two spans.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two spans.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        self.saturating_add(rhs)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        self.saturating_mul(rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs.max(1))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            write!(f, "0s")
        } else if ps < PS_PER_NS {
            write!(f, "{ps}ps")
        } else if ps < PS_PER_US {
            write!(f, "{:.2}ns", ps as f64 / PS_PER_NS as f64)
        } else if ps < PS_PER_MS {
            write!(f, "{:.2}us", ps as f64 / PS_PER_US as f64)
        } else if ps < PS_PER_SEC {
            write!(f, "{:.3}ms", ps as f64 / PS_PER_MS as f64)
        } else {
            write!(f, "{:.4}s", ps as f64 / PS_PER_SEC as f64)
        }
    }
}

/// A point in virtual time, measured from the start of the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// A time point `ps` picoseconds after the epoch.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Raw picosecond count since the epoch.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch (used for `MPI_Wtime`).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// The span from `earlier` to `self`, clamped at zero if `earlier` is
    /// actually later.
    #[inline]
    pub const fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two time points.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two time points.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.as_ps()))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_conversions_roundtrip() {
        assert_eq!(SimDuration::from_ns(5).as_ps(), 5_000);
        assert_eq!(SimDuration::from_us(3).as_ns(), 3_000);
        assert_eq!(SimDuration::from_ms(2).as_ps(), 2 * PS_PER_MS);
        assert_eq!(SimDuration::from_secs(1).as_ps(), PS_PER_SEC);
    }

    #[test]
    fn duration_from_f64_clamps() {
        assert_eq!(SimDuration::from_us_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_us_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_us_f64(1.5).as_ns(), 1_500);
        assert_eq!(SimDuration::from_ns_f64(0.5).as_ps(), 500);
    }

    #[test]
    fn saturating_arithmetic() {
        let max = SimDuration::MAX;
        assert_eq!(max + SimDuration::from_ns(1), SimDuration::MAX);
        assert_eq!(
            SimDuration::ZERO - SimDuration::from_ns(1),
            SimDuration::ZERO
        );
        assert_eq!(max.saturating_mul(2), SimDuration::MAX);
    }

    #[test]
    fn scale_handles_edge_factors() {
        let d = SimDuration::from_us(10);
        assert_eq!(d.scale(0.5), SimDuration::from_us(5));
        assert_eq!(d.scale(-1.0), SimDuration::ZERO);
        assert_eq!(d.scale(f64::INFINITY), SimDuration::ZERO);
        assert_eq!(SimDuration::MAX.scale(2.0), SimDuration::MAX);
    }

    #[test]
    fn time_ordering_and_spans() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_us(7);
        assert!(t1 > t0);
        assert_eq!(t1 - t0, SimDuration::from_us(7));
        // Reversed subtraction clamps instead of panicking.
        assert_eq!(t0 - t1, SimDuration::ZERO);
        assert_eq!(t0.max(t1), t1);
        assert_eq!(t0.min(t1), t0);
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(format!("{}", SimDuration::from_ps(12)), "12ps");
        assert_eq!(format!("{}", SimDuration::from_ns(1)), "1.00ns");
        assert_eq!(format!("{}", SimDuration::from_us(2)), "2.00us");
        assert_eq!(format!("{}", SimDuration::from_ms(3)), "3.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(4)), "4.0000s");
    }

    #[test]
    fn division_never_panics() {
        let d = SimDuration::from_us(10);
        assert_eq!(d / 0, d); // divisor clamped to 1
        assert_eq!(d / 2, SimDuration::from_us(5));
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4u64).map(SimDuration::from_ns).sum();
        assert_eq!(total, SimDuration::from_ns(10));
    }
}
