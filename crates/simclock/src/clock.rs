//! Per-rank logical clocks.
//!
//! Each simulated MPI rank owns one [`Clock`]. Local work advances the clock
//! by a model cost; receiving a message (or passing a barrier) *merges* the
//! sender's timestamp so causality is preserved: an event can never be
//! observed before it happened on the peer.
//!
//! This is the classic Lamport-style logical-time construction specialised
//! for performance simulation: clocks carry durations, not just ordering.

use crate::time::{SimDuration, SimTime};

/// A logical clock for one simulated execution context (rank, DMA engine,
/// interrupt handler, ...).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Clock {
    now: SimTime,
    /// Total time spent in explicit waits (merges that moved the clock
    /// forward). Useful for harnesses reporting synchronisation overhead.
    waited: SimDuration,
}

impl Clock {
    /// A clock at the simulation epoch.
    #[inline]
    pub fn new() -> Self {
        Clock::default()
    }

    /// A clock starting at `t`.
    #[inline]
    pub fn starting_at(t: SimTime) -> Self {
        Clock {
            now: t,
            waited: SimDuration::ZERO,
        }
    }

    /// The current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total time this clock was pushed forward by merges (blocked waiting
    /// on peers) rather than by its own work.
    #[inline]
    pub fn total_waited(&self) -> SimDuration {
        self.waited
    }

    /// Advance the clock by a local cost and return the new time.
    #[inline]
    pub fn advance(&mut self, cost: SimDuration) -> SimTime {
        self.now += cost;
        self.now
    }

    /// Merge an externally observed timestamp: the clock jumps to
    /// `max(now, t)`. Returns how far the clock was pushed forward
    /// (the wait time, zero if `t` was already in the past).
    #[inline]
    pub fn merge(&mut self, t: SimTime) -> SimDuration {
        let wait = t.duration_since(self.now);
        if !wait.is_zero() {
            self.now = t;
            self.waited += wait;
        }
        wait
    }

    /// Merge then advance — the common "receive message, pay overhead"
    /// sequence. Returns the new time.
    #[inline]
    pub fn merge_advance(&mut self, t: SimTime, cost: SimDuration) -> SimTime {
        self.merge(t);
        self.advance(cost)
    }

    /// Reset the clock to the epoch, clearing wait accounting. Benchmarks
    /// use this between repetitions.
    #[inline]
    pub fn reset(&mut self) {
        *self = Clock::new();
    }
}

/// Compute the barrier release time for a set of participant times: the
/// maximum arrival plus a per-participant fan-in/fan-out cost.
///
/// `per_hop` models one step of the (logarithmic) barrier tree; `n` is the
/// number of participants. This helper keeps all collectives in the
/// simulation using the same timing rule.
pub fn barrier_release(arrivals: &[SimTime], per_hop: SimDuration, n: usize) -> SimTime {
    let latest = arrivals.iter().copied().fold(SimTime::ZERO, SimTime::max);
    let hops = usize::BITS - n.max(1).leading_zeros(); // ceil(log2(n)) + 1-ish
    latest + per_hop.saturating_mul(hops as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_accumulates() {
        let mut c = Clock::new();
        c.advance(SimDuration::from_us(2));
        c.advance(SimDuration::from_us(3));
        assert_eq!(c.now(), SimTime::ZERO + SimDuration::from_us(5));
        assert_eq!(c.total_waited(), SimDuration::ZERO);
    }

    #[test]
    fn merge_moves_forward_only() {
        let mut c = Clock::new();
        c.advance(SimDuration::from_us(10));
        // Timestamp in the past: no effect.
        let w = c.merge(SimTime::ZERO + SimDuration::from_us(4));
        assert_eq!(w, SimDuration::ZERO);
        assert_eq!(c.now(), SimTime::ZERO + SimDuration::from_us(10));
        // Timestamp in the future: jump and record the wait.
        let w = c.merge(SimTime::ZERO + SimDuration::from_us(15));
        assert_eq!(w, SimDuration::from_us(5));
        assert_eq!(c.total_waited(), SimDuration::from_us(5));
    }

    #[test]
    fn merge_advance_orders_operations() {
        let mut c = Clock::new();
        let t = c.merge_advance(
            SimTime::ZERO + SimDuration::from_us(8),
            SimDuration::from_us(1),
        );
        assert_eq!(t, SimTime::ZERO + SimDuration::from_us(9));
    }

    #[test]
    fn barrier_release_takes_latest() {
        let t = |us| SimTime::ZERO + SimDuration::from_us(us);
        let arrivals = [t(3), t(9), t(5), t(1)];
        let rel = barrier_release(&arrivals, SimDuration::from_us(1), 4);
        // latest (9us) + 3 hops (ceil(log2(4))+1) of 1us
        assert!(rel > t(9));
        assert!(rel <= t(9 + 4));
    }

    #[test]
    fn barrier_release_empty_is_epochish() {
        let rel = barrier_release(&[], SimDuration::from_us(1), 1);
        assert!(rel.as_ps() <= SimDuration::from_us(1).as_ps());
    }

    #[test]
    fn reset_clears_state() {
        let mut c = Clock::new();
        c.advance(SimDuration::from_us(10));
        c.merge(SimTime::ZERO + SimDuration::from_us(20));
        c.reset();
        assert_eq!(c.now(), SimTime::ZERO);
        assert_eq!(c.total_waited(), SimDuration::ZERO);
    }
}
