//! Online statistics and benchmark series collection.
//!
//! The figure/table harnesses sweep a parameter (block size, access size,
//! node count, ...) and report latency/bandwidth per point. [`OnlineStats`]
//! accumulates repetitions at one point; [`Series`] collects `(x, y)` pairs
//! for one curve; [`Table`] renders aligned text tables so harness output
//! matches the paper's row/column layout.

use crate::time::SimDuration;
use core::fmt::Write as _;

/// Welford-style online mean/variance with min/max tracking.
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Add a duration observation in microseconds.
    pub fn push_duration_us(&mut self, d: SimDuration) {
        self.push(d.as_us_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (0 if fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (0 if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Serialize as a JSON object `{"n":..,"mean":..,"stddev":..,"min":..,
    /// "max":..}`. Hand-rolled because the build is fully self-contained
    /// (no serde); non-finite values become `null`.
    pub fn to_json(&self) -> String {
        fn num(v: f64) -> String {
            if !v.is_finite() {
                "null".to_string()
            } else if v == v.trunc() && v.abs() < 1e15 {
                format!("{}", v as i64)
            } else {
                format!("{v:.6}")
            }
        }
        format!(
            "{{\"n\":{},\"mean\":{},\"stddev\":{},\"min\":{},\"max\":{}}}",
            self.count(),
            num(self.mean()),
            num(self.stddev()),
            num(self.min()),
            num(self.max())
        )
    }
}

/// One labelled curve of `(x, y)` points, e.g. "direct_pack_ff inter-node"
/// bandwidth over block size.
#[derive(Clone, Debug)]
pub struct Series {
    /// Curve label as it should appear in the legend/table header.
    pub label: String,
    /// The data points in sweep order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// An empty series with a label.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Append one point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Look up `y` at an exact `x` (sweeps use exact powers of two).
    pub fn at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| *px == x)
            .map(|(_, py)| *py)
    }

    /// Maximum `y` over the series (0 if empty).
    pub fn max_y(&self) -> f64 {
        self.points.iter().map(|(_, y)| *y).fold(0.0, f64::max)
    }
}

/// A simple aligned text table, used by every harness binary so the output
/// format is uniform and easy to diff against EXPERIMENTS.md.
#[derive(Clone, Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; it is padded or truncated to the header width.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let mut row: Vec<String> = row.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = width[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                width[i] = width[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:>w$}", cell, w = width[i]);
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        let total: usize = width.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

/// Build a table from a shared x-column plus several series (curves become
/// columns). Series missing a point render an empty cell.
pub fn series_table(x_label: &str, x_fmt: impl Fn(f64) -> String, series: &[Series]) -> Table {
    let mut header = vec![x_label.to_string()];
    header.extend(series.iter().map(|s| s.label.clone()));
    let mut table = Table::new(header);
    // x values in order of first appearance across all series
    let mut xs: Vec<f64> = Vec::new();
    for s in series {
        for (x, _) in &s.points {
            if !xs.contains(x) {
                xs.push(*x);
            }
        }
    }
    for x in xs {
        let mut row = vec![x_fmt(x)];
        for s in series {
            row.push(match s.at(x) {
                Some(y) => format!("{y:.2}"),
                None => String::new(),
            });
        }
        table.push_row(row);
    }
    table
}

/// Format a byte count with binary units, matching the paper's axes
/// (8, 64, "1k", "128k", ...).
pub fn fmt_bytes(bytes: f64) -> String {
    let b = bytes as u64;
    if b >= 1024 * 1024 && b.is_multiple_of(1024 * 1024) {
        format!("{}M", b / (1024 * 1024))
    } else if b >= 1024 && b.is_multiple_of(1024) {
        format!("{}k", b / 1024)
    } else {
        format!("{b}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basics() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.138).abs() < 0.01);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn stats_single_observation() {
        let mut s = OnlineStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn series_lookup() {
        let mut s = Series::new("bw");
        s.push(8.0, 10.0);
        s.push(16.0, 20.0);
        assert_eq!(s.at(8.0), Some(10.0));
        assert_eq!(s.at(32.0), None);
        assert_eq!(s.max_y(), 20.0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["size", "bw"]);
        t.push_row(vec!["8", "1.50"]);
        t.push_row(vec!["128", "90.25"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("size"));
        assert!(lines[2].trim_start().starts_with('8'));
        // all rows same width
        assert_eq!(lines[0].len(), lines[3].len());
    }

    #[test]
    fn table_row_padding() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.push_row(vec!["1"]);
        assert_eq!(t.len(), 1);
        assert!(t.render().lines().count() == 3);
    }

    #[test]
    fn series_table_merges_x_values() {
        let mut s1 = Series::new("one");
        s1.push(8.0, 1.0);
        s1.push(16.0, 2.0);
        let mut s2 = Series::new("two");
        s2.push(16.0, 4.0);
        let t = series_table("size", fmt_bytes, &[s1, s2]);
        let r = t.render();
        assert!(r.contains("one"));
        assert!(r.contains("two"));
        assert!(r.contains("16"));
    }

    #[test]
    fn online_stats_to_json() {
        let mut s = OnlineStats::new();
        assert_eq!(
            s.to_json(),
            "{\"n\":0,\"mean\":0,\"stddev\":0,\"min\":0,\"max\":0}"
        );
        s.push(1.0);
        s.push(3.0);
        let j = s.to_json();
        assert!(j.starts_with("{\"n\":2,\"mean\":2,"), "{j}");
        assert!(j.contains("\"stddev\":1.414214"), "{j}");
        assert!(j.ends_with("\"min\":1,\"max\":3}"), "{j}");
    }

    #[test]
    fn fmt_bytes_units() {
        assert_eq!(fmt_bytes(8.0), "8");
        assert_eq!(fmt_bytes(1024.0), "1k");
        assert_eq!(fmt_bytes(131072.0), "128k");
        assert_eq!(fmt_bytes((4 * 1024 * 1024) as f64), "4M");
        assert_eq!(fmt_bytes(1500.0), "1500");
    }
}
