//! The committed (flattened) datatype representation of `direct_pack_ff`.
//!
//! Committing a datatype walks its tree once and produces a **list of
//! leaves**: each leaf is a contiguous basic block (`len` bytes at
//! displacement `first`) plus a **stack** describing its repeat pattern —
//! one `(count, extent)` entry per tree level that replicates it (paper
//! §3.3.1, Figure 5). Two merge optimisations shrink the representation:
//!
//! * stack entries with a replication count of 1 are deleted;
//! * a leaf whose innermost stack level strides by exactly the leaf length
//!   is densified (`len *= count`, level removed);
//! * adjacent leaves with identical stacks are concatenated (e.g. the
//!   `int` and `char[3]` fields of Figure 3's struct become one 7-byte
//!   block).
//!
//! Each level also caches the byte count below it (`below`) so
//! `find_position` runs in O(leaves) + O(depth), as the paper requires for
//! partial packs.

use crate::tree;
use crate::types::{Datatype, TypeKind};
use core::ops::ControlFlow;
use std::sync::Arc;

/// One level of a leaf's repeat-pattern stack (outermost first).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StackLevel {
    /// Replication count at this level.
    pub count: usize,
    /// Byte distance between consecutive replications.
    pub extent: i64,
    /// Payload bytes contributed by one iteration of this level
    /// (product of inner counts × leaf length). Cached for
    /// [`Committed::find_position`].
    pub below: usize,
}

/// One flattened leaf: a contiguous basic block and its repeat pattern.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlatLeaf {
    /// Byte displacement of the first block (relative to the instance
    /// origin).
    pub first: i64,
    /// Contiguous bytes per block.
    pub len: usize,
    /// Repeat pattern, outermost level first. Empty for a single block.
    pub stack: Vec<StackLevel>,
    /// Total payload bytes of this leaf per datatype instance.
    pub total: usize,
}

impl FlatLeaf {
    /// Number of basic blocks this leaf expands to per instance.
    pub fn block_count(&self) -> usize {
        self.stack.iter().map(|l| l.count).product::<usize>().max(1)
    }
}

/// A position inside the pack stream of a committed type, resolved by
/// [`Committed::find_position`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FfPosition {
    /// Datatype instance index.
    pub instance: usize,
    /// Leaf index within the instance.
    pub leaf: usize,
    /// Odometer indices, one per stack level of that leaf.
    pub indices: Vec<usize>,
    /// Byte offset inside the current basic block.
    pub intra: usize,
}

/// Density metrics of a flattened layout, computed once at commit time.
/// The adaptive protocol selector uses these (instead of re-deriving them
/// per message) to pick between direct ff-pack, staged pack-buffer, and
/// DMA transfer paths.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LayoutDensity {
    /// `size / extent` — the fraction of the instance footprint that is
    /// payload. 1.0 means gap-free.
    pub contiguity: f64,
    /// Mean contiguous run length in bytes (`size / blocks`). 0.0 for an
    /// empty type.
    pub avg_block_len: f64,
}

/// The memoised product of flattening one datatype: the optimised leaf
/// list plus the index tables `find_position` needs. Shared by `Arc`
/// between every [`Committed`] of a structurally equal type when the
/// [`layout_cache`] is enabled, so repeated commits of the same type skip
/// the tree walk entirely.
#[derive(Debug)]
pub struct Layout {
    leaves: Vec<FlatLeaf>,
    /// `prefix[k]` = payload bytes per instance in `leaves[..k]` (length
    /// `leaves.len() + 1`). Lets [`Committed::find_position`] locate the
    /// leaf by binary search in O(log N) instead of a linear scan.
    prefix: Vec<usize>,
    /// Tree-walk operations the flattening performed (recursion steps plus
    /// unrolled leaf copies) — the work a send would re-do per transfer
    /// without the cache; the protocol layer charges virtual time
    /// proportional to it when the cache is off.
    flatten_ops: usize,
    density: LayoutDensity,
    /// Revalidation fields: a 64-bit signature collision would hand back
    /// the layout of a different type, so every cache hit cross-checks
    /// size and extent before accepting it.
    size: usize,
    extent: usize,
}

/// A committed datatype: the original tree plus the (possibly cached)
/// flattened layout.
#[derive(Clone, Debug)]
pub struct Committed {
    dt: Datatype,
    layout: Arc<Layout>,
    cache_hit: bool,
}

impl Committed {
    /// Commit `dt`: resolve the flattened representation through the
    /// [`layout_cache`] (building and optimising it on a miss).
    pub fn commit(dt: &Datatype) -> Committed {
        let (layout, cache_hit) = layout_cache::resolve(dt);
        Committed {
            dt: dt.clone(),
            layout,
            cache_hit,
        }
    }

    /// The committed datatype.
    pub fn datatype(&self) -> &Datatype {
        &self.dt
    }

    /// The flattened leaves.
    pub fn leaves(&self) -> &[FlatLeaf] {
        &self.layout.leaves
    }

    /// True if this commit was served from the layout cache rather than by
    /// flattening the tree.
    pub fn cache_hit(&self) -> bool {
        self.cache_hit
    }

    /// Tree-walk operations the flattening cost (or would have cost — the
    /// value is memoised with the layout). The protocol layer uses this to
    /// charge per-transfer re-flattening time when the cache is disabled.
    pub fn flatten_ops(&self) -> usize {
        self.layout.flatten_ops
    }

    /// Commit-time density metrics driving the adaptive path selector.
    pub fn density(&self) -> LayoutDensity {
        self.layout.density
    }

    /// Payload bytes per instance.
    pub fn size(&self) -> usize {
        self.dt.size()
    }

    /// Extent (instance stride) in bytes.
    pub fn extent(&self) -> usize {
        self.dt.extent()
    }

    /// Basic blocks per instance after merging (the `N` of the paper's
    /// complexity bound).
    pub fn blocks_per_instance(&self) -> usize {
        self.leaves().iter().map(FlatLeaf::block_count).sum()
    }

    /// The smallest basic-block length (compared against the
    /// `min_block_size` protocol knob when choosing the transfer path).
    pub fn min_block_len(&self) -> usize {
        self.leaves().iter().map(|l| l.len).min().unwrap_or(0)
    }

    /// Resolve pack-stream byte offset `skip` to a leaf/odometer position.
    /// The leaf is found by binary search over the cached prefix-sum table
    /// (O(log N)), then the odometer resolves in O(depth) — so a partial
    /// pack resumes in O(log N) + O(D), tightening the paper's
    /// O(N) + O(D) bound for multi-leaf types.
    ///
    /// Returns `None` if the type is empty or `skip` lands beyond the
    /// requested `count` instances.
    pub fn find_position(&self, skip: usize, count: usize) -> Option<FfPosition> {
        let size = self.size();
        if size == 0 || count == 0 {
            return None;
        }
        let instance = skip / size;
        if instance >= count {
            return None;
        }
        let rem = skip % size;
        // Last k with prefix[k] <= rem; prefix[leaves.len()] == size > rem,
        // so k indexes a real leaf (empty leaf lists never reach here:
        // size > 0 implies at least one leaf).
        let prefix = &self.layout.prefix;
        let leaf_idx = prefix.partition_point(|&p| p <= rem) - 1;
        let leaf = self.leaves().get(leaf_idx)?;
        let mut rem = rem - prefix[leaf_idx];
        let mut indices = Vec::with_capacity(leaf.stack.len());
        for level in &leaf.stack {
            indices.push(rem / level.below);
            rem %= level.below;
        }
        Some(FfPosition {
            instance,
            leaf: leaf_idx,
            indices,
            intra: rem,
        })
    }
}

/// Flatten `dt` from scratch: collect, merge, refold, drop degenerate
/// leaves, and fill the cached index tables.
fn build_layout(dt: &Datatype) -> Layout {
    let mut ops = 0usize;
    let mut leaves = collect(dt, 0, &mut ops);
    merge_adjacent(&mut leaves);
    refold(&mut leaves);
    merge_adjacent(&mut leaves);
    // Commit-time invariant: no zero-length blocks and no count-0 levels.
    // None of the current constructors can produce them (empty subtrees
    // collapse before they reach here), but a degenerate leaf that slipped
    // through the merge passes would emit empty stores on every transfer,
    // so they are dropped defensively and the invariant is pinned by a
    // regression test.
    leaves.retain(|l| l.len != 0 && l.stack.iter().all(|lvl| lvl.count != 0));
    for leaf in &mut leaves {
        finalise(leaf);
    }
    let mut prefix = Vec::with_capacity(leaves.len() + 1);
    let mut acc = 0usize;
    prefix.push(0);
    for leaf in &leaves {
        acc += leaf.total;
        prefix.push(acc);
    }
    let blocks: usize = leaves.iter().map(FlatLeaf::block_count).sum();
    let size = dt.size();
    let extent = dt.extent();
    let density = LayoutDensity {
        contiguity: if extent == 0 {
            1.0
        } else {
            size as f64 / extent as f64
        },
        avg_block_len: if blocks == 0 {
            0.0
        } else {
            size as f64 / blocks as f64
        },
    };
    Layout {
        leaves,
        prefix,
        flatten_ops: ops,
        density,
        size,
        extent,
    }
}

/// Process-global commit-time layout cache, keyed by the structural
/// [`Datatype::signature`]. A hit returns the shared `Arc<Layout>` without
/// re-walking the type tree; `layout_cache_hits`/`layout_cache_misses`
/// counters record the behaviour. Enabled by default; benches toggle it to
/// measure the cost of re-flattening (the protocol layer charges virtual
/// time from `Tuning`, so the flag here only controls memoisation, never
/// simulated-time determinism).
pub mod layout_cache {
    use super::{build_layout, Layout};
    use crate::types::Datatype;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};

    static ENABLED: AtomicBool = AtomicBool::new(true);

    fn table() -> &'static Mutex<HashMap<u64, Arc<Layout>>> {
        static TABLE: OnceLock<Mutex<HashMap<u64, Arc<Layout>>>> = OnceLock::new();
        TABLE.get_or_init(|| Mutex::new(HashMap::new()))
    }

    /// Turn memoisation on or off (process-wide). Off, every commit
    /// re-flattens; entries already cached are kept but not consulted.
    pub fn set_enabled(on: bool) {
        ENABLED.store(on, Ordering::Relaxed);
    }

    /// Whether commits currently consult the cache.
    pub fn is_enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Drop all cached layouts (used by benches to measure cold commits).
    pub fn clear() {
        table().lock().expect("layout cache poisoned").clear();
    }

    /// Number of distinct layouts currently cached.
    pub fn len() -> usize {
        table().lock().expect("layout cache poisoned").len()
    }

    /// Resolve `dt`'s layout: cached `Arc` on a hit, freshly built (and
    /// inserted) on a miss. The second tuple field reports whether the
    /// cache served the layout.
    pub(super) fn resolve(dt: &Datatype) -> (Arc<Layout>, bool) {
        if !is_enabled() {
            obs::inc(obs::Counter::LayoutCacheMisses);
            return (Arc::new(build_layout(dt)), false);
        }
        let sig = dt.signature();
        if let Some(hit) = table()
            .lock()
            .expect("layout cache poisoned")
            .get(&sig)
            .cloned()
        {
            // Reject (astronomically unlikely) signature collisions: the
            // cached layout must describe a type of identical footprint.
            if hit.size == dt.size() && hit.extent == dt.extent() {
                obs::inc(obs::Counter::LayoutCacheHits);
                return (hit, true);
            }
        }
        obs::inc(obs::Counter::LayoutCacheMisses);
        let layout = Arc::new(build_layout(dt));
        table()
            .lock()
            .expect("layout cache poisoned")
            .insert(sig, Arc::clone(&layout));
        (layout, false)
    }
}

/// Recursive flattening of one instance at displacement `disp`. Returns
/// leaves in **stream (pack) order**; every stack level on a returned leaf
/// replicates that single leaf, so iterating each leaf's odometer fully,
/// leaf by leaf, reproduces canonical MPI pack order exactly.
///
/// Replication over a *multi-leaf* subtree cannot be expressed as a stack
/// level without reordering the stream (all copies of leaf 1 would pack
/// before any copy of leaf 2), so such replications are **unrolled** at
/// commit time. The later [`refold`] pass recovers compact levels whenever
/// adjacent-leaf merging collapses the subtree to a single block (the
/// common case, e.g. Figure 3's struct).
///
/// `ops` tallies the flattening work (one per node visited, one per
/// unrolled leaf copy) — the basis of the re-flattening time charge when
/// the layout cache is off.
fn collect(dt: &Datatype, disp: i64, ops: &mut usize) -> Vec<FlatLeaf> {
    *ops += 1;
    if dt.size() == 0 {
        return Vec::new();
    }
    if dt.ordered_dense() {
        return vec![FlatLeaf {
            first: disp + dt.lb(),
            len: dt.size(),
            stack: Vec::new(),
            total: 0,
        }];
    }
    match dt.kind() {
        TypeKind::Basic(b) => vec![FlatLeaf {
            first: disp,
            len: b.size(),
            stack: Vec::new(),
            total: 0,
        }],
        TypeKind::Contiguous { count, child } => {
            let inner = collect(child, 0, ops);
            replicate(inner, *count, child.extent() as i64, disp, ops)
        }
        TypeKind::Vector {
            count,
            blocklen,
            stride,
            child,
        } => {
            let cext = child.extent() as i64;
            let block = replicate(collect(child, 0, ops), *blocklen, cext, 0, ops);
            replicate(block, *count, *stride as i64 * cext, disp, ops)
        }
        TypeKind::Hvector {
            count,
            blocklen,
            stride_bytes,
            child,
        } => {
            let cext = child.extent() as i64;
            let block = replicate(collect(child, 0, ops), *blocklen, cext, 0, ops);
            replicate(block, *count, *stride_bytes, disp, ops)
        }
        TypeKind::Indexed { blocks, child } => {
            let cext = child.extent() as i64;
            let inner = collect(child, 0, ops);
            let mut out = Vec::new();
            for &(bl, d) in blocks {
                *ops += 1;
                out.extend(replicate(
                    inner.clone(),
                    bl,
                    cext,
                    disp + d as i64 * cext,
                    ops,
                ));
            }
            out
        }
        TypeKind::Hindexed { blocks, child } => {
            let cext = child.extent() as i64;
            let inner = collect(child, 0, ops);
            let mut out = Vec::new();
            for &(bl, d) in blocks {
                *ops += 1;
                out.extend(replicate(inner.clone(), bl, cext, disp + d, ops));
            }
            out
        }
        TypeKind::Struct { fields } => {
            let mut out = Vec::new();
            for (bl, d, t) in fields {
                let inner = collect(t, 0, ops);
                out.extend(replicate(inner, *bl, t.extent() as i64, disp + d, ops));
            }
            out
        }
    }
}

/// Replicate a leaf list `count` times at `extent`-byte intervals starting
/// at `disp`. Single-leaf lists gain a stack level; multi-leaf lists are
/// unrolled to preserve stream order (each unrolled copy tallies one
/// flattening op).
fn replicate(
    mut leaves: Vec<FlatLeaf>,
    count: usize,
    extent: i64,
    disp: i64,
    ops: &mut usize,
) -> Vec<FlatLeaf> {
    if count == 0 || leaves.is_empty() {
        return Vec::new();
    }
    if leaves.len() == 1 {
        *ops += 1;
        let mut leaf = leaves.pop().expect("len checked");
        leaf.first += disp;
        if count > 1 {
            leaf.stack.insert(
                0,
                StackLevel {
                    count,
                    extent,
                    below: 0,
                },
            );
        }
        return vec![leaf];
    }
    let mut out = Vec::with_capacity(leaves.len() * count);
    for i in 0..count {
        for leaf in &leaves {
            *ops += 1;
            let mut l = leaf.clone();
            l.first += disp + i as i64 * extent;
            out.push(l);
        }
    }
    out
}

/// Adjacent-leaf merge: identical stacks and byte-adjacent blocks become
/// one longer block; densify afterwards since the merge may have closed
/// the last gap.
fn merge_adjacent(leaves: &mut Vec<FlatLeaf>) {
    for leaf in leaves.iter_mut() {
        optimise(leaf);
    }
    let mut merged: Vec<FlatLeaf> = Vec::with_capacity(leaves.len());
    for leaf in leaves.drain(..) {
        if let Some(prev) = merged.last_mut() {
            if prev.stack == leaf.stack && prev.first + prev.len as i64 == leaf.first {
                obs::inc(obs::Counter::FfLeafMerges);
                prev.len += leaf.len;
                optimise(prev);
                continue;
            }
        }
        merged.push(leaf);
    }
    *leaves = merged;
}

/// Recover stack levels from unrolled runs: a run of leaves with equal
/// `(len, stack)` whose `first` values form an arithmetic progression
/// folds back into one leaf with a prepended level. This undoes the
/// unrolling of [`replicate`] wherever merging collapsed a multi-leaf
/// subtree into a single block per iteration.
fn refold(leaves: &mut Vec<FlatLeaf>) {
    let mut out: Vec<FlatLeaf> = Vec::with_capacity(leaves.len());
    let mut i = 0;
    while i < leaves.len() {
        let base = leaves[i].clone();
        let mut run = 1;
        let mut stride = 0i64;
        while i + run < leaves.len() {
            let next = &leaves[i + run];
            if next.len != base.len || next.stack != base.stack {
                break;
            }
            let d = next.first - leaves[i + run - 1].first;
            if run == 1 {
                stride = d;
            } else if d != stride {
                break;
            }
            run += 1;
        }
        if run > 1 && stride > 0 {
            let mut folded = base;
            folded.stack.insert(
                0,
                StackLevel {
                    count: run,
                    extent: stride,
                    below: 0,
                },
            );
            optimise(&mut folded);
            out.push(folded);
            i += run;
        } else {
            out.push(base);
            i += 1;
        }
    }
    *leaves = out;
}

/// Remove count-1 levels and densify the innermost level(s).
fn optimise(leaf: &mut FlatLeaf) {
    leaf.stack.retain(|l| l.count != 1);
    while let Some(last) = leaf.stack.last() {
        if last.extent == leaf.len as i64 {
            leaf.len *= last.count;
            leaf.stack.pop();
        } else {
            break;
        }
    }
}

/// Fill the cached `below`/`total` byte counts.
fn finalise(leaf: &mut FlatLeaf) {
    let mut below = leaf.len;
    for level in leaf.stack.iter_mut().rev() {
        level.below = below;
        below *= level.count;
    }
    leaf.total = below;
}

/// Verify a committed type expands to exactly the same byte stream as the
/// generic tree walk (diagnostic used by tests and debug assertions).
pub fn expansion_matches_tree(c: &Committed, count: usize) -> bool {
    let mut tree_segs: Vec<(i64, usize)> = Vec::new();
    tree::for_each_segment(c.datatype(), count, |d, l| {
        tree_segs.push((d, l));
        ControlFlow::Continue(())
    });
    let mut ff_segs: Vec<(i64, usize)> = Vec::new();
    crate::ff::for_each_block(c, count, 0, usize::MAX, |disp, len| {
        // Coalesce adjacent exactly like the tree walker.
        if let Some(last) = ff_segs.last_mut() {
            if last.0 + last.1 as i64 == disp {
                last.1 += len;
                return ControlFlow::Continue(());
            }
        }
        ff_segs.push((disp, len));
        ControlFlow::Continue(())
    });
    tree_segs == ff_segs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_type_is_one_leaf_no_stack() {
        let t = Datatype::contiguous(100, &Datatype::double());
        let c = Committed::commit(&t);
        assert_eq!(c.leaves().len(), 1);
        let leaf = &c.leaves()[0];
        assert_eq!(leaf.len, 800);
        assert!(leaf.stack.is_empty());
        assert_eq!(leaf.total, 800);
        assert_eq!(c.blocks_per_instance(), 1);
    }

    #[test]
    fn strided_vector_is_one_leaf_one_level() {
        let t = Datatype::vector(16, 2, 4, &Datatype::double());
        let c = Committed::commit(&t);
        assert_eq!(c.leaves().len(), 1);
        let leaf = &c.leaves()[0];
        assert_eq!(leaf.len, 16); // 2 doubles
        assert_eq!(leaf.stack.len(), 1);
        assert_eq!(leaf.stack[0].count, 16);
        assert_eq!(leaf.stack[0].extent, 32);
        assert_eq!(leaf.total, 256);
        assert_eq!(c.min_block_len(), 16);
    }

    #[test]
    fn dense_vector_densifies_completely() {
        let t = Datatype::vector(16, 4, 4, &Datatype::int());
        let c = Committed::commit(&t);
        assert_eq!(c.leaves().len(), 1);
        assert!(c.leaves()[0].stack.is_empty());
        assert_eq!(c.leaves()[0].len, 256);
    }

    #[test]
    fn figure3_struct_merges_int_and_chars() {
        // struct { int @0; char[3] @4 } — adjacent fields merge to one
        // 7-byte block (paper Figure 5).
        let chars = Datatype::contiguous(3, &Datatype::byte());
        let s = Datatype::structure(&[(1, 0, Datatype::int()), (1, 4, chars)]);
        let c = Committed::commit(&s);
        assert_eq!(c.leaves().len(), 1);
        assert_eq!(c.leaves()[0].len, 7);
        assert!(c.leaves()[0].stack.is_empty());
    }

    #[test]
    fn figure5_vector_of_structs() {
        // hvector(4, 1, 16B) of the Figure 3 struct: one leaf, len 7,
        // stack [(4, 16)].
        let chars = Datatype::contiguous(3, &Datatype::byte());
        let s = Datatype::structure(&[(1, 0, Datatype::int()), (1, 4, chars)]);
        let v = Datatype::hvector(4, 1, 16, &s);
        let c = Committed::commit(&v);
        assert_eq!(c.leaves().len(), 1, "leaves: {:?}", c.leaves());
        let leaf = &c.leaves()[0];
        assert_eq!(leaf.len, 7);
        assert_eq!(leaf.stack.len(), 1);
        assert_eq!(
            leaf.stack[0],
            StackLevel {
                count: 4,
                extent: 16,
                below: 7
            }
        );
        assert_eq!(leaf.total, 28);
        assert_eq!(c.blocks_per_instance(), 4);
    }

    #[test]
    fn gapped_struct_refolds_into_strided_leaf() {
        // Two equal-size fields 8 bytes apart: the refold pass recognises
        // the arithmetic progression and represents them as one leaf with
        // a count-2 level — even more compact than two leaves.
        let s = Datatype::structure(&[(1, 0, Datatype::int()), (1, 8, Datatype::int())]);
        let c = Committed::commit(&s);
        assert_eq!(c.leaves().len(), 1);
        let leaf = &c.leaves()[0];
        assert_eq!((leaf.first, leaf.len), (0, 4));
        assert_eq!(
            leaf.stack,
            vec![StackLevel {
                count: 2,
                extent: 8,
                below: 4
            }]
        );
    }

    #[test]
    fn unequal_struct_fields_keep_two_leaves() {
        let s = Datatype::structure(&[(1, 0, Datatype::int()), (1, 8, Datatype::double())]);
        let c = Committed::commit(&s);
        assert_eq!(c.leaves().len(), 2);
        assert_eq!(c.leaves()[0].first, 0);
        assert_eq!(c.leaves()[0].len, 4);
        assert_eq!(c.leaves()[1].first, 8);
        assert_eq!(c.leaves()[1].len, 8);
    }

    #[test]
    fn interleaved_multi_leaf_replication_preserves_stream_order() {
        // The proptest-found case: replication over a multi-leaf subtree
        // must unroll (or refold compatibly), never reorder the stream.
        let s = Datatype::structure(&[(1, 0, Datatype::byte()), (1, 2, Datatype::byte())]);
        let h = Datatype::hvector(1, 1, 3, &s);
        let t = Datatype::contiguous(2, &h);
        let c = Committed::commit(&t);
        assert!(expansion_matches_tree(&c, 1));
        assert!(expansion_matches_tree(&c, 3));
    }

    #[test]
    fn count1_levels_are_elided() {
        // vector(1, 3, 100, int): the count-1 level must vanish, leaving a
        // dense 12-byte leaf.
        let t = Datatype::vector(1, 3, 100, &Datatype::int());
        let c = Committed::commit(&t);
        assert_eq!(c.leaves().len(), 1);
        assert_eq!(c.leaves()[0].len, 12);
        assert!(c.leaves()[0].stack.is_empty());
    }

    #[test]
    fn nested_vector_keeps_two_levels() {
        let inner = Datatype::vector(4, 1, 2, &Datatype::double()); // strided
        let outer = Datatype::hvector(3, 1, 100, &inner);
        let c = Committed::commit(&outer);
        assert_eq!(c.leaves().len(), 1);
        let leaf = &c.leaves()[0];
        assert_eq!(leaf.len, 8);
        assert_eq!(leaf.stack.len(), 2);
        assert_eq!(leaf.stack[0].count, 3);
        assert_eq!(leaf.stack[0].extent, 100);
        assert_eq!(leaf.stack[1].count, 4);
        assert_eq!(leaf.stack[1].extent, 16);
        assert_eq!(leaf.stack[1].below, 8);
        assert_eq!(leaf.stack[0].below, 32);
        assert_eq!(leaf.total, 96);
        assert_eq!(c.blocks_per_instance(), 12);
    }

    #[test]
    fn find_position_walks_levels() {
        let t = Datatype::vector(16, 2, 4, &Datatype::double()); // leaf len 16
        let c = Committed::commit(&t);
        // Offset 0.
        let p = c.find_position(0, 2).unwrap();
        assert_eq!((p.instance, p.leaf, p.intra), (0, 0, 0));
        assert_eq!(p.indices, vec![0]);
        // Offset 40 = block 2 (bytes 32..48), intra 8.
        let p = c.find_position(40, 2).unwrap();
        assert_eq!(p.indices, vec![2]);
        assert_eq!(p.intra, 8);
        // Second instance: offset 256+16 → instance 1, block 1.
        let p = c.find_position(272, 2).unwrap();
        assert_eq!(p.instance, 1);
        assert_eq!(p.indices, vec![1]);
        assert_eq!(p.intra, 0);
        // Beyond the data.
        assert!(c.find_position(512, 2).is_none());
    }

    #[test]
    fn find_position_multi_leaf() {
        // Unequal fields stay as two leaves; stream offset 5 is inside
        // the second field.
        let s = Datatype::structure(&[(1, 0, Datatype::int()), (1, 8, Datatype::double())]);
        let c = Committed::commit(&s);
        let p = c.find_position(5, 1).unwrap();
        assert_eq!(p.leaf, 1);
        assert_eq!(p.intra, 1);
        // And in the refolded equal-field struct, offset 5 maps to the
        // second odometer position of the single leaf.
        let s2 = Datatype::structure(&[(1, 0, Datatype::int()), (1, 8, Datatype::int())]);
        let c2 = Committed::commit(&s2);
        let p2 = c2.find_position(5, 1).unwrap();
        assert_eq!(p2.leaf, 0);
        assert_eq!(p2.indices, vec![1]);
        assert_eq!(p2.intra, 1);
    }

    #[test]
    fn empty_type_has_no_leaves() {
        let t = Datatype::contiguous(0, &Datatype::double());
        let c = Committed::commit(&t);
        assert!(c.leaves().is_empty());
        assert_eq!(c.blocks_per_instance(), 0);
        assert!(c.find_position(0, 1).is_none());
    }

    #[test]
    fn layout_cache_shares_layout_across_commits() {
        // Two commits of structurally equal (but separately built) types
        // must share one Arc'd layout when the cache is on. This test
        // keeps the global flag enabled (other tests in this binary run
        // concurrently); an unusual stride keeps the key private to it.
        let a = Datatype::vector(13, 3, 11, &Datatype::double());
        let b = Datatype::vector(13, 3, 11, &Datatype::double());
        let ca = Committed::commit(&a);
        let cb = Committed::commit(&b);
        assert!(Arc::ptr_eq(&ca.layout, &cb.layout));
        assert!(cb.cache_hit());
        assert_eq!(ca.leaves(), cb.leaves());
        assert_eq!(ca.flatten_ops(), cb.flatten_ops());
    }

    #[test]
    fn cold_commit_reports_miss_and_correct_metadata() {
        let t = Datatype::vector(9, 2, 7, &Datatype::int());
        let c = Committed::commit(&t);
        assert!(!c.cache_hit() || Committed::commit(&t).cache_hit());
        assert!(c.flatten_ops() > 0);
        let d = c.density();
        // 9 blocks of 8 bytes, extent 8*7*8 + ... — payload fraction < 1.
        assert!(d.contiguity > 0.0 && d.contiguity < 1.0);
        assert!((d.avg_block_len - 8.0).abs() < 1e-9);
    }

    #[test]
    fn density_of_contiguous_type_is_full() {
        let t = Datatype::contiguous(64, &Datatype::double());
        let c = Committed::commit(&t);
        assert_eq!(c.density().contiguity, 1.0);
        assert_eq!(c.density().avg_block_len, 512.0);
        // Empty types report a harmless density.
        let e = Committed::commit(&Datatype::contiguous(0, &Datatype::int()));
        assert_eq!(e.density().avg_block_len, 0.0);
    }

    #[test]
    fn no_zero_length_leaves_survive_commit() {
        // Regression: degenerate blocks (zero count, zero blocklen,
        // empty children) must never leave a zero-length leaf behind —
        // such a leaf would emit empty stores on every transfer. Mix
        // degenerate entries through every constructor that takes them.
        let empty = Datatype::contiguous(0, &Datatype::double());
        let cases = [
            Datatype::indexed(&[(0, 3), (2, 0), (0, 9)], &Datatype::int()),
            Datatype::hindexed(&[(1, 8), (0, 0)], &Datatype::double()),
            Datatype::structure(&[
                (0, 0, Datatype::int()),
                (1, 4, Datatype::int()),
                (3, 16, empty.clone()),
            ]),
            Datatype::vector(4, 2, 3, &Datatype::structure(&[(1, 0, Datatype::byte())])),
            Datatype::hvector(3, 2, 64, &empty),
            Datatype::contiguous(5, &Datatype::structure(&[])),
        ];
        for t in &cases {
            let c = Committed::commit(t);
            for leaf in c.leaves() {
                assert!(leaf.len > 0, "zero-length leaf for {t}: {leaf:?}");
                assert!(
                    leaf.stack.iter().all(|l| l.count > 0),
                    "count-0 level for {t}: {leaf:?}"
                );
            }
            // And the expansion emits no empty stores.
            crate::ff::for_each_block(&c, 2, 0, usize::MAX, |_, len| {
                assert!(len > 0, "empty store emitted for {t}");
                ControlFlow::Continue(())
            });
            assert!(expansion_matches_tree(&c, 2), "expansion broke for {t}");
        }
    }

    #[test]
    fn find_position_agrees_with_linear_scan_on_multi_leaf_types() {
        // The prefix-sum binary search must match the old linear walk at
        // every stream offset, including leaf boundaries.
        let chars = Datatype::contiguous(3, &Datatype::byte());
        let s = Datatype::structure(&[
            (1, 0, Datatype::int()),
            (1, 8, Datatype::double()),
            (2, 24, chars),
        ]);
        let c = Committed::commit(&s);
        let size = c.size();
        for skip in 0..size * 2 {
            let p = c.find_position(skip, 2).expect("in range");
            // Reference: linear scan over leaves.
            let mut rem = skip % size;
            let mut leaf_idx = 0;
            for (k, leaf) in c.leaves().iter().enumerate() {
                if rem >= leaf.total {
                    rem -= leaf.total;
                } else {
                    leaf_idx = k;
                    break;
                }
            }
            assert_eq!(p.instance, skip / size, "skip {skip}");
            assert_eq!(p.leaf, leaf_idx, "skip {skip}");
            let mut expect_rem = rem;
            let mut expect_indices = Vec::new();
            for level in &c.leaves()[leaf_idx].stack {
                expect_indices.push(expect_rem / level.below);
                expect_rem %= level.below;
            }
            assert_eq!(p.indices, expect_indices, "skip {skip}");
            assert_eq!(p.intra, expect_rem, "skip {skip}");
        }
        assert!(c.find_position(size * 2, 2).is_none());
    }

    #[test]
    fn expansion_matches_tree_for_samples() {
        let chars = Datatype::contiguous(3, &Datatype::byte());
        let s = Datatype::structure(&[(1, 0, Datatype::int()), (1, 4, chars)]);
        let samples = [
            Datatype::double(),
            Datatype::contiguous(7, &Datatype::int()),
            Datatype::vector(5, 2, 3, &Datatype::double()),
            Datatype::hvector(4, 1, 16, &s),
            Datatype::indexed(&[(2, 0), (1, 5), (3, 10)], &Datatype::int()),
            Datatype::hindexed(&[(1, 24), (2, 0)], &Datatype::double()),
            Datatype::structure(&[
                (2, 0, Datatype::int()),
                (1, 16, Datatype::vector(3, 1, 2, &Datatype::double())),
            ]),
        ];
        for t in &samples {
            let c = Committed::commit(t);
            for count in [1usize, 2, 3] {
                assert!(
                    expansion_matches_tree(&c, count),
                    "mismatch for {t} count {count}"
                );
            }
        }
    }
}
