//! The *generic* pack/unpack engine: recursive traversal of the datatype
//! tree, as in unmodified MPICH.
//!
//! Every MPI implementation needs this path; the paper's point is that it
//! is expensive — "time consuming repeated recursive traversal of the
//! datatype tree" — and that it forces intermediate copies. We implement it
//! faithfully (including its per-block traversal overhead, reported in
//! [`PackStats::visits`]) so the reproduction's baseline behaves like the
//! original baseline.
//!
//! The walker emits the type's *segments* — maximal runs of contiguous
//! bytes in pack order — and adjacent segments are coalesced, so a fully
//! contiguous type costs exactly one segment. Pack order is the canonical
//! MPI order (constructor order), which is why coalescing must respect
//! [`crate::Datatype::ordered_dense`] rather than mere coverage.

use crate::types::{Datatype, TypeKind};
use core::ops::ControlFlow;

/// Cost-model observables of one pack/unpack operation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PackStats {
    /// Payload bytes moved.
    pub bytes: usize,
    /// Contiguous blocks copied (after coalescing).
    pub blocks: usize,
    /// Datatype-tree node visits performed (the generic engine's CPU
    /// overhead driver).
    pub visits: usize,
}

impl PackStats {
    /// Accumulate another operation's stats.
    pub fn merge(&mut self, other: PackStats) {
        self.bytes += other.bytes;
        self.blocks += other.blocks;
        self.visits += other.visits;
    }
}

/// Walk the segments of `count` instances of `dt`, calling `f(disp, len)`
/// for every maximal contiguous run in pack order. Returns the visit count.
/// `f` may break to stop early.
pub fn for_each_segment(
    dt: &Datatype,
    count: usize,
    mut f: impl FnMut(i64, usize) -> ControlFlow<()>,
) -> usize {
    let mut visits = 0usize;
    let mut pending: Option<(i64, usize)> = None;
    let ext = dt.extent() as i64;
    'outer: {
        for j in 0..count {
            let flow = walk(dt, j as i64 * ext, &mut visits, &mut |disp, len| {
                if len == 0 {
                    return ControlFlow::Continue(());
                }
                match pending {
                    Some((pd, pl)) if pd + pl as i64 == disp => {
                        pending = Some((pd, pl + len));
                        ControlFlow::Continue(())
                    }
                    Some((pd, pl)) => {
                        pending = Some((disp, len));
                        f(pd, pl)
                    }
                    None => {
                        pending = Some((disp, len));
                        ControlFlow::Continue(())
                    }
                }
            });
            if flow.is_break() {
                break 'outer;
            }
        }
        if let Some((pd, pl)) = pending.take() {
            let _ = f(pd, pl);
        }
    }
    visits
}

/// Recursive traversal of one instance at byte displacement `disp`.
fn walk(
    dt: &Datatype,
    disp: i64,
    visits: &mut usize,
    emit: &mut impl FnMut(i64, usize) -> ControlFlow<()>,
) -> ControlFlow<()> {
    *visits += 1;
    if dt.ordered_dense() {
        return emit(disp + dt.lb(), dt.size());
    }
    match dt.kind() {
        TypeKind::Basic(b) => emit(disp, b.size()),
        TypeKind::Contiguous { count, child } => {
            for i in 0..*count {
                walk(child, disp + i as i64 * child.extent() as i64, visits, emit)?;
            }
            ControlFlow::Continue(())
        }
        TypeKind::Vector {
            count,
            blocklen,
            stride,
            child,
        } => {
            let cext = child.extent() as i64;
            walk_blocks(
                child,
                (0..*count).map(|i| (*blocklen, disp + i as i64 * *stride as i64 * cext)),
                visits,
                emit,
            )
        }
        TypeKind::Hvector {
            count,
            blocklen,
            stride_bytes,
            child,
        } => walk_blocks(
            child,
            (0..*count).map(|i| (*blocklen, disp + i as i64 * *stride_bytes)),
            visits,
            emit,
        ),
        TypeKind::Indexed { blocks, child } => {
            let cext = child.extent() as i64;
            walk_blocks(
                child,
                blocks.iter().map(|&(bl, d)| (bl, disp + d as i64 * cext)),
                visits,
                emit,
            )
        }
        TypeKind::Hindexed { blocks, child } => walk_blocks(
            child,
            blocks.iter().map(|&(bl, d)| (bl, disp + d)),
            visits,
            emit,
        ),
        TypeKind::Struct { fields } => {
            for (bl, d, t) in fields {
                walk_blocks(t, core::iter::once((*bl, disp + d)), visits, emit)?;
            }
            ControlFlow::Continue(())
        }
    }
}

/// Walk `(blocklen, byte displacement)` blocks of `child`.
fn walk_blocks(
    child: &Datatype,
    blocks: impl Iterator<Item = (usize, i64)>,
    visits: &mut usize,
    emit: &mut impl FnMut(i64, usize) -> ControlFlow<()>,
) -> ControlFlow<()> {
    let cext = child.extent() as i64;
    for (bl, start) in blocks {
        if bl == 0 {
            continue;
        }
        *visits += 1;
        if child.ordered_dense() {
            // `bl` dense children back to back: one run.
            emit(start + child.lb(), bl * child.size())?;
        } else {
            for k in 0..bl {
                walk(child, start + k as i64 * cext, visits, emit)?;
            }
        }
    }
    ControlFlow::Continue(())
}

/// Resolve a displacement to an index into `buf`, panicking with a clear
/// message on out-of-range access (caller validation bug).
#[inline]
fn index(origin: usize, disp: i64, len: usize, buf_len: usize) -> usize {
    let start = origin as i64 + disp;
    assert!(
        start >= 0 && (start as usize) + len <= buf_len,
        "datatype segment [{start}, {}) outside buffer of {buf_len} bytes",
        start + len as i64
    );
    start as usize
}

/// Pack `count` instances of `dt` from `src` (displacement 0 at byte
/// `origin`) into `out`. Returns the stats.
pub fn pack(
    dt: &Datatype,
    count: usize,
    src: &[u8],
    origin: usize,
    out: &mut Vec<u8>,
) -> PackStats {
    pack_range(dt, count, src, origin, 0, usize::MAX, out)
}

/// Pack at most `max` bytes starting at pack-stream offset `skip` — the
/// partial-pack interface chunked protocols need. Appends to `out`.
pub fn pack_range(
    dt: &Datatype,
    count: usize,
    src: &[u8],
    origin: usize,
    skip: usize,
    max: usize,
    out: &mut Vec<u8>,
) -> PackStats {
    obs::inc(obs::Counter::GenericPackCalls);
    let mut stats = PackStats::default();
    let mut cursor = 0usize;
    let end = skip.saturating_add(max);
    let visits = for_each_segment(dt, count, |disp, len| {
        let seg_start = cursor;
        cursor += len;
        if cursor <= skip {
            return ControlFlow::Continue(());
        }
        if seg_start >= end {
            return ControlFlow::Break(());
        }
        let from = skip.saturating_sub(seg_start);
        let to = len.min(end - seg_start);
        let idx = index(origin, disp + from as i64, to - from, src.len());
        out.extend_from_slice(&src[idx..idx + (to - from)]);
        stats.bytes += to - from;
        stats.blocks += 1;
        if cursor >= end {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    stats.visits = visits;
    stats
}

/// Unpack the contiguous stream `data` into `count` instances of `dt` in
/// `dst`, starting at pack-stream offset `skip`.
pub fn unpack_range(
    dt: &Datatype,
    count: usize,
    dst: &mut [u8],
    origin: usize,
    skip: usize,
    data: &[u8],
) -> PackStats {
    obs::inc(obs::Counter::GenericPackCalls);
    let mut stats = PackStats::default();
    let mut cursor = 0usize;
    let end = skip.saturating_add(data.len());
    let visits = for_each_segment(dt, count, |disp, len| {
        let seg_start = cursor;
        cursor += len;
        if cursor <= skip {
            return ControlFlow::Continue(());
        }
        if seg_start >= end {
            return ControlFlow::Break(());
        }
        let from = skip.saturating_sub(seg_start);
        let to = len.min(end - seg_start);
        let idx = index(origin, disp + from as i64, to - from, dst.len());
        let src_at = seg_start + from - skip;
        dst[idx..idx + (to - from)].copy_from_slice(&data[src_at..src_at + (to - from)]);
        stats.bytes += to - from;
        stats.blocks += 1;
        if cursor >= end {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    stats.visits = visits;
    stats
}

/// Unpack a full stream (convenience wrapper).
pub fn unpack(
    dt: &Datatype,
    count: usize,
    dst: &mut [u8],
    origin: usize,
    data: &[u8],
) -> PackStats {
    unpack_range(dt, count, dst, origin, 0, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::BasicType;

    fn segs(dt: &Datatype, count: usize) -> Vec<(i64, usize)> {
        let mut v = Vec::new();
        for_each_segment(dt, count, |d, l| {
            v.push((d, l));
            ControlFlow::Continue(())
        });
        v
    }

    #[test]
    fn basic_type_single_segment() {
        assert_eq!(segs(&Datatype::double(), 1), vec![(0, 8)]);
        // Multiple instances coalesce (extent == size).
        assert_eq!(segs(&Datatype::double(), 4), vec![(0, 32)]);
    }

    #[test]
    fn vector_segments_are_strided() {
        let t = Datatype::vector(3, 2, 4, &Datatype::double());
        assert_eq!(segs(&t, 1), vec![(0, 16), (32, 16), (64, 16)]);
    }

    #[test]
    fn contiguous_vector_coalesces_to_one() {
        let t = Datatype::vector(3, 2, 2, &Datatype::double());
        assert_eq!(segs(&t, 1), vec![(0, 48)]);
        assert_eq!(segs(&t, 2), vec![(0, 96)]);
    }

    #[test]
    fn struct_segments_in_field_order() {
        let chars = Datatype::contiguous(3, &Datatype::byte());
        let s = Datatype::structure(&[(1, 0, Datatype::int()), (1, 4, chars)]);
        // int at 0..4 and chars at 4..7 are adjacent → coalesce.
        assert_eq!(segs(&s, 1), vec![(0, 7)]);
        let gapped = Datatype::structure(&[(1, 0, Datatype::int()), (1, 8, Datatype::int())]);
        assert_eq!(segs(&gapped, 1), vec![(0, 4), (8, 4)]);
    }

    #[test]
    fn descending_indexed_preserves_pack_order() {
        let t = Datatype::indexed(&[(1, 1), (1, 0)], &Datatype::int());
        assert_eq!(segs(&t, 1), vec![(4, 4), (0, 4)]);
    }

    #[test]
    fn pack_roundtrip_strided_vector() {
        let t = Datatype::vector(4, 2, 4, &Datatype::double());
        let src: Vec<u8> = (0..t.extent()).map(|i| i as u8).collect();
        let mut packed = Vec::new();
        let stats = pack(&t, 1, &src, 0, &mut packed);
        assert_eq!(stats.bytes, t.size());
        assert_eq!(packed.len(), t.size());
        assert_eq!(stats.blocks, 4);

        let mut dst = vec![0u8; t.extent()];
        let ustats = unpack(&t, 1, &mut dst, 0, &packed);
        assert_eq!(ustats.bytes, t.size());
        // Data bytes equal, gap bytes zero.
        for (i, (&a, &b)) in src.iter().zip(dst.iter()).enumerate() {
            let in_block = (i / 32) * 32 + 16 > i; // first 16 of each 32
            if in_block {
                assert_eq!(a, b, "data byte {i}");
            } else {
                assert_eq!(b, 0, "gap byte {i}");
            }
        }
    }

    #[test]
    fn pack_range_splits_arbitrarily() {
        let t = Datatype::vector(8, 3, 7, &Datatype::int());
        let src: Vec<u8> = (0..t.extent() * 2).map(|i| (i * 7) as u8).collect();
        let mut whole = Vec::new();
        pack(&t, 2, &src, 0, &mut whole);
        assert_eq!(whole.len(), 2 * t.size());

        // Re-pack in every possible (skip, chunk) split of 13 bytes.
        let mut pieced = Vec::new();
        let mut skip = 0usize;
        while skip < whole.len() {
            let mut chunk = Vec::new();
            pack_range(&t, 2, &src, 0, skip, 13, &mut chunk);
            assert!(chunk.len() <= 13);
            pieced.extend_from_slice(&chunk);
            skip += chunk.len().max(1);
        }
        assert_eq!(pieced, whole);
    }

    #[test]
    fn unpack_range_reassembles() {
        let t = Datatype::vector(5, 1, 3, &Datatype::double());
        let src: Vec<u8> = (0..t.extent()).map(|i| i as u8 ^ 0x5A).collect();
        let mut packed = Vec::new();
        pack(&t, 1, &src, 0, &mut packed);

        let mut dst = vec![0u8; t.extent()];
        // Deliver in chunks of 7 via unpack_range.
        let mut off = 0;
        for chunk in packed.chunks(7) {
            unpack_range(&t, 1, &mut dst, 0, off, chunk);
            off += chunk.len();
        }
        let mut dst2 = vec![0u8; t.extent()];
        unpack(&t, 1, &mut dst2, 0, &packed);
        assert_eq!(dst, dst2);
    }

    #[test]
    fn visits_scale_with_blocks_for_strided() {
        let n = 64;
        let t = Datatype::vector(n, 1, 2, &Datatype::double());
        let src = vec![0u8; t.extent()];
        let mut out = Vec::new();
        let stats = pack(&t, 1, &src, 0, &mut out);
        assert_eq!(stats.blocks, n);
        assert!(stats.visits >= n, "visits {} blocks {}", stats.visits, n);
        // A contiguous type of the same size needs only O(1) visits.
        let c = Datatype::contiguous(n, &Datatype::double());
        let mut out2 = Vec::new();
        let cstats = pack(&c, 1, &src[..c.extent()], 0, &mut out2);
        assert_eq!(cstats.blocks, 1);
        assert!(cstats.visits <= 2);
    }

    #[test]
    fn negative_displacement_with_origin() {
        let t = Datatype::hindexed(&[(1, -8), (1, 8)], &Datatype::double());
        let src: Vec<u8> = (0..32).map(|i| i as u8).collect();
        let mut out = Vec::new();
        // Displacement 0 sits at byte 8 of the buffer.
        pack(&t, 1, &src, 8, &mut out);
        assert_eq!(&out[..8], &src[0..8]);
        assert_eq!(&out[8..], &src[16..24]);
    }

    #[test]
    #[should_panic(expected = "outside buffer")]
    fn out_of_range_access_panics_clearly() {
        let t = Datatype::vector(4, 1, 4, &Datatype::double());
        let src = vec![0u8; 8]; // far too small
        let mut out = Vec::new();
        pack(&t, 1, &src, 0, &mut out);
    }

    #[test]
    fn empty_type_packs_nothing() {
        let t = Datatype::contiguous(0, &Datatype::double());
        let mut out = Vec::new();
        let stats = pack(&t, 3, &[], 0, &mut out);
        assert_eq!(stats.bytes, 0);
        assert_eq!(out.len(), 0);
    }

    #[test]
    fn zero_count_packs_nothing() {
        let t = Datatype::basic(BasicType::Int);
        let mut out = Vec::new();
        let stats = pack(&t, 0, &[1, 2, 3, 4], 0, &mut out);
        assert_eq!(stats.bytes, 0);
    }
}
