//! MPI datatype construction: basic types and the derived-type
//! constructors (`contiguous`, `vector`, `hvector`, `indexed`, `hindexed`,
//! `struct`), with MPI's size / extent / lb / ub semantics.
//!
//! A datatype is an immutable tree shared by `Arc`; committing one
//! (see [`crate::flat`]) derives the flattened representation used by
//! `direct_pack_ff`.

use std::fmt;
use std::sync::Arc;

/// The predefined (basic) datatypes — the C/Fortran scalars of MPI.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BasicType {
    /// `MPI_BYTE` / `MPI_CHAR` (1 byte).
    Byte,
    /// `MPI_SHORT` (2 bytes).
    Short,
    /// `MPI_INT` (4 bytes).
    Int,
    /// `MPI_FLOAT` (4 bytes).
    Float,
    /// `MPI_LONG` / `MPI_LONG_LONG` (8 bytes).
    Long,
    /// `MPI_DOUBLE` (8 bytes).
    Double,
}

impl BasicType {
    /// Size in bytes.
    pub const fn size(self) -> usize {
        match self {
            BasicType::Byte => 1,
            BasicType::Short => 2,
            BasicType::Int | BasicType::Float => 4,
            BasicType::Long | BasicType::Double => 8,
        }
    }
}

/// The constructor that built a (sub)type.
#[derive(Clone, Debug)]
pub enum TypeKind {
    /// A predefined scalar.
    Basic(BasicType),
    /// `count` children back to back.
    Contiguous {
        /// Replication count.
        count: usize,
        /// Element type.
        child: Datatype,
    },
    /// `count` blocks of `blocklen` children, block starts `stride`
    /// children apart (stride in units of the child's extent).
    Vector {
        /// Number of blocks.
        count: usize,
        /// Children per block.
        blocklen: usize,
        /// Distance between block starts, in child extents.
        stride: isize,
        /// Element type.
        child: Datatype,
    },
    /// Like `Vector` but the stride is in bytes.
    Hvector {
        /// Number of blocks.
        count: usize,
        /// Children per block.
        blocklen: usize,
        /// Distance between block starts, in bytes.
        stride_bytes: i64,
        /// Element type.
        child: Datatype,
    },
    /// Blocks of varying length at varying displacements (displacements in
    /// child extents).
    Indexed {
        /// `(blocklen, displacement)` pairs, displacement in child extents.
        blocks: Vec<(usize, isize)>,
        /// Element type.
        child: Datatype,
    },
    /// Like `Indexed` but displacements are in bytes.
    Hindexed {
        /// `(blocklen, displacement_bytes)` pairs.
        blocks: Vec<(usize, i64)>,
        /// Element type.
        child: Datatype,
    },
    /// Heterogeneous fields at byte displacements (`MPI_Type_struct`).
    Struct {
        /// `(blocklen, displacement_bytes, field_type)` triples.
        fields: Vec<(usize, i64, Datatype)>,
    },
}

#[derive(Debug)]
pub(crate) struct TypeNode {
    pub(crate) kind: TypeKind,
    size: usize,
    lb: i64,
    ub: i64,
    depth: usize,
    /// True if packing this type touches a single gap-free, strictly
    /// ascending byte range — i.e. a pack is exactly one `memcpy`. Stronger
    /// than `size == extent`: an `indexed` type listing adjacent blocks in
    /// descending order is contiguous in *coverage* but not in *pack
    /// order*.
    ordered_dense: bool,
    /// Structural fingerprint: equal trees (same constructors, same
    /// parameters, structurally equal children) hash to the same value.
    /// Child signatures fold in O(1), so construction stays linear in the
    /// constructor's own argument list. Keys the commit-time layout cache
    /// (see [`crate::flat::layout_cache`]).
    signature: u64,
}

/// An MPI datatype: an immutable, cheaply clonable tree.
#[derive(Clone, Debug)]
pub struct Datatype {
    pub(crate) node: Arc<TypeNode>,
}

impl Datatype {
    fn build(kind: TypeKind) -> Datatype {
        let (size, lb, ub, depth) = match &kind {
            TypeKind::Basic(b) => (b.size(), 0, b.size() as i64, 1),
            TypeKind::Contiguous { count, child } => {
                let ext = child.extent() as i64;
                (
                    child.size() * count,
                    if *count == 0 { 0 } else { child.lb() },
                    if *count == 0 {
                        0
                    } else {
                        child.lb() + ext * (*count as i64 - 1) + child.true_span()
                    },
                    child.depth() + 1,
                )
            }
            TypeKind::Vector {
                count,
                blocklen,
                stride,
                child,
            } => span_of_blocks(
                child,
                (0..*count).map(|i| (*blocklen, i as i64 * *stride as i64 * child.extent() as i64)),
            ),
            TypeKind::Hvector {
                count,
                blocklen,
                stride_bytes,
                child,
            } => span_of_blocks(
                child,
                (0..*count).map(|i| (*blocklen, i as i64 * *stride_bytes)),
            ),
            TypeKind::Indexed { blocks, child } => span_of_blocks(
                child,
                blocks
                    .iter()
                    .map(|&(bl, d)| (bl, d as i64 * child.extent() as i64)),
            ),
            TypeKind::Hindexed { blocks, child } => {
                span_of_blocks(child, blocks.iter().map(|&(bl, d)| (bl, d)))
            }
            TypeKind::Struct { fields } => {
                let mut size = 0usize;
                let mut lb = i64::MAX;
                let mut ub = i64::MIN;
                let mut depth = 0usize;
                for (bl, disp, t) in fields {
                    size += t.size() * bl;
                    if *bl > 0 {
                        lb = lb.min(*disp + t.lb());
                        ub = ub.max(
                            *disp + t.lb() + t.extent() as i64 * (*bl as i64 - 1) + t.true_span(),
                        );
                    }
                    depth = depth.max(t.depth());
                }
                if lb == i64::MAX {
                    lb = 0;
                    ub = 0;
                }
                (size, lb, ub, depth + 1)
            }
        };
        let ordered_dense = if size == 0 {
            true
        } else if size as i64 != ub - lb {
            false
        } else {
            match &kind {
                TypeKind::Basic(_) => true,
                TypeKind::Contiguous { child, .. } => child.ordered_dense(),
                TypeKind::Vector {
                    count,
                    blocklen,
                    stride,
                    child,
                } => child.ordered_dense() && (*count <= 1 || *stride == *blocklen as isize),
                TypeKind::Hvector {
                    count,
                    blocklen,
                    stride_bytes,
                    child,
                } => {
                    child.ordered_dense()
                        && (*count <= 1 || *stride_bytes == (*blocklen * child.extent()) as i64)
                }
                TypeKind::Indexed { blocks, child } => {
                    child.ordered_dense()
                        && adjacent_ascending(
                            blocks.iter().map(|&(bl, d)| (bl, d as i64)),
                            child.extent() as i64,
                            child.extent() as i64,
                        )
                }
                TypeKind::Hindexed { blocks, child } => {
                    child.ordered_dense()
                        && adjacent_ascending(blocks.iter().copied(), 1, child.extent() as i64)
                }
                TypeKind::Struct { fields } => {
                    let mut cursor: Option<i64> = None;
                    let mut ok = true;
                    for (bl, disp, t) in fields {
                        if *bl == 0 || t.size() == 0 {
                            continue;
                        }
                        if !t.ordered_dense() {
                            ok = false;
                            break;
                        }
                        if let Some(c) = cursor {
                            if *disp + t.lb() != c {
                                ok = false;
                                break;
                            }
                        }
                        cursor = Some(*disp + t.lb() + (*bl * t.extent()) as i64);
                    }
                    ok
                }
            }
        };
        let signature = signature_of(&kind);
        Datatype {
            node: Arc::new(TypeNode {
                kind,
                size,
                lb,
                ub,
                depth,
                ordered_dense,
                signature,
            }),
        }
    }

    /// A basic scalar type.
    pub fn basic(b: BasicType) -> Datatype {
        Datatype::build(TypeKind::Basic(b))
    }

    /// `MPI_BYTE`.
    pub fn byte() -> Datatype {
        Datatype::basic(BasicType::Byte)
    }

    /// `MPI_INT`.
    pub fn int() -> Datatype {
        Datatype::basic(BasicType::Int)
    }

    /// `MPI_DOUBLE`.
    pub fn double() -> Datatype {
        Datatype::basic(BasicType::Double)
    }

    /// `MPI_FLOAT`.
    pub fn float() -> Datatype {
        Datatype::basic(BasicType::Float)
    }

    /// `MPI_Type_contiguous`.
    pub fn contiguous(count: usize, child: &Datatype) -> Datatype {
        Datatype::build(TypeKind::Contiguous {
            count,
            child: child.clone(),
        })
    }

    /// `MPI_Type_vector`: `count` blocks of `blocklen` elements, starts
    /// `stride` elements apart.
    pub fn vector(count: usize, blocklen: usize, stride: isize, child: &Datatype) -> Datatype {
        Datatype::build(TypeKind::Vector {
            count,
            blocklen,
            stride,
            child: child.clone(),
        })
    }

    /// `MPI_Type_hvector`: like [`Datatype::vector`] with a byte stride.
    pub fn hvector(count: usize, blocklen: usize, stride_bytes: i64, child: &Datatype) -> Datatype {
        Datatype::build(TypeKind::Hvector {
            count,
            blocklen,
            stride_bytes,
            child: child.clone(),
        })
    }

    /// `MPI_Type_indexed`: `(blocklen, displacement)` pairs, displacements
    /// in element extents.
    pub fn indexed(blocks: &[(usize, isize)], child: &Datatype) -> Datatype {
        Datatype::build(TypeKind::Indexed {
            blocks: blocks.to_vec(),
            child: child.clone(),
        })
    }

    /// `MPI_Type_hindexed`: like [`Datatype::indexed`] with byte
    /// displacements.
    pub fn hindexed(blocks: &[(usize, i64)], child: &Datatype) -> Datatype {
        Datatype::build(TypeKind::Hindexed {
            blocks: blocks.to_vec(),
            child: child.clone(),
        })
    }

    /// `MPI_Type_struct`: heterogeneous `(blocklen, byte displacement,
    /// type)` fields.
    pub fn structure(fields: &[(usize, i64, Datatype)]) -> Datatype {
        Datatype::build(TypeKind::Struct {
            fields: fields.to_vec(),
        })
    }

    /// Total payload bytes of one instance (`MPI_Type_size`).
    pub fn size(&self) -> usize {
        self.node.size
    }

    /// Lower bound: smallest byte displacement touched.
    pub fn lb(&self) -> i64 {
        self.node.lb
    }

    /// Upper bound: one past the largest byte displacement touched.
    pub fn ub(&self) -> i64 {
        self.node.ub
    }

    /// Extent (`ub - lb`): the stride between consecutive instances in a
    /// `count > 1` send.
    pub fn extent(&self) -> usize {
        (self.node.ub - self.node.lb).max(0) as usize
    }

    /// `ub - lb` for one child instance placed at displacement 0 (used when
    /// computing spans of replicated children).
    fn true_span(&self) -> i64 {
        self.node.ub - self.node.lb
    }

    /// Depth of the constructor tree (the paper's `D` in the
    /// `find_position` complexity bound).
    pub fn depth(&self) -> usize {
        self.node.depth
    }

    /// The constructor of the root node.
    pub fn kind(&self) -> &TypeKind {
        &self.node.kind
    }

    /// True if the data of one instance is a single gap-free block, i.e.
    /// `size == extent` (the fast path every MPI library special-cases).
    pub fn is_contiguous(&self) -> bool {
        self.size() == self.extent()
    }

    /// True if packing one instance is a single ascending `memcpy`
    /// (contiguous coverage *and* ascending pack order). See
    /// [`crate::tree`] for why order matters.
    pub fn ordered_dense(&self) -> bool {
        self.node.ordered_dense
    }

    /// Structural fingerprint of the constructor tree. Two independently
    /// built types with the same constructors and parameters share a
    /// signature; it is the key of the commit-time layout cache. Collisions
    /// are possible in principle (64-bit FNV fold) — the cache revalidates
    /// size/extent on every hit as a cheap sanity check.
    pub fn signature(&self) -> u64 {
        self.node.signature
    }
}

/// One FNV-1a step over a 64-bit word.
fn sig_word(acc: u64, word: u64) -> u64 {
    (acc ^ word).wrapping_mul(0x0000_0100_0000_01b3)
}

/// Fold a structural fingerprint of `kind`: a constructor tag, the
/// constructor's own parameters, and the children's already-computed
/// signatures. Children fold in O(1), so building a depth-`D` tree costs
/// O(total constructor arguments), not O(tree size).
fn signature_of(kind: &TypeKind) -> u64 {
    const BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    match kind {
        TypeKind::Basic(b) => sig_word(sig_word(BASIS, 1), b.size() as u64),
        TypeKind::Contiguous { count, child } => {
            let acc = sig_word(sig_word(BASIS, 2), *count as u64);
            sig_word(acc, child.signature())
        }
        TypeKind::Vector {
            count,
            blocklen,
            stride,
            child,
        } => {
            let mut acc = sig_word(sig_word(BASIS, 3), *count as u64);
            acc = sig_word(acc, *blocklen as u64);
            acc = sig_word(acc, *stride as u64);
            sig_word(acc, child.signature())
        }
        TypeKind::Hvector {
            count,
            blocklen,
            stride_bytes,
            child,
        } => {
            let mut acc = sig_word(sig_word(BASIS, 4), *count as u64);
            acc = sig_word(acc, *blocklen as u64);
            acc = sig_word(acc, *stride_bytes as u64);
            sig_word(acc, child.signature())
        }
        TypeKind::Indexed { blocks, child } => {
            let mut acc = sig_word(sig_word(BASIS, 5), blocks.len() as u64);
            for &(bl, d) in blocks {
                acc = sig_word(sig_word(acc, bl as u64), d as u64);
            }
            sig_word(acc, child.signature())
        }
        TypeKind::Hindexed { blocks, child } => {
            let mut acc = sig_word(sig_word(BASIS, 6), blocks.len() as u64);
            for &(bl, d) in blocks {
                acc = sig_word(sig_word(acc, bl as u64), d as u64);
            }
            sig_word(acc, child.signature())
        }
        TypeKind::Struct { fields } => {
            let mut acc = sig_word(sig_word(BASIS, 7), fields.len() as u64);
            for (bl, disp, t) in fields {
                acc = sig_word(sig_word(acc, *bl as u64), *disp as u64);
                acc = sig_word(acc, t.signature());
            }
            acc
        }
    }
}

/// True if `(blocklen, displacement)` blocks are adjacent in ascending
/// pack order: each block begins where the previous ended.
/// `disp_unit` scales displacements to bytes; `ext` is the child extent in
/// bytes. Zero-length blocks are skipped.
fn adjacent_ascending(
    blocks: impl Iterator<Item = (usize, i64)>,
    disp_unit: i64,
    ext: i64,
) -> bool {
    let mut cursor: Option<i64> = None;
    for (bl, disp) in blocks {
        if bl == 0 {
            continue;
        }
        let start = disp * disp_unit;
        if let Some(c) = cursor {
            if start != c {
                return false;
            }
        }
        cursor = Some(start + bl as i64 * ext);
    }
    true
}

impl fmt::Display for Datatype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind() {
            TypeKind::Basic(b) => write!(f, "{b:?}"),
            TypeKind::Contiguous { count, child } => write!(f, "contig({count}, {child})"),
            TypeKind::Vector {
                count,
                blocklen,
                stride,
                child,
            } => write!(f, "vector({count}, {blocklen}, {stride}, {child})"),
            TypeKind::Hvector {
                count,
                blocklen,
                stride_bytes,
                child,
            } => write!(f, "hvector({count}, {blocklen}, {stride_bytes}B, {child})"),
            TypeKind::Indexed { blocks, child } => {
                write!(f, "indexed({} blocks, {child})", blocks.len())
            }
            TypeKind::Hindexed { blocks, child } => {
                write!(f, "hindexed({} blocks, {child})", blocks.len())
            }
            TypeKind::Struct { fields } => write!(f, "struct({} fields)", fields.len()),
        }
    }
}

/// Compute `(size, lb, ub, depth)` of a type made of `(blocklen, byte
/// displacement)` blocks of `child`.
fn span_of_blocks(
    child: &Datatype,
    blocks: impl Iterator<Item = (usize, i64)>,
) -> (usize, i64, i64, usize) {
    let mut size = 0usize;
    let mut lb = i64::MAX;
    let mut ub = i64::MIN;
    let ext = child.extent() as i64;
    for (bl, disp) in blocks {
        size += child.size() * bl;
        if bl > 0 {
            lb = lb.min(disp + child.lb());
            ub = ub.max(disp + child.lb() + ext * (bl as i64 - 1) + child.true_span());
        }
    }
    if lb == i64::MAX {
        lb = 0;
        ub = 0;
    }
    (size, lb, ub, child.depth() + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_sizes() {
        assert_eq!(Datatype::byte().size(), 1);
        assert_eq!(Datatype::int().size(), 4);
        assert_eq!(Datatype::double().size(), 8);
        assert_eq!(Datatype::double().extent(), 8);
        assert!(Datatype::double().is_contiguous());
    }

    #[test]
    fn contiguous_type() {
        let t = Datatype::contiguous(10, &Datatype::double());
        assert_eq!(t.size(), 80);
        assert_eq!(t.extent(), 80);
        assert!(t.is_contiguous());
        assert_eq!(t.depth(), 2);
    }

    #[test]
    fn vector_with_gaps() {
        // The paper's noncontig benchmark type: blocks of doubles, stride
        // twice the blocksize.
        let t = Datatype::vector(4, 2, 4, &Datatype::double());
        assert_eq!(t.size(), 4 * 2 * 8);
        // Last block starts at 3*4*8 = 96, covers 16 → ub 112.
        assert_eq!(t.extent(), 112);
        assert!(!t.is_contiguous());
    }

    #[test]
    fn vector_with_unit_stride_is_contiguous() {
        let t = Datatype::vector(4, 1, 1, &Datatype::int());
        assert_eq!(t.size(), 16);
        assert_eq!(t.extent(), 16);
        assert!(t.is_contiguous());
    }

    #[test]
    fn hvector_byte_stride() {
        let t = Datatype::hvector(3, 1, 10, &Datatype::int());
        assert_eq!(t.size(), 12);
        assert_eq!(t.extent(), 24); // 2*10 + 4
    }

    #[test]
    fn indexed_blocks() {
        let t = Datatype::indexed(&[(2, 0), (1, 5)], &Datatype::int());
        assert_eq!(t.size(), 12);
        assert_eq!(t.extent(), 24); // block at elem 5: bytes 20..24
    }

    #[test]
    fn hindexed_with_negative_disp() {
        let t = Datatype::hindexed(&[(1, -8), (1, 8)], &Datatype::double());
        assert_eq!(t.size(), 16);
        assert_eq!(t.lb(), -8);
        assert_eq!(t.ub(), 16);
        assert_eq!(t.extent(), 24);
    }

    #[test]
    fn struct_of_int_and_chars() {
        // The paper's Figure 3 struct: int at 0, char[3] at 4, two bytes
        // of gap (extent padded via an explicit byte span would need
        // lb/ub markers; we model the natural span).
        let chars = Datatype::contiguous(3, &Datatype::byte());
        let t = Datatype::structure(&[(1, 0, Datatype::int()), (1, 4, chars)]);
        assert_eq!(t.size(), 7);
        assert_eq!(t.extent(), 7);
    }

    #[test]
    fn vector_of_structs() {
        // Figure 3: a vector of the struct, with gaps between elements.
        let chars = Datatype::contiguous(3, &Datatype::byte());
        let s = Datatype::structure(&[(1, 0, Datatype::int()), (1, 4, chars)]);
        let v = Datatype::hvector(4, 1, 16, &s); // 16-byte stride: 9-byte gap
        assert_eq!(v.size(), 28);
        assert_eq!(v.extent(), 3 * 16 + 7);
        assert_eq!(v.depth(), s.depth() + 1);
    }

    #[test]
    fn zero_count_types_are_empty() {
        let t = Datatype::contiguous(0, &Datatype::double());
        assert_eq!(t.size(), 0);
        assert_eq!(t.extent(), 0);
        let v = Datatype::vector(0, 3, 5, &Datatype::int());
        assert_eq!(v.size(), 0);
        assert_eq!(v.extent(), 0);
        let s = Datatype::structure(&[]);
        assert_eq!(s.size(), 0);
    }

    #[test]
    fn zero_blocklen_blocks_ignored_in_span() {
        let t = Datatype::indexed(&[(0, 100), (1, 0)], &Datatype::int());
        assert_eq!(t.size(), 4);
        assert_eq!(t.extent(), 4);
    }

    #[test]
    fn nested_vector_extent() {
        let inner = Datatype::vector(2, 1, 2, &Datatype::int()); // 4B data, 12B span
        assert_eq!(inner.extent(), 12);
        let outer = Datatype::vector(2, 1, 2, &inner); // stride = 2*12
        assert_eq!(outer.size(), 16);
        assert_eq!(outer.extent(), 24 + 12);
    }

    #[test]
    fn display_is_readable() {
        let t = Datatype::vector(4, 2, 4, &Datatype::double());
        assert_eq!(format!("{t}"), "vector(4, 2, 4, Double)");
    }

    #[test]
    fn clone_shares_node() {
        let t = Datatype::contiguous(4, &Datatype::int());
        let u = t.clone();
        assert!(Arc::ptr_eq(&t.node, &u.node));
    }

    #[test]
    fn ordered_dense_basics() {
        assert!(Datatype::double().ordered_dense());
        assert!(Datatype::contiguous(5, &Datatype::int()).ordered_dense());
        assert!(Datatype::vector(3, 2, 2, &Datatype::int()).ordered_dense());
        assert!(!Datatype::vector(3, 2, 4, &Datatype::int()).ordered_dense());
    }

    #[test]
    fn descending_adjacent_blocks_are_contiguous_but_not_ordered() {
        // Coverage is bytes 0..8 with no gap, but pack order is 4..8
        // then 0..4 — one memcpy would scramble the payload.
        let t = Datatype::indexed(&[(1, 1), (1, 0)], &Datatype::int());
        assert!(t.is_contiguous());
        assert!(!t.ordered_dense());
    }

    #[test]
    fn signatures_are_structural() {
        // Independently built but structurally identical trees share a
        // signature — that is what makes the layout cache hit across
        // separate `commit` calls.
        let a = Datatype::vector(16, 2, 4, &Datatype::double());
        let b = Datatype::vector(16, 2, 4, &Datatype::double());
        assert!(!Arc::ptr_eq(&a.node, &b.node));
        assert_eq!(a.signature(), b.signature());

        // Any parameter change moves the signature.
        assert_ne!(
            a.signature(),
            Datatype::vector(16, 2, 5, &Datatype::double()).signature()
        );
        assert_ne!(
            a.signature(),
            Datatype::vector(16, 2, 4, &Datatype::float()).signature()
        );
        // Different constructors with the same span differ too.
        assert_ne!(
            Datatype::indexed(&[(2, 0)], &Datatype::int()).signature(),
            Datatype::hindexed(&[(2, 0)], &Datatype::int()).signature()
        );
    }

    #[test]
    fn signature_distinguishes_nesting() {
        let inner = Datatype::vector(2, 1, 2, &Datatype::int());
        let nested = Datatype::vector(3, 1, 2, &inner);
        let flat = Datatype::vector(3, 1, 2, &Datatype::int());
        assert_ne!(nested.signature(), flat.signature());
        // Struct field order matters (pack order differs).
        let s1 = Datatype::structure(&[(1, 0, Datatype::int()), (1, 8, Datatype::double())]);
        let s2 = Datatype::structure(&[(1, 8, Datatype::double()), (1, 0, Datatype::int())]);
        assert_ne!(s1.signature(), s2.signature());
    }

    #[test]
    fn adjacent_struct_is_ordered_dense() {
        let t = Datatype::structure(&[(1, 0, Datatype::int()), (4, 4, Datatype::byte())]);
        assert!(t.ordered_dense());
        let gapped = Datatype::structure(&[(1, 0, Datatype::int()), (4, 8, Datatype::byte())]);
        assert!(!gapped.ordered_dense());
    }
}
