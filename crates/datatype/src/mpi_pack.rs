//! `MPI_Pack` / `MPI_Unpack` — the user-facing explicit packing API.
//!
//! Technique 2 of the paper's §3 list: applications can pack
//! non-contiguous data themselves and send the contiguous result. The
//! library's own engines (and the paper's point that letting the library
//! choose — technique 3 — is better) are in [`crate::tree`] and
//! [`crate::ff`]; this module provides the standard position-cursor
//! interface on committed types, implemented on the `direct_pack_ff`
//! machinery.

use crate::ff::{self, SliceSource, VecSink};
use crate::flat::Committed;
use core::fmt;

/// Packing/unpacking errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PackError {
    /// The output buffer cannot hold the packed representation.
    OutputTooSmall {
        /// Bytes needed beyond `position`.
        needed: usize,
        /// Bytes available beyond `position`.
        available: usize,
    },
    /// The input buffer ended before `count` instances were unpacked.
    InputExhausted {
        /// Bytes needed beyond `position`.
        needed: usize,
        /// Bytes available beyond `position`.
        available: usize,
    },
}

impl fmt::Display for PackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackError::OutputTooSmall { needed, available } => write!(
                f,
                "pack buffer too small: need {needed} bytes, have {available}"
            ),
            PackError::InputExhausted { needed, available } => write!(
                f,
                "unpack input exhausted: need {needed} bytes, have {available}"
            ),
        }
    }
}

impl std::error::Error for PackError {}

impl Committed {
    /// Bytes `count` instances occupy in packed form (`MPI_Pack_size`).
    pub fn pack_size(&self, count: usize) -> usize {
        self.size() * count
    }

    /// `MPI_Pack`: append the packed bytes of `count` instances read from
    /// `inbuf` (displacement 0 at `origin`) into `outbuf` at `*position`,
    /// advancing the cursor.
    pub fn pack(
        &self,
        inbuf: &[u8],
        origin: usize,
        count: usize,
        outbuf: &mut [u8],
        position: &mut usize,
    ) -> Result<(), PackError> {
        let needed = self.pack_size(count);
        let available = outbuf.len().saturating_sub(*position);
        if needed > available {
            return Err(PackError::OutputTooSmall { needed, available });
        }
        let mut sink = VecSink::default();
        ff::pack_ff(self, count, inbuf, origin, 0, usize::MAX, &mut sink)
            .expect("VecSink is infallible");
        outbuf[*position..*position + needed].copy_from_slice(&sink.data);
        *position += needed;
        Ok(())
    }

    /// `MPI_Unpack`: read the packed bytes of `count` instances from
    /// `inbuf` at `*position` into `outbuf` (displacement 0 at `origin`),
    /// advancing the cursor.
    pub fn unpack(
        &self,
        inbuf: &[u8],
        position: &mut usize,
        outbuf: &mut [u8],
        origin: usize,
        count: usize,
    ) -> Result<(), PackError> {
        let needed = self.pack_size(count);
        let available = inbuf.len().saturating_sub(*position);
        if needed > available {
            return Err(PackError::InputExhausted { needed, available });
        }
        let mut source = SliceSource::new(&inbuf[*position..*position + needed]);
        ff::unpack_ff(self, count, outbuf, origin, 0, usize::MAX, &mut source)
            .expect("SliceSource is infallible");
        *position += needed;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Datatype;

    fn committed() -> Committed {
        Committed::commit(&Datatype::vector(6, 2, 4, &Datatype::double()))
    }

    #[test]
    fn pack_unpack_with_cursor() {
        let c = committed();
        let src: Vec<u8> = (0..c.extent()).map(|i| i as u8).collect();
        let mut buf = vec![0u8; c.pack_size(1) + 32];
        let mut pos = 8; // pre-existing header
        c.pack(&src, 0, 1, &mut buf, &mut pos).unwrap();
        assert_eq!(pos, 8 + c.pack_size(1));

        let mut dst = vec![0u8; c.extent()];
        let mut rpos = 8;
        c.unpack(&buf, &mut rpos, &mut dst, 0, 1).unwrap();
        assert_eq!(rpos, pos);

        // Data bytes round-tripped.
        let mut generic = Vec::new();
        crate::tree::pack(c.datatype(), 1, &dst, 0, &mut generic);
        let mut expect = Vec::new();
        crate::tree::pack(c.datatype(), 1, &src, 0, &mut expect);
        assert_eq!(generic, expect);
    }

    #[test]
    fn multiple_types_share_one_buffer() {
        // The classic MPI_Pack use: heterogeneous items in one message.
        let a = Committed::commit(&Datatype::int());
        let b = committed();
        let ints: Vec<u8> = vec![1, 2, 3, 4];
        let vecs: Vec<u8> = (0..b.extent()).map(|i| (i * 3) as u8).collect();

        let mut buf = vec![0u8; a.pack_size(1) + b.pack_size(1)];
        let mut pos = 0;
        a.pack(&ints, 0, 1, &mut buf, &mut pos).unwrap();
        b.pack(&vecs, 0, 1, &mut buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());

        let mut pos = 0;
        let mut out_i = vec![0u8; 4];
        let mut out_v = vec![0u8; b.extent()];
        a.unpack(&buf, &mut pos, &mut out_i, 0, 1).unwrap();
        b.unpack(&buf, &mut pos, &mut out_v, 0, 1).unwrap();
        assert_eq!(out_i, ints);
    }

    #[test]
    fn errors_report_sizes() {
        let c = committed();
        let src = vec![0u8; c.extent()];
        let mut small = vec![0u8; 10];
        let mut pos = 0;
        let err = c.pack(&src, 0, 1, &mut small, &mut pos).unwrap_err();
        assert_eq!(
            err,
            PackError::OutputTooSmall {
                needed: c.pack_size(1),
                available: 10
            }
        );
        assert_eq!(pos, 0, "cursor must not move on failure");

        let mut dst = vec![0u8; c.extent()];
        let mut pos = 5;
        let err = c.unpack(&small, &mut pos, &mut dst, 0, 1).unwrap_err();
        assert!(matches!(
            err,
            PackError::InputExhausted { available: 5, .. }
        ));
    }

    #[test]
    fn pack_size_counts_instances() {
        let c = committed();
        assert_eq!(c.pack_size(0), 0);
        assert_eq!(c.pack_size(3), 3 * c.size());
    }
}
