//! Byte-view helpers for typed user buffers.
//!
//! MPI programs describe typed arrays (`f64` grids, `i32` index lists) that
//! the library moves as bytes. These helpers give safe little-endian
//! byte views for the element types the examples and benchmarks use,
//! without pulling in a bytemuck-style dependency.

/// Element types that can be viewed as plain bytes.
pub trait Element: Copy {
    /// Bytes per element.
    const SIZE: usize;
    /// Write the element's little-endian bytes into `out`.
    fn write_le(&self, out: &mut [u8]);
    /// Read an element from little-endian bytes.
    fn read_le(input: &[u8]) -> Self;
}

macro_rules! impl_element {
    ($($t:ty),*) => {$(
        impl Element for $t {
            const SIZE: usize = core::mem::size_of::<$t>();
            #[inline]
            fn write_le(&self, out: &mut [u8]) {
                out[..Self::SIZE].copy_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn read_le(input: &[u8]) -> Self {
                let mut b = [0u8; core::mem::size_of::<$t>()];
                b.copy_from_slice(&input[..Self::SIZE]);
                <$t>::from_le_bytes(b)
            }
        }
    )*};
}

impl_element!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

/// Serialise a slice of elements to a byte vector.
pub fn to_bytes<T: Element>(slice: &[T]) -> Vec<u8> {
    let mut out = vec![0u8; slice.len() * T::SIZE];
    for (i, v) in slice.iter().enumerate() {
        v.write_le(&mut out[i * T::SIZE..(i + 1) * T::SIZE]);
    }
    out
}

/// Deserialise a byte slice into elements (panics if the length is not a
/// multiple of the element size).
pub fn from_bytes<T: Element>(bytes: &[u8]) -> Vec<T> {
    assert!(
        bytes.len().is_multiple_of(T::SIZE),
        "byte length {} not a multiple of element size {}",
        bytes.len(),
        T::SIZE
    );
    bytes.chunks_exact(T::SIZE).map(|c| T::read_le(c)).collect()
}

/// Read one element at byte offset `at`.
pub fn read_at<T: Element>(bytes: &[u8], at: usize) -> T {
    T::read_le(&bytes[at..at + T::SIZE])
}

/// Write one element at byte offset `at`.
pub fn write_at<T: Element>(bytes: &mut [u8], at: usize, v: T) {
    v.write_le(&mut bytes[at..at + T::SIZE]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_f64() {
        let data = [1.5f64, -2.25, 1e300, 0.0];
        let bytes = to_bytes(&data);
        assert_eq!(bytes.len(), 32);
        let back: Vec<f64> = from_bytes(&bytes);
        assert_eq!(back, data);
    }

    #[test]
    fn roundtrip_mixed_ints() {
        let a = [i32::MIN, -1, 0, i32::MAX];
        assert_eq!(from_bytes::<i32>(&to_bytes(&a)), a);
        let b = [u16::MAX, 0, 1234];
        assert_eq!(from_bytes::<u16>(&to_bytes(&b)), b);
    }

    #[test]
    fn point_access() {
        let mut buf = vec![0u8; 64];
        write_at(&mut buf, 8, 3.75f64);
        write_at(&mut buf, 0, 42i32);
        assert_eq!(read_at::<f64>(&buf, 8), 3.75);
        assert_eq!(read_at::<i32>(&buf, 0), 42);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn misaligned_from_bytes_panics() {
        let _ = from_bytes::<f64>(&[0u8; 12]);
    }
}
