//! Subarray datatype construction (`MPI_Type_create_subarray`).
//!
//! The ocean-model decomposition of the paper's Figure 2 describes its
//! boundary exchanges most naturally as subarrays of the local grid:
//! an n-dimensional array with a smaller n-dimensional window into it.
//! This module builds the equivalent nested vector/hvector tree, which
//! then flattens through the ordinary commit path — a 2-D boundary plane
//! of a 3-D grid becomes exactly the "double-strided data" of Figure 2.

use crate::types::Datatype;

/// Memory order of array dimensions.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ArrayOrder {
    /// C order: the *last* dimension is contiguous in memory.
    #[default]
    C,
    /// Fortran order: the *first* dimension is contiguous.
    Fortran,
}

/// Build a datatype describing the `sub`-shaped window at `start` inside
/// a `shape`-d array of `elem` elements (`MPI_Type_create_subarray`).
///
/// All slices must have the same length (the number of dimensions, ≥ 1);
/// the window must fit inside the array. The resulting type's extent
/// always spans the **whole array**, so consecutive counts index whole
/// arrays, exactly like the MPI constructor.
///
/// # Panics
///
/// Panics if the dimensions are inconsistent or the window does not fit.
pub fn subarray(
    shape: &[usize],
    sub: &[usize],
    start: &[usize],
    order: ArrayOrder,
    elem: &Datatype,
) -> Datatype {
    assert!(!shape.is_empty(), "subarray needs at least one dimension");
    assert_eq!(shape.len(), sub.len(), "shape/sub dimension mismatch");
    assert_eq!(shape.len(), start.len(), "shape/start dimension mismatch");
    for d in 0..shape.len() {
        assert!(
            start[d] + sub[d] <= shape[d] && sub[d] > 0,
            "window [{}, {}) does not fit dimension {d} of size {}",
            start[d],
            start[d] + sub[d],
            shape[d]
        );
    }
    // Normalise to C order: dims[0] slowest ... dims[n-1] contiguous.
    let (shape_c, sub_c, start_c): (Vec<usize>, Vec<usize>, Vec<usize>) = match order {
        ArrayOrder::C => (shape.to_vec(), sub.to_vec(), start.to_vec()),
        ArrayOrder::Fortran => (
            shape.iter().rev().copied().collect(),
            sub.iter().rev().copied().collect(),
            start.iter().rev().copied().collect(),
        ),
    };
    let esize = elem.extent() as i64;
    let ndims = shape_c.len();

    // Row strides in elements, innermost dimension first.
    let mut stride = vec![1i64; ndims];
    for d in (0..ndims.saturating_sub(1)).rev() {
        stride[d] = stride[d + 1] * shape_c[d + 1] as i64;
    }

    // Innermost dimension: a contiguous run of elements.
    let mut t = Datatype::contiguous(sub_c[ndims - 1], elem);
    // Wrap outward: each dimension replicates with the row stride.
    for d in (0..ndims.saturating_sub(1)).rev() {
        t = Datatype::hvector(sub_c[d], 1, stride[d] * esize, &t);
    }
    // Place at the start offset, and pad the extent to the full array via
    // an hindexed envelope: one block at the start displacement plus
    // explicit lb/ub through a struct with zero-length markers.
    let start_disp: i64 = (0..ndims)
        .map(|d| start_c[d] as i64 * stride[d] * esize)
        .sum();
    let total: i64 = shape_c.iter().product::<usize>() as i64 * esize;
    // A struct of [data at start_disp, empty marker at 0, empty marker at
    // total] pins lb = 0 and ub = total (the MPI_LB/MPI_UB idiom).
    let marker = Datatype::contiguous(0, &Datatype::byte());
    Datatype::structure(&[
        (1, start_disp, t),
        (1, 0, marker.clone()),
        (1, total, marker),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree;

    fn segments(dt: &Datatype) -> Vec<(i64, usize)> {
        let mut v = Vec::new();
        tree::for_each_segment(dt, 1, |d, l| {
            v.push((d, l));
            core::ops::ControlFlow::Continue(())
        });
        v
    }

    #[test]
    fn one_dimensional_window() {
        // 10 doubles, window of 3 starting at 4.
        let t = subarray(&[10], &[3], &[4], ArrayOrder::C, &Datatype::double());
        assert_eq!(t.size(), 24);
        assert_eq!(segments(&t), vec![(32, 24)]);
    }

    #[test]
    fn extent_spans_whole_array() {
        let t = subarray(&[10], &[3], &[4], ArrayOrder::C, &Datatype::double());
        // lb 0, ub 80: consecutive counts step whole arrays.
        assert_eq!(t.lb(), 0);
        assert_eq!(t.ub(), 80);
        assert_eq!(t.extent(), 80);
    }

    #[test]
    fn two_dimensional_interior() {
        // 4x6 ints, 2x3 window at (1,2): rows 1..3, cols 2..5.
        let t = subarray(&[4, 6], &[2, 3], &[1, 2], ArrayOrder::C, &Datatype::int());
        assert_eq!(t.size(), 2 * 3 * 4);
        let segs = segments(&t);
        // Two rows of 12 bytes at (1*6+2)*4 = 32 and (2*6+2)*4 = 56.
        assert_eq!(segs, vec![(32, 12), (56, 12)]);
        assert_eq!(t.extent(), 4 * 6 * 4);
    }

    #[test]
    fn fortran_order_swaps_contiguity() {
        // Same logical window; in Fortran order the FIRST dim is
        // contiguous.
        let c = subarray(&[4, 6], &[2, 3], &[1, 2], ArrayOrder::C, &Datatype::int());
        let f = subarray(
            &[6, 4],
            &[3, 2],
            &[2, 1],
            ArrayOrder::Fortran,
            &Datatype::int(),
        );
        assert_eq!(segments(&c), segments(&f));
    }

    #[test]
    fn three_dimensional_plane_is_double_strided() {
        // The paper's Figure 2: a 3-D grid (z, y, x) C-ordered; the
        // north boundary plane (all z, one y, all x) is singly strided;
        // the east boundary (all z, all y, one x) is double-strided.
        let (nz, ny, nx) = (3usize, 4usize, 5usize);
        let north = subarray(
            &[nz, ny, nx],
            &[nz, 1, nx],
            &[0, 0, 0],
            ArrayOrder::C,
            &Datatype::double(),
        );
        let segs = segments(&north);
        assert_eq!(segs.len(), nz); // one row per level
        assert_eq!(segs[0], (0, nx * 8));
        assert_eq!(segs[1].0, (ny * nx * 8) as i64);

        let east = subarray(
            &[nz, ny, nx],
            &[nz, ny, 1],
            &[0, 0, nx - 1],
            ArrayOrder::C,
            &Datatype::double(),
        );
        let segs = segments(&east);
        assert_eq!(segs.len(), nz * ny); // one element per row per level
        assert!(segs.iter().all(|&(_, l)| l == 8));
    }

    #[test]
    fn full_window_is_contiguous() {
        let t = subarray(&[8, 8], &[8, 8], &[0, 0], ArrayOrder::C, &Datatype::byte());
        assert_eq!(segments(&t), vec![(0, 64)]);
        assert!(t.size() == t.extent());
    }

    #[test]
    fn pack_roundtrip_through_commit() {
        use crate::{ff, Committed};
        let t = subarray(&[6, 6], &[3, 2], &[2, 1], ArrayOrder::C, &Datatype::int());
        let c = Committed::commit(&t);
        assert!(crate::flat::expansion_matches_tree(&c, 2));
        let src: Vec<u8> = (0..t.extent() * 2).map(|i| i as u8).collect();
        let mut sink = ff::VecSink::default();
        ff::pack_ff(&c, 2, &src, 0, 0, usize::MAX, &mut sink).unwrap();
        let mut generic = Vec::new();
        tree::pack(&t, 2, &src, 0, &mut generic);
        assert_eq!(sink.data, generic);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_window_panics() {
        let _ = subarray(&[4], &[3], &[2], ArrayOrder::C, &Datatype::int());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dims_panic() {
        let _ = subarray(&[4, 4], &[2], &[0, 0], ArrayOrder::C, &Datatype::int());
    }
}
