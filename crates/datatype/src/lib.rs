//! # mpi-datatype — MPI derived datatypes and `direct_pack_ff`
//!
//! The first contribution of the reproduced paper is an efficient engine
//! for communicating **non-contiguous data** described by MPI derived
//! datatypes (§3). This crate implements:
//!
//! * the datatype constructors and their size/extent semantics
//!   ([`types`]);
//! * the *generic* pack/unpack path — a recursive tree traversal exactly
//!   like stock MPICH's, including its per-block overhead accounting
//!   ([`tree`]);
//! * the **committed flattened representation** — a list of basic-block
//!   leaves, each with a repeat-pattern stack, merged and optimised at
//!   commit time ([`flat`]);
//! * **`direct_pack_ff`** — flattening-on-the-fly packing through a
//!   pluggable [`ff::PackSink`], so the same loop packs into a local
//!   buffer *or streams straight into remote SCI memory*, eliminating the
//!   intermediate copies of the generic path ([`ff`]).
//!
//! ```
//! use mpi_datatype::{Datatype, Committed, ff};
//!
//! // The paper's noncontig benchmark type: strided vector of doubles,
//! // gap as large as the block.
//! let dt = Datatype::vector(16, 2, 4, &Datatype::double());
//! let committed = Committed::commit(&dt);
//! assert_eq!(committed.leaves().len(), 1);     // one leaf ...
//! assert_eq!(committed.blocks_per_instance(), 16); // ... 16 blocks
//!
//! let src: Vec<u8> = (0..dt.extent()).map(|i| i as u8).collect();
//! let mut sink = ff::VecSink::default();
//! ff::pack_ff(&committed, 1, &src, 0, 0, usize::MAX, &mut sink).unwrap();
//! assert_eq!(sink.data.len(), dt.size());
//! ```

pub mod ff;
pub mod flat;
pub mod mpi_pack;
pub mod subarray;
pub mod tree;
pub mod typed;
pub mod types;

pub use ff::{pack_ff, unpack_ff, PackSink, SliceSource, UnpackSource, VecSink};
pub use flat::{layout_cache, Committed, FfPosition, FlatLeaf, LayoutDensity, StackLevel};
pub use subarray::{subarray, ArrayOrder};
pub use tree::{pack, pack_range, unpack, unpack_range, PackStats};
pub use types::{BasicType, Datatype, TypeKind};
