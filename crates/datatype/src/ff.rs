//! `direct_pack_ff` — flattening-on-the-fly packing (paper §3.3).
//!
//! The committed leaf list ([`crate::flat::Committed`]) drives two nested
//! loops with only simple array (stack) operations per basic block,
//! replacing the generic engine's recursive tree traversal. Because the
//! consumer is an abstract [`PackSink`], the very same loop packs
//!
//! * into a local buffer (classic packing, [`VecSink`]), or
//! * **directly into remote SCI memory** through a `PioStream`-backed sink
//!   (implemented in the `scimpi` crate), which eliminates both local copy
//!   operations of the generic path — the paper's headline optimisation
//!   (Figure 4, bottom).
//!
//! The algorithm supports packing any byte range `[skip, skip+max)` of the
//! stream — the "split blocks" handling of Figure 6: `find_position`
//! locates the resume point in O(N)+O(D), then `copy_leaf_basic` emits
//! whole blocks (partial at the boundaries).

use crate::flat::{Committed, FfPosition};
use crate::tree::PackStats;
use core::convert::Infallible;
use core::ops::ControlFlow;

/// Destination of a pack stream. `put` is called once per (possibly
/// partial) basic block, in stream order.
pub trait PackSink {
    /// Error the sink can raise (e.g. a remote write failure).
    type Error;
    /// Consume the next `src.len()` bytes of the stream.
    fn put(&mut self, src: &[u8]) -> Result<(), Self::Error>;
}

/// Source of an unpack stream. `take` is called once per (possibly
/// partial) basic block, in stream order.
pub trait UnpackSource {
    /// Error the source can raise.
    type Error;
    /// Fill `dst` with the next `dst.len()` bytes of the stream.
    fn take(&mut self, dst: &mut [u8]) -> Result<(), Self::Error>;
}

/// A sink appending to a `Vec<u8>` (local packing).
#[derive(Debug, Default)]
pub struct VecSink {
    /// The packed bytes.
    pub data: Vec<u8>,
}

impl PackSink for VecSink {
    type Error = Infallible;
    #[inline]
    fn put(&mut self, src: &[u8]) -> Result<(), Infallible> {
        self.data.extend_from_slice(src);
        Ok(())
    }
}

/// A source reading from a byte slice (local unpacking).
#[derive(Debug)]
pub struct SliceSource<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> SliceSource<'a> {
    /// Read from `data`.
    pub fn new(data: &'a [u8]) -> Self {
        SliceSource { data, pos: 0 }
    }

    /// Bytes consumed so far.
    pub fn consumed(&self) -> usize {
        self.pos
    }
}

impl UnpackSource for SliceSource<'_> {
    type Error = Infallible;
    #[inline]
    fn take(&mut self, dst: &mut [u8]) -> Result<(), Infallible> {
        let end = self.pos + dst.len();
        assert!(end <= self.data.len(), "unpack source exhausted");
        dst.copy_from_slice(&self.data[self.pos..end]);
        self.pos = end;
        Ok(())
    }
}

/// Drive `f(disp, len)` over every (possibly partial) basic block of the
/// byte range `[skip, skip + max)` of the pack stream of `count` instances.
/// Displacements are relative to the buffer origin. This is the core loop
/// of Figure 6; [`pack_ff`] and [`unpack_ff`] are thin wrappers.
pub fn for_each_block(
    c: &Committed,
    count: usize,
    skip: usize,
    max: usize,
    mut f: impl FnMut(i64, usize) -> ControlFlow<()>,
) -> PackStats {
    let mut stats = PackStats::default();
    if max == 0 {
        return stats;
    }
    // find initial position for partial sends (paper Figure 6).
    let Some(pos) = c.find_position(skip, count) else {
        return stats;
    };
    let FfPosition {
        instance: j0,
        leaf: k0,
        indices: start_indices,
        intra: intra0,
    } = pos;
    let ext = c.extent() as i64;
    let mut remaining = max;
    let mut first_block = true;

    'outer: for j in j0..count {
        let leaf_start = if j == j0 { k0 } else { 0 };
        for (k, leaf) in c.leaves().iter().enumerate().skip(leaf_start) {
            if j != j0 || k != k0 {
                first_block = false;
            }
            let depth = leaf.stack.len();
            let mut idx: Vec<usize> = if first_block {
                start_indices.clone()
            } else {
                vec![0; depth]
            };
            let mut intra = if first_block { intra0 } else { 0 };
            first_block = false;
            // Odometer over the repeat-pattern stack (copy_leaf_basic).
            loop {
                let mut disp = leaf.first + j as i64 * ext;
                for (i, level) in leaf.stack.iter().enumerate() {
                    disp += idx[i] as i64 * level.extent;
                }
                let avail = leaf.len - intra;
                let take = avail.min(remaining);
                if take > 0 {
                    stats.bytes += take;
                    stats.blocks += 1;
                    stats.visits += 1;
                    if f(disp + intra as i64, take).is_break() {
                        break 'outer;
                    }
                    remaining -= take;
                }
                if remaining == 0 {
                    break 'outer;
                }
                intra = 0;
                // Advance the odometer (innermost level fastest).
                let mut level = depth;
                loop {
                    if level == 0 {
                        break;
                    }
                    level -= 1;
                    idx[level] += 1;
                    if idx[level] < leaf.stack[level].count {
                        break;
                    }
                    idx[level] = 0;
                    if level == 0 {
                        level = usize::MAX; // signal exhaustion
                        break;
                    }
                }
                if depth == 0 || level == usize::MAX {
                    break; // leaf exhausted
                }
            }
        }
    }
    stats
}

/// Pack `[skip, skip+max)` of the stream of `count` instances of `c` from
/// `src` (displacement 0 at byte `origin`) into `sink`.
pub fn pack_ff<S: PackSink>(
    c: &Committed,
    count: usize,
    src: &[u8],
    origin: usize,
    skip: usize,
    max: usize,
    sink: &mut S,
) -> Result<PackStats, S::Error> {
    obs::inc(obs::Counter::FfPackCalls);
    if skip > 0 {
        obs::inc(obs::Counter::FfPartialResumes);
    }
    let mut err = None;
    let stats = for_each_block(c, count, skip, max, |disp, len| {
        let start = origin as i64 + disp;
        assert!(
            start >= 0 && (start as usize) + len <= src.len(),
            "ff segment [{start}, {}) outside buffer of {} bytes",
            start + len as i64,
            src.len()
        );
        let at = start as usize;
        match sink.put(&src[at..at + len]) {
            Ok(()) => ControlFlow::Continue(()),
            Err(e) => {
                err = Some(e);
                ControlFlow::Break(())
            }
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(stats),
    }
}

/// Unpack `[skip, skip+max)` of the stream into `count` instances of `c`
/// in `dst` — the receive side uses the same loop with the copy direction
/// swapped (paper §3.3.2).
pub fn unpack_ff<S: UnpackSource>(
    c: &Committed,
    count: usize,
    dst: &mut [u8],
    origin: usize,
    skip: usize,
    max: usize,
    source: &mut S,
) -> Result<PackStats, S::Error> {
    obs::inc(obs::Counter::FfPackCalls);
    if skip > 0 {
        obs::inc(obs::Counter::FfPartialResumes);
    }
    let mut err = None;
    let stats = for_each_block(c, count, skip, max, |disp, len| {
        let start = origin as i64 + disp;
        assert!(
            start >= 0 && (start as usize) + len <= dst.len(),
            "ff segment [{start}, {}) outside buffer of {} bytes",
            start + len as i64,
            dst.len()
        );
        let at = start as usize;
        match source.take(&mut dst[at..at + len]) {
            Ok(()) => ControlFlow::Continue(()),
            Err(e) => {
                err = Some(e);
                ControlFlow::Break(())
            }
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(stats),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree;
    use crate::types::Datatype;

    fn commit(dt: &Datatype) -> Committed {
        Committed::commit(dt)
    }

    fn buffer_for(dt: &Datatype, count: usize) -> Vec<u8> {
        (0..dt.extent() * count)
            .map(|i| (i * 13 + 7) as u8)
            .collect()
    }

    fn generic_pack(dt: &Datatype, count: usize, src: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        tree::pack(dt, count, src, 0, &mut out);
        out
    }

    #[test]
    fn full_pack_matches_generic() {
        let chars = Datatype::contiguous(3, &Datatype::byte());
        let s = Datatype::structure(&[(1, 0, Datatype::int()), (1, 4, chars)]);
        let cases = [
            Datatype::vector(16, 2, 4, &Datatype::double()),
            Datatype::hvector(4, 1, 16, &s),
            Datatype::indexed(&[(2, 0), (1, 7), (3, 12)], &Datatype::int()),
            Datatype::structure(&[
                (2, 0, Datatype::int()),
                (1, 16, Datatype::vector(3, 1, 2, &Datatype::double())),
            ]),
        ];
        for dt in &cases {
            for count in [1usize, 2, 5] {
                let src = buffer_for(dt, count);
                let c = commit(dt);
                let mut sink = VecSink::default();
                let stats = pack_ff(&c, count, &src, 0, 0, usize::MAX, &mut sink).unwrap();
                assert_eq!(stats.bytes, dt.size() * count);
                assert_eq!(
                    sink.data,
                    generic_pack(dt, count, &src),
                    "type {dt} count {count}"
                );
            }
        }
    }

    #[test]
    fn partial_packs_reassemble_for_every_chunk_size() {
        let dt = Datatype::vector(6, 3, 5, &Datatype::int());
        let count = 3;
        let src = buffer_for(&dt, count);
        let c = commit(&dt);
        let whole = generic_pack(&dt, count, &src);
        for chunk in [1usize, 2, 3, 5, 7, 11, 16, 64, 1000] {
            let mut pieced = Vec::new();
            let mut skip = 0;
            while skip < whole.len() {
                let mut sink = VecSink::default();
                pack_ff(&c, count, &src, 0, skip, chunk, &mut sink).unwrap();
                assert!(sink.data.len() <= chunk);
                assert!(!sink.data.is_empty(), "stalled at {skip}");
                skip += sink.data.len();
                pieced.extend_from_slice(&sink.data);
            }
            assert_eq!(pieced, whole, "chunk {chunk}");
        }
    }

    #[test]
    fn unpack_ff_inverts_pack_ff() {
        let chars = Datatype::contiguous(3, &Datatype::byte());
        let s = Datatype::structure(&[(1, 0, Datatype::int()), (1, 4, chars)]);
        let dt = Datatype::hvector(5, 2, 40, &s);
        let count = 2;
        let src = buffer_for(&dt, count);
        let c = commit(&dt);
        let mut sink = VecSink::default();
        pack_ff(&c, count, &src, 0, 0, usize::MAX, &mut sink).unwrap();

        let mut dst = vec![0u8; dt.extent() * count];
        let mut source = SliceSource::new(&sink.data);
        let stats = unpack_ff(&c, count, &mut dst, 0, 0, usize::MAX, &mut source).unwrap();
        assert_eq!(stats.bytes, dt.size() * count);

        // Compare against the generic unpack of the same stream.
        let mut dst2 = vec![0u8; dt.extent() * count];
        tree::unpack(&dt, count, &mut dst2, 0, &sink.data);
        assert_eq!(dst, dst2);
    }

    #[test]
    fn chunked_unpack_matches_full_unpack() {
        let dt = Datatype::vector(8, 1, 3, &Datatype::double());
        let count = 2;
        let src = buffer_for(&dt, count);
        let c = commit(&dt);
        let mut sink = VecSink::default();
        pack_ff(&c, count, &src, 0, 0, usize::MAX, &mut sink).unwrap();

        let mut dst = vec![0u8; dt.extent() * count];
        let mut off = 0;
        for chunk in sink.data.chunks(13) {
            let mut source = SliceSource::new(chunk);
            unpack_ff(&c, count, &mut dst, 0, off, chunk.len(), &mut source).unwrap();
            off += chunk.len();
        }
        let mut dst2 = vec![0u8; dt.extent() * count];
        tree::unpack(&dt, count, &mut dst2, 0, &sink.data);
        assert_eq!(dst, dst2);
    }

    #[test]
    fn stats_count_blocks_not_visits() {
        let dt = Datatype::vector(64, 1, 2, &Datatype::double());
        let src = buffer_for(&dt, 1);
        let c = commit(&dt);
        let mut sink = VecSink::default();
        let ff = pack_ff(&c, 1, &src, 0, 0, usize::MAX, &mut sink).unwrap();
        let mut out = Vec::new();
        let generic = tree::pack(&dt, 1, &src, 0, &mut out);
        assert_eq!(ff.bytes, generic.bytes);
        assert_eq!(ff.blocks, 64);
        // The ff loop does one stack operation per block; the generic
        // engine additionally walks the tree.
        assert!(ff.visits <= generic.visits);
    }

    #[test]
    fn skip_beyond_stream_is_empty() {
        let dt = Datatype::vector(4, 1, 2, &Datatype::int());
        let c = commit(&dt);
        let src = buffer_for(&dt, 1);
        let mut sink = VecSink::default();
        let stats = pack_ff(&c, 1, &src, 0, dt.size(), 100, &mut sink).unwrap();
        assert_eq!(stats.bytes, 0);
        assert!(sink.data.is_empty());
    }

    #[test]
    fn zero_max_is_empty() {
        let dt = Datatype::double();
        let c = commit(&dt);
        let mut sink = VecSink::default();
        let stats = pack_ff(&c, 1, &[0u8; 8], 0, 0, 0, &mut sink).unwrap();
        assert_eq!(stats.bytes, 0);
    }

    #[test]
    fn sink_error_propagates() {
        struct FailAfter(usize);
        impl PackSink for FailAfter {
            type Error = &'static str;
            fn put(&mut self, src: &[u8]) -> Result<(), &'static str> {
                if self.0 < src.len() {
                    Err("sink full")
                } else {
                    self.0 -= src.len();
                    Ok(())
                }
            }
        }
        let dt = Datatype::vector(10, 1, 2, &Datatype::double());
        let c = commit(&dt);
        let src = buffer_for(&dt, 1);
        let mut sink = FailAfter(20);
        let err = pack_ff(&c, 1, &src, 0, 0, usize::MAX, &mut sink).unwrap_err();
        assert_eq!(err, "sink full");
    }

    #[test]
    fn mid_block_resume_positions() {
        // Resume exactly inside a block: skip = 1.5 blocks.
        let dt = Datatype::vector(4, 2, 4, &Datatype::double()); // 16B blocks
        let c = commit(&dt);
        let src = buffer_for(&dt, 1);
        let whole = generic_pack(&dt, 1, &src);
        let mut sink = VecSink::default();
        pack_ff(&c, 1, &src, 0, 24, 16, &mut sink).unwrap();
        assert_eq!(sink.data, &whole[24..40]);
    }
}
