//! Property-based differential testing of the two pack engines.
//!
//! The core correctness claim of `direct_pack_ff` is that it produces
//! *exactly* the byte stream of the generic recursive engine, for any
//! datatype, any instance count, and any partial-pack split. These
//! properties drive randomly constructed datatype trees through both
//! engines and compare.

use mpi_datatype::{ff, flat, tree, Committed, Datatype};
use proptest::prelude::*;

/// A strategy producing random (small) datatype trees.
fn arb_datatype() -> impl Strategy<Value = Datatype> {
    let leaf = prop_oneof![
        Just(Datatype::byte()),
        Just(Datatype::int()),
        Just(Datatype::double()),
        Just(Datatype::float()),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            // contiguous
            (1usize..5, inner.clone())
                .prop_map(|(n, c)| Datatype::contiguous(n, &c)),
            // vector with stride >= blocklen (no overlap)
            (1usize..5, 1usize..4, 0isize..4, inner.clone()).prop_map(
                |(count, bl, extra, c)| Datatype::vector(
                    count,
                    bl,
                    bl as isize + extra,
                    &c
                )
            ),
            // hvector with byte stride >= blocklen * extent
            (1usize..4, 1usize..4, 0i64..16, inner.clone()).prop_map(
                |(count, bl, extra, c)| Datatype::hvector(
                    count,
                    bl,
                    (bl * c.extent()) as i64 + extra,
                    &c
                )
            ),
            // indexed with ascending non-overlapping blocks
            (proptest::collection::vec((1usize..3, 0isize..3), 1..4), inner.clone()).prop_map(
                |(raw, c)| {
                    let mut disp = 0isize;
                    let blocks: Vec<(usize, isize)> = raw
                        .into_iter()
                        .map(|(bl, gap)| {
                            let b = (bl, disp);
                            disp += bl as isize + gap;
                            b
                        })
                        .collect();
                    Datatype::indexed(&blocks, &c)
                }
            ),
            // struct of two fields at ascending displacements
            (inner.clone(), inner.clone(), 0i64..8, 1usize..3).prop_map(
                |(a, b, gap, bl)| {
                    let disp_b = (bl * a.extent()) as i64 + gap;
                    Datatype::structure(&[(bl, 0, a), (1, disp_b, b)])
                }
            ),
        ]
    })
}

fn source_buffer(dt: &Datatype, count: usize) -> Vec<u8> {
    (0..dt.extent() * count + 16)
        .map(|i| (i as u32).wrapping_mul(2654435761) as u8)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// ff full pack == generic full pack.
    #[test]
    fn ff_pack_equals_generic(dt in arb_datatype(), count in 1usize..4) {
        let src = source_buffer(&dt, count);
        let mut generic = Vec::new();
        tree::pack(&dt, count, &src, 0, &mut generic);

        let c = Committed::commit(&dt);
        let mut sink = ff::VecSink::default();
        ff::pack_ff(&c, count, &src, 0, 0, usize::MAX, &mut sink).unwrap();
        prop_assert_eq!(&sink.data, &generic);
        prop_assert_eq!(generic.len(), dt.size() * count);
    }

    /// The committed expansion covers exactly the tree segments.
    #[test]
    fn flat_expansion_matches_tree(dt in arb_datatype(), count in 1usize..4) {
        let c = Committed::commit(&dt);
        prop_assert!(flat::expansion_matches_tree(&c, count));
    }

    /// Partial ff packs of arbitrary chunk size reassemble to the whole.
    #[test]
    fn ff_partial_packs_reassemble(
        dt in arb_datatype(),
        count in 1usize..3,
        chunk in 1usize..64,
    ) {
        let src = source_buffer(&dt, count);
        let mut whole = Vec::new();
        tree::pack(&dt, count, &src, 0, &mut whole);

        let c = Committed::commit(&dt);
        let mut pieced = Vec::new();
        let mut skip = 0usize;
        while skip < whole.len() {
            let mut sink = ff::VecSink::default();
            ff::pack_ff(&c, count, &src, 0, skip, chunk, &mut sink).unwrap();
            prop_assert!(!sink.data.is_empty(), "pack stalled at {}", skip);
            skip += sink.data.len();
            pieced.extend_from_slice(&sink.data);
        }
        prop_assert_eq!(pieced, whole);
    }

    /// Pack then unpack (both engines crossed) restores the data bytes.
    #[test]
    fn cross_engine_roundtrip(dt in arb_datatype(), count in 1usize..3) {
        let src = source_buffer(&dt, count);
        let c = Committed::commit(&dt);

        // Pack with ff, unpack with generic.
        let mut sink = ff::VecSink::default();
        ff::pack_ff(&c, count, &src, 0, 0, usize::MAX, &mut sink).unwrap();
        let mut dst1 = vec![0u8; src.len()];
        tree::unpack(&dt, count, &mut dst1, 0, &sink.data);

        // Pack with generic, unpack with ff.
        let mut generic = Vec::new();
        tree::pack(&dt, count, &src, 0, &mut generic);
        let mut dst2 = vec![0u8; src.len()];
        let mut source = ff::SliceSource::new(&generic);
        ff::unpack_ff(&c, count, &mut dst2, 0, 0, usize::MAX, &mut source).unwrap();

        prop_assert_eq!(&dst1, &dst2);

        // Re-packing the unpacked buffer yields the same stream.
        let mut repacked = Vec::new();
        tree::pack(&dt, count, &dst1, 0, &mut repacked);
        prop_assert_eq!(repacked, generic);
    }

    /// find_position agrees with linear stream arithmetic.
    #[test]
    fn find_position_consistent(dt in arb_datatype(), count in 1usize..3, frac in 0.0f64..1.0) {
        let c = Committed::commit(&dt);
        let total = dt.size() * count;
        prop_assume!(total > 0);
        let skip = ((total - 1) as f64 * frac) as usize;
        let src = source_buffer(&dt, count);

        // Packing from `skip` must equal the tail of the full stream.
        let mut whole = Vec::new();
        tree::pack(&dt, count, &src, 0, &mut whole);
        let mut sink = ff::VecSink::default();
        ff::pack_ff(&c, count, &src, 0, skip, usize::MAX, &mut sink).unwrap();
        prop_assert_eq!(&sink.data[..], &whole[skip..]);
    }

    /// Merging never changes the block count seen by a sink in a way that
    /// loses bytes, and committed metadata is consistent.
    #[test]
    fn committed_metadata_consistent(dt in arb_datatype()) {
        let c = Committed::commit(&dt);
        let leaf_total: usize = c.leaves().iter().map(|l| l.total).sum();
        prop_assert_eq!(leaf_total, dt.size());
        for leaf in c.leaves() {
            let blocks = leaf.block_count();
            prop_assert_eq!(leaf.total, blocks * leaf.len);
            for level in &leaf.stack {
                prop_assert!(level.count > 1, "count-1 level survived merge");
            }
        }
    }
}
