//! Randomized differential testing of the two pack engines.
//!
//! The core correctness claim of `direct_pack_ff` is that it produces
//! *exactly* the byte stream of the generic recursive engine, for any
//! datatype, any instance count, and any partial-pack split. These tests
//! drive randomly constructed datatype trees through both engines and
//! compare. Deterministic seeded randomness (`SplitMix64`) replaces an
//! external property-testing framework.

use mpi_datatype::{ff, flat, tree, Committed, Datatype};
use simclock::SplitMix64;

/// A random (small) datatype tree, recursing at most `depth` levels.
fn random_datatype(rng: &mut SplitMix64, depth: usize) -> Datatype {
    let leaf = |rng: &mut SplitMix64| match rng.next_below(4) {
        0 => Datatype::byte(),
        1 => Datatype::int(),
        2 => Datatype::double(),
        _ => Datatype::float(),
    };
    if depth == 0 || rng.chance(0.35) {
        return leaf(rng);
    }
    let inner = random_datatype(rng, depth - 1);
    match rng.next_below(5) {
        // contiguous
        0 => Datatype::contiguous(rng.next_range(1, 4) as usize, &inner),
        // vector with stride >= blocklen (no overlap)
        1 => {
            let bl = rng.next_range(1, 3) as usize;
            let extra = rng.next_below(4) as isize;
            Datatype::vector(
                rng.next_range(1, 4) as usize,
                bl,
                bl as isize + extra,
                &inner,
            )
        }
        // hvector with byte stride >= blocklen * extent
        2 => {
            let bl = rng.next_range(1, 3) as usize;
            let extra = rng.next_below(16) as i64;
            Datatype::hvector(
                rng.next_range(1, 3) as usize,
                bl,
                (bl * inner.extent()) as i64 + extra,
                &inner,
            )
        }
        // indexed with ascending non-overlapping blocks
        3 => {
            let n = rng.next_range(1, 3) as usize;
            let mut disp = 0isize;
            let blocks: Vec<(usize, isize)> = (0..n)
                .map(|_| {
                    let bl = rng.next_range(1, 2) as usize;
                    let gap = rng.next_below(3) as isize;
                    let b = (bl, disp);
                    disp += bl as isize + gap;
                    b
                })
                .collect();
            Datatype::indexed(&blocks, &inner)
        }
        // struct of two fields at ascending displacements
        _ => {
            let a = inner;
            let b = random_datatype(rng, depth - 1);
            let gap = rng.next_below(8) as i64;
            let bl = rng.next_range(1, 2) as usize;
            let disp_b = (bl * a.extent()) as i64 + gap;
            Datatype::structure(&[(bl, 0, a), (1, disp_b, b)])
        }
    }
}

fn source_buffer(dt: &Datatype, count: usize) -> Vec<u8> {
    (0..dt.extent() * count + 16)
        .map(|i| (i as u32).wrapping_mul(2654435761) as u8)
        .collect()
}

/// ff full pack == generic full pack.
#[test]
fn ff_pack_equals_generic() {
    let mut rng = SplitMix64::new(0xF1A6);
    for _ in 0..256 {
        let dt = random_datatype(&mut rng, 3);
        let count = rng.next_range(1, 3) as usize;
        let src = source_buffer(&dt, count);
        let mut generic = Vec::new();
        tree::pack(&dt, count, &src, 0, &mut generic);

        let c = Committed::commit(&dt);
        let mut sink = ff::VecSink::default();
        ff::pack_ff(&c, count, &src, 0, 0, usize::MAX, &mut sink).unwrap();
        assert_eq!(&sink.data, &generic);
        assert_eq!(generic.len(), dt.size() * count);
    }
}

/// The committed expansion covers exactly the tree segments.
#[test]
fn flat_expansion_matches_tree() {
    let mut rng = SplitMix64::new(0xF1A7);
    for _ in 0..256 {
        let dt = random_datatype(&mut rng, 3);
        let count = rng.next_range(1, 3) as usize;
        let c = Committed::commit(&dt);
        assert!(flat::expansion_matches_tree(&c, count));
    }
}

/// Partial ff packs of arbitrary chunk size reassemble to the whole.
#[test]
fn ff_partial_packs_reassemble() {
    let mut rng = SplitMix64::new(0xF1A8);
    for _ in 0..256 {
        let dt = random_datatype(&mut rng, 3);
        let count = rng.next_range(1, 2) as usize;
        let chunk = rng.next_range(1, 63) as usize;
        let src = source_buffer(&dt, count);
        let mut whole = Vec::new();
        tree::pack(&dt, count, &src, 0, &mut whole);

        let c = Committed::commit(&dt);
        let mut pieced = Vec::new();
        let mut skip = 0usize;
        while skip < whole.len() {
            let mut sink = ff::VecSink::default();
            ff::pack_ff(&c, count, &src, 0, skip, chunk, &mut sink).unwrap();
            assert!(!sink.data.is_empty(), "pack stalled at {}", skip);
            skip += sink.data.len();
            pieced.extend_from_slice(&sink.data);
        }
        assert_eq!(pieced, whole);
    }
}

/// Pack then unpack (both engines crossed) restores the data bytes.
#[test]
fn cross_engine_roundtrip() {
    let mut rng = SplitMix64::new(0xF1A9);
    for _ in 0..256 {
        let dt = random_datatype(&mut rng, 3);
        let count = rng.next_range(1, 2) as usize;
        let src = source_buffer(&dt, count);
        let c = Committed::commit(&dt);

        // Pack with ff, unpack with generic.
        let mut sink = ff::VecSink::default();
        ff::pack_ff(&c, count, &src, 0, 0, usize::MAX, &mut sink).unwrap();
        let mut dst1 = vec![0u8; src.len()];
        tree::unpack(&dt, count, &mut dst1, 0, &sink.data);

        // Pack with generic, unpack with ff.
        let mut generic = Vec::new();
        tree::pack(&dt, count, &src, 0, &mut generic);
        let mut dst2 = vec![0u8; src.len()];
        let mut source = ff::SliceSource::new(&generic);
        ff::unpack_ff(&c, count, &mut dst2, 0, 0, usize::MAX, &mut source).unwrap();

        assert_eq!(&dst1, &dst2);

        // Re-packing the unpacked buffer yields the same stream.
        let mut repacked = Vec::new();
        tree::pack(&dt, count, &dst1, 0, &mut repacked);
        assert_eq!(repacked, generic);
    }
}

/// Packing from an arbitrary offset must equal the tail of the full
/// stream (find_position agrees with linear stream arithmetic).
#[test]
fn find_position_consistent() {
    let mut rng = SplitMix64::new(0xF1AA);
    for _ in 0..256 {
        let dt = random_datatype(&mut rng, 3);
        let count = rng.next_range(1, 2) as usize;
        let frac = rng.next_f64();
        let c = Committed::commit(&dt);
        let total = dt.size() * count;
        if total == 0 {
            continue;
        }
        let skip = ((total - 1) as f64 * frac) as usize;
        let src = source_buffer(&dt, count);

        let mut whole = Vec::new();
        tree::pack(&dt, count, &src, 0, &mut whole);
        let mut sink = ff::VecSink::default();
        ff::pack_ff(&c, count, &src, 0, skip, usize::MAX, &mut sink).unwrap();
        assert_eq!(&sink.data[..], &whole[skip..]);
    }
}

/// Merging never changes the block count seen by a sink in a way that
/// loses bytes, and committed metadata is consistent.
#[test]
fn committed_metadata_consistent() {
    let mut rng = SplitMix64::new(0xF1AB);
    for _ in 0..256 {
        let dt = random_datatype(&mut rng, 3);
        let c = Committed::commit(&dt);
        let leaf_total: usize = c.leaves().iter().map(|l| l.total).sum();
        assert_eq!(leaf_total, dt.size());
        for leaf in c.leaves() {
            let blocks = leaf.block_count();
            assert_eq!(leaf.total, blocks * leaf.len);
            for level in &leaf.stack {
                assert!(level.count > 1, "count-1 level survived merge");
            }
        }
    }
}
