//! Machine-readable bench output — `BENCH_<name>.json` next to the text
//! tables.
//!
//! Every binary emits one JSON document describing the same series the
//! rendered table shows, so plots and regression checks can consume the
//! numbers without scraping text:
//!
//! ```json
//! {"bench":"fig7_noncontig","series":[
//!   {"label":"SCI direct_pack_ff","points":[
//!     {"x":8,"mean_us":1942.3,"stddev":null,"mbps":128.7}, ...]}, ...]}
//! ```
//!
//! Fields that a benchmark does not measure are `null`. `mbps` carries
//! the MiB/s value the tables print (the paper's unit); `mean_us` is the
//! mean virtual time in microseconds; `stddev` is the sample standard
//! deviation of that time where repetitions are measured individually.

use obs::json::{escape, num};
use simclock::stats::Series;
use std::path::PathBuf;

/// One measured point of one series.
#[derive(Clone, Copy, Debug, Default)]
pub struct BenchPoint {
    /// Sweep coordinate (block size, access size, process count, ...).
    pub x: f64,
    /// Mean virtual latency in microseconds, if measured.
    pub mean_us: Option<f64>,
    /// Sample standard deviation of the latency, if measured.
    pub stddev: Option<f64>,
    /// Bandwidth in MiB/s, if measured.
    pub mbps: Option<f64>,
}

impl BenchPoint {
    /// A point at sweep coordinate `x` with no measurements yet.
    pub fn at(x: f64) -> Self {
        BenchPoint {
            x,
            ..Default::default()
        }
    }

    /// Set the mean latency \[µs\].
    pub fn mean_us(mut self, v: f64) -> Self {
        self.mean_us = Some(v);
        self
    }

    /// Set the latency standard deviation \[µs\].
    pub fn stddev(mut self, v: f64) -> Self {
        self.stddev = Some(v);
        self
    }

    /// Set the bandwidth [MiB/s].
    pub fn mbps(mut self, v: f64) -> Self {
        self.mbps = Some(v);
        self
    }

    fn to_json(self) -> String {
        fn opt(v: Option<f64>) -> String {
            v.map(num).unwrap_or_else(|| "null".to_string())
        }
        format!(
            "{{\"x\":{},\"mean_us\":{},\"stddev\":{},\"mbps\":{}}}",
            num(self.x),
            opt(self.mean_us),
            opt(self.stddev),
            opt(self.mbps)
        )
    }
}

/// The JSON document one bench binary writes.
#[derive(Debug, Default)]
pub struct BenchDoc {
    name: String,
    series: Vec<(String, Vec<BenchPoint>)>,
    /// Labelled per-rank mailbox high-water snapshots (see
    /// [`BenchDoc::record_peak_backlog`]); empty unless a bench opts in.
    backlogs: Vec<(String, Vec<obs::PeakBacklog>)>,
}

impl BenchDoc {
    /// A document for the binary `name` (`BENCH_<name>.json`).
    pub fn new(name: impl Into<String>) -> Self {
        BenchDoc {
            name: name.into(),
            series: Vec::new(),
            backlogs: Vec::new(),
        }
    }

    /// Append `point` to the series `label`, creating it if new.
    pub fn push(&mut self, label: &str, point: BenchPoint) {
        match self.series.iter_mut().find(|(l, _)| l == label) {
            Some((_, pts)) => pts.push(point),
            None => self.series.push((label.to_string(), vec![point])),
        }
    }

    /// Copy a whole bandwidth [`Series`] (y = MiB/s).
    pub fn push_bw_series(&mut self, s: &Series) {
        for &(x, y) in &s.points {
            self.push(&s.label, BenchPoint::at(x).mbps(y));
        }
    }

    /// Copy a whole latency [`Series`] (y = µs).
    pub fn push_lat_series(&mut self, s: &Series) {
        for &(x, y) in &s.points {
            self.push(&s.label, BenchPoint::at(x).mean_us(y));
        }
    }

    /// Snapshot the per-rank peak-backlog gauges of the run that just
    /// finished (`obs::peak_backlogs`, recorded at teardown from the
    /// mailbox's virtual-time event log) under `label`. The document
    /// gains a `"peak_backlog"` section listing every snapshot taken.
    pub fn record_peak_backlog(&mut self, label: &str) {
        self.backlogs
            .push((label.to_string(), obs::peak_backlogs()));
    }

    /// Render the whole document.
    pub fn to_json(&self) -> String {
        let series: Vec<String> = self
            .series
            .iter()
            .map(|(label, pts)| {
                let points: Vec<String> = pts.iter().map(|p| p.to_json()).collect();
                format!(
                    "{{\"label\":\"{}\",\"points\":[{}]}}",
                    escape(label),
                    points.join(",")
                )
            })
            .collect();
        let backlog = if self.backlogs.is_empty() {
            String::new()
        } else {
            let snaps: Vec<String> = self
                .backlogs
                .iter()
                .map(|(label, ranks)| {
                    let per_rank: Vec<String> = ranks
                        .iter()
                        .map(|p| {
                            format!(
                                "{{\"rank\":{},\"msgs\":{},\"eager_bytes\":{}}}",
                                p.rank, p.msgs, p.eager_bytes
                            )
                        })
                        .collect();
                    format!(
                        "{{\"label\":\"{}\",\"ranks\":[{}]}}",
                        escape(label),
                        per_rank.join(",")
                    )
                })
                .collect();
            format!(",\"peak_backlog\":[\n{}\n]", snaps.join(",\n"))
        };
        format!(
            "{{\"bench\":\"{}\",\"series\":[\n{}\n]{}}}\n",
            escape(&self.name),
            series.join(",\n"),
            backlog
        )
    }

    /// Write `BENCH_<name>.json` in the current directory and return the
    /// path. When the run recorded a wait-state profile (observability
    /// enabled), the matching `PROFILE_<name>.json` is written next to it
    /// so the regression gate and CI artifacts always travel as a pair.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = PathBuf::from(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        obs::report::write_profile_for(&self.name)?;
        Ok(path)
    }

    /// [`BenchDoc::write`], reporting the path (or the error) on stdout.
    pub fn write_and_report(&self) {
        match self.write() {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("BENCH_{}.json not written: {e}", self.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_shape() {
        let mut doc = BenchDoc::new("unit");
        doc.push("a", BenchPoint::at(8.0).mbps(12.5).mean_us(3.0));
        doc.push("a", BenchPoint::at(16.0).mbps(25.0));
        doc.push("b", BenchPoint::at(8.0).stddev(0.25));
        let j = doc.to_json();
        assert!(j.contains("\"bench\":\"unit\""));
        assert!(j.contains("\"label\":\"a\""));
        assert!(j.contains("{\"x\":8,\"mean_us\":3,\"stddev\":null,\"mbps\":12.500000}"));
        assert!(j.contains("{\"x\":8,\"mean_us\":null,\"stddev\":0.250000,\"mbps\":null}"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn peak_backlog_section_is_opt_in() {
        let mut doc = BenchDoc::new("unit");
        doc.push("a", BenchPoint::at(1.0).mbps(1.0));
        assert!(!doc.to_json().contains("peak_backlog"));
        doc.backlogs.push((
            "flood".into(),
            vec![obs::PeakBacklog {
                rank: 1,
                msgs: 4,
                eager_bytes: 16384,
            }],
        ));
        let j = doc.to_json();
        assert!(j.contains(
            "\"peak_backlog\":[\n{\"label\":\"flood\",\"ranks\":[{\"rank\":1,\"msgs\":4,\"eager_bytes\":16384}]}\n]"
        ));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn series_copies() {
        let mut s = Series::new("bw");
        s.push(8.0, 100.0);
        s.push(16.0, 200.0);
        let mut doc = BenchDoc::new("unit");
        doc.push_bw_series(&s);
        doc.push_lat_series(&s);
        let j = doc.to_json();
        // Both copies land in the same labelled series, bandwidth first.
        assert_eq!(j.matches("\"label\":\"bw\"").count(), 1);
        assert!(j.contains("\"mbps\":200"));
        assert!(j.contains("\"mean_us\":200"));
    }
}
