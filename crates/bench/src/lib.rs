//! # repro-bench — harnesses regenerating every table and figure
//!
//! One binary per experiment (see DESIGN.md §4 for the index):
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig1_raw_sci` | Figure 1 — raw SCI latency & bandwidth (PIO/DMA) |
//! | `fig7_noncontig` | Figure 7 — generic vs `direct_pack_ff` vs contiguous |
//! | `fig9_sparse_sci` | Figure 9 — sparse µbench on SCI-MPICH |
//! | `strided_write_study` | §4.3 — raw strided remote-write bandwidth |
//! | `fig10_noncontig_platforms` | Figure 10 — noncontig across platforms |
//! | `fig11_sparse_platforms` | Figure 11 — sparse across platforms |
//! | `fig12_scaling` | Figure 12 — one-sided scaling with process count |
//! | `table2_segment_util` | Table 2 — ring-segment utilisation study |
//! | `ablations` | DESIGN.md §5 — ablation studies |
//! | `overlap_halo` | docs/ASYNC.md — request-engine overlap study |
//! | `bench_diff` | regression gate: current JSON vs `bench/baselines/` |
//!
//! This library holds the shared workload generators and measurement
//! loops so that every binary measures the *same* workloads the same way.

pub mod diff;
pub mod jsonout;
pub mod workloads;

pub use jsonout::{BenchDoc, BenchPoint};
pub use workloads::*;
