//! Structural comparison of bench JSON documents against committed
//! baselines — the engine behind the `bench_diff` binary.
//!
//! The simulation is deterministic, so a committed `BENCH_<name>.json`
//! is an exact promise: the same seed must reproduce every number. The
//! comparison is nevertheless *tolerance-based* (per-metric relative
//! tolerance, keyed by the leaf field name) so that deliberate timing
//! recalibrations can be absorbed by widening one key's tolerance in
//! `bench/baselines/tolerance.json` instead of rewriting every file.
//!
//! Everything here is hand-rolled on purpose — the repo carries no JSON
//! dependency. The parser is a small recursive-descent reader for the
//! documents this workspace writes (objects, arrays, strings with the
//! escapes [`obs::json::escape`] emits, f64 numbers, booleans, null).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Object keys keep insertion order (comparison is
/// key-based, but error paths read better in document order).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key of an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The f64 payload of a number value.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// A parse failure with its byte offset.
#[derive(Debug)]
pub struct ParseError {
    pub at: usize,
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "byte {}: {}", self.at, self.msg)
    }
}

/// Parse one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        at: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(p.err("trailing garbage after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            at: self.at,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.at..self.at + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.at += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("\\u escape out of range"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let rest = &self.bytes[self.at..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.at;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E') | Some(b'0'..=b'9')
        ) {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("bad number '{text}'")))
    }
}

/// Per-metric relative tolerances, keyed by the *leaf field name* of the
/// number being compared (`mean_us`, `mbps`, `p99_ns`, ...). The default
/// applies to every key without an override.
#[derive(Clone, Debug)]
pub struct Tolerance {
    pub default: f64,
    pub per_key: BTreeMap<String, f64>,
}

impl Tolerance {
    /// A flat relative tolerance for every metric.
    pub fn flat(default: f64) -> Self {
        Tolerance {
            default,
            per_key: BTreeMap::new(),
        }
    }

    /// Load overrides from a parsed `tolerance.json` document:
    /// `{"default": 0.05, "per_key": {"mean_us": 0.10}}`.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let mut tol = Tolerance::flat(
            doc.get("default")
                .and_then(Json::as_f64)
                .unwrap_or(DEFAULT_TOLERANCE),
        );
        if let Some(per) = doc.get("per_key") {
            let Json::Obj(fields) = per else {
                return Err("tolerance per_key must be an object".into());
            };
            for (k, v) in fields {
                let f = v
                    .as_f64()
                    .ok_or_else(|| format!("tolerance for '{k}' must be a number"))?;
                tol.per_key.insert(k.clone(), f);
            }
        }
        Ok(tol)
    }

    fn for_key(&self, key: &str) -> f64 {
        self.per_key.get(key).copied().unwrap_or(self.default)
    }
}

/// The default relative tolerance when none is configured.
pub const DEFAULT_TOLERANCE: f64 = 0.05;

/// One baseline/current disagreement, with the JSON path that diverged.
#[derive(Clone, Debug)]
pub struct Mismatch {
    pub path: String,
    pub detail: String,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path, self.detail)
    }
}

/// Compare `current` against `baseline` structurally. Numbers compare by
/// relative tolerance (keyed by their field name); strings, booleans and
/// nulls compare exactly; arrays must match element-wise; objects must
/// carry the same keys on both sides. Returns every disagreement found.
pub fn compare(baseline: &Json, current: &Json, tol: &Tolerance) -> Vec<Mismatch> {
    let mut out = Vec::new();
    walk(baseline, current, tol, "$", "", &mut out);
    out
}

fn push(out: &mut Vec<Mismatch>, path: &str, detail: String) {
    out.push(Mismatch {
        path: path.to_string(),
        detail,
    });
}

fn walk(b: &Json, c: &Json, tol: &Tolerance, path: &str, key: &str, out: &mut Vec<Mismatch>) {
    match (b, c) {
        (Json::Num(x), Json::Num(y)) => {
            let t = tol.for_key(key);
            let scale = x.abs().max(y.abs());
            if scale > 0.0 && (x - y).abs() / scale > t {
                push(
                    out,
                    path,
                    format!(
                        "{y} deviates from baseline {x} by {:.2}% (tolerance {:.2}%)",
                        (x - y).abs() / scale * 100.0,
                        t * 100.0
                    ),
                );
            }
        }
        (Json::Obj(bf), Json::Obj(cf)) => {
            for (k, bv) in bf {
                match c.get(k) {
                    Some(cv) => walk(bv, cv, tol, &format!("{path}.{k}"), k, out),
                    None => push(out, path, format!("missing key '{k}'")),
                }
            }
            for (k, _) in cf {
                if b.get(k).is_none() {
                    push(out, path, format!("unexpected key '{k}'"));
                }
            }
        }
        (Json::Arr(ba), Json::Arr(ca)) => {
            if ba.len() != ca.len() {
                push(
                    out,
                    path,
                    format!("length {} differs from baseline {}", ca.len(), ba.len()),
                );
            }
            for (i, (bv, cv)) in ba.iter().zip(ca).enumerate() {
                walk(bv, cv, tol, &format!("{path}[{i}]"), key, out);
            }
        }
        _ if b == c => {}
        _ => push(
            out,
            path,
            format!("{} differs from baseline {}", render(c), render(b)),
        ),
    }
}

fn render(v: &Json) -> String {
    match v {
        Json::Null => "null".into(),
        Json::Bool(b) => b.to_string(),
        Json::Num(n) => n.to_string(),
        Json::Str(s) => format!("\"{s}\""),
        other => other.kind().into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{"bench":"unit","deterministic":true,"series":[
        {"label":"a \"quoted\" one","points":[
            {"x":8,"mean_us":100.0,"stddev":null,"mbps":12.5},
            {"x":16,"mean_us":2e2,"stddev":null,"mbps":-25.0}]}]}"#;

    #[test]
    fn parses_workspace_shaped_documents() {
        let v = parse(DOC).unwrap();
        assert_eq!(v.get("bench"), Some(&Json::Str("unit".into())));
        assert_eq!(v.get("deterministic"), Some(&Json::Bool(true)));
        let Some(Json::Arr(series)) = v.get("series") else {
            panic!("series array");
        };
        assert_eq!(
            series[0].get("label"),
            Some(&Json::Str("a \"quoted\" one".into()))
        );
        let Some(Json::Arr(points)) = series[0].get("points") else {
            panic!("points array");
        };
        assert_eq!(points[1].get("mean_us").unwrap().as_f64(), Some(200.0));
        assert_eq!(points[1].get("mbps").unwrap().as_f64(), Some(-25.0));
        assert_eq!(points[0].get("stddev"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn identical_documents_have_no_mismatches() {
        let b = parse(DOC).unwrap();
        let c = parse(DOC).unwrap();
        assert!(compare(&b, &c, &Tolerance::flat(0.0)).is_empty());
    }

    #[test]
    fn tolerance_gates_numeric_drift() {
        let b = parse(r#"{"mean_us":100.0}"#).unwrap();
        let within = parse(r#"{"mean_us":104.0}"#).unwrap();
        let beyond = parse(r#"{"mean_us":120.0}"#).unwrap();
        let tol = Tolerance::flat(0.05);
        assert!(compare(&b, &within, &tol).is_empty());
        let bad = compare(&b, &beyond, &tol);
        assert_eq!(bad.len(), 1);
        assert!(bad[0].path.contains("mean_us"), "{}", bad[0]);
    }

    #[test]
    fn per_key_tolerance_overrides_default() {
        let b = parse(r#"{"mean_us":100.0,"mbps":100.0}"#).unwrap();
        let c = parse(r#"{"mean_us":108.0,"mbps":108.0}"#).unwrap();
        let tol =
            Tolerance::from_json(&parse(r#"{"default":0.05,"per_key":{"mean_us":0.10}}"#).unwrap())
                .unwrap();
        let bad = compare(&b, &c, &tol);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].path.ends_with("mbps"));
    }

    #[test]
    fn structural_changes_are_always_mismatches() {
        let b = parse(r#"{"series":[{"x":1},{"x":2}],"flag":true}"#).unwrap();
        let shorter = parse(r#"{"series":[{"x":1}],"flag":true}"#).unwrap();
        let retyped = parse(r#"{"series":[{"x":1},{"x":2}],"flag":"yes"}"#).unwrap();
        let missing = parse(r#"{"series":[{"x":1},{"x":2}]}"#).unwrap();
        let extra = parse(r#"{"series":[{"x":1},{"x":2}],"flag":true,"new":1}"#).unwrap();
        let tol = Tolerance::flat(1.0); // numbers never fail here
        for doc in [&shorter, &retyped, &missing, &extra] {
            assert!(!compare(&b, doc, &tol).is_empty());
        }
    }

    #[test]
    fn key_context_reaches_numbers_inside_arrays() {
        // The leaf key for numbers inside an array is the array's field
        // name, so "buckets":[[3,17]] tightens/loosens under "buckets".
        let b = parse(r#"{"buckets":[[3,17]]}"#).unwrap();
        let c = parse(r#"{"buckets":[[3,18]]}"#).unwrap();
        let mut tol = Tolerance::flat(0.0);
        assert!(!compare(&b, &c, &tol).is_empty());
        tol.per_key.insert("buckets".into(), 0.10);
        assert!(compare(&b, &c, &tol).is_empty());
    }
}
