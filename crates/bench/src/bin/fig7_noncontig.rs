//! Figure 7 — non-contiguous data transfers in SCI-MPICH.
//!
//! The `noncontig` micro-benchmark: a single-strided vector of doubles,
//! blocksize swept 8 B → 128 kiB with stride = 2 × blocksize, total
//! payload 256 kiB per transfer. Curves: generic pack-and-send vs
//! `direct_pack_ff` vs the contiguous reference, for inter-node (SCI) and
//! intra-node (shared memory through SMI) communication.
//!
//! Run: `cargo run --release -p repro-bench --bin fig7_noncontig`

use mpi_datatype::layout_cache;
use repro_bench::{
    internode_spec, intranode_spec, noncontig_bandwidth, sweep, BenchDoc, BenchPoint,
    NoncontigCase, NONCONTIG_TOTAL,
};
use scimpi::ObsConfig;
use simclock::stats::{fmt_bytes, series_table, Series};

fn main() {
    println!("== Figure 7: noncontig bandwidth [MiB/s], 256 kiB payload ==\n");
    let mut series = vec![
        Series::new("SCI generic"),
        Series::new("SCI direct_pack_ff"),
        Series::new("SCI contiguous"),
        Series::new("shm generic"),
        Series::new("shm direct_pack_ff"),
        Series::new("shm contiguous"),
        Series::new("SCI direct_pack_ff (pack engine off)"),
    ];
    for blocksize in sweep(8, 128 * 1024) {
        let cases = [
            (0, internode_spec(), NoncontigCase::Generic),
            (1, internode_spec(), NoncontigCase::DirectPackFf),
            (2, internode_spec(), NoncontigCase::Contiguous),
            (3, intranode_spec(), NoncontigCase::Generic),
            (4, intranode_spec(), NoncontigCase::DirectPackFf),
            (5, intranode_spec(), NoncontigCase::Contiguous),
        ];
        for (idx, spec, case) in cases {
            let bw = noncontig_bandwidth(spec, case, blocksize, NONCONTIG_TOTAL);
            series[idx].push(blocksize as f64, bw.mib_per_sec());
        }
        // Pack-engine ablation arm: the same ff transfer with the
        // flattened-layout cache and write-combining store batching off
        // (every commit re-flattens; every sub-transaction store pays its
        // own partial flush).
        layout_cache::set_enabled(false);
        let mut off_spec = internode_spec();
        off_spec.tuning = off_spec.tuning.without_pack_engine();
        let bw = noncontig_bandwidth(
            off_spec,
            NoncontigCase::DirectPackFf,
            blocksize,
            NONCONTIG_TOTAL,
        );
        layout_cache::set_enabled(true);
        series[6].push(blocksize as f64, bw.mib_per_sec());
        eprint!(".");
    }
    eprintln!();
    println!("{}", series_table("block[B]", fmt_bytes, &series).render());

    // A representative traced run: rerun one point with the recorder on
    // so the Chrome trace and counter dump land next to the JSON table.
    // The run re-commits the datatype every repetition, so everything
    // after the first resolve is a layout-cache hit.
    let traced = internode_spec().obs(
        ObsConfig::with_trace("TRACE_fig7_noncontig.json")
            .and_counters("COUNTERS_fig7_noncontig.jsonl"),
    );
    noncontig_bandwidth(traced, NoncontigCase::DirectPackFf, 128, NONCONTIG_TOTAL);
    println!("wrote TRACE_fig7_noncontig.json, COUNTERS_fig7_noncontig.jsonl");
    let cache_hits = obs::counter_value(obs::Counter::LayoutCacheHits);
    assert!(
        cache_hits > 0,
        "repeated sends of one datatype must hit the layout cache"
    );

    let mut doc = BenchDoc::new("fig7_noncontig");
    for s in &series {
        for &(x, mbps) in &s.points {
            // One transfer moves the full 256 kiB payload; its mean
            // virtual time follows from the bandwidth.
            let mean_us = NONCONTIG_TOTAL as f64 / (mbps * 1024.0 * 1024.0) * 1e6;
            doc.push(&s.label, BenchPoint::at(x).mbps(mbps).mean_us(mean_us));
        }
    }
    // Counter evidence for the smoke check: cache hits observed in the
    // traced run (x is the traced blocksize).
    doc.push(
        "layout_cache_hits",
        BenchPoint::at(128.0).mean_us(cache_hits as f64),
    );
    doc.write_and_report();

    // Acceptance check: at fine granularity the pack engine (layout cache
    // + WC batching) must cut the per-transfer virtual time by >= 15%.
    let on16 = series[1].at(16.0).unwrap_or(0.0);
    let off16 = series[6].at(16.0).unwrap_or(f64::MAX);
    assert!(
        off16 <= on16 * 0.85,
        "pack engine must save >=15% virtual time at 16 B blocks: \
         {on16:.1} MiB/s on vs {off16:.1} MiB/s off"
    );

    // The paper's headline observations, checked numerically:
    let at = |s: &Series, x: usize| s.at(x as f64).unwrap_or(0.0);
    let ff128 = at(&series[1], 128);
    let contig128 = at(&series[2], 128);
    let gen16 = at(&series[0], 16);
    let ff16 = at(&series[1], 16);
    let gen8 = at(&series[0], 8);
    let ff8 = at(&series[6], 8); // paper-era shape: the pack-engine-off arm
    println!("checks:");
    println!(
        "  ff/contiguous at 128 B = {:.2} (paper: ~0.9)",
        ff128 / contig128
    );
    println!(
        "  ff/generic at 16 B    = {:.2} (paper: >= 2)",
        ff16 / gen16
    );
    println!(
        "  generic vs ff at 8 B  = {:.2} vs {:.2} MiB/s (paper: generic faster inter-node)",
        gen8, ff8
    );
}
