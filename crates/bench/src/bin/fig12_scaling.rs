//! Figure 12 — scaling of one-sided strided communication on platforms
//! with hardware-supported RMA.
//!
//! Per-process `MPI_Put` bandwidth (the minimum of the per-process
//! maxima) as the number of active processes grows. SCI rows are measured
//! on the simulator with the ring-saturating traffic pattern (every
//! active node streams to its ring predecessor); SMP and T3E rows come
//! from the baseline scaling models.
//!
//! Run: `cargo run --release -p repro-bench --bin fig12_scaling`

use baselines::platforms;
use repro_bench::{scaling_put_bandwidth, BenchDoc};
use scimpi::ClusterSpec;
use simclock::stats::{series_table, Series};

fn main() {
    let access = 16 * 1024;
    let winsize = 128 * 1024;

    println!("== Figure 12: per-process put bandwidth [MiB/s], {access} B accesses ==\n");

    // SCI at 166 MHz and at the 200 MHz link upgrade (§5.3, Table 2
    // follow-up).
    let mut sci = Series::new("SCI 166MHz");
    let mut sci200 = Series::new("SCI 200MHz");
    for n in 2..=8usize {
        let spec = ClusterSpec::ringlet(n);
        let bw = scaling_put_bandwidth(spec, n, n - 1, access, winsize);
        sci.push(n as f64, bw.mib_per_sec());

        let spec200 =
            ClusterSpec::ringlet(n).params(sci_fabric::SciParams::default().with_link_200mhz());
        let bw200 = scaling_put_bandwidth(spec200, n, n - 1, access, winsize);
        sci200.push(n as f64, bw200.mib_per_sec());
        eprint!(".");
    }
    eprintln!();

    let mut series = vec![sci, sci200];
    for id in ["C", "F-s", "X-s"] {
        let p = platforms::by_id(id).expect("platform");
        let mut s = Series::new(id.to_string());
        let max_n = if id == "C" {
            32
        } else if id == "F-s" {
            24
        } else {
            4
        };
        let mut n = 2usize;
        while n <= max_n {
            s.push(n as f64, p.scaled_put_bw(n, access).mib_per_sec());
            n += if n < 8 { 1 } else { 4 };
        }
        series.push(s);
    }
    println!(
        "{}",
        series_table("procs", |x| format!("{}", x as usize), &series).render()
    );

    let mut doc = BenchDoc::new("fig12_scaling");
    for s in &series {
        doc.push_bw_series(s);
    }
    doc.write_and_report();

    println!("observations reproduced:");
    println!("  - SCI constant ~120 MiB/s per node up to 5 nodes, then the 166 MHz");
    println!("    ring saturates (paper: down to ~72 MiB/s at 8 nodes);");
    println!("  - the 200 MHz link restores scaling (linear with ring bandwidth);");
    println!("  - Xeon SMP collapses early; Sun Fire declines past 6 processes;");
    println!("  - Cray T3E stays constant out to 32 processes.");
}
