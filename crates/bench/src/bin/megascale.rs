//! Megascale smoke test for the event-driven backend: can the
//! deterministic scheduler carry four orders of magnitude more ranks
//! than the thread backend's free-running OS threads ever see in the
//! differential suite, at bounded memory and bounded wall-clock?
//!
//! Every rank runs a tiny but representative slice of the runtime —
//! a barrier, a parity-split eager ring exchange, and an allreduce —
//! so the run sweeps the mailbox path, the time barrier and the
//! collective tree through one shared event queue. The interesting
//! numbers are the scheduler's own statistics: total dispatch events,
//! the ready-heap high-water mark (bounded by the rank count — a
//! barrier release wakes the whole cluster at once, and that is the
//! worst case the heap ever holds) and the stall-round count (zero in
//! a healthy run — nobody needed a liveness sweep).
//!
//! The rank count comes from `MEGASCALE_RANKS` (default 4096, the CI
//! budget); the acceptance run uses 10000+. Virtual finish time and
//! every scheduler statistic are deterministic for a given rank count
//! and pinned exactly by `bench/baselines/tolerance.json`; the
//! wall-clock throughput (`ranks_per_sec`) is machine-dependent and
//! carries an effectively unbounded tolerance.
//!
//! Run: `cargo run --release -p repro-bench --bin megascale`

use obs::json::num;
use scimpi::{Backend, ClusterSpec, ReduceOp, Source, TagSel};
use simclock::SimTime;

const MSG_BYTES: usize = 64; // firmly eager: one mailbox deposit per hop

fn ranks_from_env() -> usize {
    match std::env::var("MEGASCALE_RANKS") {
        Ok(s) => s
            .trim()
            .parse()
            .unwrap_or_else(|e| panic!("MEGASCALE_RANKS={s:?} is not a rank count: {e}")),
        Err(_) => 4096,
    }
}

fn spec(ranks: usize) -> ClusterSpec {
    let mut spec = ClusterSpec::ringlet(ranks).backend(Backend::Event);
    spec.seed = 20020415; // IPPS 2002
    spec
}

/// One full run: returns the cluster-wide virtual finish time and the
/// scheduler statistics of the run.
fn megascale_run(ranks: usize) -> (SimTime, sched::Stats) {
    let times = scimpi::run(spec(ranks), move |r| {
        let me = r.rank();
        let n = r.size();
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        r.barrier();
        // Parity-split ring exchange: evens talk first, odds listen
        // first, so no rank ever blocks on a peer that is itself
        // blocked sending. Needs an even rank count.
        let payload = vec![(me & 0xff) as u8; MSG_BYTES];
        let mut buf = [0u8; MSG_BYTES];
        if me % 2 == 0 {
            r.send(right, 7, &payload).unwrap();
            r.recv(Source::Rank(left), TagSel::Value(7), &mut buf)
                .unwrap();
        } else {
            r.recv(Source::Rank(left), TagSel::Value(7), &mut buf)
                .unwrap();
            r.send(right, 7, &payload).unwrap();
        }
        assert_eq!(buf[0] as usize, left & 0xff, "ring payload corrupted");
        let mut sum = [1.0f64];
        r.allreduce(&mut sum, ReduceOp::Sum).unwrap();
        assert_eq!(sum[0] as usize, n, "allreduce lost a rank");
        r.barrier();
        r.now()
    });
    let finish = times.into_iter().max().expect("nonempty cluster");
    let stats = scimpi::last_event_stats().expect("event backend ran");
    (finish, stats)
}

fn main() {
    let ranks = ranks_from_env();
    assert!(
        ranks >= 2 && ranks.is_multiple_of(2),
        "megascale needs an even rank count >= 2"
    );
    println!("== Megascale event-backend smoke: {ranks} ranks ==\n");

    let wall = std::time::Instant::now();
    let (finish, stats) = megascale_run(ranks);
    let elapsed = wall.elapsed();
    let ranks_per_sec = ranks as f64 / elapsed.as_secs_f64();

    println!("virtual finish time:    {finish}");
    println!("dispatch events:        {}", stats.events);
    println!("ready-heap high water:  {}", stats.ready_high_water);
    println!("tasks high water:       {}", stats.tasks_high_water);
    println!("stall rounds:           {}", stats.stalls);
    println!(
        "wall clock:             {:.2} s  ({:.0} ranks/s)",
        elapsed.as_secs_f64(),
        ranks_per_sec
    );

    // Memory-boundedness: the ready heap never exceeds the rank count
    // (the worst case is a barrier release readying the whole cluster),
    // so queue memory is O(ranks), not O(events).
    assert!(
        stats.ready_high_water <= ranks,
        "ready heap ({}) exceeded the rank count ({ranks})",
        stats.ready_high_water
    );
    assert_eq!(
        stats.tasks_high_water, ranks,
        "every rank must be a live task at the first barrier"
    );

    let json = format!(
        "{{\"bench\":\"megascale\",\"backend\":\"event\",\"ranks\":{ranks},\
         \"msg_bytes\":{MSG_BYTES},\"finish_us\":{},\"events\":{},\
         \"ready_high_water\":{},\"tasks_high_water\":{},\"stalls\":{},\
         \"ranks_per_sec\":{},\"deterministic\":true}}\n",
        num(finish.as_ps() as f64 / 1e6),
        stats.events,
        stats.ready_high_water,
        stats.tasks_high_water,
        stats.stalls,
        num(ranks_per_sec),
    );
    match std::fs::write("BENCH_megascale.json", &json) {
        Ok(()) => println!("\nwrote BENCH_megascale.json"),
        Err(e) => eprintln!("BENCH_megascale.json not written: {e}"),
    }
}
