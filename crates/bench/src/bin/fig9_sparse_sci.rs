//! Figure 9 — performance of `MPI_Get`/`MPI_Put` in SCI-MPICH.
//!
//! The `sparse` micro-benchmark (Figure 8 pseudo-code): strided accesses
//! (stride 2) through a 256 kiB window between two ranks on distinct
//! nodes, fence synchronisation. Four configurations: {get, put} × window
//! in {shared SCI memory (direct), private memory (emulation)}.
//!
//! *Top table:* latency per communication call. *Bottom:* aggregate
//! bandwidth.
//!
//! Run: `cargo run --release -p repro-bench --bin fig9_sparse_sci`

use repro_bench::{internode_spec, sparse, sweep, BenchDoc, BenchPoint, SparseDir, SPARSE_WINDOW};
use scimpi::ObsConfig;
use simclock::stats::{fmt_bytes, series_table, Series};

fn main() {
    let configs = [
        ("put shared", SparseDir::Put, true),
        ("get shared", SparseDir::Get, true),
        ("put private", SparseDir::Put, false),
        ("get private", SparseDir::Get, false),
    ];
    let mut lat: Vec<Series> = configs.iter().map(|(n, _, _)| Series::new(*n)).collect();
    let mut bw: Vec<Series> = configs.iter().map(|(n, _, _)| Series::new(*n)).collect();
    let mut doc = BenchDoc::new("fig9_sparse_sci");

    for access in sweep(8, 64 * 1024) {
        for (i, (name, dir, shared)) in configs.iter().enumerate() {
            let res = sparse(internode_spec(), *dir, access, SPARSE_WINDOW, *shared);
            lat[i].push(access as f64, res.latency.as_us_f64());
            bw[i].push(access as f64, res.bandwidth.mib_per_sec());
            doc.push(
                name,
                BenchPoint::at(access as f64)
                    .mean_us(res.latency.as_us_f64())
                    .mbps(res.bandwidth.mib_per_sec()),
            );
        }
        eprint!(".");
    }
    eprintln!();
    doc.write_and_report();

    // Representative traced run (shared-window puts at 4 kiB accesses).
    let traced = internode_spec().obs(
        ObsConfig::with_trace("TRACE_fig9_sparse_sci.json")
            .and_counters("COUNTERS_fig9_sparse_sci.jsonl"),
    );
    sparse(traced, SparseDir::Put, 4096, SPARSE_WINDOW, true);
    println!("wrote TRACE_fig9_sparse_sci.json, COUNTERS_fig9_sparse_sci.jsonl");

    println!("== Figure 9 (top): latency per call [us] ==\n");
    println!("{}", series_table("access[B]", fmt_bytes, &lat).render());
    println!("== Figure 9 (bottom): bandwidth [MiB/s] ==\n");
    println!("{}", series_table("access[B]", fmt_bytes, &bw).render());

    println!("checks (paper section 4.3):");
    let at = |s: &Series, x: usize| s.at(x as f64).unwrap_or(0.0);
    println!(
        "  put shared >> get shared at 64k: {:.1} vs {:.1} MiB/s",
        at(&bw[0], 65536),
        at(&bw[1], 65536)
    );
    println!(
        "  get shared ~ private paths at 64k (all message-based): {:.1} vs {:.1} vs {:.1}",
        at(&bw[1], 65536),
        at(&bw[2], 65536),
        at(&bw[3], 65536)
    );
    println!(
        "  private latency dominated by interrupt+message at 8B: {:.1} us vs shared {:.1} us",
        at(&lat[2], 8),
        at(&lat[0], 8)
    );
}
