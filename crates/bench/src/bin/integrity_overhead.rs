//! The price of data integrity: virtual-time overhead of the three
//! [`IntegrityMode`]s over a mixed p2p + one-sided workload.
//!
//! Sweeps `integrity_mode` at a healthy fabric (pure protocol tax:
//! sequence-guard charges for `SequenceCheck`, CRC framing for
//! `EndToEnd`) and then raises the silent-corruption rate to show the two
//! failure philosophies: `Off` keeps its full speed but delivers corrupt
//! bytes (the `undetected` column), while `EndToEnd` keeps every byte
//! exact and pays for it in retransmissions.
//!
//! `SequenceCheck` runs only on the healthy fabric: at any positive rate
//! it (correctly) aborts the transfers instead of degrading, so there is
//! no throughput to report.
//!
//! Run: `cargo run --release -p repro-bench --bin integrity_overhead`

use obs::json::num;
use obs::Counter;
use sci_fabric::FaultConfig;
use scimpi::{ClusterSpec, IntegrityMode, ObsConfig, Source, TagSel, Tuning, WinMemory};
use simclock::stats::Table;
use simclock::SimTime;

const MSG_SIZE: usize = 256 * 1024;
const PUT_SIZE: usize = 128 * 1024;
const ROUNDS: usize = 4;

/// (mode, corrupt_rate) points, in table order. Dropped-store rate rides
/// along at a quarter of the corruption rate.
const POINTS: [(IntegrityMode, f64); 6] = [
    (IntegrityMode::Off, 0.0),
    (IntegrityMode::SequenceCheck, 0.0),
    (IntegrityMode::EndToEnd, 0.0),
    (IntegrityMode::Off, 1e-3),
    (IntegrityMode::EndToEnd, 1e-4),
    (IntegrityMode::EndToEnd, 1e-3),
];

fn mode_name(mode: IntegrityMode) -> &'static str {
    match mode {
        IntegrityMode::Off => "off",
        IntegrityMode::SequenceCheck => "sequence_check",
        IntegrityMode::EndToEnd => "end_to_end",
    }
}

fn spec_for(mode: IntegrityMode, corrupt: f64) -> ClusterSpec {
    let mut spec = ClusterSpec::ringlet(4)
        .tuning(Tuning {
            integrity_mode: mode,
            max_retransmits: 64,
            ..Tuning::default()
        })
        .obs(ObsConfig::enabled());
    spec.faults = FaultConfig::silent(corrupt, corrupt / 4.0);
    spec.seed = 20020415; // IPPS 2002
    spec
}

/// Ring-shift rendezvous messages plus fenced one-sided puts; returns
/// aggregate goodput in MiB/s.
fn throughput(mode: IntegrityMode, corrupt: f64) -> f64 {
    let times: Vec<SimTime> = scimpi::run(spec_for(mode, corrupt), |r| {
        let size = r.size();
        let right = (r.rank() + 1) % size;
        let left = (r.rank() + size - 1) % size;
        let msg = vec![r.rank() as u8; MSG_SIZE];
        let put = vec![0x5A; PUT_SIZE];
        let mem = r.alloc_mem(PUT_SIZE).unwrap();
        let mut win = r.win_create(WinMemory::Alloc(mem)).unwrap();
        win.fence(r).unwrap();
        for _ in 0..ROUNDS {
            let mut buf = vec![0u8; MSG_SIZE];
            // Even ranks send first — a deadlock-free ring shift through
            // the rendezvous protocol (ringlet sizes are even).
            if r.rank() % 2 == 0 {
                r.send(right, 7, &msg).unwrap();
                r.recv(Source::Rank(left), TagSel::Value(7), &mut buf)
                    .unwrap();
            } else {
                r.recv(Source::Rank(left), TagSel::Value(7), &mut buf)
                    .unwrap();
                r.send(right, 7, &msg).unwrap();
            }
            win.put(r, right, 0, &put).expect("put");
            win.fence(r).unwrap();
        }
        r.now()
    });
    let total_bytes = (times.len() * ROUNDS * (MSG_SIZE + PUT_SIZE)) as f64;
    let max_time = times.into_iter().max().expect("nonempty cluster");
    total_bytes / (1024.0 * 1024.0) / max_time.as_secs_f64()
}

fn main() {
    let mut table = Table::new(vec![
        "mode",
        "corrupt rate",
        "goodput [MiB/s]",
        "overhead",
        "injected",
        "detected",
        "retransmits",
        "undetected",
    ]);
    let mut points = Vec::new();
    let mut baseline = 0.0;
    for &(mode, corrupt) in &POINTS {
        let mbps = throughput(mode, corrupt);
        let injected = obs::counter_value(Counter::CorruptionsInjected);
        let detected = obs::counter_value(Counter::CorruptionsDetected);
        let retransmits = obs::counter_value(Counter::Retransmits);
        let undetected = obs::counter_value(Counter::UndetectedAtOff);
        if corrupt == 0.0 {
            assert_eq!(injected, 0, "a healthy fabric must not inject");
            assert_eq!(
                retransmits,
                0,
                "{}: zero corruption must mean zero retransmissions",
                mode_name(mode)
            );
        }
        if mode == IntegrityMode::EndToEnd {
            assert_eq!(undetected, 0, "EndToEnd leaves no fault uncovered");
        }
        if mode == IntegrityMode::Off && corrupt > 0.0 {
            assert!(undetected > 0, "Off must expose the injected faults");
        }
        if mode == IntegrityMode::Off && corrupt == 0.0 {
            baseline = mbps;
        }
        table.push_row(vec![
            mode_name(mode).into(),
            format!("{corrupt}"),
            format!("{mbps:.1}"),
            format!("{:.1}%", (1.0 - mbps / baseline) * 100.0),
            format!("{injected}"),
            format!("{detected}"),
            format!("{retransmits}"),
            format!("{undetected}"),
        ]);
        points.push(format!(
            "{{\"mode\":\"{}\",\"corrupt_rate\":{},\"mbps\":{},\"overhead_pct\":{},\
             \"corruptions_injected\":{injected},\"corruptions_detected\":{detected},\
             \"retransmits\":{retransmits},\"undetected_at_off\":{undetected}}}",
            mode_name(mode),
            num(corrupt),
            num(mbps),
            num((1.0 - mbps / baseline) * 100.0),
        ));
    }

    println!("== Integrity-mode overhead over a mixed p2p + one-sided workload ==\n");
    println!("{}", table.render());
    // Hand-built document: the per-point counter fields don't fit the
    // shared BenchPoint shape, but the envelope matches the other benches.
    let json = format!(
        "{{\"bench\":\"integrity_overhead\",\"msg_bytes\":{MSG_SIZE},\"put_bytes\":{PUT_SIZE},\
         \"rounds\":{ROUNDS},\"points\":[\n{}\n]}}\n",
        points.join(",\n")
    );
    match std::fs::write("BENCH_integrity_overhead.json", &json) {
        Ok(()) => println!("wrote BENCH_integrity_overhead.json"),
        Err(e) => eprintln!("BENCH_integrity_overhead.json not written: {e}"),
    }
}
