//! Graceful degradation under overload: offered load vs goodput for
//! every [`OverloadPolicy`].
//!
//! A fast sender floods a slow receiver (fixed 200 µs service time per
//! message) with eager messages while the sender's inter-message gap
//! sweeps from underload (gap > service) to saturation (gap = 0). The
//! pair's eager-credit budget is 8× oversubscribed at the top of the
//! sweep, so the run measures what each policy actually does when the
//! receiver cannot keep up:
//!
//! - `Stall` and `Degrade` deliver everything; their goodput at
//!   saturation must hold ≥ 70% of their sweep peak (the receiver, not
//!   the flow control, is the bottleneck).
//! - `Shed` and `Error` deliver only the burst prefix that found
//!   credits (credits fold back at sync points, and a lossy sender
//!   never waits for one), so their goodput is bounded but never zero.
//!
//! The document carries a `peak_backlog` section with the receiver's
//! mailbox high-water marks at saturation per policy — the governed
//! policies must stay at or below the credit budget.
//!
//! Everything is virtual time under one seed, so the bench asserts its
//! own determinism by building the whole document twice and comparing
//! bytes before writing `BENCH_overload_degradation.json` and
//! `PROFILE_overload_degradation.json`.
//!
//! Run: `cargo run --release -p repro-bench --bin overload_degradation`

use obs::Counter;
use repro_bench::{BenchDoc, BenchPoint};
use scimpi::{ClusterSpec, ErrorMode, ObsConfig, OverloadPolicy, Source, TagSel, Tuning};
use simclock::stats::Table;
use simclock::SimDuration;

/// Eager flood message size (under the 16 KiB eager threshold).
const MSG: usize = 4096;
/// Messages per run: 8× the credit budget at `MSG` bytes each.
const COUNT: usize = 64;
/// Pair eager-credit budget (the minimum `Tuning::validate` allows).
const BUDGET: usize = 16 * 1024;
/// Receiver service time per message.
const SERVICE_US: u64 = 200;
/// Sender inter-message gaps, underload → saturation.
const GAPS_US: [u64; 5] = [400, 200, 100, 50, 0];
/// Messages a lossy policy delivers: the burst prefix that fits the
/// byte budget (credits only fold back at sync points, and neither
/// `Shed` nor `Error` ever waits for a grant).
const LOSSY_DELIVERED: usize = BUDGET / MSG;
/// `Stall` last: the committed PROFILE then carries a live
/// `backpressure` wait bucket.
const POLICIES: [OverloadPolicy; 4] = [
    OverloadPolicy::Error,
    OverloadPolicy::Shed,
    OverloadPolicy::Degrade,
    OverloadPolicy::Stall,
];
const SEED: u64 = 20020415; // IPPS 2002

fn policy_name(p: OverloadPolicy) -> &'static str {
    match p {
        OverloadPolicy::Stall => "stall",
        OverloadPolicy::Degrade => "degrade",
        OverloadPolicy::Shed => "shed",
        OverloadPolicy::Error => "error",
    }
}

fn lossy(p: OverloadPolicy) -> bool {
    matches!(p, OverloadPolicy::Shed | OverloadPolicy::Error)
}

fn spec(policy: OverloadPolicy) -> ClusterSpec {
    let mut spec = ClusterSpec::ringlet(2)
        .errors(ErrorMode::ErrorsReturn)
        .obs(ObsConfig::enabled())
        .tuning(Tuning {
            eager_credits_bytes: BUDGET,
            eager_credit_slots: 256,
            overload_policy: policy,
            ..Tuning::default()
        });
    spec.seed = SEED;
    spec
}

fn payload(i: usize) -> Vec<u8> {
    (0..MSG).map(|j| (i * 131 + j * 7) as u8).collect()
}

struct RunOut {
    makespan_us: f64,
    goodput_mbps: f64,
    delivered: usize,
    peak_eager_bytes: u64,
}

/// One flood at one (policy, gap) point; asserts delivery and returns
/// the measured goodput plus the receiver's backlog high-water mark.
fn one_run(policy: OverloadPolicy, gap_us: u64) -> RunOut {
    let delivered = if lossy(policy) {
        LOSSY_DELIVERED
    } else {
        COUNT
    };
    let times = scimpi::run(spec(policy), move |r| {
        if r.rank() == 0 {
            let mut refused = 0usize;
            for i in 0..COUNT {
                if gap_us > 0 {
                    r.compute(SimDuration::from_us(gap_us));
                }
                match r.send(1, 9, &payload(i)) {
                    Ok(()) => {}
                    Err(e) => {
                        assert_eq!(policy, OverloadPolicy::Error, "only Error refuses: {e:?}");
                        refused += 1;
                    }
                }
            }
            if policy == OverloadPolicy::Error {
                assert_eq!(
                    refused,
                    COUNT - LOSSY_DELIVERED,
                    "refusals are deterministic"
                );
            } else {
                assert_eq!(refused, 0);
            }
        } else {
            for i in 0..delivered {
                r.compute(SimDuration::from_us(SERVICE_US));
                let mut buf = vec![0u8; MSG];
                r.recv(Source::Rank(0), TagSel::Value(9), &mut buf)
                    .expect("flood recv");
                assert_eq!(buf, payload(i), "message {i}: in order and bit-perfect");
            }
        }
        r.barrier();
        r.now()
    });
    let makespan = times.into_iter().max().expect("nonempty cluster");
    let makespan_us = makespan.as_ps() as f64 / 1e6;
    let goodput_mbps =
        (delivered * MSG) as f64 / (1024.0 * 1024.0) / (makespan.as_ps() as f64 / 1e12);
    let peak_eager_bytes = obs::peak_backlogs()
        .iter()
        .find(|p| p.rank == 1)
        .map(|p| p.eager_bytes)
        .unwrap_or(0);
    RunOut {
        makespan_us,
        goodput_mbps,
        delivered,
        peak_eager_bytes,
    }
}

/// One full sweep: the bench document, the profile JSON of the final
/// run, and the human table.
fn build() -> (BenchDoc, String, Table) {
    let mut doc = BenchDoc::new("overload_degradation");
    let mut table = Table::new(vec![
        "policy",
        "gap [us]",
        "makespan [us]",
        "goodput [MiB/s]",
        "delivered",
        "peak backlog [B]",
        "stalls/degr/shed/denied",
    ]);
    for policy in POLICIES {
        let name = policy_name(policy);
        let mut goodputs = Vec::new();
        for gap_us in GAPS_US {
            let out = one_run(policy, gap_us);
            let stalls = obs::counter_value(Counter::EagerCreditStalls);
            let degraded = obs::counter_value(Counter::DegradedPaths);
            let shed = obs::counter_value(Counter::MessagesShed);
            let denied = obs::counter_value(Counter::BudgetDenials);
            assert!(
                out.peak_eager_bytes <= BUDGET as u64,
                "{name} gap {gap_us}: backlog {} exceeds the {BUDGET}-byte budget",
                out.peak_eager_bytes
            );
            assert!(
                out.goodput_mbps > 0.0,
                "{name} gap {gap_us}: goodput is zero"
            );
            if gap_us == 0 {
                // The saturation run's high-water marks go into the doc.
                doc.record_peak_backlog(name);
                match policy {
                    OverloadPolicy::Stall => assert!(stalls > 0, "saturation must stall"),
                    OverloadPolicy::Degrade => assert!(degraded > 0, "saturation must degrade"),
                    OverloadPolicy::Shed => assert!(shed > 0, "saturation must shed"),
                    OverloadPolicy::Error => assert!(denied > 0, "saturation must refuse"),
                }
            }
            goodputs.push((gap_us, out.goodput_mbps));
            table.push_row(vec![
                name.to_string(),
                format!("{gap_us}"),
                format!("{:.1}", out.makespan_us),
                format!("{:.2}", out.goodput_mbps),
                format!("{}", out.delivered),
                format!("{}", out.peak_eager_bytes),
                format!("{stalls}/{degraded}/{shed}/{denied}"),
            ]);
            doc.push(
                name,
                BenchPoint::at(gap_us as f64)
                    .mean_us(out.makespan_us)
                    .mbps(out.goodput_mbps),
            );
        }
        if !lossy(policy) {
            // Underloaded points (gap > service) are bounded by their
            // own offered load; graceful degradation is judged where
            // the receiver is the bottleneck: goodput at every
            // *overloaded* point must hold ≥ 70% of the sweep peak.
            let peak = goodputs.iter().map(|&(_, g)| g).fold(0.0f64, f64::max);
            let floor = goodputs
                .iter()
                .filter(|&&(gap, _)| gap < SERVICE_US)
                .map(|&(_, g)| g)
                .fold(f64::INFINITY, f64::min);
            assert!(
                floor >= 0.7 * peak,
                "{name}: goodput under overload ({floor:.2} MiB/s) fell below 70% of the \
                 sweep peak ({peak:.2} MiB/s) — not graceful"
            );
        }
    }
    let profile = obs::report::last_profile()
        .map(|p| obs::report::profile_json(&p))
        .expect("obs-enabled run builds a profile");
    (doc, profile, table)
}

fn main() {
    let (doc, profile, table) = build();
    let (doc2, profile2, _) = build();
    assert_eq!(
        doc.to_json(),
        doc2.to_json(),
        "same seed must reproduce byte-identical results"
    );
    assert_eq!(
        profile, profile2,
        "same seed must reproduce a byte-identical profile"
    );

    println!("== Offered load vs goodput per overload policy ==\n");
    println!("{}", table.render());
    doc.write_and_report();
}
