//! Figure 11 — one-sided communication (sparse benchmark) across the
//! OSC-capable platforms, plus the VIA comparison of §5.3.
//!
//! Run: `cargo run --release -p repro-bench --bin fig11_sparse_platforms`

use baselines::platforms;
use baselines::OscSupport;
use repro_bench::{internode_spec, sparse, sweep, BenchDoc, BenchPoint, SparseDir, SPARSE_WINDOW};
use simclock::stats::{fmt_bytes, series_table, Series};

fn main() {
    let accesses = sweep(8, 64 * 1024);

    println!("== Figure 11 (top): put latency per call [us] ==\n");
    let mut lat: Vec<Series> = Vec::new();
    let mut bw: Vec<Series> = Vec::new();

    // SCI-MPICH: direct (shared window) and message-based (private).
    let mut sci_lat = Series::new("M-S direct");
    let mut sci_bw = Series::new("M-S direct");
    let mut sci_msg_lat = Series::new("M-S msg");
    let mut sci_msg_bw = Series::new("M-S msg");
    for &a in &accesses {
        let direct = sparse(internode_spec(), SparseDir::Put, a, SPARSE_WINDOW, true);
        let msg = sparse(internode_spec(), SparseDir::Put, a, SPARSE_WINDOW, false);
        sci_lat.push(a as f64, direct.latency.as_us_f64());
        sci_bw.push(a as f64, direct.bandwidth.mib_per_sec());
        sci_msg_lat.push(a as f64, msg.latency.as_us_f64());
        sci_msg_bw.push(a as f64, msg.bandwidth.mib_per_sec());
        eprint!(".");
    }
    eprintln!();
    lat.extend([sci_lat, sci_msg_lat]);
    bw.extend([sci_bw, sci_msg_bw]);

    for p in platforms::all() {
        if p.osc.support == OscSupport::No {
            continue;
        }
        // X-s: only MPI_Get worked in the paper; we still tabulate its
        // model (footnote b) using get parameters.
        let use_get = p.osc.support == OscSupport::GetOnly;
        let mut l = Series::new(p.id);
        let mut b = Series::new(p.id);
        for &a in &accesses {
            let (t, bwv) = if use_get {
                (p.osc.get_time(a), p.osc.get_bandwidth(a))
            } else {
                (p.osc.put_time(a), p.osc.put_bandwidth(a))
            };
            l.push(a as f64, t.as_us_f64());
            b.push(a as f64, bwv.mib_per_sec());
        }
        lat.push(l);
        bw.push(b);
    }

    println!("{}", series_table("access[B]", fmt_bytes, &lat).render());
    println!("== Figure 11 (bottom): bandwidth [MiB/s] ==\n");
    println!("{}", series_table("access[B]", fmt_bytes, &bw).render());

    // Latency and bandwidth curves share labels and x values: merge each
    // pair into one series of complete points.
    let mut doc = BenchDoc::new("fig11_sparse_platforms");
    for (l, b) in lat.iter().zip(&bw) {
        for (&(x, us), &(_, mbps)) in l.points.iter().zip(&b.points) {
            doc.push(&l.label, BenchPoint::at(x).mean_us(us).mbps(mbps));
        }
    }
    doc.write_and_report();

    // §5.3 VIA comparison at 1024 B.
    let via = platforms::by_id("VIA").expect("VIA model present");
    let via_lat = via.osc.put_time(1024).as_us_f64();
    let sci_direct = sparse(internode_spec(), SparseDir::Put, 1024, SPARSE_WINDOW, true)
        .latency
        .as_us_f64();
    let sci_msg = sparse(internode_spec(), SparseDir::Put, 1024, SPARSE_WINDOW, false)
        .latency
        .as_us_f64();
    println!("VIA comparison at 1024 B (paper: ~3x vs SCI messages, up to ~15x vs direct put):");
    println!(
        "  VIA {via_lat:.1} us = {:.1}x SCI-msg ({sci_msg:.1} us) = {:.1}x SCI-direct ({sci_direct:.1} us)",
        via_lat / sci_msg,
        via_lat / sci_direct
    );
    println!("observations: Sun shm very fast; Cray in the SCI band; LAM/ethernet");
    println!("latencies in the 100s of us with ~10 MiB/s peak; LAM shm slightly");
    println!("below SCI-MPICH over SCI.");
}
