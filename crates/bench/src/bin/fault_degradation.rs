//! Throughput degradation under injected fabric faults.
//!
//! Sweeps the transaction error rate over a multi-ring cluster while every
//! rank streams large one-sided puts at its ring neighbour, and reports
//! how aggregate throughput degrades as the fault-tolerant protocol layer
//! absorbs retries, route failovers, and direct→emulated fallbacks. The
//! recovery counters for each rate ride along in the JSON document so a
//! regression check can assert the machinery actually engaged (all zero at
//! rate 0, nonzero above).
//!
//! `max_retries` is pinned low so a realistic share of bursts escalates
//! from soft retry to hard failure, and `osc_fallback_threshold` to 1 so a
//! single hard failure demotes the target — the bench then measures the
//! cost of the *recovery paths*, not just the retry latency.
//!
//! Run: `cargo run --release -p repro-bench --bin fault_degradation`

use obs::json::num;
use obs::Counter;
use sci_fabric::{death_schedule, FaultConfig};
use scimpi::{shrink, ClusterSpec, ErrorMode, ObsConfig, Tuning, WinMemory};
use simclock::stats::Table;
use simclock::{SimDuration, SimTime};

const PUT_SIZE: usize = 128 * 1024;
const ROUNDS: usize = 8;
const RATES: [f64; 4] = [0.0, 0.01, 0.05, 0.1];

/// The recovery-counter totals of one run, in JSON field order.
const RECOVERY: [(&str, Counter); 8] = [
    ("link_txn_retries", Counter::LinkTxnRetries),
    ("link_hard_failures", Counter::LinkHardFailures),
    ("route_failovers", Counter::RouteFailovers),
    ("route_heals", Counter::RouteHeals),
    ("osc_fallbacks", Counter::OscFallbacks),
    ("osc_repromotions", Counter::OscRepromotions),
    ("peers_declared_dead", Counter::PeersDeclaredDead),
    ("protocol_timeouts", Counter::ProtocolTimeouts),
];

fn spec_for(rate: f64) -> ClusterSpec {
    let mut spec = ClusterSpec::multi_ring(2, 4)
        .errors(ErrorMode::ErrorsReturn)
        .tuning(Tuning {
            osc_fallback_threshold: 1,
            ..Tuning::default()
        })
        .obs(ObsConfig::enabled());
    spec.faults = FaultConfig {
        error_rate: rate,
        max_retries: 1,
        ..FaultConfig::default()
    };
    spec.seed = 20020415; // IPPS 2002
    spec
}

/// Run the workload and return aggregate throughput in MiB/s.
fn throughput_at(rate: f64) -> f64 {
    let times: Vec<SimTime> = scimpi::run(spec_for(rate), |r| {
        let size = r.size();
        let mem = r.alloc_mem(PUT_SIZE).unwrap();
        let mut win = r.win_create(WinMemory::Alloc(mem)).unwrap();
        let data = vec![r.rank() as u8; PUT_SIZE];
        win.fence(r).unwrap();
        for _ in 0..ROUNDS {
            let target = (r.rank() + 1) % size;
            // With `osc_fallback_threshold: 1` a hard failure demotes the
            // target and the same call is served by the emulation path, so
            // the put itself never errors — its *cost* is what degrades.
            win.put(r, target, 0, &data)
                .expect("fallback absorbs hard failures");
            // The fence re-promotes demoted targets (the admin route is
            // healthy; only random transaction faults are injected), so
            // every round re-attempts the direct path first.
            win.fence(r).unwrap();
        }
        r.now()
    });
    let total_bytes = (times.len() * ROUNDS * PUT_SIZE) as f64;
    let max_time = times.into_iter().max().expect("nonempty cluster");
    total_bytes / (1024.0 * 1024.0) / max_time.as_secs_f64()
}

/// Same streaming workload, but one seeded rank dies halfway through:
/// the survivors shrink to the new membership, rebuild their window, and
/// finish the remaining rounds. The returned MiB/s is the job's
/// aggregate over its whole (stalled-and-shrunk) lifetime — what a user
/// actually retains when a rank is lost at this fault rate.
fn survivor_throughput_at(rate: f64) -> f64 {
    let victim = death_schedule(20020415, 8, 1, SimDuration::from_ms(10))[0].node;
    let results: Vec<(SimTime, usize)> = scimpi::run(spec_for(rate), move |r| {
        let mem = r.alloc_mem(PUT_SIZE).unwrap();
        let mut win = r.win_create(WinMemory::Alloc(mem)).unwrap();
        let data = vec![r.rank() as u8; PUT_SIZE];
        win.fence(r).unwrap();
        let mut sent = 0usize;
        for _ in 0..ROUNDS / 2 {
            let target = (r.rank() + 1) % r.size();
            win.put(r, target, 0, &data)
                .expect("fallback absorbs hard failures");
            win.fence(r).unwrap();
            sent += PUT_SIZE;
        }
        r.barrier();
        if r.world_rank() == victim {
            r.fabric().faults().kill_node(r.node().0);
            return (r.now(), sent);
        }
        shrink(r).expect("survivors agree on the shrunk membership");
        // The old window is pinned to the dead epoch; stream the second
        // half through a fresh one over the survivors.
        let mem = r.alloc_mem(PUT_SIZE).unwrap();
        let mut win = r.win_create(WinMemory::Alloc(mem)).unwrap();
        win.fence(r).unwrap();
        for _ in 0..ROUNDS / 2 {
            let target = (r.rank() + 1) % r.size();
            win.put(r, target, 0, &data)
                .expect("fallback absorbs hard failures");
            win.fence(r).unwrap();
            sent += PUT_SIZE;
        }
        (r.now(), sent)
    });
    let total_bytes: f64 = results.iter().map(|&(_, b)| b as f64).sum();
    let max_time = results.iter().map(|&(t, _)| t).max().expect("nonempty");
    total_bytes / (1024.0 * 1024.0) / max_time.as_secs_f64()
}

fn main() {
    let mut table = Table::new(vec![
        "error rate",
        "throughput [MiB/s]",
        "degradation",
        "survivor [MiB/s]",
        "hard failures",
        "failovers",
        "fallbacks",
        "repromotions",
    ]);
    let mut points = Vec::new();
    let mut baseline = 0.0;
    for &rate in &RATES {
        let mbps = throughput_at(rate);
        let counters: Vec<(&str, u64)> = RECOVERY
            .iter()
            .map(|&(name, c)| (name, obs::counter_value(c)))
            .collect();
        let total_recoveries: u64 = counters.iter().map(|&(_, v)| v).sum();
        if rate == 0.0 {
            baseline = mbps;
            assert_eq!(
                total_recoveries, 0,
                "a healthy fabric must not trip any recovery counter"
            );
            assert_eq!(
                obs::counter_value(Counter::Retransmits),
                0,
                "a healthy fabric must not trip an integrity retransmission"
            );
        } else {
            assert!(
                total_recoveries > 0,
                "error rate {rate} engaged no recovery machinery"
            );
        }
        // Runs after the counter snapshot: the kill-one scenario trips
        // death/agreement counters that must not pollute the sweep's.
        let survivor_mbps = survivor_throughput_at(rate);
        assert!(
            survivor_mbps < mbps,
            "losing a rank at rate {rate} cannot speed the job up"
        );
        let find = |name: &str| counters.iter().find(|&&(n, _)| n == name).unwrap().1;
        table.push_row(vec![
            format!("{rate}"),
            format!("{mbps:.1}"),
            format!("{:.1}%", (1.0 - mbps / baseline) * 100.0),
            format!("{survivor_mbps:.1}"),
            format!("{}", find("link_hard_failures")),
            format!("{}", find("route_failovers")),
            format!("{}", find("osc_fallbacks")),
            format!("{}", find("osc_repromotions")),
        ]);
        let recovery_json = counters
            .iter()
            .map(|&(name, v)| format!("\"{name}\":{v}"))
            .collect::<Vec<_>>()
            .join(",");
        points.push(format!(
            "{{\"error_rate\":{},\"mbps\":{},\"degradation_pct\":{},\"survivor_mbps\":{},\"recovery\":{{{}}}}}",
            num(rate),
            num(mbps),
            num((1.0 - mbps / baseline) * 100.0),
            num(survivor_mbps),
            recovery_json
        ));
    }

    println!("== One-sided throughput vs injected fault rate ==\n");
    println!("{}", table.render());
    // Hand-built document: the recovery-counter objects don't fit the
    // shared BenchPoint shape, but the envelope matches the other benches.
    let json = format!(
        "{{\"bench\":\"fault_degradation\",\"put_bytes\":{PUT_SIZE},\"rounds\":{ROUNDS},\"points\":[\n{}\n]}}\n",
        points.join(",\n")
    );
    match std::fs::write("BENCH_fault_degradation.json", &json) {
        Ok(()) => println!("wrote BENCH_fault_degradation.json"),
        Err(e) => eprintln!("BENCH_fault_degradation.json not written: {e}"),
    }
}
