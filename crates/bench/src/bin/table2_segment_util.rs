//! Table 2 — scalability for different segment-utilisation levels.
//!
//! On the 8-node ringlet, `n` active nodes stream large strided puts
//! either to their ring successor (minimal utilisation: 1 transfer per
//! segment) or to their ring predecessor (saturating utilisation: every
//! segment shared by all active transfers). Reported per paper: per-node
//! and accumulated bandwidth, offered ring load, and ring efficiency —
//! plus the 200 MHz link-frequency follow-up.
//!
//! Run: `cargo run --release -p repro-bench --bin table2_segment_util`

use repro_bench::{scaling_put_bandwidth, BenchDoc, BenchPoint};
use sci_fabric::SciParams;
use scimpi::ClusterSpec;
use simclock::stats::Table;

fn measure(params: SciParams, label: &str, doc: &mut BenchDoc) {
    let nominal = params.link_bandwidth.mib_per_sec();
    println!("== Table 2 ({label}, nominal link {nominal:.0} MiB/s) ==\n");
    let mut t = Table::new(vec![
        "nodes",
        "1tr p.node",
        "1tr acc",
        "sat p.node",
        "sat acc",
        "load",
        "eff",
    ]);
    let access = 16 * 1024;
    let winsize = 128 * 1024;
    for n in 4..=8usize {
        let spec = || ClusterSpec::ringlet(8).params(params.clone());
        let neigh = scaling_put_bandwidth(spec(), n, 1, access, winsize).mib_per_sec();
        let sat = scaling_put_bandwidth(spec(), n, 7, access, winsize).mib_per_sec();
        doc.push(
            &format!("{label} 1 transfer per segment"),
            BenchPoint::at(n as f64).mbps(neigh),
        );
        doc.push(
            &format!("{label} saturating"),
            BenchPoint::at(n as f64).mbps(sat),
        );
        let offered_load = n as f64 * neigh / nominal;
        let eff = n as f64 * sat / nominal;
        t.push_row(vec![
            format!("{n}"),
            format!("{neigh:.2}"),
            format!("{:.1}", n as f64 * neigh),
            format!("{sat:.2}"),
            format!("{:.1}", n as f64 * sat),
            format!("{:.1}%", offered_load * 100.0),
            format!("{:.1}%", eff * 100.0),
        ]);
        eprint!(".");
    }
    eprintln!();
    println!("{}", t.render());
}

fn main() {
    let mut doc = BenchDoc::new("table2_segment_util");
    measure(SciParams::default(), "166 MHz links", &mut doc);
    println!("paper anchors: 1tr p.node constant ~120.8; sat p.node 120.7 ->");
    println!("62.78 from 4 to 8 nodes; load 152.5% with eff 79.3% at 8 nodes.\n");

    measure(
        SciParams::default().with_link_200mhz(),
        "200 MHz links",
        &mut doc,
    );
    println!("paper: the worst-case bandwidth increases linearly with the ring");
    println!("bandwidth, so 8 nodes per ringlet become reasonable (512-node");
    println!("systems with a 3D-torus of ringlets).");
    doc.write_and_report();
}
