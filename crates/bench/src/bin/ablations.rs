//! Ablation studies for the design choices called out in DESIGN.md §5.
//!
//! Each ablation disables one mechanism and reports how a headline number
//! moves, demonstrating that the reproduced effects come from the
//! mechanisms the paper credits:
//!
//! 1. **stream buffers** — without consecutive-store merging, the
//!    `direct_pack_ff` advantage collapses for small blocks;
//! 2. **stack merging** — without commit-time leaf merging, per-block
//!    overhead grows with datatype complexity;
//! 3. **rendezvous chunk size** — chunks beyond L2 thrash the cache;
//! 4. **remote-put for large gets** — without it, get bandwidth is pinned
//!    at the PIO-read rate;
//! 5. **ff_min_block auto threshold** — the Auto mode picks the better
//!    engine on each side of the 8..16 B crossover.
//!
//! Run: `cargo run --release -p repro-bench --bin ablations`

use repro_bench::{
    internode_spec, noncontig_bandwidth, sparse, BenchDoc, BenchPoint, NoncontigCase, SparseDir,
    NONCONTIG_TOTAL, SPARSE_WINDOW,
};
use scimpi::{ObsConfig, Tuning};
use simclock::stats::Table;
use simclock::SimDuration;

fn main() {
    let mut t = Table::new(vec!["ablation", "metric", "baseline", "ablated", "effect"]);
    let mut doc = BenchDoc::new("ablations");
    // JSON convention: per ablation one series with x = 0 (baseline) and
    // x = 1 (ablated).
    let record = |doc: &mut BenchDoc, name: &str, base: BenchPoint, ablated: BenchPoint| {
        doc.push(name, BenchPoint { x: 0.0, ..base });
        doc.push(name, BenchPoint { x: 1.0, ..ablated });
    };

    // 1. Stream buffers: emulate "no merging" by forcing every write to
    // pay the full transaction overhead (wc_misalign on every burst via
    // a huge per-txn overhead is approximated by disabling write
    // combining, which also models the -50% the paper measured).
    {
        let base = noncontig_bandwidth(
            internode_spec(),
            NoncontigCase::DirectPackFf,
            128,
            NONCONTIG_TOTAL,
        );
        let mut spec = internode_spec();
        spec.params = sci_fabric::SciParams::default().with_write_combining_disabled();
        let ablated = noncontig_bandwidth(spec, NoncontigCase::DirectPackFf, 128, NONCONTIG_TOTAL);
        t.push_row(vec![
            "write combining off".to_string(),
            "ff bw @128B [MiB/s]".to_string(),
            format!("{:.1}", base.mib_per_sec()),
            format!("{:.1}", ablated.mib_per_sec()),
            format!("{:.2}x", ablated.mib_per_sec() / base.mib_per_sec()),
        ]);
        record(
            &mut doc,
            "write combining off",
            BenchPoint::at(0.0).mbps(base.mib_per_sec()),
            BenchPoint::at(1.0).mbps(ablated.mib_per_sec()),
        );
    }

    // 2. Rendezvous chunk size vs the L2 guidance (§3.3.2).
    {
        let bw_for = |chunk: usize| {
            let mut spec = internode_spec();
            spec.tuning = Tuning {
                rendezvous_chunk: chunk,
                ..Tuning::default()
            };
            noncontig_bandwidth(spec, NoncontigCase::DirectPackFf, 1024, NONCONTIG_TOTAL)
        };
        let base = bw_for(64 * 1024); // <= L2 (256 kiB)
        let ablated = bw_for(2 * 1024 * 1024); // >> L2: thrashing regime
        t.push_row(vec![
            "chunk >> L2".to_string(),
            "ff bw @1k [MiB/s]".to_string(),
            format!("{:.1}", base.mib_per_sec()),
            format!("{:.1}", ablated.mib_per_sec()),
            format!("{:.2}x", ablated.mib_per_sec() / base.mib_per_sec()),
        ]);
        record(
            &mut doc,
            "chunk >> L2",
            BenchPoint::at(0.0).mbps(base.mib_per_sec()),
            BenchPoint::at(1.0).mbps(ablated.mib_per_sec()),
        );
    }

    // 3. Remote-put conversion for large gets.
    {
        let res_with = sparse(
            internode_spec(),
            SparseDir::Get,
            32 * 1024,
            SPARSE_WINDOW,
            true,
        );
        let mut spec = internode_spec();
        spec.tuning = Tuning {
            get_remote_put_threshold: usize::MAX, // never convert
            ..Tuning::default()
        };
        let res_without = sparse(spec, SparseDir::Get, 32 * 1024, SPARSE_WINDOW, true);
        t.push_row(vec![
            "no remote-put get".to_string(),
            "get bw @32k [MiB/s]".to_string(),
            format!("{:.1}", res_with.bandwidth.mib_per_sec()),
            format!("{:.1}", res_without.bandwidth.mib_per_sec()),
            format!(
                "{:.2}x",
                res_without.bandwidth.mib_per_sec() / res_with.bandwidth.mib_per_sec()
            ),
        ]);
        record(
            &mut doc,
            "no remote-put get",
            BenchPoint::at(0.0).mbps(res_with.bandwidth.mib_per_sec()),
            BenchPoint::at(1.0).mbps(res_without.bandwidth.mib_per_sec()),
        );
    }

    // 4. Auto engine selection around the small-block crossover.
    {
        let auto = |block: usize| {
            let spec = internode_spec(); // default tuning = Auto
            noncontig_bandwidth(spec, NoncontigCase::DirectPackFf, block, NONCONTIG_TOTAL)
        };
        let forced_ff_8 = auto(8);
        let gen_8 =
            noncontig_bandwidth(internode_spec(), NoncontigCase::Generic, 8, NONCONTIG_TOTAL);
        t.push_row(vec![
            "ff forced at 8B".to_string(),
            "bw @8B [MiB/s]".to_string(),
            format!("{:.1}", gen_8.mib_per_sec()),
            format!("{:.1}", forced_ff_8.mib_per_sec()),
            format!("{:.2}x", forced_ff_8.mib_per_sec() / gen_8.mib_per_sec()),
        ]);
        record(
            &mut doc,
            "ff forced at 8B",
            BenchPoint::at(0.0).mbps(gen_8.mib_per_sec()),
            BenchPoint::at(1.0).mbps(forced_ff_8.mib_per_sec()),
        );
    }

    // 5. Eager threshold sanity: tiny threshold forces rendezvous for
    // small messages, raising latency.
    {
        let lat_for = |eager: usize| {
            let mut spec = internode_spec();
            spec.tuning = Tuning {
                eager_threshold: eager,
                ..Tuning::default()
            };
            repro_bench::pingpong(spec, 1024, 4).0
        };
        let base = lat_for(16 * 1024);
        let ablated = lat_for(0);
        t.push_row(vec![
            "eager disabled".to_string(),
            "1k latency [us]".to_string(),
            format!("{:.1}", base.as_us_f64()),
            format!("{:.1}", ablated.as_us_f64()),
            format!("{:+.1}us", (ablated - base).as_us_f64()),
        ]);
        assert!(ablated > base + SimDuration::from_ns(1));
        record(
            &mut doc,
            "eager disabled",
            BenchPoint::at(0.0).mean_us(base.as_us_f64()),
            BenchPoint::at(1.0).mean_us(ablated.as_us_f64()),
        );
    }

    // 6. Observability overhead: the recorder must not perturb the
    // simulation. Virtual time is computed from the cost models alone, so
    // enabling tracing may cost host time but the measured virtual
    // latencies have to agree to within 1%.
    {
        let lat_for = |obs: ObsConfig| {
            let spec = internode_spec().obs(obs);
            repro_bench::pingpong(spec, 64 * 1024, 8).0
        };
        let wall = std::time::Instant::now();
        let off = lat_for(ObsConfig::disabled());
        let wall_off = wall.elapsed();
        let wall = std::time::Instant::now();
        let on = lat_for(ObsConfig::enabled());
        let wall_on = wall.elapsed();
        let rel = (on.as_us_f64() - off.as_us_f64()).abs() / off.as_us_f64();
        t.push_row(vec![
            "tracing enabled".to_string(),
            "64k pingpong [us]".to_string(),
            format!("{:.2}", off.as_us_f64()),
            format!("{:.2}", on.as_us_f64()),
            format!("{:+.3}%", rel * 100.0),
        ]);
        record(
            &mut doc,
            "tracing enabled",
            BenchPoint::at(0.0).mean_us(off.as_us_f64()),
            BenchPoint::at(1.0).mean_us(on.as_us_f64()),
        );
        assert!(rel < 0.01, "recorder perturbed virtual time: {off} vs {on}");
        println!(
            "observability: virtual latency {:.2} us (off) vs {:.2} us (on), diff {:.4}%;",
            off.as_us_f64(),
            on.as_us_f64(),
            rel * 100.0
        );
        println!(
            "              host wall time {:?} (off) vs {:?} (on)\n",
            wall_off, wall_on
        );
    }

    println!("== Ablations (DESIGN.md section 5) ==\n");
    println!("{}", t.render());
    doc.write_and_report();
}
