//! Compute/communication overlap bought by the nonblocking request
//! engine, measured on a ring halo exchange at rendezvous sizes.
//!
//! Every rank ships two 128 KiB halo rows to its right neighbour each
//! iteration (receiving the matching rows from the left — routes stay
//! link-disjoint, so the run is bit-identical under a fixed seed) and
//! then works on its interior points. The *blocking* arm exchanges
//! first and computes after; the *nonblocking* arm posts
//! `isend`/`irecv`, computes while the wire drains, and `waitall`s.
//! The compute grain is swept relative to the calibrated communication
//! time of one iteration, which is where the overlap story lives: at
//! small grains there is little to hide behind, near 1:1 the transfer
//! disappears almost entirely, far past 1:1 compute dominates both
//! arms and the *relative* saving shrinks again.
//!
//! The binary asserts the paper-era promise the engine exists for — at
//! a 1:1 grain, 4 ranks must save at least 25 % of virtual time — and
//! that two same-seed runs agree bit for bit.
//!
//! Run: `cargo run --release -p repro-bench --bin overlap_halo`

use obs::json::num;
use obs::{Counter, WaitKind};
use scimpi::{ClusterSpec, ObsConfig, RecvBuf, SendData, Source, TagSel};
use simclock::stats::Table;
use simclock::{SimDuration, SimTime};

const RANKS: usize = 4;
const HALO_BYTES: usize = 128 * 1024; // rendezvous territory
const ROWS: usize = 2; // halo rows per iteration
const ITERS: usize = 6;

/// Compute grain per iteration as a multiple of the calibrated
/// per-iteration communication time.
const GRAINS: [f64; 4] = [0.25, 0.5, 1.0, 2.0];

fn spec() -> ClusterSpec {
    let mut spec = ClusterSpec::ringlet(RANKS).obs(ObsConfig::enabled());
    spec.seed = 20020415; // IPPS 2002
    spec
}

/// What one full run of the halo loop measured: the cluster-wide finish
/// time plus the wait-state attribution the profiler recorded for it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct RunStats {
    finish: SimTime,
    /// Sum of every rank's classified wait time \[ps\].
    wait_ps: u64,
    /// The request-wait share of `wait_ps` \[ps\].
    request_wait_ps: u64,
    /// `Counter::OverlapSavedNs` credited by the request engine \[ns\].
    credited_ns: u64,
}

/// One full run of the halo loop.
fn halo_run(nonblocking: bool, compute: SimDuration) -> RunStats {
    let times = scimpi::run(spec(), move |r| {
        let me = r.rank();
        let n = r.size();
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        let rows: Vec<Vec<u8>> = (0..ROWS)
            .map(|k| {
                (0..HALO_BYTES)
                    .map(|i| (me * 31 + k * 13 + i * 7) as u8)
                    .collect()
            })
            .collect();
        for _ in 0..ITERS {
            if nonblocking {
                let mut rreqs: Vec<_> = (0..ROWS)
                    .map(|k| {
                        r.irecv(Source::Rank(left), TagSel::Value(k as i32), HALO_BYTES)
                            .unwrap()
                    })
                    .collect();
                let mut sreqs: Vec<_> = (0..ROWS)
                    .map(|k| r.isend(right, k as i32, &rows[k]).unwrap())
                    .collect();
                // Interior points: work that does not need the halos.
                r.compute(compute);
                r.waitall(&mut sreqs).unwrap();
                let done = r.waitall(&mut rreqs).unwrap();
                for (k, d) in done.iter().enumerate() {
                    assert_eq!(d.data.len(), HALO_BYTES, "row {k} truncated");
                }
            } else {
                for (k, row) in rows.iter().enumerate() {
                    let mut buf = vec![0u8; HALO_BYTES];
                    r.sendrecv(
                        right,
                        k as i32,
                        SendData::Bytes(row),
                        Source::Rank(left),
                        TagSel::Value(k as i32),
                        RecvBuf::Bytes(&mut buf),
                    )
                    .unwrap();
                }
                r.compute(compute);
            }
            r.barrier();
        }
        r.now()
    });
    let finish = times.into_iter().max().expect("nonempty cluster");
    let profile = obs::report::last_profile().expect("observability enabled");
    RunStats {
        finish,
        wait_ps: profile.total_wait_ps(),
        request_wait_ps: profile
            .ranks
            .iter()
            .map(|r| r.wait_ps[WaitKind::RequestWait as usize])
            .sum(),
        credited_ns: obs::counter_value(Counter::OverlapSavedNs),
    }
}

fn main() {
    // Calibrate: the blocking arm with zero compute is pure exchange.
    let comm_only = halo_run(false, SimDuration::ZERO).finish;
    let comm_per_iter = SimDuration::from_ps(comm_only.as_ps() / ITERS as u64);
    println!(
        "== Overlap on a {RANKS}-rank ring halo exchange \
         ({ROWS} x {} KiB per iteration, {ITERS} iterations) ==\n",
        HALO_BYTES / 1024
    );
    println!(
        "calibrated communication time: {} us per iteration\n",
        comm_per_iter.as_ps() / 1_000_000
    );

    let mut table = Table::new(vec![
        "compute : comm",
        "blocking [us]",
        "nonblocking [us]",
        "saved",
        "wait blk [us]",
        "wait nb [us]",
        "overlap credited [us]",
    ]);
    let mut points = Vec::new();
    let mut saving_at_parity = 0.0;
    for &grain in &GRAINS {
        let compute = SimDuration::from_ps((comm_per_iter.as_ps() as f64 * grain) as u64);
        let blocking = halo_run(false, compute);
        let nonblocking = halo_run(true, compute);
        let t_blocking = blocking.finish;
        let t_nonblocking = nonblocking.finish;
        let credited_ns = nonblocking.credited_ns;
        let saving = 1.0 - t_nonblocking.as_ps() as f64 / t_blocking.as_ps() as f64;
        if grain == 1.0 {
            saving_at_parity = saving;
        }

        // The profiler must agree with the clocks: overlapping transfers
        // with compute removes classified wait time, so the nonblocking
        // arm has to wait strictly less than the blocking arm at every
        // grain.
        assert!(
            nonblocking.wait_ps < blocking.wait_ps,
            "attribution: nonblocking arm must wait less than blocking \
             at grain {grain} (blocking {} ps, nonblocking {} ps)",
            blocking.wait_ps,
            nonblocking.wait_ps
        );

        // Cross-check the engine's self-reported overlap against the
        // profiler. The counter credits every request for the time it was
        // in flight while its rank advanced, so four concurrent requests
        // hiding behind the same compute interval each earn credit for
        // it — the counter upper-bounds the wall-clock wait reduction
        // (measured ratio here: ~0.1 at thin grains, ~0.3 once the
        // transfers hide fully) and can never under-report it.
        let delta_wait_ns = (blocking.wait_ps - nonblocking.wait_ps) / 1_000;
        assert!(
            delta_wait_ns <= credited_ns,
            "attribution: wall-clock wait cut ({delta_wait_ns} ns) cannot \
             exceed the per-request overlap credit ({credited_ns} ns) at \
             grain {grain}"
        );

        table.push_row(vec![
            format!("{grain:.2}"),
            format!("{:.1}", t_blocking.as_ps() as f64 / 1e6),
            format!("{:.1}", t_nonblocking.as_ps() as f64 / 1e6),
            format!("{:.1}%", saving * 100.0),
            format!("{:.1}", blocking.wait_ps as f64 / 1e6),
            format!("{:.1}", nonblocking.wait_ps as f64 / 1e6),
            format!("{:.1}", credited_ns as f64 / 1e3),
        ]);
        points.push(format!(
            "{{\"compute_to_comm\":{},\"blocking_us\":{},\"nonblocking_us\":{},\
             \"saving_pct\":{},\"wait_blocking_us\":{},\"wait_nonblocking_us\":{},\
             \"request_wait_us\":{},\"overlap_saved_ns\":{credited_ns}}}",
            num(grain),
            num(t_blocking.as_ps() as f64 / 1e6),
            num(t_nonblocking.as_ps() as f64 / 1e6),
            num(saving * 100.0),
            num(blocking.wait_ps as f64 / 1e6),
            num(nonblocking.wait_ps as f64 / 1e6),
            num(nonblocking.request_wait_ps as f64 / 1e6),
        ));

        println!(
            "grain {grain:.2}: wait cut by {:.1} us, engine credited {:.1} us \
             (ratio {:.3})",
            delta_wait_ns as f64 / 1e3,
            credited_ns as f64 / 1e3,
            delta_wait_ns as f64 / credited_ns as f64
        );

        // At a 1:1 grain the compute interval is long enough to hide the
        // whole exchange: the profiler must show the blocking arm's wait
        // time at least 95% eliminated.
        if grain == 1.0 {
            assert!(
                nonblocking.wait_ps * 20 <= blocking.wait_ps,
                "attribution: at 1:1 grain the residual nonblocking wait \
                 ({} ps) must be within 5% of eliminating the blocking \
                 arm's wait ({} ps)",
                nonblocking.wait_ps,
                blocking.wait_ps
            );
        }
    }
    println!("{}", table.render());

    // The engine's reason to exist: at a 1:1 grain the transfers hide
    // behind the compute and the iteration sheds its communication time.
    assert!(
        saving_at_parity >= 0.25,
        "nonblocking overlap must save >= 25% at compute:comm 1:1 \
         (got {:.1}%)",
        saving_at_parity * 100.0
    );

    // Determinism: the same seed must reproduce the nonblocking arm's
    // virtual time — and the profiler's attribution of it — exactly,
    // engine threads and all. The overlap credit is deliberately left
    // out: a request whose transfer drains below the compute frontier
    // earns a credit that depends on engine-thread arbitration order,
    // which never moves any clock and so is allowed to jitter.
    let compute = comm_per_iter;
    let once = halo_run(true, compute);
    let twice = halo_run(true, compute);
    assert_eq!(
        (once.finish, once.wait_ps, once.request_wait_ps),
        (twice.finish, twice.wait_ps, twice.request_wait_ps),
        "same-seed nonblocking runs must be bit-identical"
    );
    println!(
        "\nsaving at 1:1 grain: {:.1}% (>= 25% required); \
         same-seed virtual times and wait attribution bit-identical ({})",
        saving_at_parity * 100.0,
        once.finish
    );

    let json = format!(
        "{{\"bench\":\"overlap_halo\",\"ranks\":{RANKS},\"halo_bytes\":{HALO_BYTES},\
         \"rows\":{ROWS},\"iters\":{ITERS},\"comm_per_iter_us\":{},\
         \"saving_at_parity_pct\":{},\"deterministic\":true,\"points\":[\n{}\n]}}\n",
        num(comm_per_iter.as_ps() as f64 / 1e6),
        num(saving_at_parity * 100.0),
        points.join(",\n")
    );
    match std::fs::write("BENCH_overlap_halo.json", &json) {
        Ok(()) => println!("wrote BENCH_overlap_halo.json"),
        Err(e) => eprintln!("BENCH_overlap_halo.json not written: {e}"),
    }
    // The wait-state profile of the last (parity-grain) run travels next
    // to the bench document, like every BenchDoc-based binary.
    match obs::report::write_profile_for("overlap_halo") {
        Ok(Some(path)) => println!("wrote {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("PROFILE_overlap_halo.json not written: {e}"),
    }
}
