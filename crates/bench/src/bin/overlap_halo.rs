//! Compute/communication overlap bought by the nonblocking request
//! engine, measured on a ring halo exchange at rendezvous sizes.
//!
//! Every rank ships two 128 KiB halo rows to its right neighbour each
//! iteration (receiving the matching rows from the left — routes stay
//! link-disjoint, so the run is bit-identical under a fixed seed) and
//! then works on its interior points. The *blocking* arm exchanges
//! first and computes after; the *nonblocking* arm posts
//! `isend`/`irecv`, computes while the wire drains, and `waitall`s.
//! The compute grain is swept relative to the calibrated communication
//! time of one iteration, which is where the overlap story lives: at
//! small grains there is little to hide behind, near 1:1 the transfer
//! disappears almost entirely, far past 1:1 compute dominates both
//! arms and the *relative* saving shrinks again.
//!
//! The binary asserts the paper-era promise the engine exists for — at
//! a 1:1 grain, 4 ranks must save at least 25 % of virtual time — and
//! that two same-seed runs agree bit for bit.
//!
//! Run: `cargo run --release -p repro-bench --bin overlap_halo`

use obs::json::num;
use obs::Counter;
use scimpi::{ClusterSpec, ObsConfig, RecvBuf, SendData, Source, TagSel};
use simclock::stats::Table;
use simclock::{SimDuration, SimTime};

const RANKS: usize = 4;
const HALO_BYTES: usize = 128 * 1024; // rendezvous territory
const ROWS: usize = 2; // halo rows per iteration
const ITERS: usize = 6;

/// Compute grain per iteration as a multiple of the calibrated
/// per-iteration communication time.
const GRAINS: [f64; 4] = [0.25, 0.5, 1.0, 2.0];

fn spec() -> ClusterSpec {
    let mut spec = ClusterSpec::ringlet(RANKS).obs(ObsConfig::enabled());
    spec.seed = 20020415; // IPPS 2002
    spec
}

/// One full run of the halo loop; returns the cluster-wide finish time.
fn halo_run(nonblocking: bool, compute: SimDuration) -> SimTime {
    let times = scimpi::run(spec(), move |r| {
        let me = r.rank();
        let n = r.size();
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        let rows: Vec<Vec<u8>> = (0..ROWS)
            .map(|k| {
                (0..HALO_BYTES)
                    .map(|i| (me * 31 + k * 13 + i * 7) as u8)
                    .collect()
            })
            .collect();
        for _ in 0..ITERS {
            if nonblocking {
                let mut rreqs: Vec<_> = (0..ROWS)
                    .map(|k| {
                        r.irecv(Source::Rank(left), TagSel::Value(k as i32), HALO_BYTES)
                            .unwrap()
                    })
                    .collect();
                let mut sreqs: Vec<_> = (0..ROWS)
                    .map(|k| r.isend(right, k as i32, &rows[k]).unwrap())
                    .collect();
                // Interior points: work that does not need the halos.
                r.compute(compute);
                r.waitall(&mut sreqs).unwrap();
                let done = r.waitall(&mut rreqs).unwrap();
                for (k, d) in done.iter().enumerate() {
                    assert_eq!(d.data.len(), HALO_BYTES, "row {k} truncated");
                }
            } else {
                for (k, row) in rows.iter().enumerate() {
                    let mut buf = vec![0u8; HALO_BYTES];
                    r.sendrecv(
                        right,
                        k as i32,
                        SendData::Bytes(row),
                        Source::Rank(left),
                        TagSel::Value(k as i32),
                        RecvBuf::Bytes(&mut buf),
                    )
                    .unwrap();
                }
                r.compute(compute);
            }
            r.barrier();
        }
        r.now()
    });
    times.into_iter().max().expect("nonempty cluster")
}

fn main() {
    // Calibrate: the blocking arm with zero compute is pure exchange.
    let comm_only = halo_run(false, SimDuration::ZERO);
    let comm_per_iter = SimDuration::from_ps(comm_only.as_ps() / ITERS as u64);
    println!(
        "== Overlap on a {RANKS}-rank ring halo exchange \
         ({ROWS} x {} KiB per iteration, {ITERS} iterations) ==\n",
        HALO_BYTES / 1024
    );
    println!(
        "calibrated communication time: {} us per iteration\n",
        comm_per_iter.as_ps() / 1_000_000
    );

    let mut table = Table::new(vec![
        "compute : comm",
        "blocking [us]",
        "nonblocking [us]",
        "saved",
        "overlap credited [us]",
    ]);
    let mut points = Vec::new();
    let mut saving_at_parity = 0.0;
    for &grain in &GRAINS {
        let compute = SimDuration::from_ps((comm_per_iter.as_ps() as f64 * grain) as u64);
        let t_blocking = halo_run(false, compute);
        let t_nonblocking = halo_run(true, compute);
        let credited_ns = obs::counter_value(Counter::OverlapSavedNs);
        let saving = 1.0 - t_nonblocking.as_ps() as f64 / t_blocking.as_ps() as f64;
        if grain == 1.0 {
            saving_at_parity = saving;
        }
        table.push_row(vec![
            format!("{grain:.2}"),
            format!("{:.1}", t_blocking.as_ps() as f64 / 1e6),
            format!("{:.1}", t_nonblocking.as_ps() as f64 / 1e6),
            format!("{:.1}%", saving * 100.0),
            format!("{:.1}", credited_ns as f64 / 1e3),
        ]);
        points.push(format!(
            "{{\"compute_to_comm\":{},\"blocking_us\":{},\"nonblocking_us\":{},\
             \"saving_pct\":{},\"overlap_saved_ns\":{credited_ns}}}",
            num(grain),
            num(t_blocking.as_ps() as f64 / 1e6),
            num(t_nonblocking.as_ps() as f64 / 1e6),
            num(saving * 100.0),
        ));
    }
    println!("{}", table.render());

    // The engine's reason to exist: at a 1:1 grain the transfers hide
    // behind the compute and the iteration sheds its communication time.
    assert!(
        saving_at_parity >= 0.25,
        "nonblocking overlap must save >= 25% at compute:comm 1:1 \
         (got {:.1}%)",
        saving_at_parity * 100.0
    );

    // Determinism: the same seed must reproduce the nonblocking arm's
    // virtual time exactly, engine threads and all.
    let compute = comm_per_iter;
    let once = halo_run(true, compute);
    let twice = halo_run(true, compute);
    assert_eq!(
        once, twice,
        "same-seed nonblocking runs must be bit-identical"
    );
    println!(
        "\nsaving at 1:1 grain: {:.1}% (>= 25% required); \
         same-seed virtual times bit-identical ({once})",
        saving_at_parity * 100.0
    );

    let json = format!(
        "{{\"bench\":\"overlap_halo\",\"ranks\":{RANKS},\"halo_bytes\":{HALO_BYTES},\
         \"rows\":{ROWS},\"iters\":{ITERS},\"comm_per_iter_us\":{},\
         \"saving_at_parity_pct\":{},\"deterministic\":true,\"points\":[\n{}\n]}}\n",
        num(comm_per_iter.as_ps() as f64 / 1e6),
        num(saving_at_parity * 100.0),
        points.join(",\n")
    );
    match std::fs::write("BENCH_overlap_halo.json", &json) {
        Ok(()) => println!("wrote BENCH_overlap_halo.json"),
        Err(e) => eprintln!("BENCH_overlap_halo.json not written: {e}"),
    }
}
