//! Bench-regression gate: compare freshly produced `BENCH_*.json` /
//! `PROFILE_*.json` documents against the committed baselines under
//! `bench/baselines/`.
//!
//! Every `*.json` file in the baselines directory (except
//! `tolerance.json`) is expected to exist, with the same name, in the
//! current directory — the bench binaries write their documents to the
//! working directory, so CI runs the smoke benches first and this gate
//! second. Numbers compare under a per-metric relative tolerance
//! (default 5%, overridable per leaf key via
//! `bench/baselines/tolerance.json`); any structural difference — a
//! missing series, a new field, a type change — fails outright.
//!
//! ```text
//! bench_diff [--baselines DIR] [--current DIR] [--tolerance F] [NAME...]
//! ```
//!
//! With `NAME` arguments only those baseline files are checked (`NAME`
//! may be `overlap_halo` or `BENCH_overlap_halo.json`). Exit status is
//! non-zero when any metric is out of tolerance, a document is missing,
//! or a file fails to parse.

use repro_bench::diff::{self, Json, Tolerance};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    baselines: PathBuf,
    current: PathBuf,
    tolerance: Option<f64>,
    names: Vec<String>,
}

fn usage() -> ! {
    eprintln!("usage: bench_diff [--baselines DIR] [--current DIR] [--tolerance F] [NAME...]");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        baselines: PathBuf::from("bench/baselines"),
        current: PathBuf::from("."),
        tolerance: None,
        names: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baselines" => args.baselines = it.next().unwrap_or_else(|| usage()).into(),
            "--current" => args.current = it.next().unwrap_or_else(|| usage()).into(),
            "--tolerance" => {
                let v = it.next().unwrap_or_else(|| usage());
                args.tolerance = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--help" | "-h" => usage(),
            _ => args.names.push(a),
        }
    }
    args
}

fn load(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    diff::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Resolve which baseline files to check: explicit names, or every
/// `*.json` in the baselines directory except `tolerance.json`.
fn baseline_files(args: &Args) -> Result<Vec<PathBuf>, String> {
    if !args.names.is_empty() {
        return Ok(args
            .names
            .iter()
            .map(|n| {
                let file = if n.ends_with(".json") {
                    n.clone()
                } else {
                    format!("BENCH_{n}.json")
                };
                args.baselines.join(file)
            })
            .collect());
    }
    let mut files: Vec<PathBuf> = std::fs::read_dir(&args.baselines)
        .map_err(|e| format!("{}: {e}", args.baselines.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.extension().is_some_and(|x| x == "json")
                && p.file_name().is_some_and(|f| f != "tolerance.json")
        })
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!(
            "no baseline documents under {}",
            args.baselines.display()
        ));
    }
    Ok(files)
}

fn tolerance(args: &Args) -> Result<Tolerance, String> {
    if let Some(flat) = args.tolerance {
        return Ok(Tolerance::flat(flat));
    }
    let path = args.baselines.join("tolerance.json");
    if path.exists() {
        return Tolerance::from_json(&load(&path)?).map_err(|e| format!("{}: {e}", path.display()));
    }
    Ok(Tolerance::flat(diff::DEFAULT_TOLERANCE))
}

fn main() -> ExitCode {
    let args = parse_args();
    let (files, tol) = match (baseline_files(&args), tolerance(&args)) {
        (Ok(f), Ok(t)) => (f, t),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_diff: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut failures = 0usize;
    for base_path in &files {
        let name = base_path
            .file_name()
            .and_then(|f| f.to_str())
            .unwrap_or("?");
        let cur_path = args.current.join(name);
        let outcome = load(base_path).and_then(|baseline| {
            let current = load(&cur_path)?;
            Ok(diff::compare(&baseline, &current, &tol))
        });
        match outcome {
            Err(e) => {
                failures += 1;
                println!("FAIL {name}: {e}");
            }
            Ok(mismatches) if mismatches.is_empty() => println!("ok   {name}"),
            Ok(mismatches) => {
                failures += 1;
                println!(
                    "FAIL {name}: {} metric(s) out of tolerance",
                    mismatches.len()
                );
                for m in mismatches.iter().take(20) {
                    println!("     {m}");
                }
                if mismatches.len() > 20 {
                    println!("     ... and {} more", mismatches.len() - 20);
                }
            }
        }
    }
    if failures > 0 {
        println!(
            "bench_diff: {failures} of {} document(s) regressed",
            files.len()
        );
        ExitCode::FAILURE
    } else {
        println!("bench_diff: {} document(s) within tolerance", files.len());
        ExitCode::SUCCESS
    }
}
