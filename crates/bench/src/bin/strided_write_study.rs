//! §4.3 — the low-level strided remote-write study.
//!
//! After the sparse benchmark showed unexpectedly low bandwidth for small
//! strided accesses, the authors measured raw remote writes with varying
//! access and stride sizes and found a strong dependency on the stride:
//! strides that are multiples of the 32-byte CPU write-combine buffer are
//! fast; misaligned strides collapse (5–28 MiB/s at 8 B, 7–162 MiB/s at
//! 256 B). Disabling write combining removes the drops but halves
//! overall bandwidth.
//!
//! Run: `cargo run --release -p repro-bench --bin strided_write_study`
//! Pass `--no-wc` for the write-combining-disabled variant.

use repro_bench::BenchDoc;
use sci_fabric::{Fabric, FabricSpec, NodeId, SciParams};
use simclock::stats::{series_table, Series};
use simclock::{Bandwidth, Clock, SimTime};

fn run_study(params: SciParams, label: &str, doc: &mut BenchDoc) {
    let fabric = Fabric::new(FabricSpec {
        params,
        ..FabricSpec::default()
    });
    let seg = fabric.export(NodeId(1), 8 << 20);

    println!("== strided remote-write bandwidth [MiB/s] ({label}) ==\n");
    let mut series: Vec<Series> = Vec::new();
    let strides: Vec<usize> = vec![
        8, 16, 24, 32, 40, 48, 56, 64, 72, 96, 128, 160, 192, 256, 264, 288, 320, 384, 416, 512,
    ];
    for access in [8usize, 64, 256] {
        let mut s = Series::new(format!("access {access}B"));
        for &stride in &strides {
            if stride < access {
                continue;
            }
            let count = (4 << 20) / stride;
            let data = vec![0u8; access * count];
            let mut clock = Clock::new();
            let mut stream = fabric.pio_stream(NodeId(0), &seg, access * count);
            stream
                .write_strided(&mut clock, 0, access, stride, count, &data)
                .unwrap();
            stream.barrier(&mut clock);
            let bw = Bandwidth::observed((access * count) as u64, clock.now() - SimTime::ZERO);
            s.push(stride as f64, bw.mib_per_sec());
        }
        series.push(s);
    }
    println!(
        "{}",
        series_table("stride[B]", |x| format!("{}", x as usize), &series).render()
    );
    for s in &series {
        doc.push_bw_series(s);
    }

    // The paper's summary numbers.
    let min_max = |s: &Series| {
        let min = s
            .points
            .iter()
            .map(|(_, y)| *y)
            .fold(f64::INFINITY, f64::min);
        (min, s.max_y())
    };
    let (min8, max8) = min_max(&series[0]);
    let (min256, max256) = min_max(&series[2]);
    println!("range at   8 B access: {min8:.1} .. {max8:.1} MiB/s (paper: 5 .. 28)");
    println!("range at 256 B access: {min256:.1} .. {max256:.1} MiB/s (paper: 7 .. 162)");
}

fn main() {
    let no_wc = std::env::args().any(|a| a == "--no-wc");
    if no_wc {
        let mut doc = BenchDoc::new("strided_write_study_no_wc");
        run_study(
            SciParams::default().with_write_combining_disabled(),
            "write combining disabled",
            &mut doc,
        );
        println!("\n(paper: disabling WC avoids the drops but costs ~50% bandwidth)");
        doc.write_and_report();
    } else {
        let mut doc = BenchDoc::new("strided_write_study");
        run_study(SciParams::default(), "write combining enabled", &mut doc);
        println!("\nstrides that are multiples of 32 (the P-III write-combine");
        println!("buffer) deliver the maxima; rerun with --no-wc to compare.");
        doc.write_and_report();
    }
}
