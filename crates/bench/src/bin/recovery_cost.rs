//! Cost of surviving: buddy-checkpoint overhead and time-to-recover.
//!
//! Part one sweeps the checkpoint interval over a fixed compute loop
//! (allreduce rounds) and reports the virtual-time overhead each cadence
//! adds over an uncheckpointed baseline — the price of being *able* to
//! recover. Part two kills one rank (drawn from the seeded
//! `death_schedule`, which never picks the shrink leader) and measures
//! the survivors' time from entering the shrink to being rebound over
//! the new membership with their images restored — the price of
//! *actually* recovering, as the world grows.
//!
//! Everything is virtual time under one seed, so the bench asserts its
//! own determinism by building the whole document twice and comparing
//! bytes before writing `BENCH_recovery_cost.json` and
//! `PROFILE_recovery_cost.json`.
//!
//! Run: `cargo run --release -p repro-bench --bin recovery_cost`

use obs::json::num;
use obs::Counter;
use sci_fabric::death_schedule;
use scimpi::{shrink, Checkpointer, ClusterSpec, ErrorMode, ObsConfig, ReduceOp};
use simclock::stats::Table;
use simclock::{SimDuration, SimTime};

const IMAGE: usize = 32 * 1024;
const WORDS: usize = 2048;
const ROUNDS: usize = 8;
/// Checkpoint cadences: 0 = never (the baseline), else every c rounds.
const INTERVALS: [usize; 5] = [0, 1, 2, 4, 8];
/// Cluster sizes for the kill-one recovery scenario.
const SIZES: [usize; 3] = [2, 4, 8];
const SEED: u64 = 20020415; // IPPS 2002

fn spec(n: usize) -> ClusterSpec {
    let mut spec = ClusterSpec::ringlet(n)
        .errors(ErrorMode::ErrorsReturn)
        .obs(ObsConfig::enabled());
    spec.seed = SEED;
    spec
}

/// Run the compute loop checkpointing every `interval` rounds (never for
/// 0); returns the makespan and the checkpoint counter totals.
fn checkpoint_run(interval: usize) -> (SimTime, u64, u64) {
    let times = scimpi::run(spec(4), move |r| {
        let mut state = vec![(r.rank() + 1) as f64; WORDS];
        let mut ckpt = (interval > 0).then(|| Checkpointer::new(r, IMAGE).unwrap());
        let image = vec![0xA5u8; IMAGE];
        for round in 1..=ROUNDS {
            let mut sum = state.clone();
            r.allreduce(&mut sum, ReduceOp::Sum).unwrap();
            for (s, t) in state.iter_mut().zip(sum) {
                *s = 0.5 * (*s + t);
            }
            if let Some(c) = ckpt.as_mut() {
                if round % interval == 0 {
                    c.checkpoint(r, &image).unwrap();
                }
            }
        }
        if let Some(c) = ckpt.take() {
            c.free(r);
        }
        r.barrier();
        r.now()
    });
    let makespan = times.into_iter().max().expect("nonempty cluster");
    (
        makespan,
        obs::counter_value(Counter::CheckpointsTaken),
        obs::counter_value(Counter::CheckpointBytes),
    )
}

/// Kill one seeded victim on an `n`-rank ring and measure the slowest
/// survivor's shrink → restore → rebind span.
fn recover_run(n: usize) -> (SimDuration, u64, u64) {
    let victim = death_schedule(SEED, n, 1, SimDuration::from_ms(10))[0].node;
    let durations = scimpi::run(spec(n), move |r| {
        let mut ckpt = Checkpointer::new(r, IMAGE).unwrap();
        ckpt.checkpoint(r, &vec![r.rank() as u8; IMAGE]).unwrap();
        r.barrier();
        if r.world_rank() == victim {
            r.fabric().faults().kill_node(r.node().0);
            return SimDuration::ZERO;
        }
        let start = r.now();
        let report = shrink(r).unwrap();
        assert_eq!(report.dead, vec![victim], "agreement found the victim");
        let restored = ckpt.restore(r).unwrap();
        assert_eq!(restored, vec![r.world_rank() as u8; IMAGE]);
        let ckpt = ckpt.rebind(r).unwrap();
        let recovered = r.now() - start;
        ckpt.free(r);
        recovered
    });
    let slowest = durations.into_iter().max().expect("nonempty cluster");
    (
        slowest,
        obs::counter_value(Counter::AgreementRounds),
        obs::counter_value(Counter::PeersDeclaredDead),
    )
}

/// One full sweep: returns the bench JSON document, the profile JSON of
/// the final run, and the two human tables.
fn build() -> (String, String, Table, Table) {
    let mut ckpt_table = Table::new(vec![
        "interval",
        "makespan [us]",
        "overhead",
        "checkpoints",
        "replicated [MiB]",
    ]);
    let mut ckpt_points = Vec::new();
    let mut baseline_us = 0.0;
    for &interval in &INTERVALS {
        let (makespan, taken, bytes) = checkpoint_run(interval);
        let expect = 4 * ROUNDS.checked_div(interval).unwrap_or(0) as u64;
        assert_eq!(taken, expect, "interval {interval} checkpoint count");
        assert_eq!(
            obs::counter_value(Counter::Revocations)
                + obs::counter_value(Counter::RecoveryRestores),
            0,
            "a fault-free sweep must not touch the recovery paths"
        );
        let us = makespan.as_ps() as f64 / 1e6;
        if interval == 0 {
            baseline_us = us;
        }
        let overhead_pct = (us / baseline_us - 1.0) * 100.0;
        let mib = bytes as f64 / (1024.0 * 1024.0);
        ckpt_table.push_row(vec![
            if interval == 0 {
                "never".to_string()
            } else {
                format!("every {interval}")
            },
            format!("{us:.1}"),
            format!("{overhead_pct:.1}%"),
            format!("{taken}"),
            format!("{mib:.2}"),
        ]);
        ckpt_points.push(format!(
            "{{\"interval\":{interval},\"makespan_us\":{},\"overhead_pct\":{},\"checkpoints\":{taken},\"checkpoint_mib\":{}}}",
            num(us),
            num(overhead_pct),
            num(mib)
        ));
    }

    let mut rec_table = Table::new(vec![
        "ranks",
        "recover [us]",
        "agreement exchanges",
        "peers declared dead",
    ]);
    let mut rec_points = Vec::new();
    for &n in &SIZES {
        let (recover, exchanges, declared) = recover_run(n);
        let us = recover.as_ps() as f64 / 1e6;
        rec_table.push_row(vec![
            format!("{n}"),
            format!("{us:.1}"),
            format!("{exchanges}"),
            format!("{declared}"),
        ]);
        rec_points.push(format!(
            "{{\"ranks\":{n},\"recover_us\":{},\"agreement_exchanges\":{exchanges},\"peers_declared_dead\":{declared}}}",
            num(us)
        ));
    }

    let json = format!(
        "{{\"bench\":\"recovery_cost\",\"image_bytes\":{IMAGE},\"rounds\":{ROUNDS},\"checkpoint\":[\n{}\n],\"recover\":[\n{}\n]}}\n",
        ckpt_points.join(",\n"),
        rec_points.join(",\n")
    );
    let profile = obs::report::last_profile()
        .map(|p| obs::report::profile_json(&p))
        .expect("obs-enabled run builds a profile");
    (json, profile, ckpt_table, rec_table)
}

fn main() {
    let (json, profile, ckpt_table, rec_table) = build();
    let (json2, profile2, _, _) = build();
    assert_eq!(
        json, json2,
        "same seed must reproduce byte-identical results"
    );
    assert_eq!(
        profile, profile2,
        "same seed must reproduce a byte-identical profile"
    );

    println!("== Buddy-checkpoint overhead vs cadence (4 ranks) ==\n");
    println!("{}", ckpt_table.render());
    println!("== Time to recover from one rank death ==\n");
    println!("{}", rec_table.render());
    match std::fs::write("BENCH_recovery_cost.json", &json) {
        Ok(()) => println!("wrote BENCH_recovery_cost.json"),
        Err(e) => eprintln!("BENCH_recovery_cost.json not written: {e}"),
    }
    match std::fs::write("PROFILE_recovery_cost.json", &profile) {
        Ok(()) => println!("wrote PROFILE_recovery_cost.json"),
        Err(e) => eprintln!("PROFILE_recovery_cost.json not written: {e}"),
    }
}
