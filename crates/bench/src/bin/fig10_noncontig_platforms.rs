//! Figure 10 — non-contiguous datatype communication across platforms.
//!
//! Bandwidth of the strided-vector transfer (nc) against its contiguous
//! equivalent (c) on every Table 1 configuration. The SCI-MPICH rows
//! (M-S inter-node, M-s intra-node) are measured on the simulator; the
//! other platforms come from the calibrated baseline models.
//!
//! Run: `cargo run --release -p repro-bench --bin fig10_noncontig_platforms`

use baselines::platforms;
use repro_bench::{
    internode_spec, intranode_spec, noncontig_bandwidth, sweep, BenchDoc, NoncontigCase,
    NONCONTIG_TOTAL,
};
use simclock::stats::{fmt_bytes, series_table, Series, Table};

fn main() {
    println!("== Table 1: evaluation platforms ==\n");
    let mut t1 = Table::new(vec!["ID", "Machine", "Interconnect", "MPI", "OSC"]);
    t1.push_row(vec![
        "M-S",
        "Pentium III dual SMP 800 MHz",
        "SCI (simulated)",
        "MP-MPICH repro",
        "yes",
    ]);
    t1.push_row(vec![
        "M-s",
        "Pentium III dual SMP 800 MHz",
        "shared memory",
        "MP-MPICH repro",
        "yes",
    ]);
    for p in platforms::all() {
        t1.push_row(vec![
            p.id.to_string(),
            p.machine.to_string(),
            p.interconnect.to_string(),
            p.mpi.to_string(),
            format!("{:?}", p.osc.support).to_lowercase(),
        ]);
    }
    println!("{}", t1.render());

    println!("== Figure 10: noncontig (nc) vs contiguous (c) bandwidth [MiB/s] ==\n");
    let mut series: Vec<Series> = Vec::new();
    // SCI-MPICH measured on the simulator (production tuning: Auto).
    let mut sci_nc = Series::new("M-S nc");
    let mut sci_c = Series::new("M-S c");
    let mut shm_nc = Series::new("M-s nc");
    let mut shm_c = Series::new("M-s c");
    let blocks = sweep(8, 128 * 1024);
    for &b in &blocks {
        sci_nc.push(
            b as f64,
            noncontig_bandwidth(
                internode_spec(),
                NoncontigCase::DirectPackFf,
                b,
                NONCONTIG_TOTAL,
            )
            .mib_per_sec(),
        );
        sci_c.push(
            b as f64,
            noncontig_bandwidth(
                internode_spec(),
                NoncontigCase::Contiguous,
                b,
                NONCONTIG_TOTAL,
            )
            .mib_per_sec(),
        );
        shm_nc.push(
            b as f64,
            noncontig_bandwidth(
                intranode_spec(),
                NoncontigCase::DirectPackFf,
                b,
                NONCONTIG_TOTAL,
            )
            .mib_per_sec(),
        );
        shm_c.push(
            b as f64,
            noncontig_bandwidth(
                intranode_spec(),
                NoncontigCase::Contiguous,
                b,
                NONCONTIG_TOTAL,
            )
            .mib_per_sec(),
        );
        eprint!(".");
    }
    eprintln!();
    series.extend([sci_nc, sci_c, shm_nc, shm_c]);

    for p in platforms::all() {
        if p.id == "VIA" {
            continue; // VIA appears only in the OSC comparison (§5.3)
        }
        let mut nc = Series::new(format!("{} nc", p.id));
        let mut c = Series::new(format!("{} c", p.id));
        for &b in &blocks {
            nc.push(b as f64, p.noncontig_bw(NONCONTIG_TOTAL, b).mib_per_sec());
            c.push(b as f64, p.contiguous_bw(NONCONTIG_TOTAL).mib_per_sec());
        }
        series.push(nc);
        series.push(c);
    }
    println!("{}", series_table("block[B]", fmt_bytes, &series).render());

    let mut doc = BenchDoc::new("fig10_noncontig_platforms");
    for s in &series {
        doc.push_bw_series(s);
    }
    doc.write_and_report();

    println!("observations reproduced (paper section 5.3):");
    println!("  - no platform's generic engine keeps nc near c across the sweep;");
    println!("  - Cray T3E efficiency ~1 only for 8..32 kiB blocks;");
    println!("  - Sun shm efficiency steps 0.5 -> 1.0 at 16 kiB blocks;");
    println!("  - SCI-MPICH direct_pack_ff approaches c from 128 B blocks on.");
}
