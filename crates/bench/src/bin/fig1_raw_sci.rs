//! Figure 1 — raw SCI communication performance.
//!
//! *Top:* small-data latency of PIO write (posted + store barrier), PIO
//! read (stalling) and DMA. *Bottom:* bandwidth over transfer size for
//! the same three mechanisms, plus the intra-node memcpy reference.
//!
//! Run: `cargo run --release -p repro-bench --bin fig1_raw_sci`

use repro_bench::{sweep, BenchDoc, BenchPoint};
use sci_fabric::{Fabric, FabricSpec, NodeId};
use simclock::stats::{fmt_bytes, series_table, Series};
use simclock::{Bandwidth, Clock, SimTime};

fn main() {
    let fabric = Fabric::new(FabricSpec::default());
    let seg = fabric.export(NodeId(1), 8 << 20);

    println!("== Figure 1 (top): small data latency [us] ==\n");
    let mut lat_write = Series::new("PIO write");
    let mut lat_read = Series::new("PIO read");
    let mut lat_dma = Series::new("DMA write");
    for size in sweep(4, 4096) {
        let data = vec![0u8; size];
        // PIO write + store barrier (visible at remote).
        let mut clock = Clock::new();
        let mut s = fabric.pio_stream(NodeId(0), &seg, size);
        s.write(&mut clock, 0, &data).unwrap();
        s.barrier(&mut clock);
        lat_write.push(size as f64, (clock.now() - SimTime::ZERO).as_us_f64());
        // PIO read.
        let mut clock = Clock::new();
        let r = fabric.pio_reader(NodeId(0), &seg);
        let mut buf = vec![0u8; size];
        r.read(&mut clock, 0, &mut buf).unwrap();
        lat_read.push(size as f64, (clock.now() - SimTime::ZERO).as_us_f64());
        // DMA write (to completion).
        let mut clock = Clock::new();
        let dma = fabric.dma_engine(NodeId(0), &seg);
        let c = dma.write(&mut clock, 0, &data).unwrap();
        lat_dma.push(size as f64, (c.done - SimTime::ZERO).as_us_f64());
    }
    let lat_series = [lat_write, lat_read, lat_dma];
    println!(
        "{}",
        series_table("size[B]", fmt_bytes, &lat_series).render()
    );

    println!("== Figure 1 (bottom): bandwidth [MiB/s] ==\n");
    let mut bw_write = Series::new("PIO write");
    let mut bw_read = Series::new("PIO read");
    let mut bw_dma = Series::new("DMA write");
    let mut bw_local = Series::new("local memcpy");
    for size in sweep(256, 4 << 20) {
        let data = vec![0u8; size];
        let mut clock = Clock::new();
        let mut s = fabric.pio_stream(NodeId(0), &seg, size);
        s.write(&mut clock, 0, &data).unwrap();
        s.barrier(&mut clock);
        bw_write.push(
            size as f64,
            Bandwidth::observed(size as u64, clock.now() - SimTime::ZERO).mib_per_sec(),
        );

        let mut clock = Clock::new();
        let r = fabric.pio_reader(NodeId(0), &seg);
        let mut buf = vec![0u8; size];
        r.read(&mut clock, 0, &mut buf).unwrap();
        bw_read.push(
            size as f64,
            Bandwidth::observed(size as u64, clock.now() - SimTime::ZERO).mib_per_sec(),
        );

        let mut clock = Clock::new();
        let dma = fabric.dma_engine(NodeId(0), &seg);
        let c = dma.write(&mut clock, 0, &data).unwrap();
        bw_dma.push(
            size as f64,
            Bandwidth::observed(size as u64, c.done - SimTime::ZERO).mib_per_sec(),
        );

        // Intra-node reference: same node writes its own segment.
        let mut clock = Clock::new();
        let mut s = fabric.pio_stream(NodeId(1), &seg, size);
        s.write(&mut clock, 0, &data).unwrap();
        bw_local.push(
            size as f64,
            Bandwidth::observed(size as u64, clock.now() - SimTime::ZERO).mib_per_sec(),
        );
    }
    let bw_series = [bw_write, bw_read, bw_dma, bw_local];
    println!(
        "{}",
        series_table("size[B]", fmt_bytes, &bw_series).render()
    );

    // The two sweeps use different size ranges, so keep them apart.
    let mut doc = BenchDoc::new("fig1_raw_sci");
    for s in &lat_series {
        for &(x, y) in &s.points {
            doc.push(
                &format!("latency {}", s.label),
                BenchPoint::at(x).mean_us(y),
            );
        }
    }
    for s in &bw_series {
        for &(x, y) in &s.points {
            doc.push(&format!("bandwidth {}", s.label), BenchPoint::at(x).mbps(y));
        }
    }
    doc.write_and_report();

    println!("note: PIO-write dip past 128k reproduces the ServerSet III LE");
    println!("memory-bandwidth ceiling (paper footnote 2); PIO read is the");
    println!("stalling path that motivates remote-put gets (section 4.2).");
}
