//! Collective algorithm crossover sweep — the ablation behind the
//! engine's `Auto` selection rules.
//!
//! Part 1 sweeps four collectives over payload size on an 8-rank
//! ringlet, once per algorithm knob (`naive`, forced `ring` /
//! `recursive_doubling` / `binomial` / `bruck`, and `auto`). One warmup
//! round amortizes the collective window creation for the one-sided ring
//! broadcast, then the measured rounds reuse it across epochs. The
//! virtual per-round latency of every arm lands in
//! `BENCH_coll_sweep.json` as crossover curves; the binary *asserts*
//! that `auto` matches or beats `naive` at every swept point, so a
//! selection-rule regression fails the bench rather than just bending a
//! curve.
//!
//! Part 2 compares the datatype-aware collectives against explicit
//! pack+send on a strided vector-of-doubles layout: the same
//! `bcast_typed` / `allreduce_typed` call once under the adaptive
//! noncontig selector (which picks `direct_pack_ff` for these block
//! sizes — counter-asserted via `coll_packed_bytes == 0`) and once with
//! `NoncontigMode::Generic` forcing pack → contiguous send → unpack
//! (counter-asserted `coll_packed_bytes > 0`). The typed path must never
//! lose.
//!
//! Run: `cargo run --release -p repro-bench --bin coll_sweep`

use mpi_datatype::{Committed, Datatype};
use obs::Counter;
use repro_bench::{BenchDoc, BenchPoint};
use scimpi::{
    Backend, ClusterSpec, CollectiveAlgo, NoncontigMode, ObsConfig, Rank, ReduceOp, Tuning,
};
use simclock::stats::fmt_bytes;

/// One swept collective: a label plus the per-rank workload closure.
type CollOp = (&'static str, fn(&mut Rank, usize));

const RANKS: usize = 8;
const ROUNDS: usize = 4;
/// Per-rank payload bytes swept; straddles `coll_small_max` (4 kiB),
/// `coll_bruck_max` (512 B blocks) and `coll_ring_min` (256 kiB).
const SIZES: [usize; 4] = [1024, 8 * 1024, 64 * 1024, 512 * 1024];

const ALGOS: [(CollectiveAlgo, &str); 6] = [
    (CollectiveAlgo::Naive, "naive"),
    (CollectiveAlgo::Ring, "ring"),
    (CollectiveAlgo::RecursiveDoubling, "recursive_doubling"),
    (CollectiveAlgo::Binomial, "binomial"),
    (CollectiveAlgo::Bruck, "bruck"),
    (CollectiveAlgo::Auto, "auto"),
];

fn spec(algo: CollectiveAlgo, noncontig: NoncontigMode) -> ClusterSpec {
    // The event backend keeps saturated-segment arbitration (and with it
    // every virtual time below) deterministic run-to-run, so the curves
    // can sit in the bench-regression gate at exact tolerance.
    let mut s = ClusterSpec::ringlet(RANKS)
        .backend(Backend::Event)
        .tuning(Tuning {
            collective_algo: algo,
            noncontig,
            ..Tuning::default()
        })
        .obs(ObsConfig::enabled());
    s.seed = 20020415; // IPPS 2002
    s
}

/// Time `op` on `spec`: one warmup round, then `ROUNDS` measured rounds
/// between barriers. Returns the per-round virtual latency [µs], taken
/// as the slowest rank's elapsed time.
fn measure<F>(spec: ClusterSpec, op: F) -> f64
where
    F: Fn(&mut Rank) + Send + Sync,
{
    let per_rank = scimpi::run(spec, move |r| {
        op(r); // warmup: window + layout caches
        r.barrier();
        let t0 = r.now();
        for _ in 0..ROUNDS {
            op(r);
        }
        (r.now() - t0).as_us_f64() / ROUNDS as f64
    });
    per_rank.into_iter().fold(0.0, f64::max)
}

fn bcast_op(r: &mut Rank, size: usize) {
    let mut buf = vec![0u8; size];
    if r.rank() == 0 {
        buf.fill(0xB7);
    }
    r.bcast(0, &mut buf).unwrap();
}

fn allreduce_op(r: &mut Rank, size: usize) {
    let mut vals = vec![r.rank() as f64; size / 8];
    r.allreduce(&mut vals, ReduceOp::Sum).unwrap();
}

fn allgather_op(r: &mut Rank, size: usize) {
    let mine = vec![r.rank() as u8; size];
    let out = r.allgather(&mine).unwrap();
    assert_eq!(out.len(), r.size());
}

fn alltoall_op(r: &mut Rank, size: usize) {
    let n = r.size();
    let blocks: Vec<Vec<u8>> = (0..n).map(|d| vec![d as u8; size / n]).collect();
    let out = r.alltoall(&blocks).unwrap();
    assert_eq!(out.len(), n);
}

/// A strided vector-of-doubles layout: `size` packed bytes in blocks of
/// 4 doubles at stride 8 (50 % density, 32 B blocks — squarely in
/// `direct_pack_ff` territory for the adaptive selector).
fn strided(size: usize) -> Committed {
    let blocks = size / 32;
    Committed::commit(&Datatype::vector(blocks, 4, 8, &Datatype::double()))
}

fn main() {
    println!("== collective algorithm crossover sweep: {RANKS} ranks, {ROUNDS} rounds ==\n");
    let mut doc = BenchDoc::new("coll_sweep");

    let collectives: [CollOp; 4] = [
        ("bcast", bcast_op),
        ("allreduce", allreduce_op),
        ("allgather", allgather_op),
        ("alltoall", alltoall_op),
    ];
    for (coll, op) in collectives {
        println!("-- {coll} --");
        for size in SIZES {
            let mut naive_us = f64::NAN;
            let mut auto_us = f64::NAN;
            for (algo, label) in ALGOS {
                let us = measure(spec(algo, NoncontigMode::Auto), move |r| op(r, size));
                doc.push(
                    &format!("{coll} {label}"),
                    BenchPoint::at(size as f64).mean_us(us),
                );
                match algo {
                    CollectiveAlgo::Naive => naive_us = us,
                    CollectiveAlgo::Auto => auto_us = us,
                    _ => {}
                }
                println!("  {:>8} {label:<20} {us:>10.1} us", fmt_bytes(size as f64));
            }
            // The selector's whole reason to exist: at every swept
            // point, auto must match or beat the linear reference.
            assert!(
                auto_us <= naive_us,
                "{coll} @ {size}: auto ({auto_us:.1} us) lost to naive ({naive_us:.1} us)"
            );
        }
        println!();
    }

    println!("-- typed collectives vs explicit pack+send --");
    for size in SIZES[1..].iter().copied() {
        for (name, typed_run) in [("bcast_typed", true), ("allreduce_typed", false)] {
            let op = move |r: &mut Rank| {
                let c = strided(size);
                let mut buf = vec![0u8; c.extent()];
                if typed_run {
                    if r.rank() == 0 {
                        buf.fill(0x3C);
                    }
                    r.bcast_typed(0, &c, 1, &mut buf, 0).unwrap();
                } else {
                    r.allreduce_typed::<f64>(&c, 1, &mut buf, 0, ReduceOp::Sum)
                        .unwrap();
                }
            };
            let typed_us = measure(spec(CollectiveAlgo::Auto, NoncontigMode::Auto), op);
            let packed_after_typed = obs::counter_value(Counter::CollPackedBytes);
            let pack_us = measure(spec(CollectiveAlgo::Auto, NoncontigMode::Generic), op);
            let packed_after_pack = obs::counter_value(Counter::CollPackedBytes);
            // Counter-assert which path won: the adaptive arm must have
            // gone direct (zero staged bytes), the forced arm must have
            // actually paid for pack+send.
            assert_eq!(
                packed_after_typed, 0,
                "{name} @ {size}: adaptive selector staged bytes on a 32 B-block layout"
            );
            assert!(
                packed_after_pack > 0,
                "{name} @ {size}: Generic arm recorded no packed bytes"
            );
            assert!(
                typed_us <= pack_us,
                "{name} @ {size}: typed path ({typed_us:.1} us) lost to \
                 pack+send ({pack_us:.1} us)"
            );
            doc.push(
                &format!("{name} direct"),
                BenchPoint::at(size as f64).mean_us(typed_us),
            );
            doc.push(
                &format!("{name} pack+send"),
                BenchPoint::at(size as f64).mean_us(pack_us),
            );
            println!(
                "  {:>8} {name:<16} direct {typed_us:>9.1} us   pack+send {pack_us:>9.1} us",
                fmt_bytes(size as f64)
            );
        }
    }

    doc.write_and_report();
}
