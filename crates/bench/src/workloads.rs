//! Shared workload generators and measurement loops.
//!
//! Every harness binary measures through these functions so the SCI rows
//! of different figures are mutually consistent.

use mpi_datatype::{Committed, Datatype};
use scimpi::{run, ClusterSpec, Rank, Source, TagSel, Tuning, WinMemory, Window};
use simclock::{Bandwidth, SimDuration, SimTime};

/// The paper's noncontig payload: 256 kiB of doubles per transfer.
pub const NONCONTIG_TOTAL: usize = 256 * 1024;

/// The sparse benchmark's window size.
pub const SPARSE_WINDOW: usize = 256 * 1024;

/// The noncontig benchmark's strided-vector type: blocks of `blocksize`
/// bytes of doubles, stride twice the blocksize (equal data and gap),
/// totalling `total` payload bytes.
pub fn noncontig_type(blocksize: usize, total: usize) -> Committed {
    assert!(
        blocksize.is_multiple_of(8),
        "blocksize must hold whole doubles"
    );
    let elems_per_block = blocksize / 8;
    let blocks = total / blocksize;
    let dt = Datatype::vector(
        blocks,
        elems_per_block,
        2 * elems_per_block as isize,
        &Datatype::double(),
    );
    Committed::commit(&dt)
}

/// Which transfer the noncontig benchmark measures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NoncontigCase {
    /// Generic pack-and-send.
    Generic,
    /// `direct_pack_ff`.
    DirectPackFf,
    /// The contiguous reference transfer of the same byte count.
    Contiguous,
}

/// Run the noncontig micro-benchmark (§3.4) between ranks 0 → 1 of
/// `spec` and return the achieved bandwidth.
pub fn noncontig_bandwidth(
    mut spec: ClusterSpec,
    case: NoncontigCase,
    blocksize: usize,
    total: usize,
) -> Bandwidth {
    spec.tuning = match case {
        NoncontigCase::Generic => spec.tuning.generic_only(),
        _ => spec.tuning.full_ff_comparison(),
    };
    let committed = noncontig_type(blocksize, total);
    let reps = 4usize;
    let out = run(spec, move |r| {
        if r.size() < 2 {
            panic!("noncontig benchmark needs 2 ranks");
        }
        match (r.rank(), case) {
            (0, NoncontigCase::Contiguous) => {
                let buf = vec![1u8; total];
                r.barrier();
                for _ in 0..reps {
                    r.send(1, 0, &buf).unwrap();
                }
                r.barrier();
                SimDuration::ZERO
            }
            (0, _) => {
                let buf: Vec<u8> = (0..committed.extent()).map(|i| i as u8).collect();
                r.barrier();
                for _ in 0..reps {
                    // Re-commit each repetition, as an application reusing
                    // a datatype across iterations would: with the layout
                    // cache on, every commit after the first is a hit.
                    let c = Committed::commit(committed.datatype());
                    r.send_typed(1, 0, &c, 1, &buf, 0).unwrap();
                }
                r.barrier();
                SimDuration::ZERO
            }
            (1, NoncontigCase::Contiguous) => {
                let mut buf = vec![0u8; total];
                r.barrier();
                let t0 = r.now();
                for _ in 0..reps {
                    r.recv(Source::Rank(0), TagSel::Value(0), &mut buf).unwrap();
                }
                let elapsed = r.now() - t0;
                r.barrier();
                elapsed
            }
            (1, _) => {
                let mut buf = vec![0u8; committed.extent()];
                r.barrier();
                let t0 = r.now();
                for _ in 0..reps {
                    let c = Committed::commit(committed.datatype());
                    r.recv_typed(Source::Rank(0), TagSel::Value(0), &c, 1, &mut buf, 0)
                        .unwrap();
                }
                let elapsed = r.now() - t0;
                r.barrier();
                elapsed
            }
            _ => {
                r.barrier();
                r.barrier();
                SimDuration::ZERO
            }
        }
    });
    Bandwidth::observed((total * reps) as u64, out[1])
}

/// Direction of a sparse-benchmark access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SparseDir {
    /// `MPI_Put`.
    Put,
    /// `MPI_Get`.
    Get,
}

/// Result of one sparse-benchmark point.
#[derive(Clone, Copy, Debug)]
pub struct SparseResult {
    /// Mean virtual time per communication call (including the amortised
    /// fence).
    pub latency: SimDuration,
    /// Aggregate bandwidth over all accesses.
    pub bandwidth: Bandwidth,
    /// Number of calls issued.
    pub calls: usize,
}

/// The sparse micro-benchmark of Figure 8: rank 0 accesses rank 1's part
/// of the window with `access` bytes per call and a stride of
/// `2 × access` (a gap as big as the data), then fences.
pub fn sparse(
    spec: ClusterSpec,
    dir: SparseDir,
    access: usize,
    winsize: usize,
    shared_window: bool,
) -> SparseResult {
    let out = run(spec, move |r| {
        let mut win = make_window(r, winsize, shared_window);
        win.fence(r).unwrap();
        let mut calls = 0usize;
        let t0 = r.now();
        if r.rank() == 0 {
            let data = vec![0xA5u8; access];
            let mut buf = vec![0u8; access];
            let stride = 2 * access;
            let mut offset = 0usize;
            while offset + access < winsize {
                match dir {
                    SparseDir::Put => win.put(r, 1, offset, &data).expect("put in range"),
                    SparseDir::Get => win.get(r, 1, offset, &mut buf).expect("get in range"),
                }
                calls += 1;
                offset += stride;
            }
        }
        win.fence(r).unwrap();
        (r.now() - t0, calls)
    });
    let (elapsed, calls) = out[0];
    SparseResult {
        latency: if calls > 0 {
            elapsed / calls as u64
        } else {
            SimDuration::ZERO
        },
        bandwidth: Bandwidth::observed((access * calls) as u64, elapsed),
        calls,
    }
}

/// Create a window whose memory is either SCI shared (direct path) or
/// private (emulation path) on every rank.
pub fn make_window(r: &mut Rank, winsize: usize, shared: bool) -> Window {
    if shared {
        let mem = r.alloc_mem(winsize).expect("pool holds the window");
        r.win_create(WinMemory::Alloc(mem)).expect("registration")
    } else {
        r.win_create(WinMemory::Private(winsize))
            .expect("registration")
    }
}

/// One point of the Figure 12 scaling experiment: `active` of the
/// cluster's ranks stream strided puts of `access` bytes to the rank at
/// `distance` ahead on the ring; returns the **minimum of the per-process
/// maximum bandwidths** (the paper's metric).
pub fn scaling_put_bandwidth(
    spec: ClusterSpec,
    active: usize,
    distance: usize,
    access: usize,
    winsize: usize,
) -> Bandwidth {
    let out = run(spec, move |r| {
        let mut win = make_window(r, winsize, true);
        win.fence(r).unwrap();
        let size = r.size();
        let mut moved = 0usize;
        let t0 = r.now();
        if r.rank() < active {
            let target = (r.rank() + distance) % size;
            let data = vec![1u8; access];
            let stride = 2 * access;
            let mut offset = 0usize;
            while offset + access < winsize {
                win.put(r, target, offset, &data).expect("put in range");
                moved += access;
                offset += stride;
            }
        }
        win.fence(r).unwrap();
        let elapsed = r.now() - t0;
        if moved > 0 {
            Bandwidth::observed(moved as u64, elapsed)
        } else {
            Bandwidth::from_bytes_per_sec(u64::MAX)
        }
    });
    out.into_iter()
        .fold(Bandwidth::from_bytes_per_sec(u64::MAX), Bandwidth::min)
}

/// Ping-pong latency/bandwidth of the two-sided path (used by Figure 1's
/// MPI-level context and sanity checks).
pub fn pingpong(spec: ClusterSpec, bytes: usize, reps: usize) -> (SimDuration, Bandwidth) {
    let out = run(spec, move |r| {
        let mut buf = vec![0u8; bytes];
        r.barrier();
        let t0 = r.now();
        for _ in 0..reps {
            if r.rank() == 0 {
                r.send(1, 0, &buf).unwrap();
                r.recv(Source::Rank(1), TagSel::Value(0), &mut buf).unwrap();
            } else if r.rank() == 1 {
                r.recv(Source::Rank(0), TagSel::Value(0), &mut buf).unwrap();
                r.send(0, 0, &buf).unwrap();
            }
        }
        r.barrier();
        r.now() - t0
    });
    let rtt = out[0] / (reps as u64);
    let one_way = rtt / 2;
    (one_way, Bandwidth::observed(bytes as u64, one_way))
}

/// The standard power-of-two sweep used by the figures.
pub fn sweep(from: usize, to: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut s = from;
    while s <= to {
        v.push(s);
        s *= 2;
    }
    v
}

/// A default 2-node inter-node spec (the paper's standard measurement
/// setup for 2-process benchmarks).
pub fn internode_spec() -> ClusterSpec {
    ClusterSpec::ringlet(2)
}

/// A 1-node, 2-process spec (the "shm" curves).
pub fn intranode_spec() -> ClusterSpec {
    let mut spec = ClusterSpec::ringlet(1);
    spec.procs_per_node = 2;
    spec
}

/// Tuning preset used by the SCI figures (full ff comparison, paper
/// footnote 1 in §3.4: `min_block_size = 0`).
pub fn paper_tuning() -> Tuning {
    Tuning::default()
}

/// Convert a virtual time to the µs scale the paper's latency plots use.
pub fn us(d: SimDuration) -> f64 {
    d.as_us_f64()
}

/// Time origin helper for tests.
pub fn zero() -> SimTime {
    SimTime::ZERO
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noncontig_type_matches_paper_shape() {
        let c = noncontig_type(128, 256 * 1024);
        assert_eq!(c.size(), 256 * 1024);
        assert_eq!(c.extent(), 2 * 256 * 1024 - 128);
        assert_eq!(c.blocks_per_instance(), 2048);
        assert_eq!(c.min_block_len(), 128);
    }

    #[test]
    fn sweep_is_powers_of_two() {
        assert_eq!(sweep(8, 64), vec![8, 16, 32, 64]);
        assert_eq!(sweep(8, 8), vec![8]);
    }

    #[test]
    fn ff_bandwidth_rises_with_blocksize() {
        let b16 = noncontig_bandwidth(internode_spec(), NoncontigCase::DirectPackFf, 16, 64 * 1024);
        let b1k = noncontig_bandwidth(
            internode_spec(),
            NoncontigCase::DirectPackFf,
            1024,
            64 * 1024,
        );
        assert!(b1k.mib_per_sec() > 2.0 * b16.mib_per_sec());
    }

    #[test]
    fn ff_beats_generic_at_128b() {
        let total = 64 * 1024;
        let ff = noncontig_bandwidth(internode_spec(), NoncontigCase::DirectPackFf, 128, total);
        let gen = noncontig_bandwidth(internode_spec(), NoncontigCase::Generic, 128, total);
        assert!(
            ff.mib_per_sec() > 1.5 * gen.mib_per_sec(),
            "ff {ff} vs generic {gen}"
        );
    }

    #[test]
    fn sparse_put_beats_get_for_large_shared_accesses() {
        let put = sparse(internode_spec(), SparseDir::Put, 4096, 64 * 1024, true);
        let get = sparse(internode_spec(), SparseDir::Get, 4096, 64 * 1024, true);
        assert!(put.bandwidth.mib_per_sec() > get.bandwidth.mib_per_sec());
        assert!(put.calls > 0);
    }

    #[test]
    fn shared_window_puts_beat_private() {
        let shared = sparse(internode_spec(), SparseDir::Put, 1024, 64 * 1024, true);
        let private = sparse(internode_spec(), SparseDir::Put, 1024, 64 * 1024, false);
        assert!(shared.latency < private.latency);
    }

    #[test]
    fn scaling_declines_at_full_saturation() {
        // Saturation pattern: every node sends to its ring predecessor.
        let bw5 = scaling_put_bandwidth(ClusterSpec::ringlet(5), 5, 4, 16 * 1024, 128 * 1024);
        let bw8 = scaling_put_bandwidth(ClusterSpec::ringlet(8), 8, 7, 16 * 1024, 128 * 1024);
        assert!(
            bw8.mib_per_sec() < bw5.mib_per_sec() * 0.85,
            "bw5={bw5} bw8={bw8}"
        );
    }

    #[test]
    fn pingpong_latency_reasonable() {
        let (lat, _) = pingpong(internode_spec(), 8, 4);
        // Small-message MPI latency on SCI-MPICH: a handful of µs.
        assert!(lat > SimDuration::from_ns(500), "latency {lat}");
        assert!(lat < SimDuration::from_us(50), "latency {lat}");
    }
}
