//! Criterion microbenchmarks of the fabric simulator's own primitives:
//! how fast (host wall-clock) the simulation executes remote writes,
//! reads and contention queries. These bound the cost of running the
//! figure harnesses.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sci_fabric::{Fabric, FabricSpec, NodeId};
use simclock::Clock;
use std::hint::black_box;

fn bench_pio_write(c: &mut Criterion) {
    let fabric = Fabric::new(FabricSpec::default());
    let seg = fabric.export(NodeId(1), 1 << 20);
    let data = vec![0u8; 64 * 1024];

    let mut group = c.benchmark_group("sim_pio");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("write_64k_contig", |b| {
        b.iter(|| {
            let mut clock = Clock::new();
            let mut s = fabric.pio_stream(NodeId(0), &seg, data.len());
            s.write(&mut clock, 0, black_box(&data)).unwrap();
            s.barrier(&mut clock);
            black_box(clock.now())
        })
    });
    group.bench_function("write_64k_strided_64B", |b| {
        let chunk = vec![0u8; 64];
        b.iter(|| {
            let mut clock = Clock::new();
            let mut s = fabric.pio_stream(NodeId(0), &seg, 64 * 1024);
            for i in 0..1024 {
                s.write(&mut clock, i * 128, black_box(&chunk)).unwrap();
            }
            s.barrier(&mut clock);
            black_box(clock.now())
        })
    });
    group.finish();
}

fn bench_contention_query(c: &mut Criterion) {
    let fabric = Fabric::new(FabricSpec::default());
    let route = fabric.topology().route(NodeId(0), NodeId(4));
    let guards: Vec<_> = (0..6).map(|_| fabric.links().start_stream(&route)).collect();
    c.bench_function("effective_bandwidth_query", |b| {
        b.iter(|| {
            fabric.links().effective_bandwidth(
                fabric.params(),
                black_box(&route),
                fabric.params().node_injection_cap,
            )
        })
    });
    drop(guards);
}

fn bench_dma(c: &mut Criterion) {
    let fabric = Fabric::new(FabricSpec::default());
    let seg = fabric.export(NodeId(1), 4 << 20);
    let data = vec![0u8; 1 << 20];
    let mut group = c.benchmark_group("sim_dma");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("dma_write_1M", |b| {
        let dma = fabric.dma_engine(NodeId(0), &seg);
        b.iter(|| {
            let mut clock = Clock::new();
            black_box(dma.write(&mut clock, 0, black_box(&data)).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pio_write, bench_contention_query, bench_dma);
criterion_main!(benches);
