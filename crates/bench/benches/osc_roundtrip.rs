//! Criterion macrobenchmarks of whole simulated runs: host wall-clock
//! cost of the put/fence and send/recv paths, end to end through the rank
//! threads. These keep the simulator honest — a figure harness sweeping
//! dozens of points must complete in seconds.

use criterion::{criterion_group, criterion_main, Criterion};
use scimpi::{run, ClusterSpec, Source, TagSel, WinMemory};
use std::hint::black_box;

fn bench_put_fence(c: &mut Criterion) {
    c.bench_function("sim_put_fence_2ranks", |b| {
        b.iter(|| {
            let out = run(ClusterSpec::ringlet(2), |r| {
                let mem = r.alloc_mem(64 * 1024);
                let mut win = r.win_create(WinMemory::Alloc(mem));
                win.fence(r);
                if r.rank() == 0 {
                    let data = [1u8; 1024];
                    for i in 0..32 {
                        win.put(r, 1, i * 2048, &data).unwrap();
                    }
                }
                win.fence(r);
                r.now()
            });
            black_box(out)
        })
    });
}

fn bench_sendrecv(c: &mut Criterion) {
    c.bench_function("sim_eager_pingpong", |b| {
        b.iter(|| {
            let out = run(ClusterSpec::ringlet(2), |r| {
                let mut buf = vec![0u8; 1024];
                for _ in 0..16 {
                    if r.rank() == 0 {
                        r.send(1, 0, &buf);
                        r.recv(Source::Rank(1), TagSel::Value(0), &mut buf);
                    } else {
                        r.recv(Source::Rank(0), TagSel::Value(0), &mut buf);
                        r.send(0, 0, &buf);
                    }
                }
                r.now()
            });
            black_box(out)
        })
    });

    c.bench_function("sim_rendezvous_256k", |b| {
        let data = vec![7u8; 256 * 1024];
        b.iter(|| {
            let data = data.clone();
            let out = run(ClusterSpec::ringlet(2), move |r| {
                if r.rank() == 0 {
                    r.send(1, 0, &data);
                } else {
                    let mut buf = vec![0u8; 256 * 1024];
                    r.recv(Source::Rank(0), TagSel::Value(0), &mut buf);
                }
                r.now()
            });
            black_box(out)
        })
    });
}

criterion_group!(benches, bench_put_fence, bench_sendrecv);
criterion_main!(benches);
