//! Criterion microbenchmarks of the two packing engines (host wall-clock,
//! not virtual time): the actual CPU efficiency of the Rust
//! implementations of the generic tree walker and `direct_pack_ff`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpi_datatype::{ff, tree, Committed, Datatype};
use std::hint::black_box;

fn strided_vector(blocksize: usize, total: usize) -> Datatype {
    let elems = blocksize / 8;
    Datatype::vector(total / blocksize, elems, 2 * elems as isize, &Datatype::double())
}

fn bench_pack(c: &mut Criterion) {
    let total = 256 * 1024;
    let mut group = c.benchmark_group("pack_256k");
    for blocksize in [8usize, 64, 512, 4096, 32768] {
        let dt = strided_vector(blocksize, total);
        let committed = Committed::commit(&dt);
        let src: Vec<u8> = (0..dt.extent()).map(|i| i as u8).collect();
        group.throughput(Throughput::Bytes(total as u64));

        group.bench_with_input(
            BenchmarkId::new("generic", blocksize),
            &blocksize,
            |b, _| {
                b.iter(|| {
                    let mut out = Vec::with_capacity(total);
                    tree::pack(black_box(&dt), 1, black_box(&src), 0, &mut out);
                    black_box(out)
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("ff", blocksize), &blocksize, |b, _| {
            b.iter(|| {
                let mut sink = ff::VecSink::default();
                ff::pack_ff(
                    black_box(&committed),
                    1,
                    black_box(&src),
                    0,
                    0,
                    usize::MAX,
                    &mut sink,
                )
                .unwrap();
                black_box(sink.data)
            })
        });
    }
    group.finish();
}

fn bench_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("commit");
    let chars = Datatype::contiguous(3, &Datatype::byte());
    let s = Datatype::structure(&[(1, 0, Datatype::int()), (1, 4, chars)]);
    let cases = [
        ("vector", Datatype::vector(1024, 4, 8, &Datatype::double())),
        ("vec_of_struct", Datatype::hvector(256, 1, 16, &s)),
        (
            "indexed64",
            Datatype::indexed(
                &(0..64).map(|i| (2usize, (i * 5) as isize)).collect::<Vec<_>>(),
                &Datatype::int(),
            ),
        ),
    ];
    for (name, dt) in cases {
        group.bench_function(name, |b| b.iter(|| Committed::commit(black_box(&dt))));
    }
    group.finish();
}

fn bench_find_position(c: &mut Criterion) {
    let dt = strided_vector(64, 1 << 20);
    let committed = Committed::commit(&dt);
    c.bench_function("find_position_mid", |b| {
        b.iter(|| committed.find_position(black_box(512 * 1024 + 13), 2))
    });
}

criterion_group!(benches, bench_pack, bench_commit, bench_find_position);
criterion_main!(benches);
