//! Typed communication errors and MPI-style error-handler semantics.
//!
//! SCI "is still a network" (§2 of the paper): peers die, cables get
//! pulled, transfers error out hard after their retry budget. This module
//! is how those conditions surface above the fabric:
//!
//! * [`ScimpiError`] is the protocol-level error taxonomy;
//! * [`ErrorMode`] selects between `MPI_ERRORS_ARE_FATAL` (the default —
//!   any communication error aborts the run before the `Err` is
//!   observable) and `MPI_ERRORS_RETURN` (every communication verb
//!   returns the error as a value through its `Result`);
//! * [`death_delay`] is the deterministic virtual-time budget after which
//!   a silent peer is declared dead: a bounded sequence of timeout
//!   windows growing by `timeout_backoff`, each followed by a connection
//!   probe.

use crate::tuning::Tuning;
use sci_fabric::SciError;
use simclock::SimDuration;
use std::fmt;

/// Protocol-level communication errors.
#[derive(Clone, Debug, PartialEq)]
pub enum ScimpiError {
    /// The fabric reported a hard failure (severed link, out-of-bounds
    /// access, dead node) that no retry or failover could absorb.
    Fabric(SciError),
    /// A protocol wait (rendezvous handshake, ring slot, one-sided
    /// control message) ran through its full timeout/backoff schedule.
    Timeout {
        /// The peer rank the wait was on.
        peer: usize,
        /// Which protocol step timed out.
        what: &'static str,
        /// Virtual time spent waiting before giving up.
        waited: SimDuration,
    },
    /// The peer was declared dead by the connection monitor.
    PeerDead {
        /// The dead peer's rank.
        peer: usize,
    },
    /// An unexpected control packet arrived where the protocol state
    /// machine demanded another (e.g. a chunk notification instead of a
    /// CTS).
    ProtocolViolation {
        /// The packet the state machine expected.
        expected: &'static str,
        /// Debug rendering of what actually arrived.
        got: String,
    },
    /// Window creation or registration failed (missing registration,
    /// type mismatch, exhausted shared-segment pool).
    WindowError(String),
    /// The communicator was revoked: some rank observed a dead peer and
    /// invalidated the current membership epoch, so every blocked
    /// communication call errors out instead of running its timeout
    /// schedule. Recover by agreeing on a new epoch via
    /// `recovery::shrink`.
    Revoked,
    /// Payload corruption detected by the integrity machinery (sequence
    /// check or CRC mismatch) that the retransmission budget could not
    /// repair. In `SequenceCheck` mode `retransmits` is always 0: the
    /// guard detects but never repairs.
    DataCorruption {
        /// The peer rank on the other end of the corrupted transfer.
        peer: usize,
        /// Which transfer path was corrupted.
        what: &'static str,
        /// Retransmissions attempted before giving up.
        retransmits: u32,
    },
    /// A governed resource (eager credits, window memory, staging
    /// buffers, the request engine's in-flight set) had no capacity left
    /// for the operation and the active [`crate::OverloadPolicy`] chose
    /// to refuse rather than stall or degrade.
    ResourceExhausted {
        /// Which resource ran out.
        what: &'static str,
        /// What the operation asked for (bytes, slots, requests).
        needed: usize,
        /// The configured limit.
        limit: usize,
    },
    /// A [`crate::Tuning`] failed its invariant check
    /// (`Tuning::validate`) before the cluster was built.
    InvalidConfig(String),
    /// A caller-supplied argument was out of range for the communicator
    /// (e.g. a collective root outside `0..size`, or counts/displs that
    /// don't cover the supplied buffer). Surfaced through the normal
    /// [`ErrorMode`] path like every other communication error.
    InvalidArg {
        /// Which argument was rejected.
        what: &'static str,
        /// The offending value.
        got: usize,
        /// Exclusive upper bound (or required value) for the argument.
        limit: usize,
    },
}

impl fmt::Display for ScimpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScimpiError::Fabric(e) => write!(f, "fabric error: {e}"),
            ScimpiError::Timeout { peer, what, waited } => write!(
                f,
                "timed out waiting for {what} from rank {peer} after {} ps of virtual time",
                waited.as_ps()
            ),
            ScimpiError::PeerDead { peer } => write!(f, "rank {peer} declared dead"),
            ScimpiError::ProtocolViolation { expected, got } => {
                write!(f, "protocol violation: expected {expected}, got {got}")
            }
            ScimpiError::WindowError(msg) => write!(f, "window error: {msg}"),
            ScimpiError::Revoked => {
                write!(f, "communicator revoked: membership epoch invalidated")
            }
            ScimpiError::DataCorruption {
                peer,
                what,
                retransmits,
            } => write!(
                f,
                "data corruption on {what} with rank {peer} ({retransmits} retransmissions attempted)"
            ),
            ScimpiError::ResourceExhausted {
                what,
                needed,
                limit,
            } => write!(
                f,
                "resource exhausted: {what} (needed {needed}, limit {limit})"
            ),
            ScimpiError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            ScimpiError::InvalidArg { what, got, limit } => {
                write!(f, "invalid argument: {what} = {got} (limit {limit})")
            }
        }
    }
}

impl std::error::Error for ScimpiError {}

impl From<SciError> for ScimpiError {
    fn from(e: SciError) -> Self {
        ScimpiError::Fabric(e)
    }
}

/// MPI-style error-handler selection, per [`crate::ClusterSpec`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ErrorMode {
    /// `MPI_ERRORS_ARE_FATAL`: any communication error panics the rank
    /// (and thereby tears down the run) before the `Err` reaches the
    /// caller, so infallible call sites can unwrap freely. The default.
    #[default]
    ErrorsAreFatal,
    /// `MPI_ERRORS_RETURN`: communication verbs hand the error back
    /// through their `Result` for the application to recover from.
    ErrorsReturn,
}

/// The deterministic virtual-time budget after which a silent peer is
/// declared dead: `max_protocol_retries + 1` timeout windows starting at
/// `ctrl_timeout` and growing by `timeout_backoff`, each followed by one
/// `probe_cost` connection check.
///
/// Every declared-dead path charges exactly this schedule to the waiting
/// rank's clock, so the outcome is bit-identical across runs regardless
/// of real-time thread interleaving.
pub fn death_delay(t: &Tuning) -> SimDuration {
    let mut total = SimDuration::ZERO;
    let mut window = t.ctrl_timeout;
    for _ in 0..=t.max_protocol_retries {
        total += window + t.probe_cost;
        window = scale_window(window, t.timeout_backoff);
    }
    total
}

/// One backoff step: the next timeout window, `window · factor` rounded
/// down to whole picoseconds (deterministic).
pub(crate) fn scale_window(window: SimDuration, factor: f64) -> SimDuration {
    SimDuration::from_ps((window.as_ps() as f64 * factor) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn death_delay_is_bounded_and_grows_with_retries() {
        let t = Tuning::default();
        let base = death_delay(&t);
        assert!(base > SimDuration::ZERO);
        let mut more = t.clone();
        more.max_protocol_retries += 2;
        assert!(death_delay(&more) > base);
    }

    #[test]
    fn death_delay_matches_manual_schedule() {
        let t = Tuning {
            ctrl_timeout: SimDuration::from_us(100),
            timeout_backoff: 2.0,
            max_protocol_retries: 2,
            probe_cost: SimDuration::from_us(4),
            ..Tuning::default()
        };
        // Windows 100, 200, 400 us + 3 probes of 4 us.
        assert_eq!(death_delay(&t), SimDuration::from_us(100 + 200 + 400 + 12));
    }

    #[test]
    fn error_display_is_informative() {
        let e = ScimpiError::PeerDead { peer: 3 };
        assert!(e.to_string().contains("rank 3"));
        let e = ScimpiError::ProtocolViolation {
            expected: "CTS",
            got: "Chunk".into(),
        };
        assert!(e.to_string().contains("expected CTS"));
        let e = ScimpiError::from(SciError::PeerDead(2));
        assert!(matches!(e, ScimpiError::Fabric(_)));
        let e = ScimpiError::DataCorruption {
            peer: 1,
            what: "rendezvous chunk",
            retransmits: 4,
        };
        let s = e.to_string();
        assert!(s.contains("rendezvous chunk") && s.contains("rank 1") && s.contains('4'));
        assert!(ScimpiError::Revoked.to_string().contains("revoked"));
        let e = ScimpiError::ResourceExhausted {
            what: "eager credits",
            needed: 4096,
            limit: 1024,
        };
        let s = e.to_string();
        assert!(s.contains("eager credits") && s.contains("4096") && s.contains("1024"));
        let e = ScimpiError::InvalidConfig("ring_slots must be at least 1".into());
        assert!(e.to_string().contains("ring_slots"));
        let e = ScimpiError::InvalidArg {
            what: "bcast root",
            got: 9,
            limit: 8,
        };
        let s = e.to_string();
        assert!(s.contains("bcast root") && s.contains('9') && s.contains('8'));
    }

    #[test]
    fn default_mode_is_fatal() {
        assert_eq!(ErrorMode::default(), ErrorMode::ErrorsAreFatal);
    }
}
