//! Cluster runtime: rank execution over the simulated fabric.
//!
//! [`run`] executes the user closure on every MPI rank; ranks communicate
//! through the [`crate::mailbox`] transport and the SCI fabric. Virtual
//! time lives in each rank's [`simclock::Clock`]; `MPI_Wtime` reads it.
//!
//! Two execution backends share one protocol implementation (selected by
//! [`ClusterSpec::backend`], see `docs/SCHEDULER.md`):
//!
//! * [`Backend::Thread`] — one free-running OS thread per rank, blocking
//!   on condvars with real-time poll slices (the reference backend);
//! * [`Backend::Event`] — ranks are cooperative tasks under a
//!   deterministic discrete-event scheduler; exactly one task runs at a
//!   time and blocking sites park on the virtual-time event queue, which
//!   decouples simulated rank count from host threads' wall-clock cost
//!   and scales to 10k+ ranks.

use crate::error::{ErrorMode, ScimpiError};
use crate::mailbox::Mailbox;
use crate::tuning::Tuning;
pub use obs::ObsConfig;
use sci_fabric::{Fabric, FabricSpec, FaultConfig, SciParams, Topology};
use simclock::{Clock, SimDuration, SimTime};
use smi::{ProcId, SharedRegion, ShregAllocator, SmiWorld, TimeBarrier};
use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Size of each rank's `MPI_Alloc_mem` shared-segment pool.
pub const ALLOC_POOL_BYTES: usize = 8 << 20;

/// Real-time polling slice for liveness-guarded protocol waits. Purely a
/// responsiveness/CPU trade-off: virtual time never depends on it. Under
/// the event backend the same waits park on the scheduler instead and a
/// stall round substitutes for slice expiry.
pub(crate) const POLL_SLICE: std::time::Duration = std::time::Duration::from_millis(10);

/// Stack size for event-backend rank tasks. Parked tasks touch only a
/// few pages, so 10k ranks cost ~10 GiB of *address space* but only the
/// touched pages of RSS; the thread backend keeps the platform default.
const EVENT_TASK_STACK: usize = 1 << 20;

/// Execution backend for [`run`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// One free-running OS thread per rank (the reference
    /// implementation). Wall-clock cost scales with rank count.
    #[default]
    Thread,
    /// Deterministic discrete-event scheduler: ranks are cooperative
    /// tasks dispatched in `(virtual time, rank, sequence)` order by a
    /// single run token. Bit-identical results to [`Backend::Thread`]
    /// (enforced by `tests/backend_diff.rs`) at a fraction of the
    /// scheduling cost for large rank counts.
    Event,
}

/// Statistics of the most recent [`Backend::Event`] run on this thread's
/// process (None before the first event run). Benchmarks read the event
/// count and queue high-water mark from here.
static LAST_EVENT_STATS: Mutex<Option<sched::Stats>> = Mutex::new(None);

/// Scheduler statistics of the most recent [`Backend::Event`] run.
pub fn last_event_stats() -> Option<sched::Stats> {
    *LAST_EVENT_STATS.lock().unwrap()
}

/// Everything needed to launch a simulated cluster run.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// Cluster interconnect topology (single ringlet or multi-ring).
    pub topology: Topology,
    /// MPI ranks per node (1 = the paper's standard setup).
    pub procs_per_node: usize,
    /// Fabric calibration.
    pub params: SciParams,
    /// Fault injection.
    pub faults: FaultConfig,
    /// Deterministic seed.
    pub seed: u64,
    /// Protocol tuning.
    pub tuning: Tuning,
    /// Observability: event tracing, counters and exports.
    pub obs: ObsConfig,
    /// MPI-style error-handler semantics: abort on communication error
    /// (the default) or hand errors back through the `Result` returned by
    /// every communication verb.
    pub errors: ErrorMode,
    /// Execution backend: free-running threads (default) or the
    /// deterministic event scheduler.
    pub backend: Backend,
}

impl ClusterSpec {
    /// The paper's testbed: `nodes` single-process nodes on one ringlet.
    pub fn ringlet(nodes: usize) -> Self {
        ClusterSpec {
            topology: Topology::ringlet(nodes),
            procs_per_node: 1,
            params: SciParams::default(),
            faults: FaultConfig::default(),
            seed: 0xC0FFEE,
            tuning: Tuning::default(),
            obs: ObsConfig::disabled(),
            errors: ErrorMode::default(),
            backend: Backend::default(),
        }
    }

    /// The §5.3 outlook: `rings` ringlets of `per_ring` nodes joined by a
    /// switch fabric (towards the "512 nodes with a 3D-torus" system).
    pub fn multi_ring(rings: usize, per_ring: usize) -> Self {
        ClusterSpec {
            topology: Topology::multi_ring(rings, per_ring),
            ..ClusterSpec::ringlet(1)
        }
    }

    /// Builder: replace the protocol tuning.
    pub fn tuning(mut self, tuning: Tuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Builder: replace the fabric calibration.
    pub fn params(mut self, params: SciParams) -> Self {
        self.params = params;
        self
    }

    /// Builder: replace the observability configuration.
    pub fn obs(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }

    /// Builder: replace the error-handler semantics.
    pub fn errors(mut self, errors: ErrorMode) -> Self {
        self.errors = errors;
        self
    }

    /// Builder: replace the fault-injection configuration.
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Builder: replace the deterministic seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: replace the ranks-per-node count.
    pub fn procs_per_node(mut self, procs: usize) -> Self {
        self.procs_per_node = procs;
        self
    }

    /// Builder: replace the execution backend.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Finish the builder chain, validating the spec. Purely a
    /// readability terminator: the spec is already usable, but `build()`
    /// catches empty clusters at construction instead of inside [`run`].
    pub fn build(self) -> Self {
        assert!(
            self.topology.node_count() > 0 && self.procs_per_node > 0,
            "cluster needs at least one node and one proc per node"
        );
        if let Err(e) = self.tuning.validate() {
            panic!("invalid cluster spec: {e}");
        }
        self
    }

    /// Total rank count.
    pub fn num_ranks(&self) -> usize {
        self.topology.node_count() * self.procs_per_node
    }
}

/// A rendezvous ring buffer for one (sender, receiver) pair, exported by
/// the receiver's node.
pub(crate) struct PairRing {
    /// Backing shared region (receiver-local).
    pub region: Arc<SharedRegion>,
    /// Slot bookkeeping: free slot indices with the virtual time they were
    /// freed. FIFO: the receiver drains slots in ascending virtual time,
    /// and taking the front slot keeps the sender's virtual wait
    /// independent of real-time thread interleaving (determinism).
    free: Mutex<std::collections::VecDeque<(usize, SimTime)>>,
    cv: Condvar,
    /// Bytes per slot.
    pub chunk: usize,
    /// Send-turn ticketing: with nonblocking sends, two rendezvous
    /// transfers to the same destination can be in flight at once, and
    /// their engine threads would race for ring slots — making the
    /// `freed_at` merge order depend on real-time interleaving. Each
    /// rendezvous send takes a turn ticket when its RTS is posted (program
    /// order on the sending rank's thread) and the chunk loop runs only
    /// when its ticket comes up, so the per-pair data stream is serialised
    /// in posted order. Blocking sends pass straight through (their ticket
    /// is always current) at zero virtual cost.
    turn: Mutex<TurnState>,
    turn_cv: Condvar,
    /// Event-backend tasks parked on an empty free list.
    waiters: sched::WaitQueue,
    /// Event-backend tasks parked on a turn ticket.
    turn_waiters: sched::WaitQueue,
}

#[derive(Default)]
struct TurnState {
    next_ticket: u64,
    current: u64,
}

impl PairRing {
    fn new(region: Arc<SharedRegion>, slots: usize, chunk: usize) -> Self {
        PairRing {
            region,
            free: Mutex::new((0..slots).map(|s| (s, SimTime::ZERO)).collect()),
            cv: Condvar::new(),
            chunk,
            turn: Mutex::new(TurnState::default()),
            turn_cv: Condvar::new(),
            waiters: sched::WaitQueue::new(),
            turn_waiters: sched::WaitQueue::new(),
        }
    }

    /// Take the next send-turn ticket. Must be called on the sending
    /// rank's own thread (at RTS-post time) so tickets reflect program
    /// order.
    pub fn take_turn_ticket(&self) -> u64 {
        let mut t = self.turn.lock().unwrap();
        let ticket = t.next_ticket;
        t.next_ticket += 1;
        ticket
    }

    /// Block (real time only) until `ticket`'s turn comes up, returning a
    /// guard that passes the turn on when dropped — including on error
    /// and panic paths, so a failed send never wedges the pair.
    pub fn await_turn(&self, ticket: u64) -> TurnGuard<'_> {
        let mut t = self.turn.lock().unwrap();
        if sched::is_event_task() {
            while t.current != ticket {
                self.turn_waiters.register_current();
                drop(t);
                // Turns carry no timestamp: park at the task's last time.
                sched::park_stale();
                t = self.turn.lock().unwrap();
            }
        } else {
            while t.current != ticket {
                t = self.turn_cv.wait(t).unwrap();
            }
        }
        TurnGuard { ring: self, ticket }
    }
}

/// Holds one send's turn on a [`PairRing`]; passing it on at drop.
pub(crate) struct TurnGuard<'a> {
    ring: &'a PairRing,
    ticket: u64,
}

impl Drop for TurnGuard<'_> {
    fn drop(&mut self) {
        let mut t = self.ring.turn.lock().unwrap();
        debug_assert_eq!(t.current, self.ticket, "turn released out of order");
        t.current = self.ticket + 1;
        drop(t);
        self.ring.turn_cv.notify_all();
        self.ring.turn_waiters.wake_all();
    }
}

impl PairRing {
    /// Acquire the earliest-freed slot (merging the slot's free-time into
    /// the clock — the sender virtually waits for the receiver to drain),
    /// giving up after `timeout` of *real* time. Returns `None` on expiry
    /// without touching the clock — callers loop, checking receiver
    /// liveness between slices, and charge virtual time only from the
    /// deterministic timeout schedule.
    pub fn acquire_for(&self, clock: &mut Clock, timeout: std::time::Duration) -> Option<usize> {
        if sched::is_event_task() && !timeout.is_zero() {
            let mut free = self.free.lock().unwrap();
            loop {
                if let Some((slot, freed_at)) = free.pop_front() {
                    drop(free);
                    clock.merge(freed_at);
                    return Some(slot);
                }
                self.waiters.register_current();
                drop(free);
                if sched::park(clock.now()) == sched::Wake::Stalled {
                    return None;
                }
                free = self.free.lock().unwrap();
            }
        }
        let deadline = std::time::Instant::now() + timeout;
        let mut free = self.free.lock().unwrap();
        loop {
            if let Some((slot, freed_at)) = free.pop_front() {
                drop(free);
                clock.merge(freed_at);
                return Some(slot);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            free = self.cv.wait_timeout(free, deadline - now).unwrap().0;
        }
    }

    /// Return a slot drained at virtual time `at`.
    pub fn release(&self, slot: usize, at: SimTime) {
        self.free.lock().unwrap().push_back((slot, at));
        self.cv.notify_all();
        self.waiters.wake_all();
    }

    /// Byte offset of a slot.
    pub fn slot_offset(&self, slot: usize) -> usize {
        slot * self.chunk
    }
}

/// Credit-based eager flow control for one (sender, receiver) pair.
///
/// The sender owns a finite eager budget
/// ([`Tuning::eager_credits_bytes`] payload bytes plus
/// [`Tuning::eager_credit_slots`] envelope slots) and spends from it at
/// post time on its own thread; the receiver *returns* credits by
/// depositing a timestamped grant when the message is matched and
/// unpacked. Grants flow back into the spendable pool either inside a
/// backpressure stall ([`PairCredits::await_grant_for`] — the sender
/// merges the grant time, virtually waiting for the receiver to drain)
/// or in bulk at synchronisation points
/// ([`PairCredits::collect_ready`]).
///
/// Keeping the spendable pool strictly sender-thread-local is what makes
/// the overload verdict — and thus the virtual timeline — deterministic:
/// a grant deposited concurrently by the receiver's thread is never
/// observed by a non-blocking read, only by a blocking collect whose
/// timestamp is merged, or by a barrier that already orders it into the
/// sender's causal past.
pub(crate) struct PairCredits {
    /// Spendable (payload bytes, envelope slots). Only the sending
    /// rank's own thread mutates this (consume + collect), so its value
    /// at any program point is a deterministic function of the rank's
    /// send/collect history.
    avail: Mutex<(usize, usize)>,
    /// Returned credits awaiting collection: payload length and the
    /// virtual time the grant reaches the sender (receiver match time
    /// plus one control-packet latency). FIFO, like `PairRing::free`:
    /// collecting the front grant keeps the sender's virtual wait
    /// independent of real-time interleaving.
    granted: Mutex<std::collections::VecDeque<(usize, SimTime)>>,
    cv: Condvar,
    /// Event-backend tasks parked in a backpressure stall.
    waiters: sched::WaitQueue,
    /// Full budget, for peak-outstanding accounting and recovery resets.
    budget_bytes: usize,
    budget_slots: usize,
}

impl PairCredits {
    fn new(bytes: usize, slots: usize) -> Self {
        PairCredits {
            avail: Mutex::new((bytes, slots)),
            granted: Mutex::new(std::collections::VecDeque::new()),
            cv: Condvar::new(),
            waiters: sched::WaitQueue::new(),
            budget_bytes: bytes,
            budget_slots: slots,
        }
    }

    /// Spend `len` payload bytes and one envelope slot, if the pool
    /// covers both. On success the new outstanding byte total is folded
    /// into the `credit_bytes_peak` gauge.
    pub fn try_consume(&self, len: usize) -> bool {
        let mut a = self.avail.lock().unwrap();
        if a.0 >= len && a.1 >= 1 {
            a.0 -= len;
            a.1 -= 1;
            obs::max(
                obs::Counter::CreditBytesPeak,
                (self.budget_bytes - a.0) as u64,
            );
            true
        } else {
            false
        }
    }

    /// Receiver side: return `len` bytes plus one slot, visible to the
    /// sender at virtual time `at`.
    pub fn deposit(&self, len: usize, at: SimTime) {
        self.granted.lock().unwrap().push_back((len, at));
        self.cv.notify_all();
        self.waiters.wake_all();
    }

    /// Sender side, at a synchronisation point: fold every deposited
    /// grant back into the spendable pool. No clock merge — the caller
    /// just completed a barrier the depositing receiver also passed, so
    /// the grants are already in its causal past.
    pub fn collect_ready(&self) {
        let mut g = self.granted.lock().unwrap();
        if g.is_empty() {
            return;
        }
        let mut a = self.avail.lock().unwrap();
        while let Some((len, _)) = g.pop_front() {
            a.0 = (a.0 + len).min(self.budget_bytes);
            a.1 = (a.1 + 1).min(self.budget_slots);
        }
    }

    /// Sender side, inside a backpressure stall: block (real time only)
    /// for the earliest deposited grant, giving up after `timeout`.
    /// Returns `None` on expiry without touching any state — callers
    /// loop, checking receiver liveness and revocation between slices.
    /// The popped grant is NOT yet spendable: the caller merges its
    /// timestamp and then folds it in with [`PairCredits::restore`].
    pub fn await_grant_for(&self, timeout: std::time::Duration) -> Option<(usize, SimTime)> {
        if sched::is_event_task() && !timeout.is_zero() {
            let mut g = self.granted.lock().unwrap();
            loop {
                if let Some(grant) = g.pop_front() {
                    return Some(grant);
                }
                self.waiters.register_current();
                drop(g);
                // Grant waits carry no timestamp: park at the task's
                // last recorded time.
                if sched::park_stale() == sched::Wake::Stalled {
                    return None;
                }
                g = self.granted.lock().unwrap();
            }
        }
        let deadline = std::time::Instant::now() + timeout;
        let mut g = self.granted.lock().unwrap();
        loop {
            if let Some(grant) = g.pop_front() {
                return Some(grant);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            g = self.cv.wait_timeout(g, deadline - now).unwrap().0;
        }
    }

    /// Fold a grant popped by [`PairCredits::await_grant_for`] into the
    /// spendable pool (after the caller merged its timestamp).
    pub fn restore(&self, len: usize) {
        let mut a = self.avail.lock().unwrap();
        a.0 = (a.0 + len).min(self.budget_bytes);
        a.1 = (a.1 + 1).min(self.budget_slots);
    }

    /// Snapshot of the spendable pool (tests and diagnostics). Grants
    /// deposited but not yet collected are not included.
    pub fn available(&self) -> (usize, usize) {
        *self.avail.lock().unwrap()
    }

    /// Recovery: restore the full budget and drop pending grants. Used
    /// when one end of the pair died — credits owed by the dead rank are
    /// reclaimed so backpressure can never deadlock a shrink.
    pub fn reset_full(&self) {
        self.granted.lock().unwrap().clear();
        *self.avail.lock().unwrap() = (self.budget_bytes, self.budget_slots);
        self.cv.notify_all();
        self.waiters.wake_all();
    }
}

/// An installed communicator revocation: who revoked, and at which
/// virtual time. The revocation reaches every other rank through a
/// deterministic binomial gossip front (see
/// [`WorldState::revoke_arrival`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct RevokeInfo {
    /// Virtual time the revoker installed the revocation.
    pub at: SimTime,
    /// World rank of the revoker.
    pub by: usize,
}

/// Shared state of one cluster run.
pub(crate) struct WorldState {
    pub fabric: Arc<Fabric>,
    pub smi: Arc<SmiWorld>,
    pub tuning: Tuning,
    pub mailboxes: Vec<Mailbox>,
    pub barrier: TimeBarrier,
    pub rings: Mutex<HashMap<(usize, usize), Arc<PairRing>>>,
    pub next_handle: AtomicU64,
    pub alloc_pools: Vec<Mutex<ShregAllocator>>,
    /// Per-rank `MPI_Alloc_mem` backing regions, created on first use:
    /// an eager 8 MiB segment per rank would commit 80 GiB at 10k ranks
    /// before any rank allocates a byte.
    pub alloc_regions: Vec<OnceLock<Arc<SharedRegion>>>,
    pub coll: Mutex<HashMap<u64, CollSlot>>,
    pub windows: Mutex<HashMap<u64, Arc<dyn Any + Send + Sync>>>,
    pub errors: ErrorMode,
    /// The active revocation, min-merged on `(at, by)` so concurrent
    /// revokers converge on one deterministic front. Cleared at `shrink`.
    pub revoke: Mutex<Option<RevokeInfo>>,
    /// The membership epoch most recently installed by `shrink` (0 = the
    /// initial full-world membership).
    pub current_epoch: AtomicU64,
    /// Barriers for shrunken epochs, registered by the survivor leader
    /// and keyed by epoch number (epoch 0 uses `barrier`).
    pub epoch_barriers: Mutex<HashMap<u64, Arc<TimeBarrier>>>,
    /// Eager flow-control credit pools, keyed by (sender, receiver)
    /// world-rank pair and created lazily like `rings`.
    pub credits: Mutex<HashMap<(usize, usize), Arc<PairCredits>>>,
    /// Per-rank bytes currently charged against the window memory
    /// budget ([`Tuning::window_budget_bytes`]). Indexed by world rank;
    /// only that rank's thread charges or releases, so the balance is
    /// deterministic.
    pub window_bytes: Vec<std::sync::atomic::AtomicUsize>,
    /// Per-rank staging-buffer ledgers governing pack-path selection
    /// ([`Tuning::staging_budget_bytes`]). Indexed by world rank.
    pub staging: Vec<crate::sink::StagingLedger>,
    /// Event-backend tasks parked waiting for a shrink leader to publish
    /// a new membership epoch (see `recovery::shrink`).
    pub epoch_waiters: sched::WaitQueue,
}

pub(crate) struct CollSlot {
    pub values: Vec<Option<Box<dyn Any + Send>>>,
    pub reads: usize,
}

impl WorldState {
    /// Allocate a globally unique protocol handle.
    pub fn handle(&self) -> u64 {
        self.next_handle.fetch_add(1, Ordering::Relaxed)
    }

    /// The `MPI_Alloc_mem` backing region of `rank`, created on first
    /// use (its segment commits [`ALLOC_POOL_BYTES`] of host memory).
    pub fn alloc_region(&self, rank: usize) -> Arc<SharedRegion> {
        Arc::clone(
            self.alloc_regions[rank]
                .get_or_init(|| self.smi.create_region(ProcId(rank), ALLOC_POOL_BYTES)),
        )
    }

    /// The rendezvous ring for messages `src → dst`, created lazily.
    pub fn ring(self: &Arc<Self>, src: usize, dst: usize) -> Arc<PairRing> {
        let mut rings = self.rings.lock().unwrap();
        Arc::clone(rings.entry((src, dst)).or_insert_with(|| {
            let slots = self.tuning.ring_slots;
            let chunk = self.tuning.rendezvous_chunk;
            let region = self.smi.create_region(ProcId(dst), slots * chunk);
            Arc::new(PairRing::new(region, slots, chunk))
        }))
    }

    /// The eager credit pool for messages `src → dst`, created lazily.
    pub fn credit(&self, src: usize, dst: usize) -> Arc<PairCredits> {
        let mut credits = self.credits.lock().unwrap();
        Arc::clone(credits.entry((src, dst)).or_insert_with(|| {
            Arc::new(PairCredits::new(
                self.tuning.eager_credits_bytes,
                self.tuning.eager_credit_slots,
            ))
        }))
    }

    /// Collect returned eager credits on every pair whose sender is
    /// `me`. Called at barriers: the depositing receivers passed the
    /// same barrier, so every pending grant is in `me`'s causal past.
    pub fn collect_credits(&self, me: usize) {
        let pairs: Vec<Arc<PairCredits>> = {
            let credits = self.credits.lock().unwrap();
            credits
                .iter()
                .filter(|(&(s, _), _)| s == me)
                .map(|(_, c)| Arc::clone(c))
                .collect()
        };
        for c in pairs {
            c.collect_ready();
        }
    }

    /// Recovery: reclaim eager credits on every pair touching a dead
    /// rank, so a sender stalled on credits owed by the dead rank makes
    /// progress once the shrink installs the new epoch.
    pub fn reclaim_credits(&self, dead: &[usize]) {
        let credits = self.credits.lock().unwrap();
        for (&(s, d), c) in credits.iter() {
            if dead.contains(&s) || dead.contains(&d) {
                c.reset_full();
            }
        }
    }

    /// Pack-path selection under the staging budget: the tuning
    /// selector's verdict is downgraded `Dma → Staged → DirectFf` when
    /// `rank`'s staging ledger cannot cover the lease the chosen path
    /// needs. The DMA path stages the whole message in a pinned pack
    /// buffer; the generic staged engine recycles one
    /// `rendezvous_chunk`-sized bounce buffer; `direct_pack_ff` streams
    /// with no staging at all — which is why it is the terminal
    /// degradation step. Returns the governed path plus the staging
    /// lease held for the transfer (drop it when the transfer is done).
    pub fn governed_path(
        &self,
        rank: usize,
        c: &mpi_datatype::Committed,
        total: usize,
        dma_available: bool,
    ) -> (
        crate::tuning::PackPath,
        Option<crate::sink::StagingLease<'_>>,
    ) {
        use crate::tuning::PackPath;
        let ledger = &self.staging[rank];
        let staged_need = self.tuning.rendezvous_chunk.min(total);
        let (path, lease) = match self.tuning.select_path(c, total, dma_available) {
            PackPath::Dma => match ledger.try_acquire(total) {
                Some(l) => (PackPath::Dma, Some(l)),
                None => {
                    obs::inc(obs::Counter::BudgetDenials);
                    obs::inc(obs::Counter::DegradedPaths);
                    match ledger.try_acquire(staged_need) {
                        Some(l) => (PackPath::Staged, Some(l)),
                        None => (PackPath::DirectFf, None),
                    }
                }
            },
            PackPath::Staged => match ledger.try_acquire(staged_need) {
                Some(l) => (PackPath::Staged, Some(l)),
                None => {
                    obs::inc(obs::Counter::BudgetDenials);
                    obs::inc(obs::Counter::DegradedPaths);
                    (PackPath::DirectFf, None)
                }
            },
            PackPath::DirectFf => (PackPath::DirectFf, None),
        };
        obs::inc(match path {
            PackPath::DirectFf => obs::Counter::PathSelectedDirectFf,
            PackPath::Staged => obs::Counter::PathSelectedStaged,
            PackPath::Dma => obs::Counter::PathSelectedDma,
        });
        (path, lease)
    }

    /// Charge `len` bytes of window / `MPI_Alloc_mem` memory on `rank`
    /// against [`Tuning::window_budget_bytes`].
    pub fn charge_window(&self, rank: usize, len: usize) -> Result<(), ScimpiError> {
        let limit = self.tuning.window_budget_bytes;
        let used = self.window_bytes[rank].load(Ordering::Relaxed);
        if used.saturating_add(len) > limit {
            obs::inc(obs::Counter::BudgetDenials);
            return Err(ScimpiError::ResourceExhausted {
                what: "window memory",
                needed: len,
                limit,
            });
        }
        self.window_bytes[rank].fetch_add(len, Ordering::Relaxed);
        Ok(())
    }

    /// Return window memory charged by [`WorldState::charge_window`].
    pub fn release_window(&self, rank: usize, len: usize) {
        let prev = self.window_bytes[rank].fetch_sub(len, Ordering::Relaxed);
        debug_assert!(prev >= len, "window budget release underflow");
    }

    /// The node hosting rank `r`.
    pub fn node_of(&self, r: usize) -> sci_fabric::NodeId {
        self.smi.node_of(ProcId(r))
    }

    /// True if the node hosting rank `r` is currently marked dead.
    pub fn peer_dead(&self, r: usize) -> bool {
        self.fabric.faults().node_dead(self.node_of(r).0)
    }

    /// Install (or min-merge) a revocation at virtual time `at` by world
    /// rank `by`. Returns `true` when this call changed the installed
    /// front (first revoke, or an earlier `(at, by)` than the current
    /// one), so concurrent revokers converge on one deterministic origin.
    pub fn revoke_from(&self, at: SimTime, by: usize) -> bool {
        let mut slot = self.revoke.lock().unwrap();
        match &*slot {
            Some(cur) if (cur.at, cur.by) <= (at, by) => false,
            _ => {
                *slot = Some(RevokeInfo { at, by });
                true
            }
        }
    }

    /// Drop the installed revocation (the new epoch is in force).
    pub fn clear_revoke(&self) {
        *self.revoke.lock().unwrap() = None;
    }

    /// When does the active revocation front reach world rank `me`?
    ///
    /// Pure read: the front spreads as a binomial-tree gossip rooted at
    /// the revoker, so the rank at hop distance `p = (me - by) mod n`
    /// observes it `ceil(log2(p + 1))` hops of `revoke_hop_cost` after
    /// the revoke time — a deterministic function of `(at, by, me)`
    /// regardless of which thread asks first. Returns `None` when no
    /// revocation is installed or the calling thread is running exempt
    /// recovery-internal protocol (agreement, shrink).
    pub fn revoke_arrival(&self, me: usize) -> Option<(SimTime, usize)> {
        if crate::recovery::is_exempt() {
            return None;
        }
        let slot = self.revoke.lock().unwrap();
        slot.as_ref().map(|r| {
            let n = self.mailboxes.len();
            let p = (me + n - r.by) % n;
            let depth = (usize::BITS - p.leading_zeros()) as u64;
            (
                r.at + self.tuning.revoke_hop_cost.saturating_mul(depth),
                r.by,
            )
        })
    }

    /// Observe the active revocation from a blocked protocol wait on
    /// world rank `me`: charge the gossip-front arrival as a `recovery`
    /// wait and return [`ScimpiError::Revoked`]. `None` when there is no
    /// revocation to observe (or the thread is exempt).
    pub fn check_revoked(&self, clock: &mut Clock, me: usize) -> Option<ScimpiError> {
        let (arrival, by) = self.revoke_arrival(me)?;
        obs::inc(obs::Counter::RevokesObserved);
        obs::attrib::merge_waited(clock, arrival, obs::WaitKind::Recovery, Some(by as u32));
        Some(ScimpiError::Revoked)
    }

    /// Wait for a protocol packet for `handle` on `rank`'s mailbox,
    /// guarding against `peer` dying mid-handshake.
    ///
    /// Real time is polled in slices; a healthy-but-slow peer costs no
    /// virtual time (determinism). Only when `peer`'s node is confirmed
    /// dead does the waiter charge the full timeout/backoff schedule and
    /// report [`ScimpiError::PeerDead`].
    pub fn await_ctrl(
        &self,
        rank: usize,
        clock: &mut Clock,
        handle: u64,
        peer: usize,
        what: &'static str,
    ) -> Result<crate::mailbox::Ctrl, ScimpiError> {
        loop {
            if let Some(c) = self.mailboxes[rank].wait_ctrl_for(handle, POLL_SLICE) {
                return Ok(c);
            }
            if self.revoke_arrival(rank).is_some() {
                // Revoked: drain once more (the packet may have landed
                // between expiry and the check), then error out at the
                // gossip-front arrival time.
                if let Some(c) =
                    self.mailboxes[rank].wait_ctrl_for(handle, std::time::Duration::ZERO)
                {
                    return Ok(c);
                }
                return Err(self
                    .check_revoked(clock, rank)
                    .expect("revocation installed"));
            }
            if !self.peer_dead(peer) {
                continue;
            }
            // The peer is dead: drain once more to close the race where
            // its last packet arrived between expiry and the check.
            if let Some(c) = self.mailboxes[rank].wait_ctrl_for(handle, std::time::Duration::ZERO) {
                return Ok(c);
            }
            return Err(self.declare_dead(clock, peer, what));
        }
    }

    /// Charge the deterministic timeout/backoff schedule for a peer that
    /// stopped responding and report it dead. The schedule is a pure
    /// function of [`Tuning`] ([`crate::error::death_delay`]), so the
    /// waiting rank's clock ends up bit-identical across runs.
    pub fn declare_dead(&self, clock: &mut Clock, peer: usize, what: &'static str) -> ScimpiError {
        let t = &self.tuning;
        let start = clock.now();
        let mut window = t.ctrl_timeout;
        for _ in 0..=t.max_protocol_retries {
            clock.advance(window);
            obs::inc(obs::Counter::ProtocolTimeouts);
            clock.advance(t.probe_cost);
            window = crate::error::scale_window(window, t.timeout_backoff);
        }
        obs::inc(obs::Counter::PeersDeclaredDead);
        obs::span(
            "ft.peer_dead",
            start,
            clock.now(),
            vec![
                ("peer", obs::Arg::U64(peer as u64)),
                ("what", obs::Arg::Str(what.to_string())),
            ],
        );
        ScimpiError::PeerDead { peer }
    }

    /// Route a detected error through the configured error handler:
    /// under [`ErrorMode::ErrorsAreFatal`] the rank panics (tearing the
    /// run down, like `MPI_ERRORS_ARE_FATAL`); under
    /// [`ErrorMode::ErrorsReturn`] the error comes back as a value.
    pub fn escalate(&self, e: ScimpiError) -> ScimpiError {
        match self.errors {
            ErrorMode::ErrorsAreFatal => panic!("fatal communication error: {e}"),
            ErrorMode::ErrorsReturn => e,
        }
    }

    /// CPU cost of computing or verifying a CRC32 over `len` payload
    /// bytes (`EndToEnd` integrity framing).
    pub fn crc_cost(&self, len: usize) -> SimDuration {
        self.tuning.crc_cost_per_byte.saturating_mul(len as u64)
    }

    /// One-way control-packet latency from rank `src` to rank `dst`.
    pub fn ctrl_latency(&self, src: usize, dst: usize) -> SimDuration {
        let hops = self
            .fabric
            .topology()
            .distance(self.smi.node_of(ProcId(src)), self.smi.node_of(ProcId(dst)));
        self.fabric.params().wire_latency(hops)
    }
}

/// The per-rank handle passed to user code: the MPI interface.
///
/// Rank identity is two-layered since the recovery subsystem landed:
/// the *world rank* (`world_rank`, the thread's immutable position in
/// the launched cluster, which all transport internals — mailboxes,
/// rings, windows, routes — are indexed by) and the *logical rank*
/// (`rank()`, this rank's dense index in the current membership
/// epoch). At epoch 0 the two coincide for every rank; after a
/// [`crate::recovery::shrink`] the survivors are re-ranked densely and
/// every public communication verb translates logical ranks at the API
/// boundary.
pub struct Rank {
    /// World rank: immutable transport identity.
    pub(crate) rank: usize,
    /// World size: immutable transport extent.
    pub(crate) size: usize,
    pub(crate) clock: Clock,
    pub(crate) world: Arc<WorldState>,
    pub(crate) coll_seq: u64,
    /// Completion times of requests that were dropped unwaited; merged at
    /// the next synchronisation point (see [`crate::request`]).
    pub(crate) drop_bin: Arc<crate::request::DropBin>,
    /// Nonblocking requests posted but not yet completed (the pending-
    /// request table; entries leave through `wait`/`test`/drop).
    pub(crate) pending_requests: usize,
    /// World ranks in the current membership epoch, sorted ascending.
    pub(crate) members: Arc<Vec<usize>>,
    /// This rank's dense index in `members` (== its logical rank).
    pub(crate) my_index: usize,
    /// Current membership epoch (0 = the launch membership).
    pub(crate) epoch: u64,
    /// Barrier of the current epoch; `None` means epoch 0 (the world
    /// barrier).
    pub(crate) epoch_barrier: Option<Arc<TimeBarrier>>,
    /// Lazily created PSCW window the one-sided collective schedules
    /// stage chunks through, reused across collectives of the same
    /// membership epoch (see [`crate::collective`]).
    pub(crate) coll_win: Option<crate::collective::CollWin>,
}

/// Wait on the current epoch's barrier (disjoint-field helper so the
/// clock can be borrowed mutably next to the barrier reference).
fn epoch_barrier_wait(clock: &mut Clock, eb: &Option<Arc<TimeBarrier>>, world: &WorldState) {
    match eb {
        Some(b) => {
            b.wait(clock);
        }
        None => {
            world.barrier.wait(clock);
        }
    }
}

impl Rank {
    /// This rank's id (`MPI_Comm_rank`): the dense logical rank in the
    /// current membership epoch. Equal to [`Rank::world_rank`] until a
    /// `shrink` installs a smaller membership.
    // Not the `rank` field: that holds the immutable world rank, while
    // the MPI-facing id is the epoch-local index.
    #[allow(clippy::misnamed_getters)]
    pub fn rank(&self) -> usize {
        self.my_index
    }

    /// Communicator size (`MPI_Comm_size`): members of the current
    /// epoch. Equal to the launched world size until a `shrink`.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// This rank's immutable world rank (its position in the launched
    /// cluster, independent of membership epochs).
    pub fn world_rank(&self) -> usize {
        self.rank
    }

    /// The current membership epoch (0 = launch membership; each
    /// successful `shrink` advances it by one).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// World ranks of the current epoch's members, sorted ascending.
    /// The logical rank of member `i` is `i`.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Translate a logical rank of the current epoch to a world rank,
    /// panicking (like every out-of-range rank argument) when it is not
    /// a member.
    pub(crate) fn to_world(&self, logical: usize) -> usize {
        assert!(
            logical < self.members.len(),
            "destination rank {logical} out of range"
        );
        self.members[logical]
    }

    /// Translate a world rank back to the logical rank of the current
    /// epoch; falls back to the world value when it is not a member
    /// (e.g. a straggler message from a pre-shrink epoch).
    pub(crate) fn to_logical(&self, world: usize) -> usize {
        self.members.binary_search(&world).unwrap_or(world)
    }

    /// Virtual wall-clock (`MPI_Wtime`), in seconds.
    pub fn wtime(&self) -> f64 {
        self.clock.now().as_secs_f64()
    }

    /// The raw virtual time point.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Charge local computation to this rank's clock (simulated
    /// application work between communication calls). Every advance also
    /// ticks the progress engine, folding in requests that completed by
    /// being dropped.
    pub fn compute(&mut self, cost: SimDuration) {
        obs::attrib::advance(&mut self.clock, obs::Bucket::Compute, cost);
        self.reap_dropped();
    }

    /// Number of posted-but-uncompleted nonblocking requests.
    pub fn pending_requests(&self) -> usize {
        self.pending_requests
    }

    /// Spendable eager flow-control credits (payload bytes, envelope
    /// slots) toward logical rank `dst` — a sender-side diagnostic for
    /// flow-control tests. Grants deposited by the receiver but not yet
    /// collected (at a stall or a barrier) are not included.
    pub fn eager_credits_available(&self, dst: usize) -> (usize, usize) {
        let dst_w = self.to_world(dst);
        self.world.credit(self.rank, dst_w).available()
    }

    /// The node hosting this rank.
    pub fn node(&self) -> sci_fabric::NodeId {
        self.world.smi.node_of(ProcId(self.rank))
    }

    /// The active protocol tuning.
    pub fn tuning(&self) -> &Tuning {
        &self.world.tuning
    }

    /// The underlying fabric (benchmarks read link traffic through this).
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.world.fabric
    }

    /// Total time this rank spent blocked on peers.
    pub fn waited(&self) -> SimDuration {
        self.clock.total_waited()
    }

    /// Barrier over the current membership (`MPI_Barrier`). Infallible
    /// wrapper kept for the overwhelmingly common fault-free call sites:
    /// a revocation surfacing mid-barrier is escalated through the error
    /// handler by [`Rank::barrier_checked`], and under `ErrorsReturn`
    /// this wrapper discards the `Revoked` value (revocation-aware code
    /// calls `barrier_checked` directly).
    pub fn barrier(&mut self) {
        let _ = self.barrier_checked();
    }

    /// Barrier over the current membership that observes revocation: a
    /// rank blocked here while some peer revokes the communicator errors
    /// out with [`ScimpiError::Revoked`] at the deterministic gossip-
    /// front arrival time instead of waiting forever for dead members.
    pub fn barrier_checked(&mut self) -> Result<(), ScimpiError> {
        self.reap_dropped();
        let me = self.rank;
        let world = Arc::clone(&self.world);
        let barrier = match &self.epoch_barrier {
            Some(b) => b.as_ref(),
            None => &world.barrier,
        };
        match barrier.wait_cancel(&mut self.clock, || {
            world.revoke_arrival(me).map(|(at, _)| at)
        }) {
            Ok(()) => {
                // Every member passed the barrier, so credits returned
                // by receivers before it are in our causal past: fold
                // them back into the spendable pools.
                world.collect_credits(me);
                Ok(())
            }
            Err(_) => {
                let e = world
                    .check_revoked(&mut self.clock, me)
                    .expect("cancellation implies an installed revocation");
                Err(world.escalate(e))
            }
        }
    }

    /// Gather one value from every rank, returning the full vector to all
    /// (a control-plane helper used by collective constructors; charged a
    /// barrier, not modelled as a data all-gather).
    pub(crate) fn collective_gather<T: Clone + Send + 'static>(&mut self, value: T) -> Vec<T> {
        // Key the slot table by (epoch, seq): per-rank sequence counters
        // reset to 0 when a shrink installs a new epoch, and pre-shrink
        // slots must never collide with post-shrink ones.
        debug_assert!(self.coll_seq < 1 << 32, "collective sequence overflow");
        let seq = (self.epoch << 32) | self.coll_seq;
        self.coll_seq += 1;
        let size = self.members.len();
        {
            let mut tbl = self.world.coll.lock().unwrap();
            let slot = tbl.entry(seq).or_insert_with(|| CollSlot {
                values: std::iter::repeat_with(|| None).take(size).collect(),
                reads: 0,
            });
            if slot.values.len() != size {
                slot.values = std::iter::repeat_with(|| None).take(size).collect();
            }
            slot.values[self.my_index] = Some(Box::new(value));
        }
        epoch_barrier_wait(&mut self.clock, &self.epoch_barrier, &self.world);
        let result: Vec<T> = {
            let tbl = self.world.coll.lock().unwrap();
            let slot = tbl.get(&seq).expect("slot deposited");
            slot.values
                .iter()
                .map(|v| {
                    v.as_ref()
                        .expect("all ranks deposited before barrier")
                        .downcast_ref::<T>()
                        .expect("collective type mismatch across ranks")
                        .clone()
                })
                .collect()
        };
        // Cleanup once everyone has read.
        {
            let mut tbl = self.world.coll.lock().unwrap();
            let done = {
                let slot = tbl.get_mut(&seq).expect("slot present");
                slot.reads += 1;
                slot.reads == size
            };
            if done {
                tbl.remove(&seq);
            }
        }
        result
    }
}

/// Launch a simulated cluster and run `f` on every rank. Returns the
/// per-rank results, indexed by rank.
///
/// Panics in any rank are propagated (the run is torn down).
pub fn run<F, T>(spec: ClusterSpec, f: F) -> Vec<T>
where
    F: Fn(&mut Rank) -> T + Send + Sync,
    T: Send,
{
    assert!(
        spec.topology.node_count() > 0 && spec.procs_per_node > 0,
        "cluster needs at least one node and one proc per node"
    );
    if let Err(e) = spec.tuning.validate() {
        panic!("invalid cluster spec: {e}");
    }
    if spec.obs.enabled {
        if spec.obs.reset_on_start {
            obs::reset();
        }
        obs::enable();
    } else {
        obs::disable();
    }
    let fabric = Fabric::new(FabricSpec {
        topology: spec.topology.clone(),
        params: spec.params.clone(),
        faults: spec.faults.clone(),
        seed: spec.seed,
    });
    let smi = SmiWorld::packed(Arc::clone(&fabric), spec.procs_per_node);
    let size = spec.num_ranks();
    let mut mailboxes = Vec::with_capacity(size);
    mailboxes.resize_with(size, Mailbox::new);
    let alloc_regions: Vec<OnceLock<Arc<SharedRegion>>> =
        (0..size).map(|_| OnceLock::new()).collect();
    let alloc_pools: Vec<Mutex<ShregAllocator>> = (0..size)
        .map(|_| Mutex::new(ShregAllocator::new(ALLOC_POOL_BYTES)))
        .collect();
    let world = Arc::new(WorldState {
        fabric,
        smi,
        tuning: spec.tuning.clone(),
        mailboxes,
        barrier: TimeBarrier::new(size, spec.tuning.barrier_hop),
        rings: Mutex::new(HashMap::new()),
        next_handle: AtomicU64::new(1),
        alloc_pools,
        alloc_regions,
        coll: Mutex::new(HashMap::new()),
        windows: Mutex::new(HashMap::new()),
        errors: spec.errors,
        revoke: Mutex::new(None),
        current_epoch: AtomicU64::new(0),
        epoch_barriers: Mutex::new(HashMap::new()),
        credits: Mutex::new(HashMap::new()),
        window_bytes: (0..size)
            .map(|_| std::sync::atomic::AtomicUsize::new(0))
            .collect(),
        staging: (0..size)
            .map(|_| crate::sink::StagingLedger::new(spec.tuning.staging_budget_bytes))
            .collect(),
        epoch_waiters: sched::WaitQueue::new(),
    });

    let rank_body = |rank: usize, world: Arc<WorldState>, f: &F| -> T {
        let mut r = Rank {
            rank,
            size,
            clock: Clock::new(),
            world,
            coll_seq: 0,
            drop_bin: Arc::new(crate::request::DropBin::default()),
            pending_requests: 0,
            members: Arc::new((0..size).collect()),
            my_index: rank,
            epoch: 0,
            epoch_barrier: None,
            coll_win: None,
        };
        let out = f(&mut r);
        // Teardown: requests dropped inside `f` completed on
        // their engine threads; fold their virtual time in so a
        // fire-and-forget isend is never lost.
        r.reap_dropped();
        obs::attrib::record_makespan(rank as u32, r.clock.now());
        out
    };

    let results = match spec.backend {
        Backend::Thread => std::thread::scope(|scope| {
            let mut joins = Vec::with_capacity(size);
            for rank in 0..size {
                let world = Arc::clone(&world);
                let f = &f;
                let rank_body = &rank_body;
                joins.push(scope.spawn(move || {
                    obs::set_thread_rank(rank as u32);
                    // Only rank threads contribute to time attribution;
                    // engine/helper threads with forked clocks stay unmarked
                    // so no picosecond is charged twice.
                    obs::attrib::set_thread_attrib(true);
                    rank_body(rank, world, f)
                }));
            }
            joins
                .into_iter()
                .map(|j| match j.join() {
                    Ok(v) => v,
                    Err(p) => std::panic::resume_unwind(p),
                })
                .collect()
        }),
        Backend::Event => {
            let sched = sched::Scheduler::new(size);
            let mut outs: Vec<Option<T>> = std::thread::scope(|scope| {
                let mut joins = Vec::with_capacity(size);
                for rank in 0..size {
                    let world = Arc::clone(&world);
                    let f = &f;
                    let rank_body = &rank_body;
                    let h = sched.create_root(rank as u32);
                    let builder = std::thread::Builder::new()
                        .name(format!("rank-{rank}"))
                        .stack_size(EVENT_TASK_STACK);
                    joins.push(
                        builder
                            .spawn_scoped(scope, move || {
                                obs::set_thread_rank(rank as u32);
                                obs::attrib::set_thread_attrib(true);
                                // Adoption must sit inside the catch_unwind:
                                // waiting for the first grant can itself
                                // abort if another task panics first.
                                let out =
                                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                        h.adopt();
                                        rank_body(rank, world, f)
                                    }));
                                match out {
                                    Ok(v) => {
                                        sched::retire();
                                        Some(v)
                                    }
                                    Err(p) => {
                                        sched::abort_current(p);
                                        sched::retire();
                                        None
                                    }
                                }
                            })
                            .expect("spawn rank task"),
                    );
                }
                joins
                    .into_iter()
                    .map(|j| j.join().unwrap_or(None))
                    .collect()
            });
            *LAST_EVENT_STATS
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(sched.stats());
            if let Some(p) = sched.take_panic() {
                std::panic::resume_unwind(p);
            }
            outs.iter_mut()
                .enumerate()
                .map(|(rank, o)| {
                    o.take()
                        .unwrap_or_else(|| panic!("rank {rank} produced no result"))
                })
                .collect()
        }
    };

    if spec.obs.enabled {
        // Deterministic peak-backlog gauge: each mailbox logged
        // (virtual time, Δmessages, Δeager-bytes) events at post and at
        // match time; sweeping them in virtual-time order — removals
        // before additions at equal times, so a credit recycled at time
        // T never double-counts — yields the peak queue depth
        // independent of real-time thread interleaving.
        for (rank, mb) in world.mailboxes.iter().enumerate() {
            let mut events = mb.take_backlog_events();
            if events.is_empty() {
                continue;
            }
            events.sort_by_key(|&(at, dmsgs, dbytes)| (at, dmsgs, dbytes));
            let (mut msgs, mut bytes) = (0i64, 0i64);
            let (mut peak_msgs, mut peak_bytes) = (0i64, 0i64);
            for (_, dmsgs, dbytes) in events {
                msgs += dmsgs;
                bytes += dbytes;
                peak_msgs = peak_msgs.max(msgs);
                peak_bytes = peak_bytes.max(bytes);
            }
            obs::record_peak_backlog(rank as u32, peak_msgs as u64, peak_bytes as u64);
        }
        obs::record_link_snapshot(
            "end-of-run".to_string(),
            world
                .fabric
                .links()
                .traffic()
                .per_link()
                .iter()
                .map(|(id, t)| (id.0, t.data_bytes, t.fc_bytes))
                .collect(),
        );
        // Build the profile (attribution table, span histograms,
        // critical path) from a snapshot of the events so the trace
        // exporter below still sees them; the profile stays readable
        // in-process via `obs::report::last_profile()`.
        let events = obs::events_snapshot();
        obs::report::set_last(obs::report::build(&events));
        if let Some(path) = &spec.obs.trace_path {
            if let Err(e) = obs::write_chrome_trace(path) {
                eprintln!("obs: failed to write trace {}: {e}", path.display());
            }
        }
        if let Some(path) = &spec.obs.counters_path {
            if let Err(e) = obs::write_counters_jsonl(path) {
                eprintln!("obs: failed to write counters {}: {e}", path.display());
            }
        }
        if let Some(path) = &spec.obs.profile_path {
            if let Err(e) = obs::report::write_last(path) {
                eprintln!("obs: failed to write profile {}: {e}", path.display());
            }
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_returns_per_rank_results() {
        let out = run(ClusterSpec::ringlet(4), |r| r.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn ranks_see_world_size_and_nodes() {
        let mut spec = ClusterSpec::ringlet(2);
        spec.procs_per_node = 3;
        let out = run(spec, |r| (r.size(), r.node().0));
        assert_eq!(out.len(), 6);
        assert!(out.iter().all(|&(s, _)| s == 6));
        assert_eq!(out[0].1, 0);
        assert_eq!(out[5].1, 1);
    }

    #[test]
    fn wtime_advances_with_compute() {
        let out = run(ClusterSpec::ringlet(1), |r| {
            let t0 = r.wtime();
            r.compute(SimDuration::from_ms(5));
            r.wtime() - t0
        });
        assert!((out[0] - 0.005).abs() < 1e-9);
    }

    #[test]
    fn barrier_synchronises_virtual_time() {
        let out = run(ClusterSpec::ringlet(4), |r| {
            r.compute(SimDuration::from_us(r.rank() as u64 * 100));
            r.barrier();
            r.now()
        });
        assert!(out.iter().all(|t| *t == out[0]));
        assert!(out[0] >= SimTime::ZERO + SimDuration::from_us(300));
    }

    #[test]
    fn collective_gather_exchanges_values() {
        let out = run(ClusterSpec::ringlet(3), |r| {
            r.collective_gather(format!("r{}", r.rank()))
        });
        for v in out {
            assert_eq!(v, vec!["r0", "r1", "r2"]);
        }
    }

    #[test]
    fn collective_gather_reusable_many_times() {
        let out = run(ClusterSpec::ringlet(2), |r| {
            let mut acc = 0usize;
            for i in 0..50 {
                let vals = r.collective_gather(r.rank() + i);
                acc += vals.iter().sum::<usize>();
            }
            acc
        });
        assert_eq!(out[0], out[1]);
    }

    #[test]
    fn pair_ring_slots_block_and_release() {
        let spec = ClusterSpec::ringlet(2);
        run(spec, |r| {
            if r.rank() == 0 {
                let grab = |ring: &PairRing, clock: &mut Clock| {
                    ring.acquire_for(clock, POLL_SLICE).expect("slot free")
                };
                let ring = r.world.ring(0, 1);
                let s0 = grab(&ring, &mut r.clock);
                let s1 = grab(&ring, &mut r.clock);
                assert_ne!(s0, s1);
                // Release with a future timestamp; re-acquiring merges it.
                let future = r.now() + SimDuration::from_us(50);
                ring.release(s0, future);
                let s2 = grab(&ring, &mut r.clock);
                assert_eq!(s2, s0);
                assert!(r.now() >= future);
                ring.release(s1, r.now());
                ring.release(s2, r.now());
            }
        });
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_node_cluster_panics() {
        let _ = run(ClusterSpec::ringlet(0), |_| ());
    }

    #[test]
    fn multi_ring_cluster_runs() {
        // Two ringlets of 4 joined by a switch: inter-ring messages cost
        // more than intra-ring ones.
        let out = run(ClusterSpec::multi_ring(2, 4), |r| {
            assert_eq!(r.size(), 8);
            let payload = vec![1u8; 8 * 1024];
            let mut buf = vec![0u8; 8 * 1024];
            match r.rank() {
                // Intra-ring pair 0 -> 1.
                0 => {
                    r.send(1, 0, &payload).unwrap();
                    SimDuration::ZERO
                }
                1 => {
                    let t0 = r.now();
                    r.recv(crate::Source::Rank(0), crate::TagSel::Value(0), &mut buf)
                        .unwrap();
                    r.now() - t0
                }
                // Cross-ring pair 2 -> 6.
                2 => {
                    r.send(6, 0, &payload).unwrap();
                    SimDuration::ZERO
                }
                6 => {
                    let t0 = r.now();
                    r.recv(crate::Source::Rank(2), crate::TagSel::Value(0), &mut buf)
                        .unwrap();
                    r.now() - t0
                }
                _ => SimDuration::ZERO,
            }
        });
        assert!(
            out[6] > out[1],
            "cross-ring {:?} <= intra-ring {:?}",
            out[6],
            out[1]
        );
    }
}
