//! Two-sided point-to-point communication: short/eager/rendezvous
//! protocols over the SCI fabric, with both non-contiguous engines.
//!
//! Protocol selection follows SCI-MPICH (§2, reference 7):
//!
//! * **short/eager** — the packed payload travels with the control
//!   envelope into pre-allocated receiver buffer space; the sender
//!   completes immediately.
//! * **rendezvous** — RTS/CTS handshake, then the payload streams through
//!   a per-pair ring buffer in chunks of `Tuning::rendezvous_chunk`
//!   (kept ≤ L2 to avoid cache-line thrashing, §3.3.2). The sender packs
//!   each chunk **directly into the remote ring** — with `direct_pack_ff`
//!   this eliminates both intermediate copies of the generic path.
//!
//! The ring slots give natural pipelining: the sender fills slot *i+1*
//! while the receiver drains slot *i*; slot reuse carries the receiver's
//! drain time back to the sender's clock.

use crate::error::ScimpiError;
use crate::mailbox::{Ctrl, Envelope, Head, Source, Tag, TagSel};
use crate::runtime::{Rank, WorldState, POLL_SLICE};
use crate::sink::PioSink;
use crate::tuning::{IntegrityMode, OverloadPolicy, PackPath, Tuning};
use mpi_datatype::{ff, tree, Committed, PackStats, SliceSource};
use obs::attrib::{self, Bucket, WaitKind};
use sci_fabric::{crc32, SeqStatus};
use simclock::{Clock, SimDuration};
use smi::ProcId;
use std::sync::Arc;

/// Result of a completed receive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvStatus {
    /// Actual source rank.
    pub src: usize,
    /// Actual tag.
    pub tag: Tag,
    /// Payload bytes received.
    pub len: usize,
}

/// What a send transmits.
#[derive(Clone, Copy)]
pub enum SendData<'a> {
    /// A contiguous byte buffer.
    Bytes(&'a [u8]),
    /// `count` instances of a committed datatype in `buf` (displacement 0
    /// at byte `origin`).
    Typed {
        /// Committed datatype.
        c: &'a Committed,
        /// Instance count.
        count: usize,
        /// User buffer.
        buf: &'a [u8],
        /// Byte index of displacement 0.
        origin: usize,
    },
}

impl SendData<'_> {
    fn total_len(&self) -> usize {
        match self {
            SendData::Bytes(b) => b.len(),
            SendData::Typed { c, count, .. } => c.size() * count,
        }
    }
}

/// Where a receive lands.
pub enum RecvBuf<'a> {
    /// A contiguous byte buffer.
    Bytes(&'a mut [u8]),
    /// `count` instances of a committed datatype.
    Typed {
        /// Committed datatype.
        c: &'a Committed,
        /// Instance count.
        count: usize,
        /// User buffer.
        buf: &'a mut [u8],
        /// Byte index of displacement 0.
        origin: usize,
    },
}

/// An in-flight send (used by [`Rank::sendrecv`] and the request engine
/// to avoid rendezvous deadlock: start the send, service the receive or
/// interleave compute, then finish).
pub struct SendOp<'a> {
    pub(crate) dst: usize,
    pub(crate) data: SendData<'a>,
    pub(crate) kind: SendOpKind,
}

impl SendOp<'_> {
    /// True once the transfer is locally complete (eager path): no
    /// rendezvous conversation remains.
    pub fn is_done(&self) -> bool {
        matches!(self.kind, SendOpKind::Done)
    }
}

pub(crate) enum SendOpKind {
    Done,
    Rendezvous {
        handle: u64,
        /// Send-turn ticket on the pair ring (see
        /// [`crate::runtime::PairRing`]): serialises concurrent sends to
        /// the same destination in posted order.
        ticket: u64,
    },
}

thread_local! {
    /// True while this thread runs protocol that must not lose or fail
    /// messages (collective tree edges, recovery-internal traffic): the
    /// lossy/failing overload policies (`Shed`, `Error`, `Degrade`)
    /// fall back to `Stall` inside such a section, because a dropped
    /// tree edge would wedge the peer forever and a surfaced error
    /// would tear a half-finished collective.
    static RELIABLE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Enter a reliable protocol section (see [`RELIABLE`]); the returned
/// guard restores the previous state on drop, so sections nest.
pub(crate) fn reliable_section() -> ReliableGuard {
    let prev = RELIABLE.with(|r| r.replace(true));
    ReliableGuard { prev }
}

/// Is this thread inside a reliable protocol section?
fn is_reliable() -> bool {
    RELIABLE.with(|r| r.get())
}

/// Guard returned by [`reliable_section`].
pub(crate) struct ReliableGuard {
    prev: bool,
}

impl Drop for ReliableGuard {
    fn drop(&mut self) {
        RELIABLE.with(|r| r.set(self.prev));
    }
}

/// Outcome of an eager credit acquisition (see
/// [`Rank::acquire_eager_credits`] and `Tuning::overload_policy`).
enum CreditVerdict {
    /// Credits consumed: proceed on the eager path.
    Granted,
    /// Budget exhausted under `OverloadPolicy::Degrade`: fall back to
    /// the rendezvous protocol.
    Degrade,
    /// Budget exhausted under `OverloadPolicy::Shed`: drop the message.
    Shed,
}

/// Should this typed transfer use `direct_pack_ff`? Two-sided transfers
/// never have DMA available (the payload streams through the pair ring),
/// so the adaptive selector only ever answers direct-ff or staged here.
fn use_ff(t: &Tuning, c: &Committed, total: usize) -> bool {
    t.select_path(c, total, false) == PackPath::DirectFf
}

/// CPU cost of locally packing/unpacking `stats` worth of blocks with the
/// given engine, including the memcpy itself.
fn local_copy_cost(
    world: &WorldState,
    stats: &PackStats,
    working_set: usize,
    ff_engine: bool,
) -> SimDuration {
    let t = &world.tuning;
    let per_block = if ff_engine {
        t.ff_block_cost
    } else {
        t.generic_visit_cost
    };
    let cache = &world.fabric.params().cache;
    per_block.saturating_mul(stats.blocks as u64)
        + cache.per_block_overhead.saturating_mul(stats.blocks as u64)
        + cache.copy_bw(working_set).cost(stats.bytes as u64)
}

/// Pack the byte range `[skip, skip+max)` of `data` into a local buffer,
/// charging pack CPU cost to `clock`. Used by the eager path and the
/// generic rendezvous path.
fn pack_local(
    world: &WorldState,
    clock: &mut Clock,
    data: &SendData<'_>,
    skip: usize,
    max: usize,
) -> Vec<u8> {
    match data {
        SendData::Bytes(b) => {
            let end = b.len().min(skip.saturating_add(max));
            // No pack needed: the transfer reads straight from the user
            // buffer.
            b[skip..end].to_vec()
        }
        SendData::Typed {
            c,
            count,
            buf,
            origin,
        } => {
            let total = c.size() * count;
            let ff_engine = use_ff(&world.tuning, c, total);
            let mut out = Vec::new();
            let stats = if ff_engine {
                let mut sink = ff::VecSink::default();
                let stats = ff::pack_ff(c, *count, buf, *origin, skip, max, &mut sink)
                    .expect("VecSink is infallible");
                out = sink.data;
                stats
            } else {
                tree::pack_range(c.datatype(), *count, buf, *origin, skip, max, &mut out)
            };
            let cost = local_copy_cost(world, &stats, total, ff_engine);
            attrib::advance(clock, Bucket::Pack, cost);
            out
        }
    }
}

/// Sender-side control-handle id: CTS packets travel in a separate handle
/// space from receiver-side chunk notifications, so a rank exchanging a
/// rendezvous message *with itself* (self-`MPI_Sendrecv`) never steals its
/// own protocol packets.
#[inline]
fn sender_handle(h: u64) -> u64 {
    h.wrapping_mul(2).wrapping_add(1)
}

/// Receiver-side control-handle id (see [`sender_handle`]).
#[inline]
fn receiver_handle(h: u64) -> u64 {
    h.wrapping_mul(2)
}

/// The sender side of the rendezvous protocol: wait for CTS, then stream
/// the payload through the pair ring in chunks. Runs either on the rank's
/// own thread ([`Rank::finish_send`]) or on an engine thread with a
/// forked clock ([`Rank::sendrecv`], [`Rank::isend`] — the transfer
/// progresses while the posting rank computes).
pub(crate) fn finish_send_inner(
    world: &Arc<WorldState>,
    rank: usize,
    clock: &mut Clock,
    op: SendOp<'_>,
) -> Result<(), ScimpiError> {
    let SendOpKind::Rendezvous { handle, ticket } = op.kind else {
        return Ok(());
    };
    let dst = op.dst;
    let ring = world.ring(rank, dst);
    // Serialise concurrent rendezvous sends to the same destination in
    // posted order (real-time wait, zero virtual cost). The guard passes
    // the turn on at every exit — error returns and panics included — so
    // a failed send never wedges the pair.
    let _turn = ring.await_turn(ticket);
    // Wait for clear-to-send (sender-side handle space), guarding against
    // the receiver dying before it answers.
    match world
        .await_ctrl(rank, clock, sender_handle(handle), dst, "CTS")
        .map_err(|e| world.escalate(e))?
    {
        Ctrl::Cts { arrival } => {
            attrib::merge_waited(clock, arrival, WaitKind::LateReceiver, Some(dst as u32));
            attrib::advance(clock, Bucket::Transfer, world.tuning.ctrl_recv_cost);
        }
        other => {
            return Err(world.escalate(ScimpiError::ProtocolViolation {
                expected: "CTS",
                got: format!("{other:?}"),
            }))
        }
    }
    let total = op.data.total_len();
    let chunk_size = ring.chunk;
    let data_start = clock.now();
    // One PIO stream per message; each chunk is a fresh burst.
    let working_set = total.min(chunk_size);
    let mut stream = ring.region.map(ProcId(rank)).pio_stream(working_set);
    let mut skip = 0usize;
    while skip < total {
        obs::inc(obs::Counter::RendezvousChunks);
        let this = chunk_size.min(total - skip);
        // Ring-slot acquisition with the same liveness guard: if the
        // receiver dies while holding every slot, the sender must not
        // wait forever.
        let slot_wait_start = clock.now();
        let slot = loop {
            if let Some(s) = ring.acquire_for(clock, POLL_SLICE) {
                break s;
            }
            if world.revoke_arrival(rank).is_some() {
                if let Some(s) = ring.acquire_for(clock, std::time::Duration::ZERO) {
                    break s;
                }
                let err = world
                    .check_revoked(clock, rank)
                    .expect("revocation installed");
                return Err(world.escalate(err));
            }
            if !world.peer_dead(dst) {
                continue;
            }
            if let Some(s) = ring.acquire_for(clock, std::time::Duration::ZERO) {
                break s;
            }
            return Err(world.escalate(world.declare_dead(clock, dst, "ring slot")));
        };
        // Slot reuse carries the receiver's drain time: any forward jump
        // is the sender waiting for the receiver to free ring space.
        attrib::wait(
            WaitKind::LateReceiver,
            slot_wait_start,
            clock.now(),
            Some(dst as u32),
        );
        let slot_off = ring.slot_offset(slot);
        let mode = world.tuning.integrity_mode;
        // `EndToEnd` frames each chunk with a CRC32 over its packed image,
        // so the image must exist contiguously at the sender: typed data
        // forgoes direct ff streaming here and pays the pack through the
        // engine's normal cost model (part of the integrity tax measured
        // by the `integrity_overhead` bench).
        let staged: Option<(u32, Vec<u8>)> = if mode == IntegrityMode::EndToEnd {
            let packed = pack_local(world, clock, &op.data, skip, this);
            attrib::advance(clock, Bucket::Pack, world.crc_cost(packed.len()));
            Some((crc32(&packed), packed))
        } else {
            None
        };
        let mut retransmits = 0u32;
        let blocks = loop {
            if mode == IntegrityMode::SequenceCheck {
                attrib::charged(clock, Bucket::Transfer, |clock| {
                    stream.start_sequence(clock)
                });
            }
            let blocks = if let Some((_, packed)) = &staged {
                attrib::charged(clock, Bucket::Transfer, |clock| {
                    stream.write(clock, slot_off, packed)
                })
                .map_err(|e| world.escalate(e.into()))?;
                1
            } else {
                match &op.data {
                    SendData::Bytes(b) => {
                        attrib::charged(clock, Bucket::Transfer, |clock| {
                            stream.write(clock, slot_off, &b[skip..skip + this])
                        })
                        .map_err(|e| world.escalate(e.into()))?;
                        1
                    }
                    SendData::Typed {
                        c,
                        count,
                        buf,
                        origin,
                    } => {
                        if use_ff(&world.tuning, c, c.size() * count) {
                            // direct_pack_ff straight into the remote ring:
                            // no intermediate copy. With WC batching the
                            // sink coalesces sub-transaction blocks into
                            // full aligned stream-buffer flushes.
                            let stats = attrib::charged(
                                clock,
                                Bucket::Transfer,
                                |clock| -> Result<_, ScimpiError> {
                                    let mut sink = PioSink::new(&mut stream, clock, slot_off)
                                        .with_batching(world.tuning.wc_batching);
                                    let stats =
                                        ff::pack_ff(c, *count, buf, *origin, skip, this, &mut sink)
                                            .map_err(|e| world.escalate(e.into()))?;
                                    sink.finish().map_err(|e| world.escalate(e.into()))?;
                                    Ok(stats)
                                },
                            )?;
                            attrib::advance(
                                clock,
                                Bucket::Pack,
                                world
                                    .tuning
                                    .ff_block_cost
                                    .saturating_mul(stats.blocks as u64),
                            );
                            stats.blocks
                        } else {
                            // Generic: pack locally, then one contiguous
                            // write.
                            let packed = pack_local(world, clock, &op.data, skip, this);
                            attrib::charged(clock, Bucket::Transfer, |clock| {
                                stream.write(clock, slot_off, &packed)
                            })
                            .map_err(|e| world.escalate(e.into()))?;
                            1
                        }
                    }
                }
            };
            // Store barrier: the chunk must be fully delivered before the
            // notification overtakes it (§2).
            attrib::charged(clock, Bucket::Transfer, |clock| stream.barrier(clock));
            match mode {
                IntegrityMode::Off => {
                    let n = stream.take_silent_faults();
                    if n > 0 {
                        obs::add(obs::Counter::UndetectedAtOff, n);
                        obs::instant(
                            "ft.integrity.silent",
                            clock.now(),
                            vec![
                                ("bytes", obs::Arg::U64(this as u64)),
                                ("faults", obs::Arg::U64(n)),
                            ],
                        );
                    }
                    break blocks;
                }
                IntegrityMode::SequenceCheck => {
                    stream.take_silent_faults();
                    let status = attrib::charged(clock, Bucket::Transfer, |clock| {
                        stream.check_sequence(clock)
                    });
                    if status == SeqStatus::Tainted {
                        obs::inc(obs::Counter::CorruptionsDetected);
                        obs::instant(
                            "ft.integrity.detected",
                            clock.now(),
                            vec![
                                ("path", obs::Arg::Str("rendezvous".into())),
                                ("peer", obs::Arg::U64(dst as u64)),
                            ],
                        );
                        // Unblock the receiver before surfacing the error:
                        // the sequence guard detects but never repairs.
                        world.mailboxes[dst].post_ctrl(
                            receiver_handle(handle),
                            Ctrl::Abort {
                                arrival: clock.now() + world.ctrl_latency(rank, dst),
                                retransmits: 0,
                            },
                        );
                        return Err(world.escalate(ScimpiError::DataCorruption {
                            peer: dst,
                            what: "rendezvous chunk",
                            retransmits: 0,
                        }));
                    }
                    break blocks;
                }
                IntegrityMode::EndToEnd => {
                    stream.take_silent_faults();
                    let (crc, _) = staged.as_ref().expect("EndToEnd staged the chunk");
                    // Stop-and-wait: every chunk is acknowledged before the
                    // next slot fills (the pipelining loss is part of the
                    // integrity tax).
                    attrib::advance(clock, Bucket::Transfer, world.tuning.ctrl_send_cost);
                    let arrival = clock.now() + world.ctrl_latency(rank, dst);
                    world.mailboxes[dst].post_ctrl(
                        receiver_handle(handle),
                        Ctrl::Chunk {
                            slot,
                            len: this,
                            blocks,
                            arrival,
                            last: skip + this >= total,
                            crc: Some(*crc),
                        },
                    );
                    match world
                        .await_ctrl(rank, clock, sender_handle(handle), dst, "chunk ack")
                        .map_err(|e| world.escalate(e))?
                    {
                        Ctrl::ChunkAck { arrival, ok } => {
                            attrib::merge_waited(
                                clock,
                                arrival,
                                WaitKind::LateReceiver,
                                Some(dst as u32),
                            );
                            attrib::advance(clock, Bucket::Transfer, world.tuning.ctrl_recv_cost);
                            if ok {
                                break blocks;
                            }
                            if retransmits >= world.tuning.max_retransmits {
                                world.mailboxes[dst].post_ctrl(
                                    receiver_handle(handle),
                                    Ctrl::Abort {
                                        arrival: clock.now() + world.ctrl_latency(rank, dst),
                                        retransmits,
                                    },
                                );
                                return Err(world.escalate(ScimpiError::DataCorruption {
                                    peer: dst,
                                    what: "rendezvous chunk",
                                    retransmits,
                                }));
                            }
                            retransmits += 1;
                            obs::inc(obs::Counter::Retransmits);
                            obs::instant(
                                "ft.integrity.retransmit",
                                clock.now(),
                                vec![
                                    ("path", obs::Arg::Str("rendezvous".into())),
                                    ("attempt", obs::Arg::U64(retransmits as u64)),
                                ],
                            );
                            // Loop: rewrite the same slot.
                        }
                        other => {
                            return Err(world.escalate(ScimpiError::ProtocolViolation {
                                expected: "chunk ack",
                                got: format!("{other:?}"),
                            }))
                        }
                    }
                }
            }
        };
        skip += this;
        if mode != IntegrityMode::EndToEnd {
            attrib::advance(clock, Bucket::Transfer, world.tuning.ctrl_send_cost);
            let arrival = clock.now() + world.ctrl_latency(rank, dst);
            world.mailboxes[dst].post_ctrl(
                receiver_handle(handle),
                Ctrl::Chunk {
                    slot,
                    len: this,
                    blocks,
                    arrival,
                    last: skip >= total,
                    crc: None,
                },
            );
        }
    }
    if obs::is_enabled() {
        let hops = world.fabric.topology().distance(
            world.smi.node_of(ProcId(rank)),
            world.smi.node_of(ProcId(dst)),
        );
        obs::span(
            "p2p.rendezvous_data",
            data_start,
            clock.now(),
            vec![
                ("bytes", obs::Arg::U64(total as u64)),
                ("chunks", obs::Arg::U64(total.div_ceil(chunk_size) as u64)),
                ("dst", obs::Arg::U64(dst as u64)),
                ("hops", obs::Arg::U64(hops as u64)),
            ],
        );
    }
    Ok(())
}

/// Unpack `data` (a packed-stream chunk starting at stream offset `skip`)
/// into the receive buffer, charging copy costs. `charge_copy` is false
/// for short messages that are consumed in place.
fn unpack_into(
    world: &WorldState,
    clock: &mut Clock,
    into: &mut RecvBuf<'_>,
    skip: usize,
    data: &[u8],
    charge_copy: bool,
) {
    match into {
        RecvBuf::Bytes(buf) => {
            assert!(
                skip + data.len() <= buf.len(),
                "receive buffer too small: {} < {}",
                buf.len(),
                skip + data.len()
            );
            buf[skip..skip + data.len()].copy_from_slice(data);
            if charge_copy {
                let cost = world
                    .fabric
                    .params()
                    .cache
                    .copy_cost(data.len(), data.len());
                attrib::advance(clock, Bucket::Pack, cost);
            }
        }
        RecvBuf::Typed {
            c,
            count,
            buf,
            origin,
        } => {
            let total = c.size() * *count;
            let ff_engine = use_ff(&world.tuning, c, total);
            let stats = if ff_engine {
                let mut source = SliceSource::new(data);
                ff::unpack_ff(c, *count, buf, *origin, skip, data.len(), &mut source)
                    .expect("SliceSource is infallible")
            } else {
                tree::unpack_range(c.datatype(), *count, buf, *origin, skip, data)
            };
            let cost = local_copy_cost(world, &stats, total.min(data.len().max(1)), ff_engine);
            attrib::advance(clock, Bucket::Pack, cost);
        }
    }
}

/// The receive protocol: claim an envelope through the posted-receive
/// queue (`ticket` was registered by the caller at post time, in program
/// order), then consume the eager payload or drive the rendezvous
/// receiver side. Runs either on the rank's own thread
/// ([`Rank::recv_into`]) or on an engine thread with a forked clock
/// ([`Rank::irecv`]).
pub(crate) fn recv_into_inner(
    world: &Arc<WorldState>,
    rank: usize,
    clock: &mut Clock,
    ticket: u64,
    src: Source,
    mut into: RecvBuf<'_>,
) -> Result<RecvStatus, ScimpiError> {
    let recv_start = clock.now();
    if let RecvBuf::Typed { c, .. } = &into {
        // The receiver resolves the same committed layout to unpack.
        attrib::advance(clock, Bucket::Pack, world.tuning.layout_resolve_cost(c));
    }
    let env = match src {
        Source::Any => loop {
            if let Some(e) =
                world.mailboxes[rank].match_recv_posted_for(ticket, POLL_SLICE, clock.now())
            {
                break e;
            }
            // A wildcard receive has no single peer to monitor, so only a
            // communicator revocation can unblock it early.
            if world.revoke_arrival(rank).is_some() {
                if let Some(e) = world.mailboxes[rank].match_recv_posted_for(
                    ticket,
                    std::time::Duration::ZERO,
                    clock.now(),
                ) {
                    break e;
                }
                world.mailboxes[rank].abandon_recv(ticket);
                let err = world
                    .check_revoked(clock, rank)
                    .expect("revocation installed");
                return Err(world.escalate(err));
            }
        },
        Source::Rank(peer) => loop {
            if let Some(e) =
                world.mailboxes[rank].match_recv_posted_for(ticket, POLL_SLICE, clock.now())
            {
                break e;
            }
            if world.revoke_arrival(rank).is_some() {
                if let Some(e) = world.mailboxes[rank].match_recv_posted_for(
                    ticket,
                    std::time::Duration::ZERO,
                    clock.now(),
                ) {
                    break e;
                }
                world.mailboxes[rank].abandon_recv(ticket);
                let err = world
                    .check_revoked(clock, rank)
                    .expect("revocation installed");
                return Err(world.escalate(err));
            }
            if !world.peer_dead(peer) {
                continue;
            }
            // Final drain: the message may have landed between the last
            // poll slice and the death check.
            if let Some(e) = world.mailboxes[rank].match_recv_posted_for(
                ticket,
                std::time::Duration::ZERO,
                clock.now(),
            ) {
                break e;
            }
            world.mailboxes[rank].abandon_recv(ticket);
            let err = world.declare_dead(clock, peer, "message");
            return Err(world.escalate(err));
        },
    };
    attrib::merge_waited(
        clock,
        env.arrival,
        WaitKind::LateSender,
        Some(env.src as u32),
    );
    attrib::advance(clock, Bucket::Transfer, world.tuning.ctrl_recv_cost);
    match env.head {
        Head::Eager { data, crc, .. } => {
            let len = data.len();
            if let Some(expect) = crc {
                // Defensive re-verification of the sender-verified
                // payload: a mismatch here means the framing itself is
                // broken, not the fabric.
                attrib::advance(clock, Bucket::Pack, world.crc_cost(len));
                if crc32(&data) != expect {
                    obs::inc(obs::Counter::CorruptionsDetected);
                    return Err(world.escalate(ScimpiError::DataCorruption {
                        peer: env.src,
                        what: "eager message",
                        retransmits: 0,
                    }));
                }
            }
            unpack_into(
                world,
                clock,
                &mut into,
                0,
                &data,
                len > world.tuning.short_threshold,
            );
            // Return the message's flow-control credits to the sender:
            // the grant becomes collectable at the match time plus one
            // control-packet latency. The sender folds it in inside a
            // backpressure stall or at the next barrier.
            let grant_at = clock.now() + world.ctrl_latency(rank, env.src);
            world.credit(env.src, rank).deposit(len, grant_at);
            if obs::is_enabled() {
                obs::span(
                    "p2p.recv",
                    recv_start,
                    clock.now(),
                    vec![
                        ("bytes", obs::Arg::U64(len as u64)),
                        ("src", obs::Arg::U64(env.src as u64)),
                        ("path", obs::Arg::Str("eager".into())),
                    ],
                );
            }
            Ok(RecvStatus {
                src: env.src,
                tag: env.tag,
                len,
            })
        }
        Head::Rts { size, handle } => {
            // Clear-to-send.
            attrib::advance(clock, Bucket::Transfer, world.tuning.ctrl_send_cost);
            let cts_arrival = clock.now() + world.ctrl_latency(rank, env.src);
            world.mailboxes[env.src].post_ctrl(
                sender_handle(handle),
                Ctrl::Cts {
                    arrival: cts_arrival,
                },
            );
            let ring = world.ring(env.src, rank);
            let mut skip = 0usize;
            loop {
                let c = world
                    .await_ctrl(rank, clock, receiver_handle(handle), env.src, "chunk")
                    .map_err(|e| world.escalate(e))?;
                let (slot, len, arrival, last, crc) = match c {
                    Ctrl::Chunk {
                        slot,
                        len,
                        blocks: _,
                        arrival,
                        last,
                        crc,
                    } => (slot, len, arrival, last, crc),
                    Ctrl::Abort {
                        arrival,
                        retransmits,
                    } => {
                        // The sender detected corruption it could not
                        // repair and gave up on the transfer.
                        attrib::merge_waited(
                            clock,
                            arrival,
                            WaitKind::LateSender,
                            Some(env.src as u32),
                        );
                        attrib::advance(clock, Bucket::Transfer, world.tuning.ctrl_recv_cost);
                        return Err(world.escalate(ScimpiError::DataCorruption {
                            peer: env.src,
                            what: "rendezvous transfer",
                            retransmits,
                        }));
                    }
                    other => {
                        return Err(world.escalate(ScimpiError::ProtocolViolation {
                            expected: "chunk",
                            got: format!("{other:?}"),
                        }));
                    }
                };
                attrib::merge_waited(clock, arrival, WaitKind::LateSender, Some(env.src as u32));
                attrib::advance(clock, Bucket::Transfer, world.tuning.ctrl_recv_cost);
                let slot_off = ring.slot_offset(slot);
                // Unpack straight out of the (receiver-local) ring.
                let mut data = vec![0u8; len];
                ring.region
                    .segment()
                    .mem()
                    .read(slot_off, &mut data)
                    .expect("slot read in range");
                if let Some(expect) = crc {
                    // EndToEnd framing: verify the slot image and
                    // acknowledge. A NACK keeps the slot held so the
                    // sender can rewrite it in place.
                    attrib::advance(clock, Bucket::Pack, world.crc_cost(len));
                    let ok = crc32(&data) == expect;
                    attrib::advance(clock, Bucket::Transfer, world.tuning.ctrl_send_cost);
                    let ack_arrival = clock.now() + world.ctrl_latency(rank, env.src);
                    world.mailboxes[env.src].post_ctrl(
                        sender_handle(handle),
                        Ctrl::ChunkAck {
                            arrival: ack_arrival,
                            ok,
                        },
                    );
                    if !ok {
                        obs::inc(obs::Counter::CorruptionsDetected);
                        obs::instant(
                            "ft.integrity.detected",
                            clock.now(),
                            vec![
                                ("path", obs::Arg::Str("rendezvous".into())),
                                ("peer", obs::Arg::U64(env.src as u64)),
                            ],
                        );
                        continue; // await the retransmission (or abort)
                    }
                }
                unpack_into(world, clock, &mut into, skip, &data, true);
                ring.release(slot, clock.now());
                skip += len;
                if last {
                    break;
                }
            }
            if obs::is_enabled() {
                obs::span(
                    "p2p.recv",
                    recv_start,
                    clock.now(),
                    vec![
                        ("bytes", obs::Arg::U64(size as u64)),
                        ("src", obs::Arg::U64(env.src as u64)),
                        ("path", obs::Arg::Str("rendezvous".into())),
                    ],
                );
            }
            Ok(RecvStatus {
                src: env.src,
                tag: env.tag,
                len: size,
            })
        }
    }
}

impl Rank {
    /// Blocking standard-mode send (`MPI_Send`) of contiguous bytes.
    ///
    /// Errors detected by the protocol come back through the `Result`
    /// after passing the configured error handler: under the default
    /// [`crate::ErrorMode::ErrorsAreFatal`] the rank panics instead.
    /// Append `.done()` (from [`crate::prelude`]) at call sites that
    /// treat any surfaced error as fatal.
    pub fn send(&mut self, dst: usize, tag: Tag, data: &[u8]) -> Result<(), ScimpiError> {
        let op = self.start_send(dst, tag, SendData::Bytes(data))?;
        self.finish_send(op)
    }

    /// Blocking send of a committed datatype.
    pub fn send_typed(
        &mut self,
        dst: usize,
        tag: Tag,
        c: &Committed,
        count: usize,
        buf: &[u8],
        origin: usize,
    ) -> Result<(), ScimpiError> {
        let op = self.start_send(
            dst,
            tag,
            SendData::Typed {
                c,
                count,
                buf,
                origin,
            },
        )?;
        self.finish_send(op)
    }

    /// Start a send: eager sends complete immediately, rendezvous sends
    /// post their RTS and return an op for [`Rank::finish_send`]. Eager
    /// sends can detect unrepairable corruption while starting.
    pub fn start_send<'a>(
        &mut self,
        dst: usize,
        tag: Tag,
        data: SendData<'a>,
    ) -> Result<SendOp<'a>, ScimpiError> {
        // Translate the caller's logical rank into a world rank; all
        // protocol state (mailboxes, rings, liveness) is world-indexed.
        let dst = self.to_world(dst);
        let len = data.total_len();
        if let SendData::Typed { c, .. } = &data {
            // Resolving the committed layout costs a cache lookup when the
            // layout cache is on, or a full re-flatten when it is off; the
            // adaptive selector then records which pack path this layout's
            // density chose — governed by the rank's staging budget.
            let resolve = self.world.tuning.layout_resolve_cost(c);
            attrib::advance(&mut self.clock, Bucket::Pack, resolve);
            let _lease = self.world.governed_path(self.rank, c, len, false);
        }
        // Eager messages (short ones included) consume flow-control
        // credits at post time; an exhausted budget resolves per
        // `Tuning::overload_policy` before any protocol cost is charged.
        let mut eager = len <= self.world.tuning.eager_threshold;
        if eager {
            match self.acquire_eager_credits(dst, len)? {
                CreditVerdict::Granted => {}
                CreditVerdict::Degrade => eager = false,
                CreditVerdict::Shed => {
                    // The message is dropped sender-side: the send
                    // "completes" without posting anything.
                    return Ok(SendOp {
                        dst,
                        data,
                        kind: SendOpKind::Done,
                    });
                }
            }
        }
        let t = &self.world.tuning;
        if eager {
            obs::inc(obs::Counter::EagerSends);
            let start = self.clock.now();
            self.send_eager(dst, tag, &data)?;
            if obs::is_enabled() {
                obs::span(
                    "p2p.send",
                    start,
                    self.clock.now(),
                    vec![
                        ("bytes", obs::Arg::U64(len as u64)),
                        ("dst", obs::Arg::U64(dst as u64)),
                        ("path", obs::Arg::Str("eager".into())),
                    ],
                );
            }
            Ok(SendOp {
                dst,
                data,
                kind: SendOpKind::Done,
            })
        } else {
            obs::inc(obs::Counter::RendezvousSends);
            let handle = self.world.handle();
            // Take the pair's send-turn ticket here, on the posting
            // rank's own thread, so turn order is program order even when
            // the chunk loop later runs on an engine thread.
            let ticket = self.world.ring(self.rank, dst).take_turn_ticket();
            attrib::advance(&mut self.clock, Bucket::Transfer, t.ctrl_send_cost);
            let arrival = self.clock.now() + self.world.ctrl_latency(self.rank, dst);
            self.world.mailboxes[dst].post(Envelope {
                src: self.rank,
                tag,
                arrival,
                head: Head::Rts { size: len, handle },
            });
            if obs::is_enabled() {
                obs::instant(
                    "p2p.rts",
                    self.clock.now(),
                    vec![
                        ("bytes", obs::Arg::U64(len as u64)),
                        ("dst", obs::Arg::U64(dst as u64)),
                    ],
                );
            }
            Ok(SendOp {
                dst,
                data,
                kind: SendOpKind::Rendezvous { handle, ticket },
            })
        }
    }

    /// Complete a send started with [`Rank::start_send`]: under
    /// [`crate::ErrorMode::ErrorsReturn`] communication errors come back
    /// as values instead of panicking.
    pub fn finish_send(&mut self, op: SendOp<'_>) -> Result<(), ScimpiError> {
        let world = Arc::clone(&self.world);
        finish_send_inner(&world, self.rank, &mut self.clock, op)
    }

    /// Acquire eager flow-control credits (`len` payload bytes + one
    /// envelope slot) toward world rank `dst`, resolving an exhausted
    /// budget per [`OverloadPolicy`]:
    ///
    /// * `Stall` — block in a liveness-guarded backpressure wait until
    ///   the receiver returns enough credits, charging the wait to the
    ///   `backpressure` bucket at the deterministic grant timestamps;
    /// * `Degrade` — fall back to the rendezvous protocol (its ring
    ///   slots are themselves flow-controlled);
    /// * `Shed` — drop the message sender-side;
    /// * `Error` — surface [`ScimpiError::ResourceExhausted`].
    ///
    /// The consume/deny verdict only reads sender-local credit state, so
    /// it — and everything downstream of it — is deterministic.
    fn acquire_eager_credits(
        &mut self,
        dst: usize,
        len: usize,
    ) -> Result<CreditVerdict, ScimpiError> {
        let credits = self.world.credit(self.rank, dst);
        if credits.try_consume(len) {
            return Ok(CreditVerdict::Granted);
        }
        let policy = if is_reliable() {
            OverloadPolicy::Stall
        } else {
            self.world.tuning.overload_policy
        };
        match policy {
            OverloadPolicy::Stall => {
                obs::inc(obs::Counter::EagerCreditStalls);
                let world = Arc::clone(&self.world);
                // Collect grants one at a time, merging each grant's
                // arrival (receiver match time + control latency) as a
                // backpressure wait, until the pool covers the message.
                // The guard mirrors `WorldState::await_ctrl`: a revoked
                // communicator or a dead receiver must unblock the
                // stall, or backpressure would deadlock recovery.
                let collect = |clock: &mut Clock, timeout| -> bool {
                    match credits.await_grant_for(timeout) {
                        Some((glen, at)) => {
                            attrib::merge_waited(
                                clock,
                                at,
                                WaitKind::Backpressure,
                                Some(dst as u32),
                            );
                            credits.restore(glen);
                            true
                        }
                        None => false,
                    }
                };
                loop {
                    if collect(&mut self.clock, POLL_SLICE) {
                        if credits.try_consume(len) {
                            return Ok(CreditVerdict::Granted);
                        }
                        continue;
                    }
                    if world.revoke_arrival(self.rank).is_some() {
                        // Final drain: a grant may have landed between
                        // expiry and the revocation check.
                        if collect(&mut self.clock, std::time::Duration::ZERO) {
                            if credits.try_consume(len) {
                                return Ok(CreditVerdict::Granted);
                            }
                            continue;
                        }
                        let err = world
                            .check_revoked(&mut self.clock, self.rank)
                            .expect("revocation installed");
                        return Err(world.escalate(err));
                    }
                    if !world.peer_dead(dst) {
                        continue;
                    }
                    if collect(&mut self.clock, std::time::Duration::ZERO) {
                        if credits.try_consume(len) {
                            return Ok(CreditVerdict::Granted);
                        }
                        continue;
                    }
                    let err = world.declare_dead(&mut self.clock, dst, "eager credits");
                    return Err(world.escalate(err));
                }
            }
            OverloadPolicy::Degrade => {
                obs::inc(obs::Counter::DegradedPaths);
                Ok(CreditVerdict::Degrade)
            }
            OverloadPolicy::Shed => {
                obs::inc(obs::Counter::MessagesShed);
                Ok(CreditVerdict::Shed)
            }
            OverloadPolicy::Error => {
                obs::inc(obs::Counter::BudgetDenials);
                Err(self.world.escalate(ScimpiError::ResourceExhausted {
                    what: "eager credits",
                    needed: len,
                    limit: self.world.tuning.eager_credits_bytes,
                }))
            }
        }
    }

    fn send_eager(&mut self, dst: usize, tag: Tag, data: &SendData<'_>) -> Result<(), ScimpiError> {
        let world = Arc::clone(&self.world);
        let ctrl_cost = world.tuning.ctrl_send_cost;
        let mut payload = pack_local(&world, &mut self.clock, data, 0, usize::MAX);
        let params = world.fabric.params();
        let len = payload.len();
        // Model the PIO write of the payload into the receiver's eager
        // buffer space.
        let same_node = world.smi.same_node(ProcId(self.rank), ProcId(dst));
        let cpu = if same_node {
            params.cache.copy_cost(len, len)
        } else {
            params.txn_overhead + params.pio_stream_bw(len).cost(len as u64) + params.store_barrier
        };
        attrib::advance(&mut self.clock, Bucket::Transfer, ctrl_cost + cpu);
        // The eager payload travels with the envelope rather than through
        // `SharedMem`, so the fabric's silent faults are applied to the
        // wire image here (same per-pair streams, same burst geometry).
        // Intra-node transfers are plain memory copies and never fault.
        let mut crc = None;
        if !same_node && len > 0 {
            let pair = (world.node_of(self.rank).0, world.node_of(dst).0);
            let faults = world.fabric.faults();
            match world.tuning.integrity_mode {
                IntegrityMode::Off => {
                    let n = faults.corrupt_buffer(pair, params.stream_buffer_bytes, &mut payload);
                    if n > 0 {
                        obs::add(obs::Counter::UndetectedAtOff, n as u64);
                        obs::instant(
                            "ft.integrity.silent",
                            self.clock.now(),
                            vec![
                                ("bytes", obs::Arg::U64(len as u64)),
                                ("faults", obs::Arg::U64(n as u64)),
                            ],
                        );
                    }
                }
                IntegrityMode::SequenceCheck => {
                    // Bracket the modeled PIO burst with the sequence guard
                    // (one CSR read before, one after).
                    attrib::advance(
                        &mut self.clock,
                        Bucket::Transfer,
                        params.sequence_check_cost + params.sequence_check_cost,
                    );
                    let n = faults.corrupt_buffer(pair, params.stream_buffer_bytes, &mut payload);
                    if n > 0 {
                        obs::inc(obs::Counter::CorruptionsDetected);
                        obs::instant(
                            "ft.integrity.detected",
                            self.clock.now(),
                            vec![
                                ("path", obs::Arg::Str("eager".into())),
                                ("peer", obs::Arg::U64(dst as u64)),
                            ],
                        );
                        // Detect-only: the message is not delivered.
                        return Err(world.escalate(ScimpiError::DataCorruption {
                            peer: dst,
                            what: "eager message",
                            retransmits: 0,
                        }));
                    }
                }
                IntegrityMode::EndToEnd => {
                    // Verified delivery: each attempt sends a fresh wire
                    // image; the receiver-side CRC verdict is collapsed
                    // into this loop (the simulator knows ground truth),
                    // charging a status round trip per retransmission.
                    let clean = payload.clone();
                    let mut retransmits = 0u32;
                    loop {
                        attrib::advance(&mut self.clock, Bucket::Pack, world.crc_cost(len));
                        let mut wire = clean.clone();
                        let n = faults.corrupt_buffer(pair, params.stream_buffer_bytes, &mut wire);
                        if n == 0 {
                            payload = wire;
                            break;
                        }
                        obs::inc(obs::Counter::CorruptionsDetected);
                        obs::instant(
                            "ft.integrity.detected",
                            self.clock.now(),
                            vec![
                                ("path", obs::Arg::Str("eager".into())),
                                ("peer", obs::Arg::U64(dst as u64)),
                            ],
                        );
                        let rtt = world.ctrl_latency(self.rank, dst);
                        attrib::advance(&mut self.clock, Bucket::Transfer, rtt + rtt);
                        if retransmits >= world.tuning.max_retransmits {
                            return Err(world.escalate(ScimpiError::DataCorruption {
                                peer: dst,
                                what: "eager message",
                                retransmits,
                            }));
                        }
                        retransmits += 1;
                        obs::inc(obs::Counter::Retransmits);
                        obs::instant(
                            "ft.integrity.retransmit",
                            self.clock.now(),
                            vec![
                                ("path", obs::Arg::Str("eager".into())),
                                ("attempt", obs::Arg::U64(retransmits as u64)),
                            ],
                        );
                        // Resend the payload burst.
                        attrib::advance(&mut self.clock, Bucket::Transfer, cpu);
                    }
                    crc = Some(crc32(&payload));
                }
            }
        }
        let arrival = self.clock.now() + world.ctrl_latency(self.rank, dst);
        world.mailboxes[dst].post(Envelope {
            src: self.rank,
            tag,
            arrival,
            head: Head::Eager {
                data: payload,
                blocks: 1,
                crc,
            },
        });
        Ok(())
    }

    /// Blocking receive (`MPI_Recv`) into contiguous bytes.
    ///
    /// With a specific [`Source::Rank`], a sender that dies before its
    /// message (or the next rendezvous chunk) arrives is detected and
    /// reported as [`ScimpiError::PeerDead`] after the deterministic
    /// [`crate::death_delay`] virtual-time schedule. `Source::Any` has no
    /// single peer to monitor, so it blocks until a message arrives.
    pub fn recv(
        &mut self,
        src: Source,
        tag: TagSel,
        buf: &mut [u8],
    ) -> Result<RecvStatus, ScimpiError> {
        self.recv_into(src, tag, RecvBuf::Bytes(buf))
    }

    /// Blocking receive into a committed datatype layout.
    pub fn recv_typed(
        &mut self,
        src: Source,
        tag: TagSel,
        c: &Committed,
        count: usize,
        buf: &mut [u8],
        origin: usize,
    ) -> Result<RecvStatus, ScimpiError> {
        self.recv_into(
            src,
            tag,
            RecvBuf::Typed {
                c,
                count,
                buf,
                origin,
            },
        )
    }

    /// Receive into either buffer shape (see [`Rank::recv`] for the
    /// error contract).
    pub fn recv_into(
        &mut self,
        src: Source,
        tag: TagSel,
        into: RecvBuf<'_>,
    ) -> Result<RecvStatus, ScimpiError> {
        let src = self.src_to_world(src);
        let ticket = self.world.mailboxes[self.rank].post_recv(src, tag);
        let world = Arc::clone(&self.world);
        recv_into_inner(&world, self.rank, &mut self.clock, ticket, src, into)
            .map(|st| self.status_to_logical(st))
    }

    /// Translate a caller-facing source selector (logical ranks) into the
    /// world-rank space the mailboxes match on.
    pub(crate) fn src_to_world(&self, src: Source) -> Source {
        match src {
            Source::Any => Source::Any,
            Source::Rank(r) => Source::Rank(self.to_world(r)),
        }
    }

    /// Translate a completed receive's world-rank source back into the
    /// caller's logical rank space.
    pub(crate) fn status_to_logical(&self, mut st: RecvStatus) -> RecvStatus {
        st.src = self.to_logical(st.src);
        st
    }

    /// Combined send+receive (`MPI_Sendrecv`): deadlock-free even when all
    /// ranks call it simultaneously with rendezvous-size messages.
    ///
    /// Rendezvous sends are driven on a helper thread with a *forked
    /// clock* while this thread services the receive — the two transfers
    /// progress concurrently, exactly the semantics `MPI_Sendrecv`
    /// promises (and the only way a symmetric exchange can avoid circular
    /// waits without an asynchronous progress engine). On completion the
    /// rank's clock merges the later of the two finish times.
    ///
    /// If both halves fail, the send-side error wins (it is reported
    /// first in MPI practice too — the sendrecv completes as a unit
    /// either way).
    pub fn sendrecv(
        &mut self,
        dst: usize,
        stag: Tag,
        sdata: SendData<'_>,
        src: Source,
        rtag: TagSel,
        rbuf: RecvBuf<'_>,
    ) -> Result<RecvStatus, ScimpiError> {
        let op = self.start_send(dst, stag, sdata)?;
        let src = self.src_to_world(src);
        let dst = op.dst; // world rank (translated by start_send)
        let ticket = self.world.mailboxes[self.rank].post_recv(src, rtag);
        let world = Arc::clone(&self.world);
        let rank = self.rank;
        if op.is_done() {
            // Eager sends already completed locally.
            return recv_into_inner(&world, rank, &mut self.clock, ticket, src, rbuf)
                .map(|st| self.status_to_logical(st));
        }
        let mut send_clock = self.clock.clone();
        // Event backend: the send half runs as its own scheduler task so
        // its blocking sites (ring slots, CTS waits) park in virtual time
        // concurrently with the recv half below.
        let task = sched::spawn_handle(rank as u32, send_clock.now());
        std::thread::scope(|scope| {
            let sender = scope.spawn({
                let world = Arc::clone(&world);
                let task = task.clone();
                move || {
                    // Bind the helper to the rank's trace lane but leave
                    // it out of attribution (its clock is a fork; the
                    // rank accounts the join below as a request-wait).
                    obs::set_thread_rank(rank as u32);
                    match task {
                        Some(h) => {
                            let out =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    h.adopt();
                                    finish_send_inner(&world, rank, &mut send_clock, op)
                                }));
                            match out {
                                Ok(res) => {
                                    sched::retire();
                                    (res, send_clock)
                                }
                                Err(p) => {
                                    sched::abort_current(p);
                                    sched::retire();
                                    std::panic::panic_any(sched::Aborted);
                                }
                            }
                        }
                        None => {
                            let res = finish_send_inner(&world, rank, &mut send_clock, op);
                            (res, send_clock)
                        }
                    }
                }
            });
            let status = recv_into_inner(&world, rank, &mut self.clock, ticket, src, rbuf);
            if let Some(h) = &task {
                sched::join_task(h);
            }
            let (send_res, send_clock) = sender.join().expect("send side panicked");
            // Joining the helper's forked clock: any jump is the rank
            // blocked on its own outstanding send half.
            attrib::merge_waited(
                &mut self.clock,
                send_clock.now(),
                WaitKind::RequestWait,
                Some(dst as u32),
            );
            send_res?;
            status
        })
        .map(|st| self.status_to_logical(st))
    }

    /// Non-destructive probe for a matching message.
    pub fn probe(&mut self, src: Source, tag: TagSel) -> Option<(usize, Tag)> {
        let src = self.src_to_world(src);
        self.world.mailboxes[self.rank]
            .probe(src, tag)
            .map(|(s, t, _)| (self.to_logical(s), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{run, ClusterSpec};
    use crate::tuning::Tuning;
    use mpi_datatype::Datatype;
    use simclock::SimTime;

    #[test]
    fn eager_send_recv_roundtrip() {
        run(ClusterSpec::ringlet(2), |r| {
            if r.rank() == 0 {
                r.send(1, 7, b"hello sci").unwrap();
            } else {
                let mut buf = [0u8; 9];
                let st = r.recv(Source::Rank(0), TagSel::Value(7), &mut buf).unwrap();
                assert_eq!(&buf, b"hello sci");
                assert_eq!(
                    st,
                    RecvStatus {
                        src: 0,
                        tag: 7,
                        len: 9
                    }
                );
                assert!(r.now() > SimTime::ZERO);
            }
        });
    }

    #[test]
    fn rendezvous_large_message() {
        let data: Vec<u8> = (0..200_000).map(|i| (i * 31) as u8).collect();
        let expect = data.clone();
        run(ClusterSpec::ringlet(2), move |r| {
            if r.rank() == 0 {
                r.send(1, 1, &data).unwrap();
            } else {
                let mut buf = vec![0u8; 200_000];
                let st = r.recv(Source::Any, TagSel::Any, &mut buf).unwrap();
                assert_eq!(st.len, 200_000);
                assert_eq!(buf, expect);
            }
        });
    }

    #[test]
    fn typed_roundtrip_both_engines() {
        for tuning in [
            Tuning::default().generic_only(),
            Tuning::default().full_ff_comparison(),
        ] {
            let dt = Datatype::vector(512, 16, 32, &Datatype::double()); // 64 KiB data
            let c = Committed::commit(&dt);
            let src_buf: Vec<u8> = (0..dt.extent()).map(|i| (i * 7) as u8).collect();
            let expected = src_buf.clone();
            let spec = ClusterSpec::ringlet(2).tuning(tuning);
            let c2 = c.clone();
            run(spec, move |r| {
                if r.rank() == 0 {
                    r.send_typed(1, 3, &c2, 1, &src_buf, 0).unwrap();
                } else {
                    let mut buf = vec![0u8; c2.extent()];
                    r.recv_typed(Source::Rank(0), TagSel::Value(3), &c2, 1, &mut buf, 0)
                        .unwrap();
                    // Data bytes match; gaps remain zero.
                    let mut ok_data = true;
                    mpi_datatype::tree::for_each_segment(c2.datatype(), 1, |d, l| {
                        let d = d as usize;
                        ok_data &= buf[d..d + l] == expected[d..d + l];
                        core::ops::ControlFlow::Continue(())
                    });
                    assert!(ok_data);
                }
            });
        }
    }

    #[test]
    fn ff_beats_generic_for_medium_blocks() {
        // 128-byte blocks, rendezvous-size message: direct_pack_ff should
        // clearly outperform pack-and-send (Figure 7).
        let blocks = 2048usize;
        let dt = Datatype::vector(blocks, 16, 32, &Datatype::double()); // 128 B blocks
        let run_mode = |tuning: Tuning| {
            let c = Committed::commit(&dt);
            let src_buf = vec![7u8; dt.extent()];
            let out = run(ClusterSpec::ringlet(2).tuning(tuning), move |r| {
                if r.rank() == 0 {
                    r.send_typed(1, 0, &c, 1, &src_buf, 0).unwrap();
                    r.barrier();
                    r.now()
                } else {
                    let mut buf = vec![0u8; c.extent()];
                    r.recv_typed(Source::Rank(0), TagSel::Value(0), &c, 1, &mut buf, 0)
                        .unwrap();
                    r.barrier();
                    r.now()
                }
            });
            out[1]
        };
        let t_generic = run_mode(Tuning::default().generic_only());
        let t_ff = run_mode(Tuning::default().full_ff_comparison());
        assert!(
            t_ff < t_generic,
            "ff {t_ff:?} should beat generic {t_generic:?}"
        );
    }

    #[test]
    fn pack_engine_speeds_up_fine_grained_ff_sends() {
        // 16 B blocks over a rendezvous-size message: the layout cache
        // skips re-flattening and WC batching turns sub-transaction
        // stores into full aligned flushes. Figure-7 shape, small blocks.
        let dt = Datatype::vector(8192, 2, 4, &Datatype::double()); // 16 B blocks, 128 KiB
        let run_mode = |tuning: Tuning| {
            let c = Committed::commit(&dt);
            let src_buf = vec![3u8; dt.extent()];
            let out = run(ClusterSpec::ringlet(2).tuning(tuning), move |r| {
                if r.rank() == 0 {
                    r.send_typed(1, 0, &c, 1, &src_buf, 0).unwrap();
                    r.barrier();
                    r.now()
                } else {
                    let mut buf = vec![0u8; c.extent()];
                    r.recv_typed(Source::Rank(0), TagSel::Value(0), &c, 1, &mut buf, 0)
                        .unwrap();
                    r.barrier();
                    r.now()
                }
            });
            out[1]
        };
        let enabled = run_mode(Tuning::default().full_ff_comparison());
        let disabled = run_mode(Tuning::default().without_pack_engine().full_ff_comparison());
        assert!(
            enabled < disabled,
            "pack engine {enabled:?} should beat disabled {disabled:?}"
        );
        // The figure-7 acceptance margin: at least 15% lower virtual time.
        assert!(
            enabled.as_secs_f64() <= disabled.as_secs_f64() * 0.85,
            "expected >=15% improvement: {enabled:?} vs {disabled:?}"
        );
    }

    #[test]
    fn sendrecv_ring_no_deadlock() {
        // Every rank sendrecvs a rendezvous-size message around a ring.
        let n = 4;
        let len = 150_000;
        let out = run(ClusterSpec::ringlet(n), move |r| {
            let data = vec![r.rank() as u8; len];
            let mut buf = vec![0u8; len];
            let dst = (r.rank() + 1) % r.size();
            let src = (r.rank() + r.size() - 1) % r.size();
            let st = r
                .sendrecv(
                    dst,
                    5,
                    SendData::Bytes(&data),
                    Source::Rank(src),
                    TagSel::Value(5),
                    RecvBuf::Bytes(&mut buf),
                )
                .unwrap();
            assert_eq!(st.src, src);
            buf.iter().all(|&b| b == src as u8)
        });
        assert!(out.into_iter().all(|ok| ok));
    }

    #[test]
    fn messages_do_not_overtake_per_pair() {
        run(ClusterSpec::ringlet(2), |r| {
            if r.rank() == 0 {
                for i in 0..20u8 {
                    r.send(1, 9, &[i; 16]).unwrap();
                }
            } else {
                for i in 0..20u8 {
                    let mut buf = [0u8; 16];
                    r.recv(Source::Rank(0), TagSel::Value(9), &mut buf).unwrap();
                    assert_eq!(buf[0], i, "message overtook");
                }
            }
        });
    }

    #[test]
    fn wildcard_recv_matches_any_sender() {
        run(ClusterSpec::ringlet(4), |r| {
            if r.rank() != 0 {
                r.send(0, r.rank() as Tag, &[r.rank() as u8; 4]).unwrap();
            } else {
                let mut seen = [false; 4];
                for _ in 0..3 {
                    let mut buf = [0u8; 4];
                    let st = r.recv(Source::Any, TagSel::Any, &mut buf).unwrap();
                    assert_eq!(st.tag as usize, st.src);
                    seen[st.src] = true;
                }
                assert_eq!(seen, [false, true, true, true]);
            }
        });
    }

    #[test]
    fn inter_node_costs_more_than_intra_node() {
        let len = 64 * 1024;
        let time_for = |spec: ClusterSpec| {
            let out = run(spec, move |r| {
                if r.rank() == 0 {
                    r.send(1, 0, &vec![1u8; len]).unwrap();
                    r.barrier();
                } else {
                    let mut buf = vec![0u8; len];
                    r.recv(Source::Rank(0), TagSel::Value(0), &mut buf).unwrap();
                    r.barrier();
                }
                r.now()
            });
            out[0]
        };
        let mut intra = ClusterSpec::ringlet(1);
        intra.procs_per_node = 2;
        let inter = ClusterSpec::ringlet(2);
        // Intra-node via shared memory is faster than crossing the ring.
        assert!(time_for(intra) < time_for(inter));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn send_to_invalid_rank_panics() {
        run(ClusterSpec::ringlet(2), |r| {
            if r.rank() == 0 {
                r.send(5, 0, b"x").unwrap();
            }
        });
    }
}
