//! Nonblocking request engine: `isend`/`irecv`/`ialltoall` and the
//! `wait`/`test`/`waitall`/`waitany` completion surface.
//!
//! # Overlap model
//!
//! A nonblocking operation forks the posting rank's [`simclock::Clock`]
//! at post time and drives the transfer protocol on an *engine thread*
//! against the fork, while the rank's own clock keeps advancing through
//! [`Rank::compute`]. Completion merges the fork back:
//!
//! ```text
//! completion = max(compute frontier, link-drain time of the transfer)
//! ```
//!
//! which is exactly the overlap a real asynchronous progress engine
//! (or NIC-driven RDMA) buys — communication hides behind computation
//! up to the point where the wire is the bottleneck. The virtual time
//! saved relative to a blocking call, `min(end, now) - posted_at`, is
//! accumulated in the [`obs::Counter::OverlapSavedNs`] counter.
//!
//! Everything stays deterministic: the engine thread charges cost to its
//! forked clock only, turn tickets and receive tickets are taken on the
//! posting rank's own thread at post time (program order — see
//! [`crate::mailbox::Mailbox::post_recv`] and the send-turn ticketing on
//! `PairRing`), and completion verdicts compare virtual times, never
//! real ones. Same seed, same answer, bit for bit.
//!
//! # Lifecycle
//!
//! ```text
//! post (isend/irecv/...) ──► Running ──wait/test──► Done
//!          │                    │
//!          │  eager / iput      │ drop unwaited
//!          ▼                    ▼
//!        Ready ────────────► DropBin (reaped at the next compute /
//!                            barrier / teardown — no virtual time lost)
//! ```
//!
//! Dropping a request without waiting is *allowed* (fire-and-forget
//! puts/sends): the drop joins the engine thread — so the peer is never
//! left mid-handshake — and parks the completion time in the rank's
//! [`DropBin`]; the next synchronisation point merges it. A dropped
//! request that completed with an error parks the error alongside the
//! time: the next synchronisation point routes it through the rank's
//! [`crate::ErrorMode`] handler (fatal mode aborts there; return mode
//! records a `req.dropped_error` trace instant) — a failed transfer is
//! never lost silently, even in release builds.
//!
//! See `docs/ASYNC.md` for the full narrative and the migration table
//! from the old `try_*` API.

use crate::error::ScimpiError;
use crate::mailbox::{Source, TagSel};
use crate::p2p::{finish_send_inner, recv_into_inner, RecvBuf, RecvStatus, SendData, SendOpKind};
use crate::runtime::Rank;
use mpi_datatype::Committed;
use simclock::{Clock, SimTime};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Completion times of requests that were dropped unwaited. Engine
/// threads deposit here from [`Request::drop`]; the owning rank drains
/// it at every synchronisation point ([`Rank::compute`],
/// [`Rank::barrier`], teardown) so the virtual time of a
/// fire-and-forget transfer is never lost.
#[derive(Default)]
pub struct DropBin {
    times: Mutex<Vec<(SimTime, Option<ScimpiError>)>>,
}

impl DropBin {
    fn push(&self, t: SimTime, err: Option<ScimpiError>) {
        self.times.lock().unwrap().push((t, err));
    }

    fn drain(&self) -> Vec<(SimTime, Option<ScimpiError>)> {
        std::mem::take(&mut *self.times.lock().unwrap())
    }
}

/// Should this error pass the rank's error-handler machinery when a
/// request completion first observes it at `wait`/`test` time? Caller
/// bugs (out-of-range window arguments) are plain return values;
/// communication faults (dead peers, corruption, revocation) escalate
/// through [`crate::ErrorMode`] on the owning thread.
fn escalates(e: &ScimpiError) -> bool {
    !matches!(
        e,
        ScimpiError::WindowError(_) | ScimpiError::Fabric(sci_fabric::SciError::OutOfBounds(_))
    )
}

/// A completed receive: the matched status plus the received bytes.
///
/// `irecv` cannot borrow the destination buffer for the lifetime of the
/// transfer (the engine thread outlives the call), so the payload lands
/// in an owned buffer handed back at completion. For
/// [`Rank::irecv`] the data is truncated to the received length; for
/// [`Rank::irecv_typed`] it is the full typed extent (gaps zeroed).
#[derive(Clone, Debug)]
pub struct RecvDone {
    /// Matched source/tag/length.
    pub status: RecvStatus,
    /// The received payload.
    pub data: Vec<u8>,
}

/// What an in-flight isend owns (the engine thread needs `'static`
/// data; borrowing the caller's buffer would tie the request to it).
enum OwnedSend {
    Bytes(Vec<u8>),
    Typed {
        c: Committed,
        count: usize,
        buf: Vec<u8>,
        origin: usize,
    },
}

impl OwnedSend {
    fn as_data(&self) -> SendData<'_> {
        match self {
            OwnedSend::Bytes(b) => SendData::Bytes(b),
            OwnedSend::Typed {
                c,
                count,
                buf,
                origin,
            } => SendData::Typed {
                c,
                count: *count,
                buf,
                origin: *origin,
            },
        }
    }
}

enum State<T> {
    /// The transfer is being driven on an engine thread against a forked
    /// clock; the handle yields the fork's final state and the result.
    /// Under the event backend the engine thread is also a scheduler
    /// task, carried here so completion can join it in virtual time.
    Running(
        JoinHandle<(Clock, Result<T, ScimpiError>)>,
        Option<sched::Handle>,
    ),
    /// The transfer's virtual end time is known but the completion has
    /// not been folded into the rank's clock yet.
    Ready(SimTime, Result<T, ScimpiError>),
    /// Completion observed through `wait`/`test`; re-waiting returns the
    /// stored result (idempotent, like waiting an inactive MPI request).
    Done(SimTime, Result<T, ScimpiError>),
}

/// A nonblocking communication request (`MPI_Request`).
///
/// Obtain one from [`Rank::isend`], [`Rank::irecv`],
/// [`Rank::ialltoall`], `Window::iput`/`iget`, or a persistent
/// [`PersistentSend::start`]/[`PersistentRecv::start`]; complete it with
/// [`Rank::wait`]/[`Rank::test`]/[`Rank::waitall`]/[`Rank::waitany`].
/// Dropping it unwaited is safe (see the module docs).
#[must_use = "a request completes the rank's virtual time only through wait/test or its drop bin"]
pub struct Request<T> {
    state: Option<State<T>>,
    /// Virtual time at which the operation was posted.
    posted_at: SimTime,
    /// Operation kind for the lifecycle span ("isend", "irecv", ...).
    kind: &'static str,
    drop_bin: Arc<DropBin>,
}

impl<T: Send + 'static> Request<T> {
    /// An already-complete request (eager sends, posted-store `iput`).
    pub(crate) fn ready(
        rank: &Rank,
        kind: &'static str,
        posted_at: SimTime,
        end: SimTime,
        result: Result<T, ScimpiError>,
    ) -> Self {
        Request {
            state: Some(State::Ready(end, result)),
            posted_at,
            kind,
            drop_bin: Arc::clone(&rank.drop_bin),
        }
    }

    /// A request driven by `f` on an engine thread against `clock` (a
    /// fork of the rank's clock taken at post time).
    pub(crate) fn spawn<F>(
        rank: &Rank,
        kind: &'static str,
        posted_at: SimTime,
        mut clock: Clock,
        f: F,
    ) -> Self
    where
        F: FnOnce(&mut Clock) -> Result<T, ScimpiError> + Send + 'static,
    {
        let id = rank.rank as u32;
        // Under the event backend the engine runs as a scheduler task so
        // its blocking sites park in virtual time like any rank.
        let task = sched::spawn_handle(id, clock.now());
        let child_task = task.clone();
        let handle = std::thread::spawn(move || {
            obs::set_thread_rank(id);
            match child_task {
                Some(h) => {
                    // Adoption sits inside the catch_unwind: waiting for
                    // the first grant can itself abort if another task
                    // panics before this one ever runs.
                    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        h.adopt();
                        f(&mut clock)
                    }));
                    match out {
                        Ok(res) => {
                            sched::retire();
                            (clock, res)
                        }
                        Err(p) => {
                            // Record the real payload with the scheduler
                            // (first panic wins), release the run token,
                            // and surface the teardown sentinel through
                            // the JoinHandle for settle()/drop to see.
                            sched::abort_current(p);
                            sched::retire();
                            std::panic::panic_any(sched::Aborted);
                        }
                    }
                }
                None => {
                    let res = f(&mut clock);
                    (clock, res)
                }
            }
        });
        Request {
            state: Some(State::Running(handle, task)),
            posted_at,
            kind,
            drop_bin: Arc::clone(&rank.drop_bin),
        }
    }

    /// Join the engine thread if still running, leaving the state at
    /// `Ready` or `Done`. Blocks real time only; the completion verdict
    /// stays a pure virtual-time comparison.
    fn settle(&mut self) {
        if let Some(State::Running(..)) = self.state {
            let Some(State::Running(handle, task)) = self.state.take() else {
                unreachable!()
            };
            // Event backend: wait for the engine task in virtual time
            // first — joining the OS thread directly while holding the
            // run token would deadlock the scheduler.
            if let Some(h) = &task {
                sched::join_task(h);
            }
            let (clock, res) = match handle.join() {
                Ok(v) => v,
                // The engine thread panicked (ErrorsAreFatal escalation):
                // the run is being torn down — propagate.
                Err(p) => std::panic::resume_unwind(p),
            };
            self.state = Some(State::Ready(clock.now(), res));
        }
    }

    fn end_time(&mut self) -> SimTime {
        self.settle();
        match self.state.as_ref().expect("request state present") {
            State::Ready(end, _) | State::Done(end, _) => *end,
            State::Running(..) => unreachable!("settled above"),
        }
    }

    fn is_done(&self) -> bool {
        matches!(self.state, Some(State::Done(..)))
    }
}

impl<T> Drop for Request<T> {
    fn drop(&mut self) {
        match self.state.take() {
            None | Some(State::Done(..)) => {}
            Some(State::Running(handle, task)) => {
                if let Some(h) = &task {
                    if std::thread::panicking() {
                        // Dropped mid-unwind on the event backend:
                        // parking to join would panic again (the abort
                        // sentinel) and turn the unwind into an abort.
                        // Detach — the scheduler's abort broadcast wakes
                        // and retires the engine task on its own.
                        return;
                    }
                    sched::join_task(h);
                }
                match handle.join() {
                    Ok((clock, res)) => {
                        obs::inc(obs::Counter::RequestsCompleted);
                        obs::inc(obs::Counter::RequestsCompletedByDrop);
                        self.drop_bin.push(clock.now(), res.err());
                    }
                    Err(p) => {
                        // Engine-thread panic (fatal escalation). If we are
                        // already unwinding, swallow it — a double panic
                        // aborts without a message.
                        if !std::thread::panicking() {
                            std::panic::resume_unwind(p);
                        }
                    }
                }
            }
            Some(State::Ready(end, res)) => {
                obs::inc(obs::Counter::RequestsCompleted);
                obs::inc(obs::Counter::RequestsCompletedByDrop);
                self.drop_bin.push(end, res.err());
            }
        }
    }
}

/// A persistent send (`MPI_Send_init`): captured arguments that can be
/// [`start`](PersistentSend::start)ed any number of times. Each start is
/// indistinguishable — in timing and semantics — from a fresh
/// [`Rank::isend`] with the same arguments.
pub struct PersistentSend {
    dst: usize,
    tag: crate::mailbox::Tag,
    data: Vec<u8>,
}

impl PersistentSend {
    /// Post one instance of the captured send.
    pub fn start(&self, rank: &mut Rank) -> Result<Request<()>, ScimpiError> {
        rank.isend(self.dst, self.tag, &self.data)
    }
}

/// A persistent receive (`MPI_Recv_init`); see [`PersistentSend`].
pub struct PersistentRecv {
    src: Source,
    tag: TagSel,
    max_len: usize,
}

impl PersistentRecv {
    /// Post one instance of the captured receive.
    pub fn start(&self, rank: &mut Rank) -> Result<Request<RecvDone>, ScimpiError> {
        rank.irecv(self.src, self.tag, self.max_len)
    }
}

impl Rank {
    /// Fold in requests that completed by being dropped: merge their
    /// virtual end times and retire them from the pending table. Called
    /// from every synchronisation point.
    pub(crate) fn reap_dropped(&mut self) {
        let entries = self.drop_bin.drain();
        for (t, err) in entries {
            obs::attrib::merge_waited(&mut self.clock, t, obs::WaitKind::RequestWait, None);
            self.pending_requests = self.pending_requests.saturating_sub(1);
            if let Some(e) = err {
                // A dropped request that failed: the error still passes
                // the rank's error handler. Fatal mode aborts here (at
                // the next synchronisation point — the earliest moment
                // the owning thread can observe it); return mode has no
                // caller to hand the value to, so it is traced and
                // released.
                obs::instant(
                    "req.dropped_error",
                    self.clock.now(),
                    vec![("error", obs::Arg::Str(e.to_string()))],
                );
                let _ = self.world.escalate(e);
            }
        }
    }

    /// Post-time accounting shared by every nonblocking operation.
    /// Denies the post with [`ScimpiError::ResourceExhausted`] when the
    /// pending-request table is already at
    /// `Tuning::max_inflight_requests` — the request engine's in-flight
    /// set is a governed resource like any other buffer pool.
    pub(crate) fn account_post(&mut self) -> Result<SimTime, ScimpiError> {
        let limit = self.world.tuning.max_inflight_requests;
        if self.pending_requests >= limit {
            obs::inc(obs::Counter::BudgetDenials);
            return Err(self.world.escalate(ScimpiError::ResourceExhausted {
                what: "in-flight requests",
                needed: self.pending_requests + 1,
                limit,
            }));
        }
        let posted_at = self.clock.now();
        obs::attrib::advance(
            &mut self.clock,
            obs::Bucket::Transfer,
            self.world.tuning.request_post_cost,
        );
        self.pending_requests += 1;
        obs::inc(obs::Counter::RequestsPosted);
        Ok(posted_at)
    }

    /// Completion accounting: merge the transfer's end time into the
    /// rank's clock (completion = max(compute frontier, link drain)) and
    /// credit the overlap the application bought by not blocking.
    fn account_complete(&mut self, kind: &'static str, posted_at: SimTime, end: SimTime) {
        let frontier = self.clock.now();
        let saved = end.min(frontier).duration_since(posted_at);
        obs::add(obs::Counter::OverlapSavedNs, saved.as_ns());
        obs::inc(obs::Counter::RequestsCompleted);
        self.pending_requests = self.pending_requests.saturating_sub(1);
        obs::attrib::merge_waited(&mut self.clock, end, obs::WaitKind::RequestWait, None);
        if obs::is_enabled() {
            obs::span(
                "req.lifetime",
                posted_at,
                self.clock.now(),
                vec![
                    ("kind", obs::Arg::Str(kind.into())),
                    ("saved_ns", obs::Arg::U64(saved.as_ns())),
                ],
            );
        }
    }

    /// Nonblocking send (`MPI_Isend`) of contiguous bytes. The payload
    /// is captured at post time (standard-mode buffering); eager sends
    /// complete immediately, rendezvous sends progress on an engine
    /// thread while this rank computes.
    pub fn isend(
        &mut self,
        dst: usize,
        tag: crate::mailbox::Tag,
        data: &[u8],
    ) -> Result<Request<()>, ScimpiError> {
        self.isend_owned(dst, tag, OwnedSend::Bytes(data.to_vec()))
    }

    /// Nonblocking send of a committed datatype (`MPI_Isend` with a
    /// derived type). The (sparse) user buffer is captured at post time.
    pub fn isend_typed(
        &mut self,
        dst: usize,
        tag: crate::mailbox::Tag,
        c: &Committed,
        count: usize,
        buf: &[u8],
        origin: usize,
    ) -> Result<Request<()>, ScimpiError> {
        self.isend_owned(
            dst,
            tag,
            OwnedSend::Typed {
                c: c.clone(),
                count,
                buf: buf.to_vec(),
                origin,
            },
        )
    }

    /// Shared isend body over the owned payload.
    fn isend_owned(
        &mut self,
        dst: usize,
        tag: crate::mailbox::Tag,
        owned: OwnedSend,
    ) -> Result<Request<()>, ScimpiError> {
        let posted_at = self.account_post()?;
        // The protocol's start runs inline on the posting thread — the
        // same costs a blocking send charges before it can return to
        // the application (RTS post, eager burst). `start_send`
        // translates the caller's logical destination into a world rank;
        // the engine thread below must reuse that translation.
        let (dst, kind) = {
            let op = self.start_send(dst, tag, owned.as_data())?;
            (op.dst, op.kind)
        };
        match kind {
            SendOpKind::Done => {
                let end = self.clock.now();
                Ok(Request::ready(self, "isend", posted_at, end, Ok(())))
            }
            SendOpKind::Rendezvous { handle, ticket } => {
                let world = Arc::clone(&self.world);
                let me = self.rank;
                let fork = self.clock.clone();
                Ok(Request::spawn(
                    self,
                    "isend",
                    posted_at,
                    fork,
                    move |clock| {
                        let op = crate::p2p::SendOp {
                            dst,
                            data: owned.as_data(),
                            kind: SendOpKind::Rendezvous { handle, ticket },
                        };
                        finish_send_inner(&world, me, clock, op)
                    },
                ))
            }
        }
    }

    /// Nonblocking receive (`MPI_Irecv`) into an owned buffer of
    /// `max_len` bytes. The receive ticket is taken here, in program
    /// order — posted receives match arrivals with MPI's posted-queue
    /// semantics even while the transfer itself progresses on an engine
    /// thread. The payload comes back in [`RecvDone::data`], truncated
    /// to the received length.
    pub fn irecv(
        &mut self,
        src: Source,
        tag: TagSel,
        max_len: usize,
    ) -> Result<Request<RecvDone>, ScimpiError> {
        let posted_at = self.account_post()?;
        let src = self.src_to_world(src);
        let ticket = self.world.mailboxes[self.rank].post_recv(src, tag);
        let world = Arc::clone(&self.world);
        let me = self.rank;
        let members = Arc::clone(&self.members);
        let fork = self.clock.clone();
        Ok(Request::spawn(
            self,
            "irecv",
            posted_at,
            fork,
            move |clock| {
                let mut buf = vec![0u8; max_len];
                let mut st =
                    recv_into_inner(&world, me, clock, ticket, src, RecvBuf::Bytes(&mut buf))?;
                st.src = members.binary_search(&st.src).unwrap_or(st.src);
                buf.truncate(st.len);
                Ok(RecvDone {
                    status: st,
                    data: buf,
                })
            },
        ))
    }

    /// Nonblocking receive into a committed datatype layout. The
    /// returned [`RecvDone::data`] holds the full typed extent
    /// (`c.extent() * count` bytes) with gaps zeroed.
    pub fn irecv_typed(
        &mut self,
        src: Source,
        tag: TagSel,
        c: &Committed,
        count: usize,
    ) -> Result<Request<RecvDone>, ScimpiError> {
        let posted_at = self.account_post()?;
        let src = self.src_to_world(src);
        let ticket = self.world.mailboxes[self.rank].post_recv(src, tag);
        let world = Arc::clone(&self.world);
        let me = self.rank;
        let members = Arc::clone(&self.members);
        let fork = self.clock.clone();
        let c = c.clone();
        Ok(Request::spawn(
            self,
            "irecv",
            posted_at,
            fork,
            move |clock| {
                let mut buf = vec![0u8; c.extent() * count.max(1)];
                let mut st = recv_into_inner(
                    &world,
                    me,
                    clock,
                    ticket,
                    src,
                    RecvBuf::Typed {
                        c: &c,
                        count,
                        buf: &mut buf,
                        origin: 0,
                    },
                )?;
                st.src = members.binary_search(&st.src).unwrap_or(st.src);
                Ok(RecvDone {
                    status: st,
                    data: buf,
                })
            },
        ))
    }

    /// Kick off a nonblocking all-to-all exchange (`MPI_Ialltoall`,
    /// pairwise algorithm): the whole collective progresses on an engine
    /// thread while this rank computes. At most one collective may be in
    /// flight per rank at a time, and wildcard (`Source::Any`) receives
    /// must not be posted while it runs — both mirror MPI's
    /// one-outstanding-collective-per-communicator rule.
    pub fn ialltoall(
        &mut self,
        sendblocks: &[Vec<u8>],
    ) -> Result<Request<Vec<Vec<u8>>>, ScimpiError> {
        assert_eq!(sendblocks.len(), self.size(), "one block per rank");
        let posted_at = self.account_post()?;
        let blocks = sendblocks.to_vec();
        // A shadow Rank over the same world, on a forked clock: the
        // collective body is exactly the blocking pairwise exchange. It
        // carries the same membership view so the exchange runs in the
        // posting epoch even if a shrink happens before completion.
        let mut shadow = Rank {
            rank: self.rank,
            size: self.size,
            clock: self.clock.clone(),
            world: Arc::clone(&self.world),
            coll_seq: 0,
            drop_bin: Arc::new(DropBin::default()),
            pending_requests: 0,
            members: Arc::clone(&self.members),
            my_index: self.my_index,
            epoch: self.epoch,
            epoch_barrier: self.epoch_barrier.clone(),
            coll_win: None,
        };
        let fork = self.clock.clone();
        Ok(Request::spawn(
            self,
            "ialltoall",
            posted_at,
            fork,
            move |clock| {
                let out = shadow.alltoall(&blocks)?;
                *clock = shadow.clock.clone();
                Ok(out)
            },
        ))
    }

    /// Capture a persistent send (`MPI_Send_init`); post instances with
    /// [`PersistentSend::start`].
    pub fn send_init(
        &mut self,
        dst: usize,
        tag: crate::mailbox::Tag,
        data: &[u8],
    ) -> PersistentSend {
        PersistentSend {
            dst,
            tag,
            data: data.to_vec(),
        }
    }

    /// Capture a persistent receive (`MPI_Recv_init`); post instances
    /// with [`PersistentRecv::start`].
    pub fn recv_init(&mut self, src: Source, tag: TagSel, max_len: usize) -> PersistentRecv {
        PersistentRecv { src, tag, max_len }
    }

    /// Block until `req` completes (`MPI_Wait`), folding the transfer's
    /// virtual time into this rank's clock. Waiting an already-waited
    /// request is idempotent: it returns the stored result again without
    /// touching the clock or the counters.
    pub fn wait<T: Clone + Send + 'static>(
        &mut self,
        req: &mut Request<T>,
    ) -> Result<T, ScimpiError> {
        self.reap_dropped();
        let end = req.end_time();
        match req.state.take().expect("request state present") {
            State::Done(e, res) => {
                req.state = Some(State::Done(e, res.clone()));
                res
            }
            State::Ready(_, res) => {
                self.account_complete(req.kind, req.posted_at, end);
                // First observation of the completion: communication
                // faults route through the rank's error handler *here*,
                // on the owning thread — an engine thread that saw the
                // peer die only produced the verdict, it must not decide
                // the response to it.
                let res = match res {
                    Err(e) if escalates(&e) => Err(self.world.escalate(e)),
                    other => other,
                };
                req.state = Some(State::Done(end, res.clone()));
                res
            }
            State::Running(..) => unreachable!("end_time settles the request"),
        }
    }

    /// Nonblocking completion check (`MPI_Test`): `Some(result)` once
    /// the transfer's virtual end time has been reached by this rank's
    /// clock, `None` otherwise (charging
    /// [`crate::Tuning::progress_poll_cost`] per unsuccessful poll, like
    /// a real progress-engine tick). The verdict compares virtual times
    /// only, so test loops are deterministic.
    pub fn test<T: Clone + Send + 'static>(
        &mut self,
        req: &mut Request<T>,
    ) -> Option<Result<T, ScimpiError>> {
        self.reap_dropped();
        if req.is_done() {
            // Re-testing a completed request stays complete.
            return Some(self.wait(req));
        }
        let end = req.end_time();
        if end <= self.clock.now() {
            Some(self.wait(req))
        } else {
            obs::attrib::advance(
                &mut self.clock,
                obs::Bucket::Transfer,
                self.world.tuning.progress_poll_cost,
            );
            None
        }
    }

    /// Wait for every request, in posted order (`MPI_Waitall`). All
    /// requests complete — and their virtual time merges — even when one
    /// fails; the first error (in slice order) is reported.
    pub fn waitall<T: Clone + Send + 'static>(
        &mut self,
        reqs: &mut [Request<T>],
    ) -> Result<Vec<T>, ScimpiError> {
        let mut out = Vec::with_capacity(reqs.len());
        let mut first_err = None;
        for req in reqs.iter_mut() {
            match self.wait(req) {
                Ok(v) => out.push(v),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Wait for whichever active request finishes first in *virtual*
    /// time (`MPI_Waitany`), returning its index and result. Ties break
    /// towards the earlier index (posted order), so the pick is
    /// deterministic. Only the winner's time merges into this rank's
    /// clock; the rest stay pending.
    ///
    /// # Panics
    ///
    /// If every request in the slice has already been waited.
    pub fn waitany<T: Clone + Send + 'static>(
        &mut self,
        reqs: &mut [Request<T>],
    ) -> (usize, Result<T, ScimpiError>) {
        self.reap_dropped();
        let mut best: Option<(SimTime, usize)> = None;
        for (i, req) in reqs.iter_mut().enumerate() {
            if req.is_done() {
                continue;
            }
            let end = req.end_time();
            if best.map(|(t, _)| end < t).unwrap_or(true) {
                best = Some((end, i));
            }
        }
        let (_, idx) = best.expect("waitany needs at least one active request");
        let res = self.wait(&mut reqs[idx]);
        (idx, res)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{run, ClusterSpec};
    use simclock::SimDuration;

    const RDV: usize = 150_000; // > eager threshold: rendezvous path

    #[test]
    fn isend_irecv_roundtrip_eager_and_rendezvous() {
        for len in [64usize, RDV] {
            let out = run(ClusterSpec::ringlet(2), move |r| {
                if r.rank() == 0 {
                    let data = vec![0xA5u8; len];
                    let mut req = r.isend(1, 4, &data).unwrap();
                    r.compute(SimDuration::from_us(30));
                    r.wait(&mut req).unwrap();
                    Vec::new()
                } else {
                    let mut req = r.irecv(Source::Rank(0), TagSel::Value(4), len).unwrap();
                    r.compute(SimDuration::from_us(30));
                    let done = r.wait(&mut req).unwrap();
                    assert_eq!(done.status.len, len);
                    done.data
                }
            });
            assert!(out[1].iter().all(|&b| b == 0xA5), "len {len}");
        }
    }

    #[test]
    fn overlap_hides_transfer_behind_compute() {
        // A rank that computes while a rendezvous transfer is in flight
        // must finish earlier than one that blocks first and computes
        // after.
        let compute = SimDuration::from_ms(5);
        let t_nonblocking = run(ClusterSpec::ringlet(2), move |r| {
            if r.rank() == 0 {
                let data = vec![1u8; RDV];
                let mut req = r.isend(1, 0, &data).unwrap();
                r.compute(compute);
                r.wait(&mut req).unwrap();
            } else {
                let mut req = r.irecv(Source::Rank(0), TagSel::Value(0), RDV).unwrap();
                r.compute(compute);
                r.wait(&mut req).unwrap();
            }
            r.barrier();
            r.now()
        })[0];
        let t_blocking = run(ClusterSpec::ringlet(2), move |r| {
            if r.rank() == 0 {
                let data = vec![1u8; RDV];
                r.send(1, 0, &data).unwrap();
                r.compute(compute);
            } else {
                let mut buf = vec![0u8; RDV];
                r.recv(Source::Rank(0), TagSel::Value(0), &mut buf).unwrap();
                r.compute(compute);
            }
            r.barrier();
            r.now()
        })[0];
        assert!(
            t_nonblocking < t_blocking,
            "overlap {t_nonblocking:?} should beat blocking {t_blocking:?}"
        );
    }

    #[test]
    fn isend_wait_without_compute_matches_blocking_send() {
        // request_post_cost defaults to zero, so posting and immediately
        // waiting must be bit-identical to the blocking call.
        let run_pair = |nonblocking: bool| {
            run(ClusterSpec::ringlet(2), move |r| {
                if r.rank() == 0 {
                    let data = vec![2u8; RDV];
                    if nonblocking {
                        let mut req = r.isend(1, 0, &data).unwrap();
                        r.wait(&mut req).unwrap();
                    } else {
                        r.send(1, 0, &data).unwrap();
                    }
                } else {
                    let mut buf = vec![0u8; RDV];
                    r.recv(Source::Rank(0), TagSel::Value(0), &mut buf).unwrap();
                }
                r.barrier();
                r.now()
            })
        };
        assert_eq!(run_pair(true), run_pair(false));
    }

    #[test]
    fn test_polls_deterministically_until_complete() {
        let out = run(ClusterSpec::ringlet(2), |r| {
            if r.rank() == 0 {
                let data = vec![3u8; RDV];
                let mut req = r.isend(1, 0, &data).unwrap();
                let mut polls = 0u32;
                loop {
                    match r.test(&mut req) {
                        Some(res) => {
                            res.unwrap();
                            break;
                        }
                        None => {
                            polls += 1;
                            r.compute(SimDuration::from_us(100));
                        }
                    }
                }
                polls
            } else {
                let mut buf = vec![0u8; RDV];
                r.recv(Source::Rank(0), TagSel::Value(0), &mut buf).unwrap();
                0
            }
        });
        let again = run(ClusterSpec::ringlet(2), |r| {
            if r.rank() == 0 {
                let data = vec![3u8; RDV];
                let mut req = r.isend(1, 0, &data).unwrap();
                let mut polls = 0u32;
                loop {
                    match r.test(&mut req) {
                        Some(res) => {
                            res.unwrap();
                            break;
                        }
                        None => {
                            polls += 1;
                            r.compute(SimDuration::from_us(100));
                        }
                    }
                }
                polls
            } else {
                let mut buf = vec![0u8; RDV];
                r.recv(Source::Rank(0), TagSel::Value(0), &mut buf).unwrap();
                0
            }
        });
        assert_eq!(out, again, "poll count must be deterministic");
    }

    #[test]
    fn dropped_request_time_reaps_at_barrier() {
        let out = run(ClusterSpec::ringlet(2), |r| {
            if r.rank() == 0 {
                let data = vec![4u8; RDV];
                let req = r.isend(1, 0, &data).unwrap();
                drop(req); // fire-and-forget
                assert_eq!(r.pending_requests(), 1);
                r.barrier(); // reaps the drop bin
                assert_eq!(r.pending_requests(), 0);
            } else {
                let mut buf = vec![0u8; RDV];
                r.recv(Source::Rank(0), TagSel::Value(0), &mut buf).unwrap();
                r.barrier();
            }
            r.now()
        });
        // The sender's clock must include the transfer it dropped.
        assert!(out[0] > SimTime::ZERO);
    }

    #[test]
    fn ialltoall_matches_blocking_alltoall() {
        let blocks_for = |r: &Rank| -> Vec<Vec<u8>> {
            (0..r.size())
                .map(|d| vec![(r.rank() * 16 + d) as u8; 2048])
                .collect()
        };
        let nb = run(ClusterSpec::ringlet(4), move |r| {
            let blocks = blocks_for(r);
            let mut req = r.ialltoall(&blocks).unwrap();
            r.compute(SimDuration::from_us(200));
            r.wait(&mut req).unwrap()
        });
        let bl = run(ClusterSpec::ringlet(4), move |r| {
            let blocks = blocks_for(r);
            r.alltoall(&blocks).unwrap()
        });
        assert_eq!(nb, bl);
    }
}
