//! Bridges between the datatype engines and the fabric.
//!
//! [`PioSink`] is the heart of the paper's first optimisation: it feeds
//! `direct_pack_ff` blocks straight into a remote-memory [`PioStream`] at
//! strictly ascending addresses, so the adapter's stream buffers can merge
//! them — no intermediate pack buffer exists at all (Figure 4, bottom).
//!
//! [`RegionSource`] is the receive-side mirror: `unpack_ff` pulls the
//! packed stream directly out of the (receiver-local) ring-buffer region.
//!
//! [`StagingLedger`] governs the *buffered* engines' memory: paths that
//! stage packed data in an intermediate buffer (DMA pack buffers, the
//! generic staged engine) lease their bytes from a per-rank budget, so
//! an overloaded rank degrades to the bufferless `direct_pack_ff` path
//! instead of growing staging memory without bound (see
//! `docs/BACKPRESSURE.md`).

use mpi_datatype::{PackSink, UnpackSource};
use sci_fabric::{PioStream, SciError, SharedMem};
use simclock::Clock;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A per-rank staging-buffer budget (`Tuning::staging_budget_bytes`).
///
/// Buffered pack paths lease bytes before allocating their staging
/// buffers and the lease returns them on drop, so peak staging memory is
/// capped. Only the owning rank's thread acquires leases, which keeps
/// the grant/deny verdict — and therefore the chosen pack path —
/// deterministic.
pub struct StagingLedger {
    in_use: AtomicUsize,
    budget: usize,
}

impl StagingLedger {
    /// A ledger with `budget` leasable bytes.
    pub fn new(budget: usize) -> Self {
        StagingLedger {
            in_use: AtomicUsize::new(0),
            budget,
        }
    }

    /// Lease `len` bytes of staging memory, or `None` when the budget
    /// cannot cover them (callers degrade to a less buffer-hungry path).
    pub fn try_acquire(&self, len: usize) -> Option<StagingLease<'_>> {
        let cur = self.in_use.load(Ordering::Relaxed);
        if cur.saturating_add(len) > self.budget {
            return None;
        }
        self.in_use.fetch_add(len, Ordering::Relaxed);
        Some(StagingLease { ledger: self, len })
    }

    /// Bytes currently leased.
    pub fn in_use(&self) -> usize {
        self.in_use.load(Ordering::Relaxed)
    }

    /// The leasable budget.
    pub fn budget(&self) -> usize {
        self.budget
    }
}

/// RAII lease of staging bytes; returns them to the ledger on drop.
pub struct StagingLease<'a> {
    ledger: &'a StagingLedger,
    len: usize,
}

impl StagingLease<'_> {
    /// Bytes held by this lease.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the lease holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for StagingLease<'_> {
    fn drop(&mut self) {
        let prev = self.ledger.in_use.fetch_sub(self.len, Ordering::Relaxed);
        debug_assert!(prev >= self.len, "staging lease release underflow");
    }
}

/// A [`PackSink`] that streams blocks into remote memory through a
/// [`PioStream`] at consecutive ascending offsets.
pub struct PioSink<'a> {
    stream: &'a mut PioStream,
    clock: &'a mut Clock,
    offset: usize,
    bytes: usize,
    batching: bool,
}

impl<'a> PioSink<'a> {
    /// Stream into `stream` starting at byte `offset` of the mapped
    /// segment.
    pub fn new(stream: &'a mut PioStream, clock: &'a mut Clock, offset: usize) -> Self {
        PioSink {
            stream,
            clock,
            offset,
            bytes: 0,
            batching: false,
        }
    }

    /// Enable write-combining store batching: small blocks are staged in
    /// the stream's WC window and flushed as full aligned transactions.
    /// Callers that enable this must call [`PioSink::finish`] before
    /// issuing a barrier, or the tail of the stream stays buffered.
    pub fn with_batching(mut self, batching: bool) -> Self {
        self.batching = batching;
        self
    }

    /// Bytes written so far.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Flush any store still staged in the write-combining window.
    pub fn finish(&mut self) -> Result<(), SciError> {
        self.stream.flush_wc(self.clock)
    }
}

impl PackSink for PioSink<'_> {
    type Error = SciError;

    #[inline]
    fn put(&mut self, src: &[u8]) -> Result<(), SciError> {
        if self.batching {
            self.stream.write_batched(self.clock, self.offset, src)?;
        } else {
            self.stream.write(self.clock, self.offset, src)?;
        }
        self.offset += src.len();
        self.bytes += src.len();
        Ok(())
    }
}

/// An [`UnpackSource`] that reads a packed stream sequentially from a
/// shared-memory region (used by the receiver to unpack straight out of
/// the ring buffer).
pub struct RegionSource<'a> {
    mem: &'a SharedMem,
    pos: usize,
    bytes: usize,
}

impl<'a> RegionSource<'a> {
    /// Read from `mem` starting at `offset`.
    pub fn new(mem: &'a SharedMem, offset: usize) -> Self {
        RegionSource {
            mem,
            pos: offset,
            bytes: 0,
        }
    }

    /// Bytes consumed so far.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

impl UnpackSource for RegionSource<'_> {
    type Error = SciError;

    #[inline]
    fn take(&mut self, dst: &mut [u8]) -> Result<(), SciError> {
        self.mem.read(self.pos, dst)?;
        self.pos += dst.len();
        self.bytes += dst.len();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_datatype::{ff, Committed, Datatype};
    use sci_fabric::{Fabric, FabricSpec, NodeId};

    #[test]
    fn pio_sink_streams_ff_blocks_into_remote_memory() {
        let fabric = Fabric::new(FabricSpec::default());
        let seg = fabric.export(NodeId(1), 1 << 16);
        let dt = Datatype::vector(8, 2, 4, &Datatype::double());
        let c = Committed::commit(&dt);
        let src: Vec<u8> = (0..dt.extent()).map(|i| i as u8).collect();

        let mut clock = Clock::new();
        let mut stream = fabric.pio_stream(NodeId(0), &seg, dt.size());
        let stats = {
            let mut sink = PioSink::new(&mut stream, &mut clock, 64);
            ff::pack_ff(&c, 1, &src, 0, 0, usize::MAX, &mut sink).unwrap()
        };
        stream.barrier(&mut clock);
        assert_eq!(stats.bytes, dt.size());

        // The remote segment now holds the packed stream at offset 64.
        let mut sink = ff::VecSink::default();
        ff::pack_ff(&c, 1, &src, 0, 0, usize::MAX, &mut sink).unwrap();
        let mut got = vec![0u8; dt.size()];
        seg.mem().read(64, &mut got).unwrap();
        assert_eq!(got, sink.data);
    }

    #[test]
    fn region_source_unpacks_from_shared_memory() {
        let fabric = Fabric::new(FabricSpec::default());
        let seg = fabric.export(NodeId(0), 4096);
        let dt = Datatype::vector(4, 1, 3, &Datatype::int());
        let c = Committed::commit(&dt);

        // Place a known packed stream in the region.
        let packed: Vec<u8> = (0..dt.size()).map(|i| (i * 3) as u8).collect();
        seg.mem().write(128, &packed).unwrap();

        let mut dst = vec![0u8; dt.extent()];
        let mut source = RegionSource::new(seg.mem(), 128);
        let stats = ff::unpack_ff(&c, 1, &mut dst, 0, 0, usize::MAX, &mut source).unwrap();
        assert_eq!(stats.bytes, dt.size());
        assert_eq!(source.bytes(), dt.size());

        // Cross-check with the generic engine.
        let mut dst2 = vec![0u8; dt.extent()];
        mpi_datatype::tree::unpack(&dt, 1, &mut dst2, 0, &packed);
        assert_eq!(dst, dst2);
    }

    #[test]
    fn batched_pio_sink_places_identical_bytes_for_less_time() {
        // Fine-grained type: 16 B blocks, gap as large as the block —
        // exactly the shape WC batching exists for.
        let dt = Datatype::vector(64, 2, 4, &Datatype::double());
        let c = Committed::commit(&dt);
        let src: Vec<u8> = (0..dt.extent()).map(|i| (i * 7) as u8).collect();

        let run = |batching: bool| {
            let fabric = Fabric::new(FabricSpec::default());
            let seg = fabric.export(NodeId(1), 1 << 16);
            let mut clock = Clock::new();
            let mut stream = fabric.pio_stream(NodeId(0), &seg, dt.size());
            {
                let mut sink = PioSink::new(&mut stream, &mut clock, 0).with_batching(batching);
                ff::pack_ff(&c, 1, &src, 0, 0, usize::MAX, &mut sink).unwrap();
                sink.finish().unwrap();
            }
            stream.barrier(&mut clock);
            let mut got = vec![0u8; dt.size()];
            seg.mem().read(0, &mut got).unwrap();
            (got, clock.now())
        };

        let (plain_bytes, plain_time) = run(false);
        let (batched_bytes, batched_time) = run(true);
        assert_eq!(plain_bytes, batched_bytes);
        assert!(
            batched_time < plain_time,
            "batched {batched_time:?} should beat unbatched {plain_time:?}"
        );
    }

    #[test]
    fn staging_ledger_leases_and_releases() {
        let ledger = StagingLedger::new(100);
        let a = ledger.try_acquire(60).expect("60 of 100 fits");
        assert_eq!(ledger.in_use(), 60);
        assert!(ledger.try_acquire(50).is_none(), "110 > budget");
        let b = ledger.try_acquire(40).expect("exactly fills the budget");
        assert_eq!(b.len(), 40);
        assert!(!b.is_empty());
        assert_eq!(ledger.in_use(), 100);
        drop(a);
        assert_eq!(ledger.in_use(), 40);
        drop(b);
        assert_eq!(ledger.in_use(), 0);
        assert_eq!(ledger.budget(), 100);
    }

    #[test]
    fn pio_sink_out_of_bounds_is_error() {
        let fabric = Fabric::new(FabricSpec::default());
        let seg = fabric.export(NodeId(1), 16);
        let dt = Datatype::contiguous(8, &Datatype::double());
        let c = Committed::commit(&dt);
        let src = vec![0u8; 64];
        let mut clock = Clock::new();
        let mut stream = fabric.pio_stream(NodeId(0), &seg, 64);
        let mut sink = PioSink::new(&mut stream, &mut clock, 0);
        assert!(ff::pack_ff(&c, 1, &src, 0, 0, usize::MAX, &mut sink).is_err());
    }
}
