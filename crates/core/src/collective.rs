//! Collective operations built on the point-to-point layer.
//!
//! SCI-MPICH inherits MPICH's collectives, which are implemented on top of
//! point-to-point messages. The reproduction provides the ones the
//! examples and benchmarks need — binomial-tree broadcast and reduce,
//! gather, and all-reduce — each paying realistic per-hop message costs.
//!
//! Because every byte a collective moves rides [`Rank::send`]/[`Rank::recv`],
//! the data-integrity machinery ([`crate::IntegrityMode`], see
//! `docs/INTEGRITY.md`) covers collectives with no code of their own: under
//! `EndToEnd` each hop of the tree is individually checksummed and
//! retransmitted, so a corrupted link taints at most one edge, not the
//! whole reduction.
//!
//! The same transparency applies to eager-credit flow control (see
//! `docs/BACKPRESSURE.md`): each tree edge consumes and returns credits
//! like any send. Collectives do, however, run as *reliable sections* —
//! a lossy [`crate::OverloadPolicy`] (`Shed` drops the message, `Error`
//! aborts mid-tree) applied to an internal edge would wedge peers that
//! are already committed to the collective, so inside a collective
//! credit exhaustion always falls back to `Stall`.
//!
//! Every collective returns `Result<_, ScimpiError>`: a dead partner
//! surfaces as [`ScimpiError::PeerDead`] at the first failed tree edge
//! instead of hanging the collective. Under the default
//! [`crate::ErrorMode::ErrorsAreFatal`] the error aborts the run before the
//! `Err` is ever observed, so infallible call sites can simply `.unwrap()`
//! (or use [`crate::Done::done`]).

use crate::error::ScimpiError;
use crate::mailbox::{Source, TagSel};
use crate::p2p::RecvBuf;
use crate::runtime::Rank;
use crate::SendData;
use mpi_datatype::typed;
use simclock::SimTime;

/// Internal tag space for collectives (kept out of user tag space).
const COLL_TAG: i32 = i32::MIN + 7;

/// Record a collective-operation span (a single relaxed load when
/// recording is off). Spans feed the per-family latency histograms of the
/// `PROFILE` report as well as the Chrome trace; they never touch the
/// clock, so enabling them cannot perturb virtual time.
fn coll_span(rank: &Rank, name: &'static str, start: SimTime, bytes: usize) {
    if obs::is_enabled() {
        obs::span(
            name,
            start,
            rank.clock.now(),
            vec![("bytes", obs::Arg::U64(bytes as u64))],
        );
    }
}

/// Reduction operators for the numeric collectives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReduceOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise maximum.
    Max,
    /// Element-wise minimum.
    Min,
}

impl ReduceOp {
    fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }
}

impl Rank {
    /// Broadcast `buf` from `root` to all ranks (binomial tree).
    pub fn bcast(&mut self, root: usize, buf: &mut [u8]) -> Result<(), ScimpiError> {
        assert!(root < self.size(), "bcast root out of range");
        let _reliable = crate::p2p::reliable_section();
        let size = self.size();
        if size == 1 {
            return Ok(());
        }
        let start = self.clock.now();
        let vrank = (self.rank() + size - root) % size;
        // Receive phase.
        let mut mask = 1usize;
        while mask < size {
            if vrank & mask != 0 {
                let src = (vrank - mask + root) % size;
                self.recv(Source::Rank(src), TagSel::Value(COLL_TAG), buf)?;
                break;
            }
            mask <<= 1;
        }
        // Send phase.
        mask >>= 1;
        while mask > 0 {
            if vrank + mask < size {
                let dst = (vrank + mask + root) % size;
                let copy = buf.to_vec();
                self.send(dst, COLL_TAG, &copy)?;
            }
            mask >>= 1;
        }
        coll_span(self, "coll.bcast", start, buf.len());
        Ok(())
    }

    /// Reduce `values` element-wise onto `root` (binomial tree). Returns
    /// the result on `root`, `None` elsewhere.
    pub fn reduce_f64(
        &mut self,
        root: usize,
        values: &[f64],
        op: ReduceOp,
    ) -> Result<Option<Vec<f64>>, ScimpiError> {
        assert!(root < self.size(), "reduce root out of range");
        let _reliable = crate::p2p::reliable_section();
        let size = self.size();
        let start = self.clock.now();
        let vrank = (self.rank() + size - root) % size;
        let mut acc = values.to_vec();
        let mut mask = 1usize;
        while mask < size {
            if vrank & mask != 0 {
                let dst = (vrank - mask + root) % size;
                let bytes = typed::to_bytes(&acc);
                self.send(dst, COLL_TAG, &bytes)?;
                coll_span(self, "coll.reduce", start, values.len() * 8);
                return Ok(None);
            }
            if vrank + mask < size {
                let src = (vrank + mask + root) % size;
                let mut bytes = vec![0u8; acc.len() * 8];
                self.recv(Source::Rank(src), TagSel::Value(COLL_TAG), &mut bytes)?;
                let other: Vec<f64> = typed::from_bytes(&bytes);
                for (a, b) in acc.iter_mut().zip(other) {
                    *a = op.apply(*a, b);
                }
            }
            mask <<= 1;
        }
        coll_span(self, "coll.reduce", start, values.len() * 8);
        Ok(if self.rank() == root { Some(acc) } else { None })
    }

    /// All-reduce: reduce onto rank 0, then broadcast.
    pub fn allreduce_f64(&mut self, values: &[f64], op: ReduceOp) -> Result<Vec<f64>, ScimpiError> {
        let start = self.clock.now();
        let reduced = self.reduce_f64(0, values, op)?;
        let mut bytes = match reduced {
            Some(v) => typed::to_bytes(&v),
            None => vec![0u8; values.len() * 8],
        };
        self.bcast(0, &mut bytes)?;
        coll_span(self, "coll.allreduce", start, values.len() * 8);
        Ok(typed::from_bytes(&bytes))
    }

    /// The sender side of [`Rank::gatherv`]'s two-message protocol.
    fn gather_send(&mut self, root: usize, mine: &[u8]) -> Result<(), ScimpiError> {
        let _reliable = crate::p2p::reliable_section();
        let len = (mine.len() as u64).to_le_bytes();
        self.send(root, COLL_TAG + 1, &len)?;
        if !mine.is_empty() {
            self.send(root, COLL_TAG, mine)?;
        }
        Ok(())
    }

    /// Gather with variable sizes (`MPI_Gatherv`-style).
    pub fn gatherv(
        &mut self,
        root: usize,
        mine: &[u8],
    ) -> Result<Option<Vec<Vec<u8>>>, ScimpiError> {
        assert!(root < self.size(), "gather root out of range");
        let _reliable = crate::p2p::reliable_section();
        let start = self.clock.now();
        if self.rank() != root {
            self.gather_send(root, mine)?;
            coll_span(self, "coll.gatherv", start, mine.len());
            return Ok(None);
        }
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); self.size()];
        out[root] = mine.to_vec();
        // Indexed loop: the body needs `&mut self` for recv, which rules
        // out iterating `out` directly.
        #[allow(clippy::needless_range_loop)]
        for src in 0..self.size() {
            if src == root {
                continue;
            }
            let mut len_buf = [0u8; 8];
            self.recv(Source::Rank(src), TagSel::Value(COLL_TAG + 1), &mut len_buf)?;
            let len = u64::from_le_bytes(len_buf) as usize;
            let mut data = vec![0u8; len];
            if len > 0 {
                self.recv(Source::Rank(src), TagSel::Value(COLL_TAG), &mut data)?;
            }
            out[src] = data;
        }
        coll_span(self, "coll.gatherv", start, mine.len());
        Ok(Some(out))
    }

    /// All-gather: every rank contributes `mine` and receives every
    /// rank's contribution (gatherv to rank 0 + broadcast of the
    /// concatenation — MPICH's small-message strategy).
    pub fn allgather(&mut self, mine: &[u8]) -> Result<Vec<Vec<u8>>, ScimpiError> {
        let gathered = self.gatherv(0, mine)?;
        // Serialise as length-prefixed stream and broadcast.
        let mut stream = Vec::new();
        if let Some(parts) = gathered {
            for p in &parts {
                stream.extend_from_slice(&(p.len() as u64).to_le_bytes());
                stream.extend_from_slice(p);
            }
        }
        let mut len_buf = (stream.len() as u64).to_le_bytes();
        self.bcast(0, &mut len_buf)?;
        let total = u64::from_le_bytes(len_buf) as usize;
        stream.resize(total, 0);
        self.bcast(0, &mut stream)?;
        // Deserialise.
        let mut out = Vec::with_capacity(self.size());
        let mut at = 0usize;
        for _ in 0..self.size() {
            let len = u64::from_le_bytes(stream[at..at + 8].try_into().expect("8 bytes")) as usize;
            at += 8;
            out.push(stream[at..at + len].to_vec());
            at += len;
        }
        Ok(out)
    }

    /// Inclusive prefix sum (`MPI_Scan` with `MPI_SUM`): rank k receives
    /// the element-wise sum of the values of ranks `0..=k`.
    pub fn scan_sum_f64(&mut self, values: &[f64]) -> Result<Vec<f64>, ScimpiError> {
        let _reliable = crate::p2p::reliable_section();
        let mut acc = values.to_vec();
        if self.rank() > 0 {
            let mut bytes = vec![0u8; values.len() * 8];
            self.recv(
                Source::Rank(self.rank() - 1),
                TagSel::Value(COLL_TAG + 3),
                &mut bytes,
            )?;
            let prev: Vec<f64> = typed::from_bytes(&bytes);
            for (a, p) in acc.iter_mut().zip(prev) {
                *a += p;
            }
        }
        if self.rank() + 1 < self.size() {
            let bytes = typed::to_bytes(&acc);
            self.send(self.rank() + 1, COLL_TAG + 3, &bytes)?;
        }
        Ok(acc)
    }

    /// Exchange equal-size byte blocks with every rank (`MPI_Alltoall`,
    /// pairwise-exchange algorithm). The exchange aborts at the first
    /// failed step: a dead partner surfaces as
    /// [`ScimpiError::PeerDead`] instead of hanging the collective.
    pub fn alltoall(&mut self, sendblocks: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, ScimpiError> {
        assert_eq!(sendblocks.len(), self.size(), "one block per rank");
        let _reliable = crate::p2p::reliable_section();
        let start = self.clock.now();
        let total: usize = sendblocks.iter().map(Vec::len).sum();
        let me = self.rank();
        let n = self.size();
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); n];
        out[me] = sendblocks[me].clone();
        for step in 1..n {
            let dst = (me + step) % n;
            let src = (me + n - step) % n;
            let mut buf = vec![0u8; sendblocks[dst].len().max(1 << 20)];
            let st = self.sendrecv(
                dst,
                COLL_TAG + 2,
                SendData::Bytes(&sendblocks[dst]),
                Source::Rank(src),
                TagSel::Value(COLL_TAG + 2),
                RecvBuf::Bytes(&mut buf),
            )?;
            buf.truncate(st.len);
            out[src] = buf;
        }
        coll_span(self, "coll.alltoall", start, total);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{run, ClusterSpec};

    #[test]
    fn bcast_from_every_root() {
        for root in 0..5 {
            let out = run(ClusterSpec::ringlet(5), move |r| {
                let mut buf = if r.rank() == root {
                    vec![0xAB; 1000]
                } else {
                    vec![0; 1000]
                };
                r.bcast(root, &mut buf).unwrap();
                buf
            });
            for v in out {
                assert!(v.iter().all(|&b| b == 0xAB), "root {root}");
            }
        }
    }

    #[test]
    fn reduce_sums_across_ranks() {
        let out = run(ClusterSpec::ringlet(6), |r| {
            let values = vec![r.rank() as f64, 1.0];
            r.reduce_f64(0, &values, ReduceOp::Sum).unwrap()
        });
        assert_eq!(out[0], Some(vec![15.0, 6.0]));
        assert!(out[1..].iter().all(Option::is_none));
    }

    #[test]
    fn allreduce_max_and_min() {
        let out = run(ClusterSpec::ringlet(4), |r| {
            let v = [r.rank() as f64 * 2.0];
            let mx = r.allreduce_f64(&v, ReduceOp::Max).unwrap();
            let mn = r.allreduce_f64(&v, ReduceOp::Min).unwrap();
            (mx[0], mn[0])
        });
        assert!(out.iter().all(|&(mx, mn)| mx == 6.0 && mn == 0.0));
    }

    #[test]
    fn gatherv_collects_ragged_data() {
        let out = run(ClusterSpec::ringlet(4), |r| {
            let mine = vec![r.rank() as u8; r.rank()]; // rank k sends k bytes
            r.gatherv(0, &mine).unwrap()
        });
        let gathered = out[0].as_ref().unwrap();
        for (k, v) in gathered.iter().enumerate() {
            assert_eq!(v.len(), k);
            assert!(v.iter().all(|&b| b == k as u8));
        }
    }

    #[test]
    fn alltoall_exchanges_blocks() {
        let out = run(ClusterSpec::ringlet(3), |r| {
            let blocks: Vec<Vec<u8>> = (0..r.size())
                .map(|d| vec![(r.rank() * 10 + d) as u8; 64])
                .collect();
            r.alltoall(&blocks).unwrap()
        });
        for (me, blocks) in out.iter().enumerate() {
            for (src, b) in blocks.iter().enumerate() {
                assert_eq!(b.len(), 64);
                assert!(b.iter().all(|&x| x == (src * 10 + me) as u8));
            }
        }
    }

    #[test]
    fn allgather_collects_everything_everywhere() {
        let out = run(ClusterSpec::ringlet(4), |r| {
            let mine = vec![r.rank() as u8 + 1; r.rank() + 1]; // ragged
            r.allgather(&mine).unwrap()
        });
        for per_rank in out {
            assert_eq!(per_rank.len(), 4);
            for (k, v) in per_rank.iter().enumerate() {
                assert_eq!(v.len(), k + 1);
                assert!(v.iter().all(|&b| b == k as u8 + 1));
            }
        }
    }

    #[test]
    fn scan_gives_prefix_sums() {
        let out = run(ClusterSpec::ringlet(5), |r| {
            r.scan_sum_f64(&[r.rank() as f64, 1.0]).unwrap()
        });
        for (k, v) in out.iter().enumerate() {
            let expect0: f64 = (0..=k).map(|i| i as f64).sum();
            assert_eq!(v[0], expect0, "rank {k}");
            assert_eq!(v[1], (k + 1) as f64);
        }
    }

    #[test]
    fn single_rank_collectives_are_identity() {
        let out = run(ClusterSpec::ringlet(1), |r| {
            let mut b = vec![9u8; 10];
            r.bcast(0, &mut b).unwrap();
            let red = r.reduce_f64(0, &[5.0], ReduceOp::Sum).unwrap().unwrap();
            let all = r.allreduce_f64(&[3.0], ReduceOp::Max).unwrap();
            (b, red, all)
        });
        assert_eq!(out[0].0, vec![9u8; 10]);
        assert_eq!(out[0].1, vec![5.0]);
        assert_eq!(out[0].2, vec![3.0]);
    }

    #[test]
    fn bcast_time_scales_logarithmically() {
        let time_for = |n: usize| {
            let out = run(ClusterSpec::ringlet(n), |r| {
                let mut b = vec![1u8; 4096];
                r.bcast(0, &mut b).unwrap();
                r.barrier();
                r.now()
            });
            out[0]
        };
        let t2 = time_for(2);
        let t8 = time_for(8);
        // 8 ranks = 3 tree levels; must be well under 7x the 2-rank time.
        assert!(t8.as_ps() < 5 * t2.as_ps(), "t2={t2:?} t8={t8:?}");
    }
}
