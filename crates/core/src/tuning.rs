//! Protocol tuning parameters of the SCI-MPICH reproduction.
//!
//! These correspond to the device-configuration knobs of SCI-MPICH's
//! `ch_smi` device: protocol switch points, ring-buffer geometry, and the
//! CPU cost constants of the two packing engines. The defaults are
//! calibrated so the benchmark harnesses reproduce the *shapes* of the
//! paper's figures (see EXPERIMENTS.md).

use crate::error::ScimpiError;
use mpi_datatype::Committed;
use simclock::SimDuration;

/// Which engine a non-contiguous transfer should use.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum NoncontigMode {
    /// Pack into a local buffer, send contiguously, unpack at the receiver
    /// (stock-MPICH behaviour; Figure 4 top).
    Generic,
    /// `direct_pack_ff`: pack straight into the remote ring buffer
    /// (Figure 4 bottom).
    DirectPackFf,
    /// `DirectPackFf` when the committed type's smallest block is at least
    /// `Tuning::ff_min_block`, `Generic` otherwise (the production
    /// default; footnote 1 of §3.4).
    #[default]
    Auto,
}

/// The transfer path the adaptive selector picks for one typed message,
/// using the committed layout's density metrics (measured at commit time)
/// instead of a single static block-size threshold.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PackPath {
    /// `direct_pack_ff` straight into remote memory (no staging copy).
    DirectFf,
    /// Pack into a staged local buffer, transfer contiguously, unpack at
    /// the destination (the generic engine's shape).
    Staged,
    /// Hand the scattered blocks to the DMA engine as a scatter/gather
    /// descriptor list (one-sided shared windows only).
    Dma,
}

/// Data-integrity checking level for every transfer path.
///
/// See `docs/INTEGRITY.md` for the full mode matrix. In short:
///
/// * `Off` — trust the fabric. Silent faults (if injected) land in user
///   buffers unnoticed; zero overhead. The default, and bit-identical to
///   the pre-integrity protocol.
/// * `SequenceCheck` — bracket PIO bursts with the SISCI-style
///   `start_sequence`/`check_sequence` guard: corruption on checked paths
///   is *detected* and surfaces as [`crate::ScimpiError::DataCorruption`],
///   but nothing is repaired (and paths that ride plain messages — the
///   one-sided emulation packets — stay unchecked).
/// * `EndToEnd` — CRC32 framing on every eager payload, rendezvous chunk
///   and emulation packet, epoch-level verification of direct one-sided
///   transfers at synchronisation points, and bounded
///   retransmit-on-mismatch. Delivers bit-identical payloads or errors
///   out after `max_retransmits`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IntegrityMode {
    /// No checking: corruption sails through silently.
    #[default]
    Off,
    /// Detect-and-error via sequence checks on PIO paths.
    SequenceCheck,
    /// Checksummed framing with bounded retransmission everywhere.
    EndToEnd,
}

/// What a sender does when its per-pair eager credit budget
/// ([`Tuning::eager_credits_bytes`] / [`Tuning::eager_credit_slots`]) is
/// exhausted. See `docs/BACKPRESSURE.md` for the full lifecycle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Block on a deterministic virtual-time `backpressure` wait until
    /// the receiver returns enough credits (matched messages grant them
    /// back in FIFO order). The default — lossless flow control, exactly
    /// the behaviour of a finite pre-posted eager buffer pool.
    #[default]
    Stall,
    /// Downgrade the message to the rendezvous protocol, which carries
    /// its own backpressure (CTS handshake plus bounded ring slots) and
    /// consumes no eager credits. Lossless, never blocks at post time.
    Degrade,
    /// Drop the message entirely (load shedding): the send completes as
    /// a no-op and the payload never reaches the receiver. Receivers
    /// must reconcile delivered counts out of band.
    Shed,
    /// Refuse the send with [`ScimpiError::ResourceExhausted`] through
    /// the configured [`crate::ErrorMode`].
    Error,
}

/// Which schedule the collective engine runs a given operation with.
///
/// `Auto` (the default) selects per call from message size, member
/// count, and fabric topology (ring schedules prefer ringlet locality);
/// the forced variants pin every collective to one schedule family for
/// ablation. Schedules that make no sense for a particular operation
/// alias to the closest meaningful one — the full matrix is documented
/// in `docs/COLLECTIVES.md`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CollectiveAlgo {
    /// Size/count/topology-driven selection per operation.
    #[default]
    Auto,
    /// The legacy linear/binomial reference schedules (bit-identical to
    /// the pre-engine collectives; the differential baseline).
    Naive,
    /// Ring schedules: pipelined neighbour exchanges, bandwidth-optimal
    /// for large payloads on ringlet topologies.
    Ring,
    /// Recursive-doubling schedules: log2 rounds of pairwise exchange,
    /// latency-optimal for small payloads.
    RecursiveDoubling,
    /// Binomial-tree schedules: rooted log2 fan-out/fan-in.
    Binomial,
    /// Bruck schedules: log2 rounds with rotated indexing, strongest for
    /// small all-to-all/allgather payloads.
    Bruck,
}

/// Protocol and cost-model knobs.
#[derive(Clone, Debug, PartialEq)]
pub struct Tuning {
    /// Messages up to this size travel in the control packet itself
    /// ("short" protocol).
    pub short_threshold: usize,
    /// Messages up to this size are sent eagerly into the receiver's
    /// pre-posted buffer space; larger ones use rendezvous. `0`
    /// disables the eager path entirely (the rendezvous-only ablation).
    pub eager_threshold: usize,
    /// Rendezvous ring-buffer chunk size. Kept at or below the L2 capacity
    /// to avoid cache-line thrashing with `direct_pack_ff` (§3.3.2).
    pub rendezvous_chunk: usize,
    /// Ring-buffer slots per sender/receiver pair (in-flight chunks).
    pub ring_slots: usize,
    /// Non-contiguous engine selection.
    pub noncontig: NoncontigMode,
    /// Minimum basic-block size for which `Auto` picks `direct_pack_ff`.
    /// The paper sets this to 0 to compare the engines across the whole
    /// sweep; the default 16 avoids the 8-byte-granularity regime where
    /// the generic engine wins inter-node.
    pub ff_min_block: usize,
    /// CPU overhead per basic block in the generic engine (recursive tree
    /// traversal per block).
    pub generic_visit_cost: SimDuration,
    /// CPU overhead per basic block in `direct_pack_ff` (simple stack
    /// operations).
    pub ff_block_cost: SimDuration,
    /// Cost to assemble and send one control packet (RTS/CTS/interrupt
    /// payloads).
    pub ctrl_send_cost: SimDuration,
    /// Cost to parse one received control packet.
    pub ctrl_recv_cost: SimDuration,
    /// Per-tree-level cost of the barrier used by collectives and fences.
    pub barrier_hop: SimDuration,
    /// `MPI_Get` requests at or above this size are converted to a
    /// *remote-put* executed by the target (§4.2); below it the origin
    /// reads directly (reads are slow but low-latency for small data).
    pub get_remote_put_threshold: usize,
    /// First virtual-time timeout window for protocol waits (rendezvous
    /// handshake, ring slots, one-sided control). Only charged when the
    /// peer turns out dead — a healthy-but-slow peer costs nothing extra.
    pub ctrl_timeout: SimDuration,
    /// Multiplier applied to the timeout window after each expiry
    /// (exponential backoff).
    pub timeout_backoff: f64,
    /// Timeout windows to run through before declaring a peer dead.
    pub max_protocol_retries: u32,
    /// Cost of one connection-monitor probe after a timeout window
    /// expires (small remote read round trip).
    pub probe_cost: SimDuration,
    /// Consecutive direct-path failures on a one-sided target before the
    /// window falls back to the emulated control-message path for it.
    pub osc_fallback_threshold: u32,
    /// Data-integrity checking level (see [`IntegrityMode`]).
    pub integrity_mode: IntegrityMode,
    /// Bounded retransmission budget per protocol unit (eager message,
    /// rendezvous chunk, one-sided epoch region) in `EndToEnd` mode.
    /// Exhausting it surfaces [`crate::ScimpiError::DataCorruption`].
    pub max_retransmits: u32,
    /// CPU cost per byte of computing/verifying a CRC32 (software
    /// checksumming on the P-III: roughly 300 MiB/s).
    pub crc_cost_per_byte: SimDuration,
    /// Use the commit-time layout cache: typed transfers resolve the
    /// flattened layout by signature lookup instead of re-flattening the
    /// type tree per transfer (see [`Tuning::layout_resolve_cost`]).
    pub layout_cache: bool,
    /// Route `direct_pack_ff` leaf stores through the write-combining
    /// store batcher (`PioStream::write_batched`) instead of issuing one
    /// PIO store per leaf block.
    pub wc_batching: bool,
    /// Cost of one layout-cache lookup (hash of the type signature plus a
    /// table probe) when [`Tuning::layout_cache`] is on.
    pub layout_lookup_cost: SimDuration,
    /// Cost per flattening operation (tree-node visit or unrolled leaf
    /// copy) to re-derive the layout when the cache is off. Multiplied by
    /// `Committed::flatten_ops`.
    pub layout_flatten_op_cost: SimDuration,
    /// Smallest typed one-sided transfer the adaptive selector will route
    /// to DMA (descriptor posting is expensive; below this PIO always
    /// wins).
    pub dma_min_total: usize,
    /// Largest mean block length for which DMA scatter/gather is
    /// considered: long contiguous runs stream faster through PIO than
    /// through the DMA engine, so only fine-grained layouts convert.
    pub dma_max_block: usize,
    /// CPU cost charged on the posting rank's clock when a nonblocking
    /// request (`isend`/`irecv`/`iput`/`iget`/`ialltoall`) is posted:
    /// allocating the request record and kicking the progress engine.
    /// Defaults to zero so `isend + wait` is bit-identical to `send`;
    /// raise it to model descriptor-queue overhead.
    pub request_post_cost: SimDuration,
    /// CPU cost charged each time `Rank::test` polls an incomplete
    /// request (the completion check against the link timeline).
    pub progress_poll_cost: SimDuration,
    /// Per-hop propagation cost of the revocation gossip front: after a
    /// rank revokes the communicator at virtual time `t`, a rank at
    /// binomial-tree depth `d` from the revoker observes the revocation
    /// at `t + d * revoke_hop_cost` (deterministic virtual-time gossip).
    pub revoke_hop_cost: SimDuration,
    /// Hypercube sweeps the fault-tolerant agreement collective runs over
    /// the member set. Each sweep is a full log2-round exchange of dead
    /// bitmaps; `k` sweeps tolerate `k - 1` additional deaths striking
    /// mid-agreement while still converging all survivors to the same
    /// verdict.
    pub agreement_sweeps: u32,
    /// Per sender/receiver pair eager-buffer byte budget: the sum of
    /// eager payload bytes a sender may have posted but not yet credited
    /// back by the receiver. Models the finite pre-posted receive buffer
    /// space of the adapter.
    pub eager_credits_bytes: usize,
    /// Per sender/receiver pair envelope-slot budget: outstanding eager
    /// messages (of any size, including short protocol) a sender may
    /// have in flight towards one receiver.
    pub eager_credit_slots: usize,
    /// What a sender does when the pair's eager credits run out.
    pub overload_policy: OverloadPolicy,
    /// Per-rank byte budget for one-sided window and `alloc_mem`
    /// registrations; exceeding it surfaces
    /// [`ScimpiError::ResourceExhausted`]. `usize::MAX` = ungoverned.
    pub window_budget_bytes: usize,
    /// Per-rank byte budget for staged pack buffers. When a transfer the
    /// selector would stage (or DMA) does not fit the remaining budget,
    /// the path degrades Dma → Staged → DirectFf instead of allocating.
    /// `usize::MAX` = ungoverned.
    pub staging_budget_bytes: usize,
    /// Cap on one rank's simultaneously pending nonblocking requests;
    /// posting past it surfaces [`ScimpiError::ResourceExhausted`].
    /// `usize::MAX` = ungoverned.
    pub max_inflight_requests: usize,
    /// Collective schedule selection (see [`CollectiveAlgo`]).
    pub collective_algo: CollectiveAlgo,
    /// `Auto` treats collectives at or below this payload size as
    /// latency-bound: allreduce/allgather pick recursive-doubling or
    /// Bruck instead of the bandwidth-optimal ring. The default sits at
    /// the measured crossover of the `coll_sweep` bench (ring overtakes
    /// the log-round schedules between 1 kiB and 8 kiB at 8 ranks).
    pub coll_small_max: usize,
    /// Smallest bcast payload for which `Auto` picks the one-sided
    /// pipelined ring over the binomial tree (only on ringlet
    /// topologies, where neighbour puts ride the hardware ring).
    pub coll_ring_min: usize,
    /// Largest equal-size alltoall block for which `Auto` picks the
    /// Bruck schedule over pairwise exchange.
    pub coll_bruck_max: usize,
    /// Pipeline chunk size for the one-sided ring bcast (each chunk is
    /// one window put forwarded down the ring).
    pub coll_ring_chunk: usize,
}

impl Default for Tuning {
    fn default() -> Self {
        Tuning {
            short_threshold: 128,
            eager_threshold: 16 * 1024,
            rendezvous_chunk: 64 * 1024,
            ring_slots: 2,
            noncontig: NoncontigMode::Auto,
            ff_min_block: 16,
            generic_visit_cost: SimDuration::from_ns(300),
            ff_block_cost: SimDuration::from_ns(30),
            ctrl_send_cost: SimDuration::from_ns(900),
            ctrl_recv_cost: SimDuration::from_ns(500),
            barrier_hop: SimDuration::from_us_f64(1.6),
            get_remote_put_threshold: 512,
            ctrl_timeout: SimDuration::from_us(200),
            timeout_backoff: 2.0,
            max_protocol_retries: 4,
            probe_cost: SimDuration::from_us(4),
            osc_fallback_threshold: 2,
            integrity_mode: IntegrityMode::Off,
            max_retransmits: 4,
            crc_cost_per_byte: SimDuration::from_ps(3200),
            layout_cache: true,
            wc_batching: true,
            layout_lookup_cost: SimDuration::from_ns(40),
            layout_flatten_op_cost: SimDuration::from_ns(25),
            dma_min_total: 128 * 1024,
            dma_max_block: 256,
            request_post_cost: SimDuration::ZERO,
            progress_poll_cost: SimDuration::from_ns(50),
            revoke_hop_cost: SimDuration::from_us(5),
            agreement_sweeps: 3,
            eager_credits_bytes: 4 * 1024 * 1024,
            eager_credit_slots: 256,
            overload_policy: OverloadPolicy::Stall,
            window_budget_bytes: usize::MAX,
            staging_budget_bytes: usize::MAX,
            max_inflight_requests: usize::MAX,
            collective_algo: CollectiveAlgo::Auto,
            coll_small_max: 4 * 1024,
            coll_ring_min: 256 * 1024,
            coll_bruck_max: 512,
            coll_ring_chunk: 32 * 1024,
        }
    }
}

impl Tuning {
    /// The configuration used for the paper's Figure 7 comparison:
    /// `ff_min_block = 0` so `direct_pack_ff` is used for every block size.
    pub fn full_ff_comparison(mut self) -> Self {
        self.noncontig = NoncontigMode::DirectPackFf;
        self.ff_min_block = 0;
        self
    }

    /// Force the generic engine everywhere (the baseline curve).
    pub fn generic_only(mut self) -> Self {
        self.noncontig = NoncontigMode::Generic;
        self
    }

    /// Turn the whole adaptive pack engine off: re-flatten per transfer
    /// and issue unbatched per-leaf stores (the pre-cache behaviour the
    /// ablation benches compare against).
    pub fn without_pack_engine(mut self) -> Self {
        self.layout_cache = false;
        self.wc_batching = false;
        self
    }

    /// Virtual-time cost to resolve `c`'s flattened layout at the start of
    /// one typed transfer: a signature lookup when the layout cache is on,
    /// a full re-flatten (proportional to the memoised
    /// [`Committed::flatten_ops`]) when it is off. A pure function of the
    /// tuning and the committed type, so simulated time stays deterministic
    /// regardless of the process-global cache state.
    pub fn layout_resolve_cost(&self, c: &Committed) -> SimDuration {
        if self.layout_cache {
            self.layout_lookup_cost
        } else {
            self.layout_flatten_op_cost
                .saturating_mul(c.flatten_ops() as u64)
        }
    }

    /// Adaptive path selection for one typed transfer of `total` payload
    /// bytes. Forced modes are honoured (`Generic` → staged buffer,
    /// `DirectPackFf` → direct ff); `Auto` decides from the commit-time
    /// density metrics: fine-grained large transfers convert to DMA when
    /// the caller offers it (`dma_available` — shared windows with aligned
    /// layouts), layouts whose mean block clears `ff_min_block` stream
    /// directly, and the rest stage through a pack buffer.
    pub fn select_path(&self, c: &Committed, total: usize, dma_available: bool) -> PackPath {
        match self.noncontig {
            NoncontigMode::Generic => PackPath::Staged,
            NoncontigMode::DirectPackFf => PackPath::DirectFf,
            NoncontigMode::Auto => {
                let density = c.density();
                if dma_available
                    && total >= self.dma_min_total
                    && density.avg_block_len < self.dma_max_block as f64
                {
                    return PackPath::Dma;
                }
                if density.avg_block_len >= self.ff_min_block as f64 {
                    PackPath::DirectFf
                } else {
                    PackPath::Staged
                }
            }
        }
    }

    /// [`Tuning::select_path`] plus the `path_selected_*` counter tick —
    /// call once per typed operation (not per internal chunk).
    pub fn select_path_recorded(
        &self,
        c: &Committed,
        total: usize,
        dma_available: bool,
    ) -> PackPath {
        let path = self.select_path(c, total, dma_available);
        obs::inc(match path {
            PackPath::DirectFf => obs::Counter::PathSelectedDirectFf,
            PackPath::Staged => obs::Counter::PathSelectedStaged,
            PackPath::Dma => obs::Counter::PathSelectedDma,
        });
        path
    }

    /// Check the cross-field invariants the protocol depends on.
    /// `ClusterSpec::build` (and `run`) call this, so a bad tuning fails
    /// fast at configuration time instead of corrupting a run.
    pub fn validate(&self) -> Result<(), ScimpiError> {
        let fail = |msg: String| Err(ScimpiError::InvalidConfig(msg));
        // `eager_threshold == 0` disables the eager path outright (the
        // rendezvous-only ablation), so the short/eager ordering only
        // binds when eager messages can exist at all.
        if self.eager_threshold > 0 && self.short_threshold >= self.eager_threshold {
            return fail(format!(
                "short_threshold ({}) must be below eager_threshold ({})",
                self.short_threshold, self.eager_threshold
            ));
        }
        if self.ring_slots < 1 {
            return fail("ring_slots must be at least 1".into());
        }
        if self.eager_threshold > self.rendezvous_chunk * self.ring_slots {
            return fail(format!(
                "eager_threshold ({}) must not exceed rendezvous_chunk * ring_slots ({})",
                self.eager_threshold,
                self.rendezvous_chunk * self.ring_slots
            ));
        }
        if self.ff_block_cost >= self.generic_visit_cost {
            return fail(format!(
                "ff_block_cost ({:?}) must be below generic_visit_cost ({:?})",
                self.ff_block_cost, self.generic_visit_cost
            ));
        }
        if self.timeout_backoff < 1.0 {
            return fail(format!(
                "timeout_backoff ({}) must be at least 1.0 or the timeout schedule shrinks",
                self.timeout_backoff
            ));
        }
        if self.eager_credits_bytes < self.eager_threshold {
            return fail(format!(
                "eager_credits_bytes ({}) must cover at least one eager_threshold message ({})",
                self.eager_credits_bytes, self.eager_threshold
            ));
        }
        if self.eager_credit_slots < 1 {
            return fail("eager_credit_slots must be at least 1".into());
        }
        if self.coll_ring_chunk == 0 {
            return fail("coll_ring_chunk must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_thresholds_ordered() {
        let t = Tuning::default();
        assert!(t.short_threshold < t.eager_threshold);
        assert!(t.eager_threshold < t.rendezvous_chunk * t.ring_slots);
        assert!(t.ff_block_cost < t.generic_visit_cost);
        t.validate().expect("the default tuning is valid");
    }

    /// Assert that `mutate` breaks exactly the invariant whose message
    /// contains `needle`.
    fn assert_invalid(mutate: impl FnOnce(&mut Tuning), needle: &str) {
        let mut t = Tuning::default();
        mutate(&mut t);
        match t.validate() {
            Err(ScimpiError::InvalidConfig(msg)) => {
                assert!(msg.contains(needle), "expected '{needle}' in '{msg}'")
            }
            other => panic!("expected InvalidConfig containing '{needle}', got {other:?}"),
        }
    }

    #[test]
    fn validate_rejects_short_at_or_above_eager() {
        assert_invalid(|t| t.short_threshold = t.eager_threshold, "short_threshold");
    }

    #[test]
    fn validate_accepts_disabled_eager_path() {
        let t = Tuning {
            eager_threshold: 0,
            ..Tuning::default()
        };
        t.validate()
            .expect("eager_threshold 0 is the rendezvous-only ablation");
    }

    #[test]
    fn validate_rejects_eager_above_ring_capacity() {
        assert_invalid(
            |t| t.eager_threshold = t.rendezvous_chunk * t.ring_slots + 1,
            "rendezvous_chunk * ring_slots",
        );
    }

    #[test]
    fn validate_rejects_zero_ring_slots() {
        assert_invalid(|t| t.ring_slots = 0, "ring_slots");
    }

    #[test]
    fn validate_rejects_ff_cost_at_or_above_generic() {
        assert_invalid(|t| t.ff_block_cost = t.generic_visit_cost, "ff_block_cost");
    }

    #[test]
    fn validate_rejects_shrinking_backoff() {
        assert_invalid(|t| t.timeout_backoff = 0.5, "timeout_backoff");
    }

    #[test]
    fn validate_rejects_credits_below_one_eager_message() {
        assert_invalid(
            |t| t.eager_credits_bytes = t.eager_threshold - 1,
            "eager_credits_bytes",
        );
    }

    #[test]
    fn validate_rejects_zero_credit_slots() {
        assert_invalid(|t| t.eager_credit_slots = 0, "eager_credit_slots");
    }

    #[test]
    fn validate_rejects_zero_ring_chunk() {
        assert_invalid(|t| t.coll_ring_chunk = 0, "coll_ring_chunk");
    }

    #[test]
    fn default_collective_algo_is_auto() {
        assert_eq!(CollectiveAlgo::default(), CollectiveAlgo::Auto);
        let t = Tuning::default();
        assert_eq!(t.collective_algo, CollectiveAlgo::Auto);
        assert!(t.coll_bruck_max < t.coll_small_max);
        assert!(t.coll_small_max < t.coll_ring_min);
        assert!(t.coll_ring_chunk > 0);
    }

    #[test]
    fn default_overload_policy_is_stall() {
        assert_eq!(OverloadPolicy::default(), OverloadPolicy::Stall);
        assert_eq!(Tuning::default().overload_policy, OverloadPolicy::Stall);
    }

    #[test]
    fn presets_flip_modes() {
        assert_eq!(
            Tuning::default().full_ff_comparison().noncontig,
            NoncontigMode::DirectPackFf
        );
        assert_eq!(Tuning::default().full_ff_comparison().ff_min_block, 0);
        assert_eq!(
            Tuning::default().generic_only().noncontig,
            NoncontigMode::Generic
        );
    }

    #[test]
    fn engine_presets_preserve_pack_engine_flags() {
        // The fig7 harness applies the engine presets on top of the
        // caller's tuning; the pack-engine toggles must survive that.
        let t = Tuning::default().without_pack_engine();
        assert!(!t.layout_cache && !t.wc_batching);
        let ff = t.clone().full_ff_comparison();
        assert!(!ff.layout_cache && !ff.wc_batching);
        let gen = t.generic_only();
        assert!(!gen.layout_cache && !gen.wc_batching);
        assert!(Tuning::default().layout_cache && Tuning::default().wc_batching);
    }

    #[test]
    fn layout_resolve_cost_models_cache() {
        let dt = mpi_datatype::Datatype::vector(64, 2, 4, &mpi_datatype::Datatype::double());
        let c = Committed::commit(&dt);
        let cached = Tuning::default();
        let cold = Tuning::default().without_pack_engine();
        assert_eq!(cached.layout_resolve_cost(&c), cached.layout_lookup_cost);
        assert_eq!(
            cold.layout_resolve_cost(&c),
            cold.layout_flatten_op_cost
                .saturating_mul(c.flatten_ops() as u64)
        );
        assert!(cold.layout_resolve_cost(&c) > cached.layout_resolve_cost(&c));
    }

    #[test]
    fn select_path_honours_forced_modes_and_density() {
        let dt = mpi_datatype::Datatype::vector(8192, 8, 16, &mpi_datatype::Datatype::double());
        let c = Committed::commit(&dt); // 64 B blocks, 512 KiB payload
        let total = c.size();
        let auto = Tuning::default();
        assert_eq!(auto.noncontig, NoncontigMode::Auto);
        // Forced modes win regardless of density.
        assert_eq!(
            auto.clone()
                .full_ff_comparison()
                .select_path(&c, total, true),
            PackPath::DirectFf
        );
        assert_eq!(
            auto.clone().generic_only().select_path(&c, total, true),
            PackPath::Staged
        );
        // Auto: fine-grained large transfer converts to DMA when offered…
        assert_eq!(auto.select_path(&c, total, true), PackPath::Dma);
        // …but not without DMA, where the 64 B blocks clear ff_min_block.
        assert_eq!(auto.select_path(&c, total, false), PackPath::DirectFf);
        // Small transfers never convert.
        assert_eq!(auto.select_path(&c, 4096, true), PackPath::DirectFf);
        // Tiny blocks below ff_min_block stage through a pack buffer.
        let tiny = Committed::commit(&mpi_datatype::Datatype::vector(
            16,
            1,
            2,
            &mpi_datatype::Datatype::double(),
        ));
        assert_eq!(
            auto.select_path(&tiny, tiny.size(), false),
            PackPath::Staged
        );
        // Long contiguous runs stay on PIO even when DMA is offered.
        let coarse = Committed::commit(&mpi_datatype::Datatype::vector(
            1024,
            128,
            256,
            &mpi_datatype::Datatype::double(),
        ));
        assert_eq!(
            auto.select_path(&coarse, coarse.size(), true),
            PackPath::DirectFf
        );
    }
}
