//! Protocol tuning parameters of the SCI-MPICH reproduction.
//!
//! These correspond to the device-configuration knobs of SCI-MPICH's
//! `ch_smi` device: protocol switch points, ring-buffer geometry, and the
//! CPU cost constants of the two packing engines. The defaults are
//! calibrated so the benchmark harnesses reproduce the *shapes* of the
//! paper's figures (see EXPERIMENTS.md).

use simclock::SimDuration;

/// Which engine a non-contiguous transfer should use.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum NoncontigMode {
    /// Pack into a local buffer, send contiguously, unpack at the receiver
    /// (stock-MPICH behaviour; Figure 4 top).
    Generic,
    /// `direct_pack_ff`: pack straight into the remote ring buffer
    /// (Figure 4 bottom).
    DirectPackFf,
    /// `DirectPackFf` when the committed type's smallest block is at least
    /// `Tuning::ff_min_block`, `Generic` otherwise (the production
    /// default; footnote 1 of §3.4).
    #[default]
    Auto,
}

/// Data-integrity checking level for every transfer path.
///
/// See `docs/INTEGRITY.md` for the full mode matrix. In short:
///
/// * `Off` — trust the fabric. Silent faults (if injected) land in user
///   buffers unnoticed; zero overhead. The default, and bit-identical to
///   the pre-integrity protocol.
/// * `SequenceCheck` — bracket PIO bursts with the SISCI-style
///   `start_sequence`/`check_sequence` guard: corruption on checked paths
///   is *detected* and surfaces as [`crate::ScimpiError::DataCorruption`],
///   but nothing is repaired (and paths that ride plain messages — the
///   one-sided emulation packets — stay unchecked).
/// * `EndToEnd` — CRC32 framing on every eager payload, rendezvous chunk
///   and emulation packet, epoch-level verification of direct one-sided
///   transfers at synchronisation points, and bounded
///   retransmit-on-mismatch. Delivers bit-identical payloads or errors
///   out after `max_retransmits`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IntegrityMode {
    /// No checking: corruption sails through silently.
    #[default]
    Off,
    /// Detect-and-error via sequence checks on PIO paths.
    SequenceCheck,
    /// Checksummed framing with bounded retransmission everywhere.
    EndToEnd,
}

/// Protocol and cost-model knobs.
#[derive(Clone, Debug, PartialEq)]
pub struct Tuning {
    /// Messages up to this size travel in the control packet itself
    /// ("short" protocol).
    pub short_threshold: usize,
    /// Messages up to this size are sent eagerly into the receiver's
    /// pre-posted buffer space; larger ones use rendezvous.
    pub eager_threshold: usize,
    /// Rendezvous ring-buffer chunk size. Kept at or below the L2 capacity
    /// to avoid cache-line thrashing with `direct_pack_ff` (§3.3.2).
    pub rendezvous_chunk: usize,
    /// Ring-buffer slots per sender/receiver pair (in-flight chunks).
    pub ring_slots: usize,
    /// Non-contiguous engine selection.
    pub noncontig: NoncontigMode,
    /// Minimum basic-block size for which `Auto` picks `direct_pack_ff`.
    /// The paper sets this to 0 to compare the engines across the whole
    /// sweep; the default 16 avoids the 8-byte-granularity regime where
    /// the generic engine wins inter-node.
    pub ff_min_block: usize,
    /// CPU overhead per basic block in the generic engine (recursive tree
    /// traversal per block).
    pub generic_visit_cost: SimDuration,
    /// CPU overhead per basic block in `direct_pack_ff` (simple stack
    /// operations).
    pub ff_block_cost: SimDuration,
    /// Cost to assemble and send one control packet (RTS/CTS/interrupt
    /// payloads).
    pub ctrl_send_cost: SimDuration,
    /// Cost to parse one received control packet.
    pub ctrl_recv_cost: SimDuration,
    /// Per-tree-level cost of the barrier used by collectives and fences.
    pub barrier_hop: SimDuration,
    /// `MPI_Get` requests at or above this size are converted to a
    /// *remote-put* executed by the target (§4.2); below it the origin
    /// reads directly (reads are slow but low-latency for small data).
    pub get_remote_put_threshold: usize,
    /// First virtual-time timeout window for protocol waits (rendezvous
    /// handshake, ring slots, one-sided control). Only charged when the
    /// peer turns out dead — a healthy-but-slow peer costs nothing extra.
    pub ctrl_timeout: SimDuration,
    /// Multiplier applied to the timeout window after each expiry
    /// (exponential backoff).
    pub timeout_backoff: f64,
    /// Timeout windows to run through before declaring a peer dead.
    pub max_protocol_retries: u32,
    /// Cost of one connection-monitor probe after a timeout window
    /// expires (small remote read round trip).
    pub probe_cost: SimDuration,
    /// Consecutive direct-path failures on a one-sided target before the
    /// window falls back to the emulated control-message path for it.
    pub osc_fallback_threshold: u32,
    /// Data-integrity checking level (see [`IntegrityMode`]).
    pub integrity_mode: IntegrityMode,
    /// Bounded retransmission budget per protocol unit (eager message,
    /// rendezvous chunk, one-sided epoch region) in `EndToEnd` mode.
    /// Exhausting it surfaces [`crate::ScimpiError::DataCorruption`].
    pub max_retransmits: u32,
    /// CPU cost per byte of computing/verifying a CRC32 (software
    /// checksumming on the P-III: roughly 300 MiB/s).
    pub crc_cost_per_byte: SimDuration,
}

impl Default for Tuning {
    fn default() -> Self {
        Tuning {
            short_threshold: 128,
            eager_threshold: 16 * 1024,
            rendezvous_chunk: 64 * 1024,
            ring_slots: 2,
            noncontig: NoncontigMode::Auto,
            ff_min_block: 16,
            generic_visit_cost: SimDuration::from_ns(300),
            ff_block_cost: SimDuration::from_ns(30),
            ctrl_send_cost: SimDuration::from_ns(900),
            ctrl_recv_cost: SimDuration::from_ns(500),
            barrier_hop: SimDuration::from_us_f64(1.6),
            get_remote_put_threshold: 512,
            ctrl_timeout: SimDuration::from_us(200),
            timeout_backoff: 2.0,
            max_protocol_retries: 4,
            probe_cost: SimDuration::from_us(4),
            osc_fallback_threshold: 2,
            integrity_mode: IntegrityMode::Off,
            max_retransmits: 4,
            crc_cost_per_byte: SimDuration::from_ps(3200),
        }
    }
}

impl Tuning {
    /// The configuration used for the paper's Figure 7 comparison:
    /// `ff_min_block = 0` so `direct_pack_ff` is used for every block size.
    pub fn full_ff_comparison(mut self) -> Self {
        self.noncontig = NoncontigMode::DirectPackFf;
        self.ff_min_block = 0;
        self
    }

    /// Force the generic engine everywhere (the baseline curve).
    pub fn generic_only(mut self) -> Self {
        self.noncontig = NoncontigMode::Generic;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_thresholds_ordered() {
        let t = Tuning::default();
        assert!(t.short_threshold < t.eager_threshold);
        assert!(t.eager_threshold < t.rendezvous_chunk * t.ring_slots);
        assert!(t.ff_block_cost < t.generic_visit_cost);
    }

    #[test]
    fn presets_flip_modes() {
        assert_eq!(
            Tuning::default().full_ff_comparison().noncontig,
            NoncontigMode::DirectPackFf
        );
        assert_eq!(Tuning::default().full_ff_comparison().ff_min_block, 0);
        assert_eq!(
            Tuning::default().generic_only().noncontig,
            NoncontigMode::Generic
        );
    }
}
