//! Per-rank mailboxes: the transport under the MPI protocols.
//!
//! Two queues per rank:
//!
//! * the **message queue** holds envelope heads that `recv` matches by
//!   `(source, tag)` with MPI wildcard and non-overtaking semantics;
//! * the **protocol queue** holds handle-addressed control packets
//!   (CTS, rendezvous chunk notifications, one-sided control) that never
//!   interfere with message matching.
//!
//! Every entry carries its virtual *arrival* timestamp; the consumer
//! merges it into its clock, which is how causality and latency propagate
//! between rank threads.

use simclock::SimTime;
use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};

/// MPI message tag.
pub type Tag = i32;

/// Source selector for receives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Source {
    /// Match any source (`MPI_ANY_SOURCE`).
    Any,
    /// Match only this rank.
    Rank(usize),
}

/// Tag selector for receives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TagSel {
    /// Match any tag (`MPI_ANY_TAG`).
    Any,
    /// Match only this tag.
    Value(Tag),
}

/// An envelope in the matching queue.
#[derive(Debug)]
pub struct Envelope {
    /// Sending rank.
    pub src: usize,
    /// Message tag.
    pub tag: Tag,
    /// Virtual arrival time of the (first packet of the) message.
    pub arrival: SimTime,
    /// Protocol-specific head.
    pub head: Head,
}

/// The protocol head of a matched message.
#[derive(Debug)]
pub enum Head {
    /// Short/eager: the packed payload travelled with the envelope.
    Eager {
        /// Packed payload bytes.
        data: Vec<u8>,
        /// Basic blocks the *sender* packed (receiver-side unpack pays a
        /// matching per-block cost).
        blocks: usize,
        /// CRC32 of `data` as computed by the sender, when the integrity
        /// mode frames payloads (`EndToEnd`); `None` otherwise.
        crc: Option<u32>,
    },
    /// Rendezvous request-to-send; data follows through the ring buffer.
    Rts {
        /// Total payload bytes.
        size: usize,
        /// Protocol handle for the control conversation.
        handle: u64,
    },
}

/// A handle-addressed protocol packet.
#[derive(Debug)]
pub enum Ctrl {
    /// Clear-to-send (receiver → sender).
    Cts {
        /// Arrival of the CTS at the sender.
        arrival: SimTime,
    },
    /// One ring chunk is ready (sender → receiver).
    Chunk {
        /// Slot index in the pair ring.
        slot: usize,
        /// Payload bytes in the slot.
        len: usize,
        /// Basic blocks the sender wrote (drives receiver unpack cost).
        blocks: usize,
        /// Arrival of the chunk data.
        arrival: SimTime,
        /// True on the final chunk.
        last: bool,
        /// CRC32 of the chunk payload (`EndToEnd` framing); `None`
        /// otherwise.
        crc: Option<u32>,
    },
    /// Chunk acknowledgement (receiver → sender), only exchanged in
    /// `EndToEnd` integrity mode: `ok: false` is a NACK demanding a
    /// retransmission of the same slot.
    ChunkAck {
        /// Arrival of the ack at the sender.
        arrival: SimTime,
        /// True if the chunk's CRC verified; false requests a resend.
        ok: bool,
    },
    /// The sender detected corruption it could not (or, in
    /// `SequenceCheck` mode, would not) repair and abandoned the
    /// transfer; the receiver should surface a corruption error instead
    /// of waiting forever.
    Abort {
        /// Arrival of the abort notification.
        arrival: SimTime,
        /// Retransmissions the sender attempted before giving up.
        retransmits: u32,
    },
    /// Generic completion signal (one-sided emulation and PSCW use this).
    Signal {
        /// Arrival time.
        arrival: SimTime,
        /// Optional payload.
        data: Vec<u8>,
    },
}

#[derive(Default)]
struct Queues {
    msgs: VecDeque<Envelope>,
    ctrl: HashMap<u64, VecDeque<Ctrl>>,
    /// MPI's posted-receive queue, in posted (program) order. With
    /// nonblocking receives running on engine threads, two in-flight
    /// receives whose patterns overlap would otherwise race for the
    /// message queue and break determinism: a receive may only take an
    /// envelope no *earlier-posted* unmatched receive also matches —
    /// exactly MPI's arrival-time scan of the posted queue. Receives with
    /// disjoint patterns (a halo exchange from distinct neighbours)
    /// proceed fully concurrently.
    posted: Vec<PostedRecv>,
    next_ticket: u64,
    /// Backlog event log for the deterministic peak-queue gauge
    /// (recorded only while obs is enabled): `(virtual time, Δmessages,
    /// Δeager payload bytes)` at every post and removal. The runtime
    /// sweeps it at teardown — see `runtime::run`.
    backlog_log: Vec<(SimTime, i64, i64)>,
}

/// Eager payload bytes carried by an envelope (rendezvous RTS heads
/// queue an envelope but stage their payload in the ring, not here).
fn eager_bytes(env: &Envelope) -> i64 {
    match &env.head {
        Head::Eager { data, .. } => data.len() as i64,
        Head::Rts { .. } => 0,
    }
}

impl Queues {
    /// Log an envelope entering the message queue at its arrival time.
    fn log_posted(&mut self, env: &Envelope) {
        if obs::is_enabled() {
            self.backlog_log.push((env.arrival, 1, eager_bytes(env)));
        }
    }

    /// Log an envelope leaving the message queue. A message is queued
    /// until the *later* of its arrival and the receiver's match time:
    /// a receive posted before the data lands holds it for zero
    /// virtual time.
    fn log_removed(&mut self, env: &Envelope, now: SimTime) {
        if obs::is_enabled() {
            self.backlog_log
                .push((now.max(env.arrival), -1, -eager_bytes(env)));
        }
    }

    /// Try to match the posted receive `ticket` against the message
    /// queue: first envelope (arrival order) that satisfies its pattern
    /// and is not claimed by an earlier-posted unmatched receive. On
    /// success the envelope and the posted entry both leave their queues.
    fn gated_match(&mut self, ticket: u64) -> Option<Envelope> {
        let me = *self.posted.iter().find(|p| p.ticket == ticket)?;
        let idx = self.msgs.iter().position(|e| {
            env_matches(e, me.src, me.tag)
                && !self
                    .posted
                    .iter()
                    .any(|p| p.ticket < ticket && env_matches(e, p.src, p.tag))
        })?;
        let env = self.msgs.remove(idx).expect("index valid under lock");
        let pi = self
            .posted
            .iter()
            .position(|p| p.ticket == ticket)
            .expect("entry present");
        self.posted.remove(pi);
        Some(env)
    }
}

/// A receive registered in the posted-receive table.
#[derive(Clone, Copy, Debug)]
struct PostedRecv {
    ticket: u64,
    src: Source,
    tag: TagSel,
}

/// Does this envelope satisfy the pattern?
fn env_matches(e: &Envelope, src: Source, tag: TagSel) -> bool {
    (match src {
        Source::Any => true,
        Source::Rank(r) => e.src == r,
    }) && (match tag {
        TagSel::Any => true,
        TagSel::Value(t) => e.tag == t,
    })
}

/// One rank's mailbox.
#[derive(Default)]
pub struct Mailbox {
    q: Mutex<Queues>,
    cv: Condvar,
    /// Event-backend tasks parked on an empty match (`docs/SCHEDULER.md`);
    /// empty — and the wakes free — under the thread backend.
    waiters: sched::WaitQueue,
}

impl Mailbox {
    /// An empty mailbox.
    pub fn new() -> Self {
        Mailbox::default()
    }

    /// Deposit a message envelope (sender side).
    pub fn post(&self, env: Envelope) {
        let mut q = self.q.lock().unwrap();
        q.log_posted(&env);
        q.msgs.push_back(env);
        drop(q);
        self.cv.notify_all();
        self.waiters.wake_all();
    }

    /// Deposit a protocol packet for `handle`.
    pub fn post_ctrl(&self, handle: u64, ctrl: Ctrl) {
        self.q
            .lock()
            .unwrap()
            .ctrl
            .entry(handle)
            .or_default()
            .push_back(ctrl);
        self.cv.notify_all();
        self.waiters.wake_all();
    }

    /// Block until an envelope matching `(src, tag)` is available and
    /// remove it (first match in arrival order — MPI non-overtaking).
    /// `now` is the caller's virtual time at the call, feeding the
    /// backlog gauge (it never affects matching or the clock).
    pub fn match_recv(&self, src: Source, tag: TagSel, now: SimTime) -> Envelope {
        let mut q = self.q.lock().unwrap();
        loop {
            if let Some(idx) = q.msgs.iter().position(|e| {
                (match src {
                    Source::Any => true,
                    Source::Rank(r) => e.src == r,
                }) && (match tag {
                    TagSel::Any => true,
                    TagSel::Value(t) => e.tag == t,
                })
            }) {
                let env = q.msgs.remove(idx).expect("index valid under lock");
                q.log_removed(&env, now);
                return env;
            }
            q = self.cv.wait(q).unwrap();
        }
    }

    /// Like [`Self::match_recv`], but give up after `timeout` of *real*
    /// time. Returns `None` on expiry without removing anything.
    ///
    /// The timeout is a polling slice, not a protocol decision: callers
    /// loop on it, checking peer liveness between slices, and charge
    /// virtual time only from the deterministic timeout schedule — never
    /// from real-time expiry.
    pub fn match_recv_for(
        &self,
        src: Source,
        tag: TagSel,
        timeout: std::time::Duration,
        now: SimTime,
    ) -> Option<Envelope> {
        if sched::is_event_task() && !timeout.is_zero() {
            // Event backend: park instead of polling real time. A stall
            // round plays the role of slice expiry — return None so the
            // caller re-checks liveness, exactly like a timed-out wait.
            let mut q = self.q.lock().unwrap();
            loop {
                if let Some(idx) = q.msgs.iter().position(|e| env_matches(e, src, tag)) {
                    let env = q.msgs.remove(idx).expect("index valid under lock");
                    q.log_removed(&env, now);
                    return Some(env);
                }
                self.waiters.register_current();
                drop(q);
                if sched::park(now) == sched::Wake::Stalled {
                    return None;
                }
                q = self.q.lock().unwrap();
            }
        }
        let deadline = std::time::Instant::now() + timeout;
        let mut q = self.q.lock().unwrap();
        loop {
            if let Some(idx) = q.msgs.iter().position(|e| {
                (match src {
                    Source::Any => true,
                    Source::Rank(r) => e.src == r,
                }) && (match tag {
                    TagSel::Any => true,
                    TagSel::Value(t) => e.tag == t,
                })
            }) {
                let env = q.msgs.remove(idx).expect("index valid under lock");
                q.log_removed(&env, now);
                return Some(env);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            q = self.cv.wait_timeout(q, deadline - now).unwrap().0;
        }
    }

    /// Non-blocking probe: does a matching envelope exist? Returns its
    /// `(src, tag, arrival)` without removing it.
    pub fn probe(&self, src: Source, tag: TagSel) -> Option<(usize, Tag, SimTime)> {
        let q = self.q.lock().unwrap();
        q.msgs
            .iter()
            .find(|e| {
                (match src {
                    Source::Any => true,
                    Source::Rank(r) => e.src == r,
                }) && (match tag {
                    TagSel::Any => true,
                    TagSel::Value(t) => e.tag == t,
                })
            })
            .map(|e| (e.src, e.tag, e.arrival))
    }

    /// Block until a protocol packet for `handle` arrives and remove it.
    pub fn wait_ctrl(&self, handle: u64) -> Ctrl {
        let mut q = self.q.lock().unwrap();
        loop {
            if let Some(dq) = q.ctrl.get_mut(&handle) {
                if let Some(c) = dq.pop_front() {
                    if dq.is_empty() {
                        q.ctrl.remove(&handle);
                    }
                    return c;
                }
            }
            q = self.cv.wait(q).unwrap();
        }
    }

    /// Like [`Self::wait_ctrl`], but give up after `timeout` of *real*
    /// time. Returns `None` on expiry. See [`Self::match_recv_for`] for
    /// the virtual-time contract.
    pub fn wait_ctrl_for(&self, handle: u64, timeout: std::time::Duration) -> Option<Ctrl> {
        if sched::is_event_task() && !timeout.is_zero() {
            let mut q = self.q.lock().unwrap();
            loop {
                if let Some(dq) = q.ctrl.get_mut(&handle) {
                    if let Some(c) = dq.pop_front() {
                        if dq.is_empty() {
                            q.ctrl.remove(&handle);
                        }
                        return Some(c);
                    }
                }
                self.waiters.register_current();
                drop(q);
                // Ctrl waits carry no timestamp of their own: park at the
                // task's last recorded virtual time.
                if sched::park_stale() == sched::Wake::Stalled {
                    return None;
                }
                q = self.q.lock().unwrap();
            }
        }
        let deadline = std::time::Instant::now() + timeout;
        let mut q = self.q.lock().unwrap();
        loop {
            if let Some(dq) = q.ctrl.get_mut(&handle) {
                if let Some(c) = dq.pop_front() {
                    if dq.is_empty() {
                        q.ctrl.remove(&handle);
                    }
                    return Some(c);
                }
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            q = self.cv.wait_timeout(q, deadline - now).unwrap().0;
        }
    }

    /// Register a receive in the posted-receive queue. Must be called on
    /// the posting rank's own thread so tickets reflect program order;
    /// the matching itself ([`Self::match_recv_posted`]) may then run on
    /// an engine thread.
    pub fn post_recv(&self, src: Source, tag: TagSel) -> u64 {
        let mut q = self.q.lock().unwrap();
        let ticket = q.next_ticket;
        q.next_ticket += 1;
        q.posted.push(PostedRecv { ticket, src, tag });
        ticket
    }

    /// Withdraw a posted receive without matching (error paths: the
    /// monitored peer died). Idempotent; unblocks later overlapping
    /// receives.
    pub fn abandon_recv(&self, ticket: u64) {
        let mut q = self.q.lock().unwrap();
        if let Some(i) = q.posted.iter().position(|p| p.ticket == ticket) {
            q.posted.remove(i);
            drop(q);
            self.cv.notify_all();
            self.waiters.wake_all();
        }
    }

    /// Block until the posted receive `ticket` can claim an envelope (no
    /// earlier-posted unmatched receive also matches it) and remove it.
    pub fn match_recv_posted(&self, ticket: u64, now: SimTime) -> Envelope {
        let mut q = self.q.lock().unwrap();
        loop {
            if let Some(env) = q.gated_match(ticket) {
                q.log_removed(&env, now);
                // Our posted entry left the queue: later receives it was
                // shadowing may now be eligible.
                self.cv.notify_all();
                self.waiters.wake_all();
                return env;
            }
            q = self.cv.wait(q).unwrap();
        }
    }

    /// Like [`Self::match_recv_posted`], but give up after `timeout` of
    /// *real* time (polling slice — see [`Self::match_recv_for`] for the
    /// virtual-time contract). The posted entry stays registered on
    /// expiry.
    pub fn match_recv_posted_for(
        &self,
        ticket: u64,
        timeout: std::time::Duration,
        now: SimTime,
    ) -> Option<Envelope> {
        if sched::is_event_task() && !timeout.is_zero() {
            let mut q = self.q.lock().unwrap();
            loop {
                if let Some(env) = q.gated_match(ticket) {
                    q.log_removed(&env, now);
                    self.cv.notify_all();
                    self.waiters.wake_all();
                    return Some(env);
                }
                self.waiters.register_current();
                drop(q);
                if sched::park(now) == sched::Wake::Stalled {
                    return None;
                }
                q = self.q.lock().unwrap();
            }
        }
        let deadline = std::time::Instant::now() + timeout;
        let mut q = self.q.lock().unwrap();
        loop {
            if let Some(env) = q.gated_match(ticket) {
                q.log_removed(&env, now);
                self.cv.notify_all();
                return Some(env);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            q = self.cv.wait_timeout(q, deadline - now).unwrap().0;
        }
    }

    /// Number of queued (unmatched) messages — diagnostics only.
    pub fn backlog(&self) -> usize {
        self.q.lock().unwrap().msgs.len()
    }

    /// Drain the backlog event log (runtime teardown). Each entry is
    /// `(virtual time, Δmessages, Δeager payload bytes)`; sorting by
    /// time and sweeping yields the peak queue depth.
    pub fn take_backlog_events(&self) -> Vec<(SimTime, i64, i64)> {
        std::mem::take(&mut self.q.lock().unwrap().backlog_log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn env(src: usize, tag: Tag) -> Envelope {
        Envelope {
            src,
            tag,
            arrival: SimTime::ZERO,
            head: Head::Eager {
                data: vec![],
                blocks: 0,
                crc: None,
            },
        }
    }

    #[test]
    fn matching_by_source_and_tag() {
        let mb = Mailbox::new();
        mb.post(env(1, 10));
        mb.post(env(2, 10));
        mb.post(env(1, 20));
        let e = mb.match_recv(Source::Rank(2), TagSel::Value(10), SimTime::ZERO);
        assert_eq!(e.src, 2);
        let e = mb.match_recv(Source::Rank(1), TagSel::Value(20), SimTime::ZERO);
        assert_eq!(e.tag, 20);
        let e = mb.match_recv(Source::Any, TagSel::Any, SimTime::ZERO);
        assert_eq!((e.src, e.tag), (1, 10));
    }

    #[test]
    fn non_overtaking_order_per_pair() {
        let mb = Mailbox::new();
        for i in 0..5 {
            let mut e = env(3, 7);
            e.arrival = SimTime::from_ps(i);
            mb.post(e);
        }
        for i in 0..5 {
            let e = mb.match_recv(Source::Rank(3), TagSel::Value(7), SimTime::ZERO);
            assert_eq!(e.arrival, SimTime::from_ps(i), "overtook at {i}");
        }
    }

    #[test]
    fn blocking_recv_wakes_on_post() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let t =
            thread::spawn(move || mb2.match_recv(Source::Any, TagSel::Value(42), SimTime::ZERO));
        thread::sleep(std::time::Duration::from_millis(20));
        mb.post(env(0, 41)); // wrong tag: should not satisfy
        mb.post(env(0, 42));
        let e = t.join().unwrap();
        assert_eq!(e.tag, 42);
        assert_eq!(mb.backlog(), 1); // the tag-41 message still queued
    }

    #[test]
    fn ctrl_packets_by_handle() {
        let mb = Mailbox::new();
        mb.post_ctrl(
            9,
            Ctrl::Cts {
                arrival: SimTime::ZERO,
            },
        );
        mb.post_ctrl(
            9,
            Ctrl::Chunk {
                slot: 0,
                len: 10,
                blocks: 1,
                arrival: SimTime::ZERO,
                last: true,
                crc: None,
            },
        );
        assert!(matches!(mb.wait_ctrl(9), Ctrl::Cts { .. }));
        assert!(matches!(mb.wait_ctrl(9), Ctrl::Chunk { last: true, .. }));
    }

    #[test]
    fn probe_does_not_consume() {
        let mb = Mailbox::new();
        assert!(mb.probe(Source::Any, TagSel::Any).is_none());
        mb.post(env(4, 2));
        assert_eq!(
            mb.probe(Source::Any, TagSel::Any),
            Some((4, 2, SimTime::ZERO))
        );
        assert_eq!(mb.backlog(), 1);
    }

    #[test]
    fn posted_disjoint_patterns_match_concurrently() {
        let mb = Mailbox::new();
        let a = mb.post_recv(Source::Rank(1), TagSel::Value(5));
        let b = mb.post_recv(Source::Rank(2), TagSel::Value(5));
        // b is later-posted but src-disjoint from a: an envelope from
        // rank 2 goes to b even while a is still unmatched.
        mb.post(env(2, 5));
        let e = mb.match_recv_posted_for(b, std::time::Duration::ZERO, SimTime::ZERO);
        assert_eq!(e.expect("disjoint recv must match").src, 2);
        mb.post(env(1, 5));
        assert!(mb
            .match_recv_posted_for(a, std::time::Duration::ZERO, SimTime::ZERO)
            .is_some());
    }

    #[test]
    fn posted_wildcard_shadows_later_overlapping_recv() {
        let mb = Mailbox::new();
        let a = mb.post_recv(Source::Any, TagSel::Value(5));
        let b = mb.post_recv(Source::Rank(2), TagSel::Value(5));
        mb.post(env(2, 5));
        // The earlier wildcard claims the envelope; b must not steal it.
        assert!(mb
            .match_recv_posted_for(b, std::time::Duration::ZERO, SimTime::ZERO)
            .is_none());
        let e = mb.match_recv_posted(a, SimTime::ZERO);
        assert_eq!(e.src, 2);
        // With the wildcard gone, a fresh envelope satisfies b.
        mb.post(env(2, 5));
        assert!(mb
            .match_recv_posted_for(b, std::time::Duration::ZERO, SimTime::ZERO)
            .is_some());
    }

    #[test]
    fn abandoned_recv_unblocks_later_ones() {
        let mb = Mailbox::new();
        let a = mb.post_recv(Source::Any, TagSel::Any);
        let b = mb.post_recv(Source::Rank(3), TagSel::Value(1));
        mb.post(env(3, 1));
        assert!(mb
            .match_recv_posted_for(b, std::time::Duration::ZERO, SimTime::ZERO)
            .is_none());
        mb.abandon_recv(a);
        assert!(mb
            .match_recv_posted_for(b, std::time::Duration::ZERO, SimTime::ZERO)
            .is_some());
    }

    #[test]
    fn cross_thread_ctrl() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let t = thread::spawn(move || {
            for i in 0..100u64 {
                mb2.post_ctrl(
                    i % 4,
                    Ctrl::Signal {
                        arrival: SimTime::from_ps(i),
                        data: vec![],
                    },
                );
            }
        });
        let mut got = 0;
        for h in 0..4u64 {
            for _ in 0..25 {
                let c = mb.wait_ctrl(h);
                assert!(matches!(c, Ctrl::Signal { .. }));
                got += 1;
            }
        }
        t.join().unwrap();
        assert_eq!(got, 100);
    }
}
