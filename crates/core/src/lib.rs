//! # scimpi — the SCI-MPICH reproduction core
//!
//! An MPI-subset runtime over the simulated SCI fabric, implementing both
//! contributions of *"Exploiting Transparent Remote Memory Access for
//! Non-Contiguous- and One-Sided-Communication"* (IPPS 2002):
//!
//! 1. **Non-contiguous datatype communication** with the `direct_pack_ff`
//!    engine packing straight into remote ring buffers ([`p2p`],
//!    [`sink`]);
//! 2. **MPI-2 one-sided communication** — windows, put/get/accumulate,
//!    fence / post-start-complete-wait / lock-unlock synchronisation,
//!    direct SCI access for shared windows and control-message emulation
//!    for private ones, with remote-put conversion for large gets
//!    ([`osc`]).
//!
//! Ranks run as OS threads with per-rank virtual clocks; all timing is the
//! fabric cost model's, so results are deterministic.
//!
//! ```
//! use scimpi::{run, ClusterSpec, Source, TagSel};
//!
//! let results = run(ClusterSpec::ringlet(2), |rank| {
//!     if rank.rank() == 0 {
//!         rank.send(1, 99, b"ping");
//!         0
//!     } else {
//!         let mut buf = [0u8; 4];
//!         let status = rank.recv(Source::Rank(0), TagSel::Value(99), &mut buf);
//!         status.len
//!     }
//! });
//! assert_eq!(results, vec![0, 4]);
//! ```

pub mod collective;
pub mod error;
pub mod mailbox;
pub mod osc;
pub mod p2p;
pub mod runtime;
pub mod sink;
pub mod tuning;

pub use collective::ReduceOp;
pub use error::{death_delay, ErrorMode, ScimpiError};
pub use mailbox::{Source, Tag, TagSel};
pub use osc::{AccumulateOp, WinMemory, Window};
pub use p2p::{RecvBuf, RecvStatus, SendData};
pub use runtime::{run, ClusterSpec, ObsConfig, Rank};
pub use sink::{PioSink, RegionSource};
pub use tuning::{IntegrityMode, NoncontigMode, Tuning};
