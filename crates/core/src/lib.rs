//! # scimpi — the SCI-MPICH reproduction core
//!
//! An MPI-subset runtime over the simulated SCI fabric, implementing both
//! contributions of *"Exploiting Transparent Remote Memory Access for
//! Non-Contiguous- and One-Sided-Communication"* (IPPS 2002):
//!
//! 1. **Non-contiguous datatype communication** with the `direct_pack_ff`
//!    engine packing straight into remote ring buffers ([`p2p`],
//!    [`sink`]);
//! 2. **MPI-2 one-sided communication** — windows, put/get/accumulate,
//!    fence / post-start-complete-wait / lock-unlock synchronisation,
//!    direct SCI access for shared windows and control-message emulation
//!    for private ones, with remote-put conversion for large gets
//!    ([`osc`]).
//!
//! Ranks run as OS threads with per-rank virtual clocks; all timing is the
//! fabric cost model's, so results are deterministic.
//!
//! Every communication verb returns `Result<_, ScimpiError>`; under the
//! default [`ErrorMode::ErrorsAreFatal`] a communication error aborts the
//! run before the `Err` is observable, so infallible call sites can
//! append [`Done::done`] (or `.unwrap()`) without ever seeing a panic of
//! their own making. Nonblocking operations ([`Rank::isend`],
//! [`Rank::irecv`], ...) return typed [`Request`] handles — see
//! [`request`] and `docs/ASYNC.md`.
//!
//! ```
//! use scimpi::prelude::*;
//!
//! let results = run(ClusterSpec::ringlet(2).build(), |rank| {
//!     if rank.rank() == 0 {
//!         rank.send(1, 99, b"ping").done();
//!         0
//!     } else {
//!         let mut buf = [0u8; 4];
//!         let status = rank.recv(Source::Rank(0), TagSel::Value(99), &mut buf).done();
//!         status.len
//!     }
//! });
//! assert_eq!(results, vec![0, 4]);
//! ```

pub mod collective;
pub mod error;
pub mod mailbox;
pub mod osc;
pub mod p2p;
pub mod recovery;
pub mod request;
pub mod runtime;
pub mod sink;
pub mod tuning;

pub use collective::{ReduceOp, Typed};
pub use error::{death_delay, ErrorMode, ScimpiError};
pub use mailbox::{Source, Tag, TagSel};
pub use osc::{AccumulateOp, WinMemory, Window};
pub use p2p::{RecvBuf, RecvStatus, SendData};
pub use recovery::{revoke, shrink, shrink_with_fault, Checkpointer, ShrinkReport};
pub use request::{PersistentRecv, PersistentSend, RecvDone, Request};
pub use runtime::{last_event_stats, run, Backend, ClusterSpec, ObsConfig, Rank};
pub use sink::{PioSink, RegionSource, StagingLease, StagingLedger};
pub use tuning::{CollectiveAlgo, IntegrityMode, NoncontigMode, OverloadPolicy, Tuning};

/// Thin infallible wrapper over the `Result`-based surface: `.done()`
/// unwraps with a call-site-attributed panic message. Meant for
/// applications running under the default
/// [`ErrorMode::ErrorsAreFatal`], where a surfaced `Err` is impossible
/// (the handler aborts first) and propagating `Result` is pure noise.
pub trait Done {
    /// The success value.
    type Output;
    /// Unwrap, panicking at the caller's location on `Err`.
    fn done(self) -> Self::Output;
}

impl<T> Done for Result<T, ScimpiError> {
    type Output = T;
    #[track_caller]
    fn done(self) -> T {
        match self {
            Ok(v) => v,
            Err(e) => panic!("communication failed: {e}"),
        }
    }
}

/// One-stop imports for applications: `use scimpi::prelude::*;`.
pub mod prelude {
    pub use crate::collective::{ReduceOp, Typed};
    pub use crate::error::{ErrorMode, ScimpiError};
    pub use crate::mailbox::{Source, Tag, TagSel};
    pub use crate::osc::{AccumulateOp, WinMemory, Window};
    pub use crate::p2p::{RecvBuf, RecvStatus, SendData};
    pub use crate::recovery::{revoke, shrink, shrink_with_fault, Checkpointer, ShrinkReport};
    pub use crate::request::{PersistentRecv, PersistentSend, RecvDone, Request};
    pub use crate::runtime::{run, Backend, ClusterSpec, ObsConfig, Rank};
    pub use crate::tuning::{CollectiveAlgo, IntegrityMode, OverloadPolicy, Tuning};
    pub use crate::Done;
}
