//! Job-level survival: rank-death recovery with membership epochs,
//! fault-tolerant agreement, and buddy checkpointing.
//!
//! SCI-MPICH's fault taxonomy (docs/FAULT_TOLERANCE.md) ends at the
//! error handler: a dead peer surfaces as [`ScimpiError::PeerDead`] and
//! the application decides. This module is the *recovery* layer above
//! that — the ULFM-shaped triple that lets a job survive rank death
//! instead of merely reporting it:
//!
//! * [`revoke`] invalidates the current membership epoch. The
//!   revocation spreads along a deterministic binomial gossip front
//!   (virtual time; see `WorldState::revoke_arrival`), so every peer
//!   blocked in a match, handshake, barrier or fence errors out with
//!   [`ScimpiError::Revoked`] at its front-arrival time instead of
//!   running a timeout schedule per dead peer.
//! * [`shrink`] runs a **fault-tolerant agreement** over the survivors
//!   — `Tuning::agreement_sweeps` hypercube sweeps of dead-set bitmap
//!   exchanges, tolerating further deaths mid-agreement — and installs
//!   the next membership epoch: a dense re-ranking of the survivors
//!   with fresh collective state. Recovery-internal protocol runs
//!   *exempt* from revocation checks so it can communicate while the
//!   revocation is still in force.
//! * [`Checkpointer`] keeps application state restorable across a
//!   shrink: each rank's recovery region lives in a one-sided window
//!   under `EndToEnd` integrity and is replicated to a buddy rank with
//!   [`Window::iput`] at every [`Checkpointer::checkpoint`]. After a
//!   shrink, [`Checkpointer::restore`] replays the rank's own latest
//!   image and [`Checkpointer::adopt`] recovers a dead predecessor's.
//!
//! Everything here follows the determinism contract: real time is only
//! ever polled; virtual time is charged exclusively from deterministic
//! schedules (control-packet costs, the declared-dead schedule, gossip
//! hops), so same-seed runs recover bit-identically.

use crate::error::ScimpiError;
use crate::mailbox::Ctrl;
use crate::osc::{AllocMem, WinMemory, Window};
use crate::runtime::{Rank, POLL_SLICE};
use crate::tuning::IntegrityMode;
use obs::attrib::{self, Bucket, WaitKind};
use sci_fabric::crc32;
use simclock::SimTime;
use smi::TimeBarrier;
use std::cell::Cell;
use std::sync::atomic::Ordering;
use std::sync::Arc;

thread_local! {
    /// Set while this rank thread runs recovery-internal protocol
    /// (agreement, shrink): revocation checks answer "no revocation"
    /// so the machinery that *handles* a revocation is not killed by it.
    static EXEMPT: Cell<bool> = const { Cell::new(false) };
}

/// Is the calling thread running revocation-exempt recovery protocol?
pub(crate) fn is_exempt() -> bool {
    EXEMPT.with(|e| e.get())
}

/// Run `f` exempt from revocation checks, restoring the previous state
/// on every exit path (including panics under `ErrorsAreFatal`).
fn with_exempt<R>(f: impl FnOnce() -> R) -> R {
    struct Guard(bool);
    impl Drop for Guard {
        fn drop(&mut self) {
            EXEMPT.with(|e| e.set(self.0));
        }
    }
    let _guard = Guard(EXEMPT.with(|e| e.replace(true)));
    f()
}

/// Revoke the communicator: invalidate the current membership epoch so
/// every rank blocked in a communication call errors out with
/// [`ScimpiError::Revoked`] when the deterministic gossip front reaches
/// it, instead of waiting through a timeout schedule (or forever, for
/// waits on live-but-stuck peers). Typically called by the first rank
/// that observes [`ScimpiError::PeerDead`]; concurrent revokers merge
/// onto one deterministic front. Recover with [`shrink`].
pub fn revoke(rank: &mut Rank) {
    let me = rank.world_rank();
    let at = rank.clock.now();
    if rank.world.revoke_from(at, me) {
        obs::inc(obs::Counter::Revocations);
        if obs::is_enabled() {
            obs::instant(
                "ft.recovery.revoke",
                at,
                vec![("by", obs::Arg::U64(me as u64))],
            );
        }
    }
}

/// The outcome of a successful [`shrink`], from one survivor's view.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShrinkReport {
    /// The newly installed membership epoch.
    pub epoch: u64,
    /// World ranks removed by this shrink (agreed dead set), ascending.
    pub dead: Vec<usize>,
    /// This rank's new dense logical rank.
    pub rank: usize,
    /// The new communicator size.
    pub size: usize,
}

/// Collision-free handle for one agreement signal: top bit keeps the
/// space disjoint from `WorldState::handle` allocations (which count up
/// from 1) and from PSCW handles (window ids are small).
fn agree_handle(epoch: u64, sweep: u32, round: u32, src_world: usize) -> u64 {
    (1 << 63)
        | (epoch << 32)
        | (u64::from(sweep) << 24)
        | (u64::from(round) << 16)
        | src_world as u64
}

/// Wait for the partner's agreement signal, mirroring the liveness-guard
/// idiom of `WorldState::await_ctrl` but *without* escalation and
/// *without* revocation checks (agreement runs exempt): a dead partner
/// charges the deterministic declared-dead schedule and returns `None`
/// so the sweep continues with the partner recorded dead.
fn await_agree_signal(rank: &mut Rank, handle: u64, partner_w: usize) -> Option<(SimTime, u64)> {
    let world = Arc::clone(&rank.world);
    let me_w = rank.world_rank();
    let decode = |c: Ctrl| -> (SimTime, u64) {
        let Ctrl::Signal { arrival, data } = c else {
            panic!(
                "{}",
                ScimpiError::ProtocolViolation {
                    expected: "agreement bitmap signal",
                    got: format!("{c:?}"),
                }
            );
        };
        let bytes: [u8; 8] = data[..8].try_into().expect("bitmap is 8 bytes");
        (arrival, u64::from_le_bytes(bytes))
    };
    loop {
        if let Some(c) = world.mailboxes[me_w].wait_ctrl_for(handle, POLL_SLICE) {
            return Some(decode(c));
        }
        if !world.peer_dead(partner_w) {
            continue;
        }
        // The partner is dead: drain once more to close the race where
        // its last pre-death signal landed between expiry and the check.
        if let Some(c) = world.mailboxes[me_w].wait_ctrl_for(handle, std::time::Duration::ZERO) {
            return Some(decode(c));
        }
        let _ = world.declare_dead(&mut rank.clock, partner_w, "agreement signal");
        return None;
    }
}

/// Fault-tolerant agreement on the dead set (exempt callers only):
/// `Tuning::agreement_sweeps` hypercube sweeps over the current
/// membership's logical index space, each round exchanging dead-set
/// bitmaps with the partner at `my_index ^ (1 << round)`. Both sides
/// post their signal *before* awaiting the partner's, so live pairs
/// never deadlock; a dead partner is charged through the deterministic
/// declared-dead schedule and added to the bitmap, which only ever
/// holds genuinely dead world ranks — so a skipped round (partner in
/// the bitmap) can never starve a live rank. One clean sweep
/// disseminates every rank's knowledge to all; each extra sweep absorbs
/// one round of deaths happening *during* agreement.
///
/// `die_after_sweeps` is the chaos hook used by [`shrink_with_fault`]:
/// the victim participates in that many sweeps, then kills its own node
/// and reports itself dead.
fn agree(rank: &mut Rank, die_after_sweeps: Option<u32>) -> Result<Vec<usize>, ScimpiError> {
    assert!(
        rank.world.mailboxes.len() <= 64,
        "agreement bitmaps hold at most 64 world ranks"
    );
    let start = rank.clock.now();
    let me_w = rank.world_rank();
    let members = Arc::clone(&rank.members);
    let n = members.len();
    let epoch = rank.epoch();
    let sweeps = rank.world.tuning.agreement_sweeps;
    let rounds = if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    };
    let mut bitmap: u64 = 0;
    for sweep in 0..sweeps {
        if die_after_sweeps == Some(sweep) {
            let node = rank.node().0;
            rank.world.fabric.faults().kill_node(node);
            return Err(ScimpiError::PeerDead { peer: me_w });
        }
        for round in 0..rounds {
            let partner_index = rank.rank() ^ (1usize << round);
            if partner_index >= n {
                continue;
            }
            let partner_w = members[partner_index];
            if bitmap & (1u64 << partner_w) != 0 {
                continue;
            }
            obs::inc(obs::Counter::AgreementRounds);
            // Post first, then await: no ordering deadlock between the
            // two sides of a pair.
            attrib::advance(
                &mut rank.clock,
                Bucket::Transfer,
                rank.world.tuning.ctrl_send_cost,
            );
            let arrival = rank.clock.now() + rank.world.ctrl_latency(me_w, partner_w);
            rank.world.mailboxes[partner_w].post_ctrl(
                agree_handle(epoch, sweep, round, me_w),
                Ctrl::Signal {
                    arrival,
                    data: bitmap.to_le_bytes().to_vec(),
                },
            );
            match await_agree_signal(
                rank,
                agree_handle(epoch, sweep, round, partner_w),
                partner_w,
            ) {
                Some((arrival, theirs)) => {
                    attrib::merge_waited(
                        &mut rank.clock,
                        arrival,
                        WaitKind::Recovery,
                        Some(partner_w as u32),
                    );
                    attrib::advance(
                        &mut rank.clock,
                        Bucket::Transfer,
                        rank.world.tuning.ctrl_recv_cost,
                    );
                    bitmap |= theirs;
                }
                None => bitmap |= 1u64 << partner_w,
            }
        }
    }
    let dead: Vec<usize> = members
        .iter()
        .copied()
        .filter(|w| bitmap & (1u64 << w) != 0)
        .collect();
    obs::span(
        "ft.recovery.agree",
        start,
        rank.clock.now(),
        vec![
            ("epoch", obs::Arg::U64(epoch)),
            ("dead", obs::Arg::U64(dead.len() as u64)),
        ],
    );
    Ok(dead)
}

/// Shrink the communicator to the agreed survivors (collective over all
/// survivors; ULFM `MPIX_Comm_shrink`): agree on the dead set, install
/// the next membership epoch with the survivors re-ranked densely
/// (world-rank order), reset collective state, clear any active
/// revocation, and synchronise on the new epoch's barrier. Runs exempt
/// from revocation checks — this *is* the recovery path a revocation
/// points to.
pub fn shrink(rank: &mut Rank) -> Result<ShrinkReport, ScimpiError> {
    with_exempt(|| shrink_inner(rank, None))
}

/// [`shrink`] with a chaos hook: this rank participates in the first
/// `die_after_sweeps` agreement sweeps, then kills its own node and
/// returns `Err(PeerDead)` naming itself — exercising agreement under a
/// death *during* agreement. The surviving ranks' plain [`shrink`]
/// tolerates it as long as at least one clean sweep remains.
pub fn shrink_with_fault(
    rank: &mut Rank,
    die_after_sweeps: u32,
) -> Result<ShrinkReport, ScimpiError> {
    with_exempt(|| shrink_inner(rank, Some(die_after_sweeps)))
}

fn shrink_inner(
    rank: &mut Rank,
    die_after_sweeps: Option<u32>,
) -> Result<ShrinkReport, ScimpiError> {
    let start = rank.clock.now();
    let dead = agree(rank, die_after_sweeps)?;
    let members: Vec<usize> = rank
        .members
        .iter()
        .copied()
        .filter(|w| !dead.contains(w))
        .collect();
    let new_epoch = rank.epoch() + 1;
    let me_w = rank.world_rank();
    let my_index = members
        .binary_search(&me_w)
        .expect("a shrinking survivor is a member of the new epoch");
    let world = Arc::clone(&rank.world);
    if me_w == members[0] {
        // Survivor leader: reclaim the eager flow-control credits owed
        // by (or to) the dead ranks — a sender backpressure-stalled on
        // grants a dead receiver will never return must find its budget
        // restored, or flow control would deadlock recovery. Then
        // register the new epoch's barrier, lift the revocation and
        // publish the epoch. By the time the leader finishes agreement
        // every survivor has entered shrink (its final-sweep partners
        // must have posted), so no rank still needs the revocation to
        // escape a blocked wait.
        world.reclaim_credits(&dead);
        let barrier = Arc::new(TimeBarrier::new(members.len(), world.tuning.barrier_hop));
        world
            .epoch_barriers
            .lock()
            .unwrap()
            .insert(new_epoch, barrier);
        world.clear_revoke();
        world.current_epoch.store(new_epoch, Ordering::SeqCst);
        world.epoch_waiters.wake_all();
    }
    // Everyone (leader included): pick up the new epoch's barrier. Real
    // time only — no virtual cost for registration latency.
    let barrier = loop {
        if world.current_epoch.load(Ordering::SeqCst) >= new_epoch {
            if let Some(b) = world.epoch_barriers.lock().unwrap().get(&new_epoch) {
                break Arc::clone(b);
            }
        }
        if sched::is_event_task() {
            // Park until the leader publishes the epoch; a stalled wake
            // simply re-runs the check like a sleep expiry would.
            world.epoch_waiters.register_current();
            sched::park_stale();
        } else {
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    };
    rank.members = Arc::new(members);
    rank.my_index = my_index;
    rank.epoch = new_epoch;
    rank.epoch_barrier = Some(Arc::clone(&barrier));
    rank.coll_seq = 0;
    barrier.wait(&mut rank.clock);
    obs::span(
        "ft.recovery.shrink",
        start,
        rank.clock.now(),
        vec![
            ("epoch", obs::Arg::U64(new_epoch)),
            ("dead", obs::Arg::U64(dead.len() as u64)),
            ("size", obs::Arg::U64(rank.size() as u64)),
        ],
    );
    Ok(ShrinkReport {
        epoch: new_epoch,
        dead,
        rank: my_index,
        size: rank.size(),
    })
}

/// Checkpoint image header: sequence number, payload length, CRC32 (all
/// little-endian u64).
const HEADER: usize = 24;

/// In-memory buddy checkpointing over a one-sided window.
///
/// Each member contributes `2 * (len + 24)` bytes of `MPI_Alloc_mem`
/// shared memory to a window under forced `EndToEnd` integrity: the
/// first slot holds the rank's own latest checkpoint image, the second
/// the replica of its *predecessor*'s (logical rank − 1, wrapping).
/// [`Checkpointer::checkpoint`] writes the own slot locally and
/// replicates it to the *buddy* (logical rank + 1, wrapping) with
/// [`Window::iput`]; the closing fence is the collective completion
/// point, so replication overlaps the local write and rides the
/// window's end-to-end verification.
///
/// What is restored: exactly the bytes last passed to `checkpoint`,
/// which [`Checkpointer::restore`] replays after CRC verification.
/// What is *not*: in-flight messages, window contents, or request
/// state — a post-shrink application re-derives those from the
/// restored image.
pub struct Checkpointer {
    win: Window,
    mem: AllocMem,
    /// Fixed payload length per image.
    len: usize,
    /// Logical rank holding this rank's replica (current epoch).
    buddy_logical: usize,
    /// World rank whose replica this rank holds (`None` when alone).
    pred_world: Option<usize>,
    /// Sequence number of the latest own checkpoint (0 = none yet).
    seq: u64,
}

impl Checkpointer {
    /// Create the checkpoint window (collective over the current
    /// membership). `len` fixes the image size for the window's
    /// lifetime.
    pub fn new(rank: &mut Rank, len: usize) -> Result<Checkpointer, ScimpiError> {
        let slot = len + HEADER;
        let mem = rank.alloc_mem(2 * slot)?;
        let win = rank.win_create_with_integrity(
            WinMemory::Alloc(mem.clone()),
            Some(IntegrityMode::EndToEnd),
        )?;
        let size = rank.size();
        let my = rank.rank();
        let pred_world = if size > 1 {
            Some(rank.to_world((my + size - 1) % size))
        } else {
            None
        };
        Ok(Checkpointer {
            win,
            mem,
            len,
            buddy_logical: (my + 1) % size,
            pred_world,
            seq: 0,
        })
    }

    /// The fixed image length.
    pub fn image_len(&self) -> usize {
        self.len
    }

    /// Sequence number of the latest own checkpoint (0 = none yet).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    fn frame(seq: u64, data: &[u8]) -> Vec<u8> {
        let mut image = Vec::with_capacity(data.len() + HEADER);
        image.extend_from_slice(&seq.to_le_bytes());
        image.extend_from_slice(&(data.len() as u64).to_le_bytes());
        image.extend_from_slice(&u64::from(crc32(data)).to_le_bytes());
        image.extend_from_slice(data);
        image
    }

    fn unframe(&self, rank: &mut Rank, slot_off: usize) -> Result<(u64, Vec<u8>), ScimpiError> {
        let mut hdr = [0u8; HEADER];
        self.win.read_local(rank, slot_off, &mut hdr);
        let seq = u64::from_le_bytes(hdr[0..8].try_into().expect("8 bytes"));
        let len = u64::from_le_bytes(hdr[8..16].try_into().expect("8 bytes")) as usize;
        let crc = u64::from_le_bytes(hdr[16..24].try_into().expect("8 bytes"));
        if seq == 0 {
            return Err(ScimpiError::WindowError(
                "no checkpoint image in this slot".into(),
            ));
        }
        if len != self.len {
            return Err(ScimpiError::WindowError(format!(
                "checkpoint image length {len} does not match the configured {}",
                self.len
            )));
        }
        let mut data = vec![0u8; len];
        self.win.read_local(rank, slot_off + HEADER, &mut data);
        if u64::from(crc32(&data)) != crc {
            return Err(ScimpiError::WindowError(
                "checkpoint image failed CRC verification".into(),
            ));
        }
        Ok((seq, data))
    }

    /// Take a checkpoint (collective): store `data` in the own slot and
    /// replicate it to the buddy through the one-sided window; the
    /// closing fence completes replication under `EndToEnd` integrity.
    pub fn checkpoint(&mut self, rank: &mut Rank, data: &[u8]) -> Result<(), ScimpiError> {
        assert_eq!(
            data.len(),
            self.len,
            "checkpoint image length is fixed at construction"
        );
        let start = rank.clock.now();
        self.seq += 1;
        let image = Self::frame(self.seq, data);
        self.win.write_local(rank, 0, &image);
        if rank.size() > 1 {
            let slot = self.len + HEADER;
            let mut req = self.win.iput(rank, self.buddy_logical, slot, &image)?;
            rank.wait(&mut req)?;
        }
        self.win.fence(rank)?;
        obs::inc(obs::Counter::CheckpointsTaken);
        obs::add(obs::Counter::CheckpointBytes, data.len() as u64);
        obs::span(
            "ft.recovery.checkpoint",
            start,
            rank.clock.now(),
            vec![
                ("bytes", obs::Arg::U64(data.len() as u64)),
                ("seq", obs::Arg::U64(self.seq)),
            ],
        );
        Ok(())
    }

    /// Restore this rank's own latest checkpoint image (local; typically
    /// after a [`shrink`]). [`ScimpiError::WindowError`] when no
    /// checkpoint was ever taken or the image fails verification.
    pub fn restore(&self, rank: &mut Rank) -> Result<Vec<u8>, ScimpiError> {
        let start = rank.clock.now();
        let (seq, data) = self.unframe(rank, 0)?;
        obs::inc(obs::Counter::RecoveryRestores);
        obs::span(
            "ft.recovery.restore",
            start,
            rank.clock.now(),
            vec![
                ("bytes", obs::Arg::U64(data.len() as u64)),
                ("seq", obs::Arg::U64(seq)),
            ],
        );
        Ok(data)
    }

    /// After a shrink: if this rank holds the replica of a now-dead
    /// predecessor, return `(predecessor world rank, image)` so a
    /// survivor can take over its work. `None` when the predecessor is
    /// alive (its own slot is authoritative) or never checkpointed.
    pub fn adopt(&self, rank: &mut Rank) -> Option<(usize, Vec<u8>)> {
        let pred = self.pred_world?;
        if !rank.world.peer_dead(pred) {
            return None;
        }
        let slot = self.len + HEADER;
        match self.unframe(rank, slot) {
            Ok((_, data)) => {
                obs::inc(obs::Counter::RecoveryRestores);
                Some((pred, data))
            }
            Err(_) => None,
        }
    }

    /// Rebuild the checkpointer over the current (post-shrink)
    /// membership (collective over the survivors): a fresh window with
    /// the new buddy pairing, carrying this rank's own latest image
    /// across and re-replicating it so the new buddy is warm.
    pub fn rebind(self, rank: &mut Rank) -> Result<Checkpointer, ScimpiError> {
        let slot = self.len + HEADER;
        let mut own = vec![0u8; slot];
        self.win.read_local(rank, 0, &mut own);
        let mut fresh = Checkpointer::new(rank, self.len)?;
        fresh.seq = u64::from_le_bytes(own[0..8].try_into().expect("8 bytes"));
        fresh.win.write_local(rank, 0, &own);
        if fresh.seq > 0 && rank.size() > 1 {
            let mut req = fresh.win.iput(rank, fresh.buddy_logical, slot, &own)?;
            rank.wait(&mut req)?;
        }
        // Collective completion: every survivor fences, warm or not.
        fresh.win.fence(rank)?;
        rank.free_mem(self.mem);
        Ok(fresh)
    }

    /// Release the checkpoint window's pool memory.
    pub fn free(self, rank: &mut Rank) {
        rank.free_mem(self.mem);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{run, ClusterSpec};
    use crate::ErrorMode;

    #[test]
    fn exemption_is_scoped_and_panic_safe() {
        assert!(!is_exempt());
        with_exempt(|| {
            assert!(is_exempt());
            with_exempt(|| assert!(is_exempt()));
            assert!(is_exempt());
        });
        assert!(!is_exempt());
        let caught = std::panic::catch_unwind(|| with_exempt(|| panic!("boom")));
        assert!(caught.is_err());
        assert!(!is_exempt());
    }

    #[test]
    fn shrink_without_deaths_keeps_membership_and_advances_epoch() {
        let out = run(
            ClusterSpec::ringlet(4).errors(ErrorMode::ErrorsReturn),
            |r| {
                let report = shrink(r).unwrap();
                assert_eq!(report.dead, Vec::<usize>::new());
                assert_eq!(report.size, 4);
                assert_eq!(report.rank, r.world_rank());
                assert_eq!(r.epoch(), 1);
                // The new epoch's collectives work.
                let mut sum = [r.rank() as f64];
                r.allreduce(&mut sum, crate::ReduceOp::Sum).unwrap();
                assert_eq!(sum, [6.0]);
                report.epoch
            },
        );
        assert!(out.iter().all(|&e| e == 1));
    }

    #[test]
    fn checkpoint_restore_roundtrip_without_faults() {
        run(
            ClusterSpec::ringlet(3).errors(ErrorMode::ErrorsReturn),
            |r| {
                let mut ckpt = Checkpointer::new(r, 64).unwrap();
                let image: Vec<u8> = (0..64).map(|i| (i as u8) ^ (r.rank() as u8)).collect();
                assert!(matches!(ckpt.restore(r), Err(ScimpiError::WindowError(_))));
                ckpt.checkpoint(r, &image).unwrap();
                assert_eq!(ckpt.restore(r).unwrap(), image);
                // A second epoch supersedes the first.
                let image2: Vec<u8> = image.iter().map(|b| b.wrapping_add(1)).collect();
                ckpt.checkpoint(r, &image2).unwrap();
                assert_eq!(ckpt.restore(r).unwrap(), image2);
                assert_eq!(ckpt.seq(), 2);
                // Live predecessors are not adopted.
                assert!(ckpt.adopt(r).is_none());
                ckpt.free(r);
            },
        );
    }

    #[test]
    fn single_rank_checkpointer_works() {
        run(
            ClusterSpec::ringlet(1).errors(ErrorMode::ErrorsReturn),
            |r| {
                let mut ckpt = Checkpointer::new(r, 16).unwrap();
                ckpt.checkpoint(r, &[7u8; 16]).unwrap();
                assert_eq!(ckpt.restore(r).unwrap(), vec![7u8; 16]);
                assert!(ckpt.adopt(r).is_none());
                ckpt.free(r);
            },
        );
    }
}
